"""Cross-cutting simulator invariants, checked over real kernel runs."""

import pytest

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import Fabric, small_config

SMALL = small_config()


def run(name, cfg):
    bench = registry.make(name)
    return run_benchmark(bench, cfg, bench.test_params, base_machine=SMALL)


@pytest.fixture(scope='module')
def sample_runs():
    return {(b, c): run(b, c)
            for b in ('gemm', 'bicg', '2dconv')
            for c in ('NV', 'NV_PF', 'V4')}


class TestAccountingInvariants:
    def test_issue_slots_bounded_by_cycles(self, sample_runs):
        """A core can issue at most one instruction per cycle."""
        for (b, c), r in sample_runs.items():
            for cid, cs in r.stats.cores.items():
                assert cs.instrs <= r.cycles + 1, (b, c, cid)

    def test_stalls_plus_issue_bounded_by_cycles(self, sample_runs):
        """Gap attribution never invents more cycles than elapsed."""
        for (b, c), r in sample_runs.items():
            for cid, cs in r.stats.cores.items():
                assert cs.instrs + cs.stall_total() <= r.cycles + 1, \
                    (b, c, cid)

    def test_fetches_bounded_by_instructions_mimd(self, sample_runs):
        """Independent cores fetch exactly what they execute."""
        for (b, c), r in sample_runs.items():
            if c.startswith('V'):
                continue
            for cid, cs in r.stats.cores.items():
                assert cs.icache_accesses == cs.instrs, (b, c, cid)

    def test_vector_cores_execute_more_than_they_fetch(self, sample_runs):
        for (b, c), r in sample_runs.items():
            if not c.startswith('V'):
                continue
            total_recv = sum(max(0, cs.instrs - cs.icache_accesses)
                             for cs in r.stats.cores.values())
            total_fwd = sum(cs.inet_forwards
                            for cs in r.stats.cores.values())
            assert total_recv > 0
            # every received instruction was forwarded by someone
            assert total_fwd >= total_recv

    def test_instruction_mix_sums_to_total(self, sample_runs):
        for (b, c), r in sample_runs.items():
            for cid, cs in r.stats.cores.items():
                mix = (cs.n_int_alu + cs.n_mul + cs.n_div + cs.n_fp +
                       cs.n_mem + cs.n_simd + cs.n_control)
                non_classified = cs.instrs - mix
                # only system ops (csr, barrier, vconfig, ...) fall outside
                assert 0 <= non_classified <= cs.instrs * 0.5, (b, c, cid)

    def test_llc_misses_bounded_by_accesses(self, sample_runs):
        for (b, c), r in sample_runs.items():
            m = r.stats.mem
            assert m.llc_misses <= m.llc_accesses

    def test_dram_reads_match_misses(self, sample_runs):
        for (b, c), r in sample_runs.items():
            m = r.stats.mem
            assert m.dram_lines_read <= m.llc_misses

    def test_frames_consumed_on_dae_configs(self, sample_runs):
        for (b, c), r in sample_runs.items():
            consumed = sum(cs.frames_consumed
                           for cs in r.stats.cores.values())
            if c == 'NV':
                assert consumed == 0
            else:
                assert consumed > 0, (b, c)


class TestDeterminism:
    def test_same_run_is_bit_identical(self):
        r1 = run('gemm', 'V4')
        r2 = run('gemm', 'V4')
        assert r1.cycles == r2.cycles
        assert r1.instrs == r2.instrs
        assert r1.stats.mem.llc_accesses == r2.stats.mem.llc_accesses

    def test_memory_state_deterministic(self):
        bench = registry.make('bicg')
        outs = []
        for _ in range(2):
            fabric = Fabric(SMALL)
            ws = bench.setup(fabric, bench.test_params)
            prog = bench.build_mimd(fabric, ws, bench.test_params,
                                    prefetch=True)
            fabric.load_program(prog)
            fabric.run()
            outs.append(fabric.read_array(ws.base('q'),
                                          bench.test_params['n']))
        assert outs[0] == outs[1]
