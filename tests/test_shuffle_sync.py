"""Vector-group shuffles and implicit synchronization (paper 2.4 / 4.2).

A shuffle moves data between lanes with remote scratchpad stores.  Because
lanes run staggered along the inet, a consumer must not read the shuffle
buffer until every producer has executed its store; the compiler guarantees
this by spacing the code by at least the instruction-delay bound
(``emit_sync_pad``).
"""

import pytest

from repro.core import GroupDescriptor
from repro.isa import Assembler, opcodes as op
from repro.kernels.codegen import VectorKernelBuilder, pack_frame_cfg
from repro.manycore import Fabric, small_config

BUF = 200  # scratchpad offset of the shuffle buffer


def build_shuffle_program(fabric, lanes, pad: bool):
    """Lanes write tid*10 to their right neighbor's spad, sync, read it.

    Group tiles follow the serpentine, so lane core-ids are not contiguous;
    the build step publishes a lane -> core-id table in global memory (the
    software side of the "software-defined" configuration).
    """
    b = VectorKernelBuilder(fabric, lanes, frame_size=8)
    out = fabric.alloc(32)
    lane_core = [float(g.tiles[1 + l])
                 for g in b.groups for l in range(lanes)]
    table = fabric.alloc(lane_core)
    p = b.program()

    def scalar(a, g):
        a.vissue('.shuf')

    p.vector_phase(scalar)

    def mts(a):
        a.bind('.shuf')
        a.csrr('x29', op.CSR_TID)
        a.csrr('x5', op.CSR_GROUP_SIZE)
        # neighbor lane = (tid + 1) % lanes -> core id via the table
        a.addi('x6', 'x29', 1)
        a.rem('x6', 'x6', 'x5')
        a.csrr('x7', op.CSR_GROUP_ID)
        a.mul('x7', 'x7', 'x5')
        a.add('x7', 'x7', 'x6')
        a.li('x31', table)
        a.add('x7', 'x7', 'x31')
        a.lw('x7', 'x7', 0)           # neighbor's core id
        a.li('x8', 10)
        a.mul('x8', 'x8', 'x29')      # value = tid * 10
        a.li('x9', BUF)
        a.swrem('x8', 'x7', 'x9')     # remote store into neighbor's spad
        if pad:
            b.emit_sync_pad(a)        # the compiler's implicit barrier
        a.li('x10', BUF)
        a.lwsp('x11', 'x10', 0)       # read what my left neighbor sent
        a.li('x12', out)
        a.add('x12', 'x12', 'x29')
        a.sw('x11', 'x12', 0)
        a.vend()

    prog = p.finish(mts)
    return prog, out, b


def expected_shuffle(lanes):
    # lane i receives from lane (i-1) % lanes: value ((i-1)%lanes)*10
    return [((i - 1) % lanes) * 10 for i in range(lanes)]


class TestShuffle:
    def test_shuffle_with_sync_pad_is_correct(self):
        fabric = Fabric(small_config())
        prog, out, b = build_shuffle_program(fabric, lanes=4, pad=True)
        fabric.load_program(prog)
        fabric.run()
        # every group performed the same shuffle; check group 0's lanes
        assert fabric.read_array(out, 4) == expected_shuffle(4)

    def test_shuffle_on_wider_group(self):
        fabric = Fabric(small_config(mesh=6))
        prog, out, b = build_shuffle_program(fabric, lanes=8, pad=True)
        fabric.load_program(prog)
        fabric.run()
        assert fabric.read_array(out, 8) == expected_shuffle(8)

    def test_sync_pad_length_matches_bound(self):
        fabric = Fabric(small_config())
        b = VectorKernelBuilder(fabric, 4, frame_size=8)
        a = Assembler()
        b.emit_sync_pad(a)
        prog = a.finish()
        nops = sum(1 for i in prog.instrs if i.op == op.NOP)
        assert nops >= b.sync_bound

    def test_remote_store_lands_in_neighbor_spad(self):
        """The swrem primitive itself, outside a group."""
        fabric = Fabric(small_config())
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.bne('x1', 'x0', 'other')
        a.li('x5', 123)
        a.li('x6', 2)
        a.li('x7', 50)
        a.swrem('x5', 'x6', 'x7', imm=4)
        a.barrier()
        a.halt()
        a.bind('other')
        a.barrier()
        a.halt()
        fabric.load_program(a.finish(), active_cores=[0, 2])
        fabric.run()
        assert fabric.tiles[2].spad.data[54] == 123


class TestGatherScatter:
    def test_lanes_gather_with_word_loads(self):
        """Paper 2.4: scatter/gather = per-lane word accesses in vector
        mode, non-blocking through the load queue."""
        fabric = Fabric(small_config())
        data = [float(i * i) for i in range(16)]
        src = fabric.alloc(data)
        idx = fabric.alloc([3.0, 1.0, 7.0, 2.0, 9.0, 11.0, 5.0, 8.0])
        out = fabric.alloc(16)
        b = VectorKernelBuilder(fabric, 4, frame_size=8)
        p = b.program()
        p.vector_phase(lambda a, g: a.vissue('.gather'))

        def mts(a):
            a.bind('.gather')
            a.csrr('x29', op.CSR_TID)
            a.csrr('x5', op.CSR_GROUP_ID)
            a.li('x6', 4)
            a.mul('x5', 'x5', 'x6')
            a.add('x5', 'x5', 'x29')      # global lane id
            a.li('x31', 8)
            a.slt('x4', 'x5', 'x31')      # only 8 items
            a.mul('x27', 'x5', 'x4')
            a.li('x7', idx)
            a.add('x7', 'x7', 'x27')
            a.lw('x8', 'x7', 0)           # index (gather step 1)
            a.li('x9', src)
            a.add('x9', 'x9', 'x8')
            a.lw('f1', 'x9', 0)           # data  (gather step 2)
            a.li('x10', out)
            a.add('x10', 'x10', 'x27')
            a.pred_neq('x4', 'x0')
            a.sw('f1', 'x10', 0)
            a.pred_eq('x0', 'x0')
            a.vend()

        fabric.load_program(p.finish(mts))
        fabric.run()
        got = fabric.read_array(out, 8)
        want = [data[int(i)] for i in
                [3, 1, 7, 2, 9, 11, 5, 8]]
        assert got == pytest.approx(want)
