"""Unit tests for the SIMT GPU model (paper Section 5.3)."""

import numpy as np
import pytest

from repro.gpu import GpuConfig, GpuError, GpuMachine
from repro.gpu.machine import GpuMemSystem, _TagArray
from repro.isa import Assembler, opcodes as op

SMALL_GPU = GpuConfig(kernel_launch_overhead=10)


def kernel(build):
    a = Assembler()
    a.csrr('x1', op.CSR_TID)
    a.csrr('x2', op.CSR_NCORES)
    build(a)
    a.halt()
    return a.finish()


def run(build, alloc=None, cfg=SMALL_GPU):
    gm = GpuMachine(cfg)
    bases = {}
    for name, data in (alloc or {}).items():
        bases[name] = gm.alloc(data)
    prog = kernel(lambda a: build(a, bases))
    gm.launch(prog, 0)
    return gm, bases


class TestWavefrontExecution:
    def test_thread_ids_cover_grid(self):
        def build(a, b):
            a.li('x5', b['out'])
            a.add('x5', 'x5', 'x1')
            a.sw('x1', 'x5', 0)

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        got = gm.read_array(bases['out'], SMALL_GPU.total_threads)
        assert got == list(range(SMALL_GPU.total_threads))

    def test_arithmetic_elementwise(self):
        def build(a, b):
            a.li('x5', b['x'])
            a.add('x5', 'x5', 'x1')
            a.lw('f1', 'x5', 0)
            a.fmul('f2', 'f1', 'f1')
            a.li('x6', b['out'])
            a.add('x6', 'x6', 'x1')
            a.sw('f2', 'x6', 0)

        n = SMALL_GPU.total_threads
        data = [float(i) / 7 for i in range(n)]
        gm, bases = run(build, {'x': data, 'out': n})
        got = gm.read_array(bases['out'], n)
        assert got == pytest.approx([v * v for v in data])

    def test_uniform_loop(self):
        def build(a, b):
            a.li('f5', 0.0)
            with a.for_range('x6', 0, 10):
                a.li('f1', 2.0)
                a.fadd('f5', 'f5', 'f1')
            a.li('x7', b['out'])
            a.add('x7', 'x7', 'x1')
            a.sw('f5', 'x7', 0)

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        assert gm.read_array(bases['out'], 3) == [20.0] * 3

    def test_divergent_branch_raises(self):
        def build(a, b):
            skip = a.label()
            a.li('x5', 3)
            a.blt('x1', 'x5', skip.name)  # per-lane outcome differs
            a.nop()
            a.bind(skip)

        with pytest.raises(GpuError, match='divergent'):
            run(build, {'out': 8})

    def test_predication_masks_stores(self):
        def build(a, b):
            a.li('x5', 4)
            a.slt('x6', 'x1', 'x5')       # lanes 0..3 only
            a.li('x7', b['out'])
            a.add('x7', 'x7', 'x1')
            a.li('x8', 1)
            a.pred_neq('x6', 'x0')
            a.sw('x8', 'x7', 0)
            a.pred_eq('x0', 'x0')

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        got = gm.read_array(bases['out'], 8)
        assert got == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_predication_masks_writebacks(self):
        def build(a, b):
            a.li('x5', 1)                  # all lanes: x5 = 1
            a.li('x6', 2)
            a.slt('x7', 'x1', 'x6')        # lanes 0,1
            a.pred_neq('x7', 'x0')
            a.li('x5', 99)                 # masked write
            a.pred_eq('x0', 'x0')
            a.li('x8', b['out'])
            a.add('x8', 'x8', 'x1')
            a.sw('x5', 'x8', 0)

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        assert gm.read_array(bases['out'], 4) == [99, 99, 1, 1]

    def test_unsupported_op_raises(self):
        def build(a, b):
            a.frame_start('x8')  # no frames on the GPU

        with pytest.raises(GpuError, match='unsupported'):
            run(build, {'out': 4})


class TestGpuMemory:
    def test_tag_array_hits_after_fill(self):
        t = _TagArray(1024, 4, 64, hit_latency=1)
        hit, _ = t.access(5, 0)
        assert not hit
        hit, _ = t.access(5, 10)
        assert hit

    def test_lru_eviction(self):
        t = _TagArray(4 * 64, 4, 64, hit_latency=1)  # one set, 4 ways
        for line in range(5):
            t.access(line * t.num_sets, line)
        hit, _ = t.access(0, 100)
        assert not hit  # line 0 was evicted

    def test_coalescing_counts_unique_lines(self):
        cfg = SMALL_GPU
        ms = GpuMemSystem(cfg)
        t0 = ms.access_lines(0, [1], 0)
        ms2 = GpuMemSystem(cfg)
        t1 = ms2.access_lines(0, list(range(16)), 0)
        assert t1 > t0  # 16 lines serialize past 1 line

    def test_dram_bandwidth_serializes(self):
        cfg = SMALL_GPU
        ms = GpuMemSystem(cfg)
        # distinct lines, all missing to DRAM
        done = ms.access_lines(0, [i * 1000 for i in range(8)], 0)
        xfer = cfg.line_words / cfg.dram_bandwidth_words_per_cycle
        assert done >= cfg.dram_latency + 8 * xfer

    def test_memory_alloc_interface_matches_fabric(self):
        gm = GpuMachine(SMALL_GPU)
        base = gm.alloc([1.0, 2.0, 3.0])
        assert base % SMALL_GPU.line_words == 0
        gm._freeze_memory()
        assert gm.read_array(base, 3) == [1.0, 2.0, 3.0]


class TestLaunchSemantics:
    def test_launch_overhead_charged(self):
        def build(a, b):
            a.nop()

        gm, _ = run(build, {'out': 4})
        assert gm.cycle >= SMALL_GPU.kernel_launch_overhead

    def test_sequential_launches_accumulate(self):
        gm = GpuMachine(SMALL_GPU)
        out = gm.alloc(4)
        prog = kernel(lambda a: a.nop())
        gm.launch(prog, 0)
        c1 = gm.cycle
        gm.launch(prog, 0)
        assert gm.cycle > c1


class TestWarpVote:
    def test_vote_any_broadcasts(self):
        def build(a, b):
            a.li('x5', 4)
            a.slt('x6', 'x1', 'x5')    # only lanes 0..3 set
            a.vote_any('x7', 'x6')     # -> 1 everywhere
            a.li('x8', b['out'])
            a.add('x8', 'x8', 'x1')
            a.sw('x7', 'x8', 0)

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        got = gm.read_array(bases['out'], 8)
        assert got == [1.0] * 8

    def test_vote_any_false_when_no_lane_set(self):
        def build(a, b):
            a.li('x6', 0)
            a.vote_any('x7', 'x6')
            a.li('x8', b['out'])
            a.add('x8', 'x8', 'x1')
            a.sw('x7', 'x8', 0)

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        assert gm.read_array(bases['out'], 4) == [0.0] * 4

    def test_vote_respects_active_mask(self):
        def build(a, b):
            a.li('x5', 4)
            a.slt('x6', 'x1', 'x5')        # lanes 0..3
            a.li('x9', 1)                  # per-lane "condition" = 1
            a.pred_neq('x6', 'x0')         # activate lanes 0..3 only
            a.vote_any('x7', 'x9')
            a.pred_eq('x0', 'x0')
            a.li('x8', b['out'])
            a.add('x8', 'x8', 'x1')
            a.sw('x7', 'x8', 0)

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        # any active lane has x9 != 0 -> 1 (vote computed under the mask)
        assert gm.read_array(bases['out'], 2) == [1.0, 1.0]

    def test_uniform_branch_on_vote(self):
        """The vote result is wavefront-uniform, so branching on it is
        legal even though the voted condition diverges."""
        def build(a, b):
            skip = a.label()
            a.li('x5', 4)
            a.slt('x6', 'x1', 'x5')    # divergent condition
            a.vote_any('x7', 'x6')
            a.li('x9', 7)
            a.beq('x7', 'x0', skip.name)   # uniform branch
            a.li('x9', 9)
            a.bind(skip)
            a.li('x8', b['out'])
            a.add('x8', 'x8', 'x1')
            a.sw('x9', 'x8', 0)

        gm, bases = run(build, {'out': SMALL_GPU.total_threads})
        assert gm.read_array(bases['out'], 2) == [9.0, 9.0]
