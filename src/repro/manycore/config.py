"""Machine configuration for the manycore / Rockcress model.

Defaults mirror Table 1a of the paper.  Sizes are expressed in bytes in the
public fields (as in the paper) and converted to 4-byte words internally,
since the simulator is word-addressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

WORD_BYTES = 4


@dataclass(frozen=True)
class MachineConfig:
    """Microarchitectural parameters (paper Table 1a)."""

    # fabric geometry
    mesh_width: int = 8
    mesh_height: int = 8

    # functional unit latencies (cycles)
    alu_latency: int = 1
    mul_latency: int = 2
    div_latency: int = 20
    fp_alu_latency: int = 3
    fp_mul_latency: int = 3

    # per-core SIMD (PCV)
    simd_width: int = 4
    simd_alu_latency: int = 3

    # queues
    load_queue_entries: int = 2
    inet_queue_entries: int = 2

    # caches / scratchpad
    cache_line_bytes: int = 64
    icache_capacity_bytes: int = 4096
    icache_hit_latency: int = 1
    icache_ways: int = 2
    spad_capacity_bytes: int = 4096
    spad_hit_latency: int = 2

    # network
    router_hop_latency: int = 1
    noc_width_words: int = 4

    # LLC
    llc_capacity_bytes: int = 256 * 1024
    llc_banks: int = 16
    llc_hit_latency: int = 1
    llc_ways: int = 4

    # DRAM (16 GB/s @ 1 GHz = 16 B/cycle = 4 words/cycle; 60 ns = 60 cycles)
    dram_latency: int = 60
    dram_bandwidth_words_per_cycle: float = 4.0

    # SDV / DAE parameters (paper Section 3.3)
    frame_counters: int = 5

    # pipeline constants used by the Section 4.2 synchronization bound
    pipeline_buf_total: int = 8  # sum of decode/rename/issue/commit buffers
    rob_entries: int = 8

    # modeling knobs (ablations)
    branch_bubble: int = 2
    expander_pause_on_branch: bool = True
    ideal_llc_ports: bool = False  # if True, no response-port serialization

    @property
    def num_cores(self) -> int:
        return self.mesh_width * self.mesh_height

    @property
    def line_words(self) -> int:
        return self.cache_line_bytes // WORD_BYTES

    @property
    def spad_words(self) -> int:
        return self.spad_capacity_bytes // WORD_BYTES

    @property
    def llc_sets_per_bank(self) -> int:
        lines = self.llc_capacity_bytes // self.cache_line_bytes
        per_bank = max(1, lines // self.llc_banks)
        return max(1, per_bank // self.llc_ways)

    def scaled(self, **overrides) -> 'MachineConfig':
        """Return a copy with some fields overridden (for sweeps)."""
        return replace(self, **overrides)


#: The paper's Table 1a machine.
DEFAULT_CONFIG = MachineConfig()


def small_config(mesh: int = 4, **overrides) -> MachineConfig:
    """A shrunken machine for unit tests: 4x4 mesh, small caches."""
    base = dict(
        mesh_width=mesh,
        mesh_height=mesh,
        llc_capacity_bytes=16 * 1024,
        llc_banks=4,
    )
    base.update(overrides)
    return MachineConfig(**base)
