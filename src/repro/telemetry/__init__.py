"""Telemetry: interval sampling, latency histograms, traces, run reports.

The observability layer the perf roadmap depends on.  Everything is
off-by-default and observation-only: attaching a :class:`Telemetry` to a
fabric never changes simulated cycle counts (the probes read state; they
post no events), and an unattached fabric pays a single ``None`` check
per probe site.

Quick start::

    from repro.telemetry import Telemetry
    from repro.harness import run_benchmark

    tel = Telemetry(sample_interval=1000)
    r = run_benchmark(bench, 'V4', params, telemetry=tel)
    doc = r.to_json('out.json')           # schema-checked report artifact

See ``docs/telemetry.md`` for the sampler/histogram/trace/report tour.
"""

from .histogram import Log2Histogram, merge_histograms
from .probes import (HIST_FRAME, HIST_GPU_MEM, HIST_LLC_QUEUE, HIST_NOC,
                     HIST_VLOAD, HISTOGRAM_NAMES, Telemetry)
from .report import (REPORT_SCHEMA, SCHEMA_VERSION, ReportValidationError,
                     build_report, compare_reports, load_report,
                     render_report, validate_report)
from .sampler import Sample, Sampler, STALL_FIELDS
from .spans import CAT_FRAME, CAT_MICROTHREAD, CAT_WIDE, Span, SpanRecorder
from .trace_export import to_chrome_trace, write_chrome_trace

__all__ = [
    'Telemetry', 'Log2Histogram', 'merge_histograms', 'Sampler', 'Sample',
    'STALL_FIELDS', 'Span', 'SpanRecorder', 'CAT_FRAME', 'CAT_MICROTHREAD',
    'CAT_WIDE', 'HIST_VLOAD', 'HIST_FRAME', 'HIST_LLC_QUEUE', 'HIST_NOC',
    'HIST_GPU_MEM', 'HISTOGRAM_NAMES', 'to_chrome_trace',
    'write_chrome_trace', 'build_report', 'validate_report', 'load_report',
    'render_report', 'compare_reports', 'ReportValidationError',
    'REPORT_SCHEMA', 'SCHEMA_VERSION',
]
