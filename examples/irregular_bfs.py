#!/usr/bin/env python3
"""When NOT to form vector groups: breadth-first search (paper Section 6.6).

bfs has data-dependent control flow (per-vertex degrees vary), so lockstep
vector execution must pad every vertex to the maximum degree and predicate
away the slack.  The paper measures plain manycore (NV) execution ~2.9x
faster than either vector configuration — the same machine simply chooses
a different mode per workload.

Run:  python examples/irregular_bfs.py
"""

from repro.harness import run_benchmark
from repro.kernels import refs, registry


def main():
    bench = registry.make('bfs')
    params = bench.bench_params
    rp, ci = refs.synthetic_graph(params['v'], params['deg'])
    degs = [rp[i + 1] - rp[i] for i in range(params['v'])]
    print(f'graph: {params["v"]} vertices, {len(ci)} edges, '
          f'degree min/avg/max = {min(degs)}/'
          f'{sum(degs) / len(degs):.1f}/{max(degs)}')
    print('(lockstep execution pays for max degree on every vertex)\n')

    results = {}
    for cfg in ('NV', 'V4', 'V16'):
        results[cfg] = run_benchmark(bench, cfg, params)
        print(f'{cfg:4s}: {results[cfg].cycles:7d} cycles '
              f'({results[cfg].instrs} instructions)')

    ratio = results['V4'].cycles / results['NV'].cycles
    print(f'\nmanycore mode is {ratio:.1f}x faster than V4 on bfs')
    print('-> regular kernels want vector groups, irregular ones want '
          'independent cores;\n   software-defined vectors let one fabric '
          'serve both (paper Section 6.6)')


if __name__ == '__main__':
    main()
