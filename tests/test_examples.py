"""Smoke tests: every example script runs end to end.

compare_configs / energy_report / vector_length_sweep accept a scale or
benchmark argument; the tests use small inputs to stay fast.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / 'examples'


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example('quickstart.py')
        assert 'OK' in out
        assert 'per-lane sums' in out

    def test_compare_configs(self):
        out = run_example('compare_configs.py', 'gemm', 'test')
        assert 'verified against the numpy reference' in out
        assert 'GPU' in out

    def test_irregular_bfs(self):
        out = run_example('irregular_bfs.py')
        assert 'faster than V4 on bfs' in out

    def test_energy_report(self):
        out = run_example('energy_report.py', '2dconv')
        assert 'icache' in out
        assert 'V16' in out

    def test_vector_length_sweep(self):
        out = run_example('vector_length_sweep.py', 'gemm')
        assert 'lanes' in out
        assert '16' in out
