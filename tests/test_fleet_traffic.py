"""Open-loop traffic: determinism (in- and cross-process), streaming.

The fleet re-executes crashed work from the same seeded trace, so the
generator must be reproducible across interpreter instances — the
cross-process test uses the ``spawn`` start method to get a genuinely
fresh interpreter rather than a fork sharing this one's state.
"""

import multiprocessing as mp
from itertools import islice

from repro.serve import PATTERNS, SIZE_LADDERS, open_loop_trace


def _snapshot(seed, n, pattern):
    return [(r.req_id, r.kernel, tuple(sorted(r.params.items())),
             r.lanes, r.groups, r.arrival)
            for r in open_loop_trace(seed=seed, n_requests=n,
                                     pattern=pattern)]


def test_same_seed_same_trace_every_pattern():
    for pattern in PATTERNS:
        assert _snapshot(11, 60, pattern) == _snapshot(11, 60, pattern)


def test_different_seeds_differ():
    assert _snapshot(1, 60, 'mixed') != _snapshot(2, 60, 'mixed')


def test_deterministic_across_process_boundary():
    want = _snapshot(23, 80, 'mixed')
    ctx = mp.get_context('spawn')
    with ctx.Pool(1) as pool:
        got = pool.apply(_snapshot, (23, 80, 'mixed'))
    assert got == want


def test_streams_lazily_at_scale():
    # ten million requests must cost nothing until consumed
    stream = open_loop_trace(seed=5, n_requests=10_000_000,
                             pattern='mixed')
    head = list(islice(stream, 500))
    assert len(head) == 500
    arrivals = [r.arrival for r in head]
    assert arrivals == sorted(arrivals)
    assert all(r.req_id == i for i, r in enumerate(head))


def test_sizes_come_from_the_ladder():
    for r in open_loop_trace(seed=7, n_requests=120, pattern='mixed'):
        assert r.kernel in SIZE_LADDERS
        assert r.params in SIZE_LADDERS[r.kernel]


def test_bursty_pattern_compresses_interarrivals():
    rs = list(open_loop_trace(seed=3, n_requests=400, pattern='bursty',
                              mean_interarrival=4000,
                              burst_every=40_000, burst_len=8,
                              burst_compression=50))
    gaps = [b.arrival - a.arrival for a, b in zip(rs, rs[1:])]
    # bursts produce runs of gaps far below the open-loop mean
    assert sum(1 for g in gaps if g < 4000 // 10) >= 8


def test_diurnal_pattern_modulates_rate():
    rs = list(open_loop_trace(seed=9, n_requests=600, pattern='diurnal',
                              mean_interarrival=2000,
                              day_cycles=200_000,
                              diurnal_amplitude=0.8))
    gaps = [b.arrival - a.arrival for a, b in zip(rs, rs[1:])]
    # peak-vs-trough spread: the densest decile must be much tighter
    # than the sparsest
    gaps.sort()
    dense = sum(gaps[:len(gaps) // 10])
    sparse = sum(gaps[-len(gaps) // 10:])
    assert sparse > 3 * max(1, dense)
