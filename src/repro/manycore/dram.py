"""Fixed-latency, fixed-bandwidth DRAM model (paper Section 5.1).

All LLC banks share one DRAM channel pool with an aggregate bandwidth of
``dram_bandwidth_words_per_cycle`` (4 words/cycle = 16 GB/s at 1 GHz) and a
fixed access latency (60 cycles).  Bandwidth is modeled as channel busy
time: each line transfer occupies ``line_words / bandwidth`` cycles, and
transfers serialize when the channel is saturated — which is exactly the
bottleneck the paper's scalability study (Figures 11-13) exercises.
"""

from __future__ import annotations

import math


class Dram:
    """Shared DRAM behind the LLC banks."""

    def __init__(self, latency: int, bandwidth_words_per_cycle: float,
                 line_words: int, stats):
        self.latency = latency
        self.bandwidth = bandwidth_words_per_cycle
        self.line_words = line_words
        self.stats = stats
        self._next_free = 0.0

    @property
    def transfer_cycles(self) -> float:
        return self.line_words / self.bandwidth

    def read_line(self, now: int, fabric, on_filled) -> int:
        """Schedule a line fill; returns the completion cycle."""
        start = max(float(now), self._next_free)
        self._next_free = start + self.transfer_cycles
        done = int(math.ceil(start + self.latency + self.transfer_cycles))
        self.stats.dram_lines_read += 1
        fabric.post(done, on_filled)
        return done

    def write_line(self, now: int) -> None:
        """Account for a write-back; consumes bandwidth, nothing waits."""
        start = max(float(now), self._next_free)
        self._next_free = start + self.transfer_cycles
        self.stats.dram_lines_written += 1

    def backlog(self, now: int) -> float:
        """Channel busy-time queued beyond ``now`` (telemetry's "tokens").

        Zero when the channel is idle; grows as line transfers pile up
        faster than the bandwidth drains them — the saturation signal of
        the paper's scalability study (Figures 11-13).
        """
        return max(0.0, self._next_free - now)
