"""repro.observe — the serving-time observability plane.

Four pieces (see docs/observability.md):

* :mod:`~repro.observe.metrics` — the :class:`MetricsRegistry` of named
  counters/gauges/log2-histograms with label support, Prometheus text
  exposition, and JSON snapshots;
* :mod:`~repro.observe.rtrace` — per-request causal tracing and the
  exact phase breakdown (queue/launch/execute/frame-stall/LLC/inet +
  ``unattributed`` residual) that sums to each request's latency;
* :mod:`~repro.observe.heatmap` + :mod:`~repro.observe.plane` — probe
  drain into NoC link / LLC bank / inet backpressure heatmaps, periodic
  JSONL snapshots, and the attach/detach lifecycle (side-effect-free:
  simulated cycles are bit-identical with the plane attached);
* :mod:`~repro.observe.slo` — threshold policies over serving summaries
  with pass/warn/fail evaluation for CI gating.

``repro.observe.top`` (the live dashboard) is intentionally *not*
imported here: it depends on :mod:`repro.serve`, which imports this
package.
"""

from .heatmap import Heatmap, LinkHeatmap, RAMP
from .metrics import (COUNTER, GAUGE, HISTOGRAM, Counter, Gauge,
                      MetricFamily, MetricsRegistry)
from .plane import ObservePlane
from .rtrace import (BREAKDOWN_PHASES, RequestTrace, apportion,
                     breakdown_total, build_breakdown, merge_breakdowns)
from .slo import (FAIL, PASS, SLO_SECTION_SCHEMA, WARN, SloPolicy,
                  evaluate_slo, render_slo)

__all__ = [
    'Heatmap', 'LinkHeatmap', 'RAMP',
    'COUNTER', 'GAUGE', 'HISTOGRAM', 'Counter', 'Gauge',
    'MetricFamily', 'MetricsRegistry',
    'ObservePlane',
    'BREAKDOWN_PHASES', 'RequestTrace', 'apportion', 'breakdown_total',
    'build_breakdown', 'merge_breakdowns',
    'FAIL', 'PASS', 'SLO_SECTION_SCHEMA', 'WARN', 'SloPolicy',
    'evaluate_slo', 'render_slo',
]
