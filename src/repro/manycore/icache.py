"""Per-tile instruction cache model (4 kB, 2-way in the paper).

The energy story of the paper hinges on *counting* I-cache accesses (one per
fetched instruction) and eliding them for non-expander vector cores, so the
access counter is the load-bearing part.  Misses are modeled with a fixed
refill penalty; with 4 kB caches and loop-dominated kernels they vanish
after warm-up, matching the paper's setup.
"""

from __future__ import annotations

from typing import List

INSTR_BYTES = 4
MISS_PENALTY = 20


class ICache:
    """A tiny set-associative tag array over instruction addresses (= PCs)."""

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int,
                 stats):
        self.instrs_per_line = line_bytes // INSTR_BYTES
        num_lines = max(1, capacity_bytes // line_bytes)
        self.num_sets = max(1, num_lines // ways)
        self.ways = ways
        self.stats = stats
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate every line (a new program reuses the same PCs)."""
        self._sets = [[] for _ in range(self.num_sets)]

    def fetch(self, pc: int) -> int:
        """Access the cache for PC; returns extra stall cycles (0 on hit)."""
        self.accesses += 1
        self.stats.icache_accesses += 1
        line = pc // self.instrs_per_line
        s = self._sets[line % self.num_sets]
        if line in s:
            s.remove(line)
            s.insert(0, line)
            return 0
        self.misses += 1
        if len(s) >= self.ways:
            s.pop()
        s.insert(0, line)
        return MISS_PENALTY
