"""Reference-result cache: repeated verifies skip the numpy recompute."""

import numpy as np
import pytest

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.kernels.base import (clear_expected_cache, expected_cache_hits)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_expected_cache()
    yield
    clear_expected_cache()


def test_repeat_run_hits_the_cache():
    bench = registry.make('mvt')
    params = bench.params_for('test')
    r1 = run_benchmark(bench, 'V4', params)
    assert expected_cache_hits() == 0
    r2 = run_benchmark(bench, 'V4', params)
    assert expected_cache_hits() == 1
    assert r1.cycles == r2.cycles


def test_different_params_miss():
    bench = registry.make('mvt')
    small = dict(bench.params_for('test'))
    run_benchmark(bench, 'V4', small)
    bigger = {k: v * 2 for k, v in small.items()}
    run_benchmark(bench, 'V4', bigger)
    assert expected_cache_hits() == 0


def test_cached_reference_still_catches_corruption():
    # warm the cache, then verify against a fabric that never ran: the
    # memoized expected values must still fail verification
    bench = registry.make('gemm')
    params = bench.params_for('test')
    run_benchmark(bench, 'NV', params)
    assert expected_cache_hits() == 0

    from repro.manycore import Fabric
    fabric = Fabric()
    ws = bench.setup(fabric, params)
    with pytest.raises(AssertionError):
        bench.verify(fabric, ws, params)  # never ran: outputs are zero
    assert expected_cache_hits() >= 1


def test_monkeypatched_expected_bypasses_cache():
    bench = registry.make('mvt')
    params = bench.params_for('test')
    run_benchmark(bench, 'V4', params)

    orig = bench.expected

    def doctored(ws, p):
        out = orig(ws, p)
        return {k: np.asarray(v) + 1.0 for k, v in out.items()}

    bench.expected = doctored
    with pytest.raises(AssertionError):
        run_benchmark(bench, 'V4', params)
