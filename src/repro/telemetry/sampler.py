"""Interval sampling of fabric state: CPI stacks as time series.

The fabric's event-assisted clock jumps over quiet stretches, so the
sampler cannot tick on its own — posting wake-up events would perturb
the barrier memory-fence check (which waits for an *empty* event heap)
and destroy the disabled-path guarantee that telemetry never changes
cycle counts.  Instead :meth:`Fabric.run` calls :meth:`Sampler.take`
whenever the clock crosses the next sample boundary.  When the clock
fast-forwards across several boundaries at once the sampler emits one
delta-encoded sample covering the whole jump; cumulative counters stay
exact because every sample stores *deltas* since the previous one.

Stall attribution is lazy (a gap is charged when the blocked
instruction finally issues), so a long stall can land entirely in the
sample where it resolves; interval CPI stacks are therefore exact in
aggregate and at-most-one-sample smeared in time.
"""

from __future__ import annotations

from operator import attrgetter
from typing import List, Optional

from ..manycore.stats import STALL_CAUSES

#: CoreStats fields snapshotted per interval, in serialization order.
STALL_FIELDS = STALL_CAUSES
_CORE_FIELDS = ('instrs',) + STALL_FIELDS
_CORE_GET = attrgetter(*_CORE_FIELDS)


class Sample:
    """One delta-encoded snapshot of fabric-wide activity."""

    __slots__ = ('cycle', 'dcycles', 'issued', 'stalls', 'llc_lines',
                 'llc_accesses', 'llc_misses', 'dram_lines_read',
                 'dram_lines_written', 'dram_backlog', 'inet_depth_total',
                 'inet_depth_max', 'per_core')

    def __init__(self, cycle: int, dcycles: int):
        self.cycle = cycle
        self.dcycles = dcycles
        self.issued = 0
        self.stalls = {}           # cause -> delta cycles (aggregate)
        self.llc_lines = 0         # absolute occupancy at sample time
        self.llc_accesses = 0
        self.llc_misses = 0
        self.dram_lines_read = 0
        self.dram_lines_written = 0
        self.dram_backlog = 0.0    # channel busy-time beyond "now"
        self.inet_depth_total = 0
        self.inet_depth_max = 0
        self.per_core = None       # optional core -> [instrs, stalls...]

    def to_dict(self) -> dict:
        doc = {
            'cycle': self.cycle,
            'dcycles': self.dcycles,
            'issued': self.issued,
            'stalls': dict(self.stalls),
            'llc_lines': self.llc_lines,
            'llc_accesses': self.llc_accesses,
            'llc_misses': self.llc_misses,
            'dram_lines_read': self.dram_lines_read,
            'dram_lines_written': self.dram_lines_written,
            'dram_backlog': self.dram_backlog,
            'inet_depth_total': self.inet_depth_total,
            'inet_depth_max': self.inet_depth_max,
        }
        if self.per_core is not None:
            doc['per_core'] = {str(c): list(v)
                               for c, v in self.per_core.items()}
        return doc


class Sampler:
    """Snapshots per-core stall taxonomy and memory pressure every N cycles."""

    def __init__(self, interval: int = 1000, per_core: bool = False,
                 limit: int = 1_000_000):
        if interval <= 0:
            raise ValueError('sample interval must be positive')
        self.interval = interval
        self.per_core = per_core
        self.limit = limit
        self.samples: List[Sample] = []
        self.dropped = 0
        self.next_due = interval
        self._fabric = None
        self._last_cycle = 0
        self._prev_core: List[tuple] = []
        self._prev_totals: List[int] = []
        self._prev_mem: List[int] = []

    # ------------------------------------------------------------------- bind
    def bind(self, fabric) -> None:
        """Capture counter baselines; idempotent per fabric."""
        if self._fabric is fabric:
            return
        self._fabric = fabric
        self._last_cycle = fabric.cycle
        self.next_due = fabric.cycle + self.interval
        self._prev_core = [_CORE_GET(t.stats) for t in fabric.tiles]
        self._prev_totals = [sum(col) for col in zip(*self._prev_core)]
        self._prev_mem = self._mem_snapshot(fabric)

    @staticmethod
    def _mem_snapshot(fabric) -> List[int]:
        m = fabric.run_stats.mem
        return [m.llc_accesses, m.llc_misses, m.dram_lines_read,
                m.dram_lines_written]

    # ------------------------------------------------------------------- take
    def take(self, now: int) -> None:
        """Record one sample at cycle ``now`` (called from Fabric.run)."""
        fabric = self._fabric
        # advance past every boundary the clock jumped over
        self.next_due = now - now % self.interval + self.interval
        if len(self.samples) >= self.limit:
            self.dropped += 1
            self._last_cycle = now
            return
        s = Sample(now, now - self._last_cycle)
        self._last_cycle = now

        tiles = fabric.tiles
        curs = [_CORE_GET(t.stats) for t in tiles]
        if self.per_core:
            per_core = {}
            for t, cur, prev in zip(tiles, curs, self._prev_core):
                d = [c - p for c, p in zip(cur, prev)]
                if any(d):
                    per_core[t.core_id] = d
            s.per_core = per_core
        totals = [sum(col) for col in zip(*curs)]
        d = [c - p for c, p in zip(totals, self._prev_totals)]
        self._prev_core = curs
        self._prev_totals = totals
        s.issued = d[0]
        s.stalls = {f[len('stall_'):]: v
                    for f, v in zip(STALL_FIELDS, d[1:]) if v}
        depths = [len(t.inet_in) for t in tiles]
        depth_total = sum(depths)
        depth_max = max(depths)

        cur_mem = self._mem_snapshot(fabric)
        dm = [c - p for c, p in zip(cur_mem, self._prev_mem)]
        self._prev_mem = cur_mem
        s.llc_accesses, s.llc_misses = dm[0], dm[1]
        s.dram_lines_read, s.dram_lines_written = dm[2], dm[3]
        s.llc_lines = sum(b.resident_lines() for b in fabric.banks)
        s.dram_backlog = fabric.dram.backlog(now)
        s.inet_depth_total = depth_total
        s.inet_depth_max = depth_max
        self.samples.append(s)

    def finalize(self, now: int) -> None:
        """Emit a closing partial sample so delta sums match final counters."""
        if self._fabric is not None and now > self._last_cycle:
            self.take(now)

    # --------------------------------------------------------------- serialize
    def to_dicts(self) -> List[dict]:
        return [s.to_dict() for s in self.samples]

    def __len__(self):
        return len(self.samples)
