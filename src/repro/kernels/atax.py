"""atax: y = A^T (A x).

Kernel 1 (tmp = A.x) uses the cooperative row-dot division with GROUP
loads plus a MIMD partial-sum reduction; kernel 2 (y = A^T tmp) uses the
paper's loop reordering so A is still streamed row-contiguously.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_matmul_like, mimd_rowdot
from .vector_templates import (MatTerm, emit_matmul_like, emit_rowdot,
                               emit_rowdot_reduce)

MAX_LANES = 16


class Atax(Benchmark):
    name = 'atax'
    test_params = {'n': 16}
    bench_params = {'n': 64}

    def setup(self, fabric: Fabric, params) -> Workspace:
        n = params['n']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((n, n)))
        self.alloc_np(fabric, ws, 'x', g.random(n))
        self.alloc_zeros(fabric, ws, 'tmp', n)
        self.alloc_zeros(fabric, ws, 'y', n)
        self.alloc_zeros(fabric, ws, 'p0', n * MAX_LANES)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        tmp, y = refs.atax(ws.inputs['A'], ws.inputs['x'])
        return {'tmp': tmp, 'y': y}

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        n = params['n']
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: mimd_rowdot(
            a, nrows=n, ncols=n, mats=[(ws.base('A'), n)],
            vec_base=ws.base('x'), out_base=ws.base('tmp'), coeffs=[1.0],
            cfg=fabric.cfg, prefetch=prefetch, pcv=pcv))
        mb.add_kernel(lambda a: mimd_matmul_like(
            a, ni=1, nj=n, nk=n,
            terms=[MatTerm(ws.base('tmp'), 0, ws.base('A'), n)],
            out_base=ws.base('y'), out_stride=n, cfg=fabric.cfg,
            prefetch=prefetch, pcv=pcv, kb=min(4, n)))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        n = params['n']
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        flen = self.matvec_flen(fabric, vp.lanes, vp.pcv, n)
        mflen, mpcv = self.fitted_flen(fabric, vp.lanes, vp.pcv, n, ni=1)
        emit_rowdot(p, name='atax1', nrows=n, ncols=n,
                    mats=[(ws.base('A'), n)], vec_base=ws.base('x'),
                    partials_bases=[ws.base('p0')], flen=flen, pcv=vp.pcv)
        emit_rowdot_reduce(p, nrows=n, lanes=vp.lanes,
                           partials_bases=[ws.base('p0')], coeffs=[1.0],
                           out_base=ws.base('tmp'))
        emit_matmul_like(p, name='atax2', ni=1, nj=n, nk=n,
                         terms=[MatTerm(ws.base('tmp'), 0, ws.base('A'), n)],
                         out_base=ws.base('y'), out_stride=n,
                         kb=min(4, n), flen=mflen, pcv=mpcv)
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        return 4 * self.flen_for(fabric, lanes, pcv) + 4
