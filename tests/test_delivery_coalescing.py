"""Same-cycle scratchpad delivery coalescing (host-time optimisation).

The simulation-visible contract — identical cycles, instrs, and
delivered data — is covered by the bit-identity of the whole tier-1
suite plus the parallel/serial determinism tests; here we pin the
mechanism itself: one heap event per arrival cycle, append-order drain,
and empty batch state after firing.
"""

import heapq

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import Fabric


class TestBatching:
    def test_same_cycle_packets_share_one_event(self):
        f = Fabric()
        before = f._seq
        f.post_spad_delivery(7, 0, 0, [1.0, 2.0], False)
        f.post_spad_delivery(7, 1, 4, [3.0], False)
        f.post_spad_delivery(9, 0, 8, [4.0], False)
        assert f._seq == before + 2       # two cycles -> two events
        assert len(f._delivery_batches[7]) == 2
        assert len(f._delivery_batches[9]) == 1

    def test_drain_delivers_in_post_order_and_empties(self):
        f = Fabric()
        f.post_spad_delivery(5, 0, 0, [1.0, 2.0], False)
        f.post_spad_delivery(5, 0, 2, [3.0], False)
        f.post_spad_delivery(5, 1, 0, [9.0], False)
        while f._heap:
            t, seq, fn = heapq.heappop(f._heap)
            if seq in f._pending_events:
                f._pending_events.discard(seq)
                fn(t)
        assert not f._delivery_batches
        assert f.tiles[0].spad.data[0:3] == [1.0, 2.0, 3.0]
        assert f.tiles[1].spad.data[0] == 9.0

    def test_late_drain_pops_by_batch_time(self):
        # _drain() can fire events with fabric.cycle beyond the posted
        # time; the batch must still resolve by its own key
        f = Fabric()
        f.post_spad_delivery(3, 0, 0, [5.0], False)
        f.cycle = 50
        t, seq, fn = heapq.heappop(f._heap)
        fn(f.cycle)
        assert not f._delivery_batches
        assert f.tiles[0].spad.data[0] == 5.0


class TestEndToEnd:
    def test_run_leaves_no_pending_batches(self):
        bench = registry.make('gemm')
        r = run_benchmark(bench, 'V4', bench.params_for('test'))
        assert r.cycles > 0  # verified against numpy inside the runner

    def test_profiler_attributes_batches_to_frames(self):
        from repro.perf import HostProfiler
        bench = registry.make('gemm')
        profiler = HostProfiler()
        run_benchmark(bench, 'V4', bench.params_for('test'),
                      profiler=profiler)
        # frame deliveries ran through the coalesced path and are
        # still attributed to the 'frames' component
        assert profiler.seconds.get('frames', 0.0) > 0.0
