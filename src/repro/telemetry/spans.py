"""Span (interval) events for trace export.

A span is a named ``[start, end)`` cycle window on one core's timeline:
a microthread lifetime on the expander, a DAE frame's occupancy between
its first arriving word and the ``remem`` that frees it, or the window
an LLC bank spends serving one wide access.  Spans are collected flat
(no nesting bookkeeping) and rendered into Chrome-trace/Perfetto events
by :mod:`repro.telemetry.trace_export`.
"""

from __future__ import annotations

from typing import List, Optional

CAT_MICROTHREAD = 'microthread'
CAT_FRAME = 'frame'
CAT_WIDE = 'wide_access'


class Span:
    """One closed interval event."""

    __slots__ = ('name', 'cat', 'core', 'start', 'end', 'args')

    def __init__(self, name: str, cat: str, core: int, start: int,
                 end: int, args: Optional[dict] = None):
        self.name = name
        self.cat = cat
        self.core = core
        self.start = start
        self.end = end
        self.args = args

    @property
    def duration(self) -> int:
        return self.end - self.start

    def __repr__(self):
        return (f'Span({self.name!r}, cat={self.cat}, core={self.core}, '
                f'[{self.start}, {self.end}))')


class SpanRecorder:
    """Bounded flat store of finished spans.

    ``add()`` runs inside the simulator's hot paths, so it only appends
    a raw tuple; :class:`Span` objects are materialized lazily on first
    access to :attr:`spans` (and cached until the next ``add``).
    """

    def __init__(self, limit: int = 1_000_000):
        self.limit = limit
        self._raw: List[tuple] = []
        self._spans: Optional[List[Span]] = None
        self.dropped = 0

    def add(self, name: str, cat: str, core: int, start: int, end: int,
            args: Optional[dict] = None) -> None:
        if len(self._raw) >= self.limit:
            self.dropped += 1
            return
        self._raw.append((name, cat, core, start, end, args))
        self._spans = None

    @property
    def spans(self) -> List[Span]:
        if self._spans is None:
            self._spans = [Span(*r) for r in self._raw]
        return self._spans

    def by_category(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def counts(self) -> dict:
        out: dict = {}
        for r in self._raw:
            out[r[1]] = out.get(r[1], 0) + 1
        return out

    def __len__(self):
        return len(self._raw)
