"""Unit tests: MetricsRegistry, apportioning, heatmaps, SLO policies."""

import pytest

from repro.observe import (Heatmap, LinkHeatmap, MetricsRegistry,
                           SloPolicy, apportion, render_slo)
from repro.observe.metrics import _label_key, _label_str


class TestRegistry:
    def test_counters_gauges_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter('reqs_total', 'requests')
        c.inc()
        c.inc(4)
        c.labels(kernel='gemm').inc(2)
        c.labels(kernel='mvt').inc()
        g = reg.gauge('depth')
        g.set(7)
        g.dec(2)
        snap = reg.snapshot()
        assert snap['reqs_total'] == {'': 5, 'kernel="gemm"': 2,
                                      'kernel="mvt"': 1}
        assert snap['depth'] == 5
        assert reg.counter('reqs_total') is c  # same family, idempotent
        assert len(reg) == 2 and 'depth' in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter('x')
        with pytest.raises(ValueError):
            reg.gauge('x')

    def test_histogram_and_prometheus_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram('lat_cycles', 'latency', unit='cycles')
        for v in (1, 2, 4, 8, 100):
            h.observe(v)
        snap = reg.snapshot()
        assert snap['lat_cycles']['count'] == 5
        assert snap['lat_cycles']['max'] == 100.0
        reg.counter('n_total', 'things').inc(3)
        text = reg.to_prometheus()
        assert '# TYPE lat_cycles histogram' in text
        assert '# HELP n_total things' in text
        assert 'n_total 3' in text
        assert 'lat_cycles_count 5' in text
        assert 'lat_cycles_sum 115' in text
        # bucket counts are cumulative and end at +Inf == count
        lines = [ln for ln in text.splitlines() if '_bucket' in ln]
        assert lines[-1].endswith(' 5') and 'le="+Inf"' in lines[-1]
        cums = [int(ln.rsplit(' ', 1)[1]) for ln in lines]
        assert cums == sorted(cums)

    def test_label_keys_are_order_insensitive(self):
        assert _label_key({'a': 1, 'b': 2}) == _label_key({'b': 2, 'a': 1})
        assert _label_str(_label_key({'b': 2, 'a': 1})) == 'a="1",b="2"'

    def test_exposition_escapes_label_values(self):
        # the Prometheus text format requires \, ", and newline escaped
        # inside quoted label values (backslash first, so introduced
        # backslashes survive); HELP escapes \ and newline only
        reg = MetricsRegistry()
        c = reg.counter('odd_total', 'count of "odd"\nthings\\seen')
        c.labels(path='C:\\tmp', quote='say "hi"', nl='a\nb').inc()
        text = reg.to_prometheus()
        assert r'path="C:\\tmp"' in text
        assert r'quote="say \"hi\""' in text
        assert r'nl="a\nb"' in text
        assert '# HELP odd_total count of "odd"\\nthings\\\\seen' in text
        assert '\n' == text[-1] and text.count('\n') == len(
            text.splitlines())  # no raw newline leaked mid-line
        # the JSON snapshot keying is NOT escaped — it must stay stable
        snap = reg.snapshot()
        assert list(snap['odd_total']) == [
            'nl="a\nb",path="C:\\tmp",quote="say "hi""']


class TestApportion:
    def test_exact_and_proportional(self):
        shares = apportion(100, {'a': 3, 'b': 1})
        assert shares == {'a': 75, 'b': 25}

    def test_largest_remainder_sums_exactly(self):
        for total in (1, 7, 97, 1000):
            shares = apportion(total, {'a': 1, 'b': 1, 'c': 1})
            assert sum(shares.values()) == total
        shares = apportion(10, {'a': 1, 'b': 1, 'c': 1})
        assert sum(shares.values()) == 10 and max(shares.values()) == 4

    def test_zero_weights_and_zero_total(self):
        assert apportion(0, {'a': 1}) == {'a': 0}
        shares = apportion(9, {'a': 0, 'b': 0, 'unattributed': 0})
        assert shares == {'a': 0, 'b': 0, 'unattributed': 9}

    def test_deterministic(self):
        w = {'x': 1.1, 'y': 2.3, 'z': 0.6}
        assert apportion(17, w) == apportion(17, dict(w))


class TestHeatmap:
    def test_grid_render_and_dict(self):
        hm = Heatmap('t', 3, 2, unit='w')
        hm.add(0, 0, 10)
        hm.add(2, 1, 5)
        assert hm.peak() == 10 and hm.total() == 15
        text = hm.render()
        assert text.startswith('t  (peak 10 w)')
        assert '@' in text  # hottest cell uses the top ramp glyph
        d = hm.to_dict()
        assert d['cells'][0][0] == 10 and d['width'] == 3
        hm.clear()
        assert hm.total() == 0

    def test_link_heatmap_projects_routes(self):
        from repro.manycore.noc import route_xy
        lh = LinkHeatmap(4, 4)
        route = route_xy((0, 0), (3, 0))
        assert len(route) == 3  # three X hops
        lh.add_route(route, 2)
        lh.add_route(route_xy((3, 0), (0, 0)), 2)  # reverse folds in
        assert len(lh.links) == 3
        assert all(w == 4 for w in lh.links.values())
        grid = lh.to_grid()
        assert grid.cells[0][0] == 4  # endpoint of one link
        assert grid.cells[0][1] == 8  # interior node touches two links
        top = lh.top_links(2)
        assert len(top) == 2 and top[0]['words'] == 4
        # bank rows (y = -1 / height) stay off the tile grid
        lh2 = LinkHeatmap(2, 2)
        lh2.add_route(route_xy((0, 0), (0, -1)), 7)
        assert lh2.to_grid().cells[0][0] == 7
        assert lh2.to_grid().total() == 7


class TestSlo:
    def test_max_and_min_rules(self):
        policy = SloPolicy({'latency_p99': {'warn': 10, 'fail': 20},
                            'tile_utilization': {'warn': 0.5,
                                                 'kind': 'min'}})
        out = policy.evaluate({'latency_p99': 5, 'tile_utilization': 0.9})
        assert out['status'] == 'pass'
        out = policy.evaluate({'latency_p99': 15, 'tile_utilization': 0.9})
        assert out['status'] == 'warn'
        out = policy.evaluate({'latency_p99': 25, 'tile_utilization': 0.1})
        assert out['status'] == 'fail'
        assert {r['metric']: r['status'] for r in out['rules']} == {
            'latency_p99': 'fail', 'tile_utilization': 'warn'}
        text = render_slo(out)
        assert 'FAIL' in text and 'tile_utilization' in text

    def test_unknown_metric_and_empty_rule_rejected(self):
        with pytest.raises(ValueError):
            SloPolicy({'bogus': {'fail': 1}})
        with pytest.raises(ValueError):
            SloPolicy({'latency_p99': {}})
        with pytest.raises(ValueError):
            SloPolicy({'latency_p99': {'fail': 1, 'kind': 'median'}})

    def test_load_from_file(self, tmp_path):
        import json
        p = tmp_path / 'slo.json'
        p.write_text(json.dumps({'rejected': {'fail': 0}}))
        policy = SloPolicy.load(str(p))
        assert policy.evaluate({'rejected': 0})['status'] == 'pass'
        assert policy.evaluate({'rejected': 1})['status'] == 'fail'
