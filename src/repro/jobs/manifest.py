"""Resumable sweep manifests.

A manifest is the durable to-do list of one sweep: every job spec plus
its terminal status.  The engine saves it after each finished job, so an
interrupted sweep (Ctrl-C, OOM, machine reboot) can be resumed with only
the missing/failed points re-executed.

Keys are recomputed from the specs on load: if the code-version salt was
bumped since the manifest was written, the stored keys no longer match
and every such entry is reset to pending — the manifest invalidates
itself exactly like the result store does.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .engine import CACHED, DONE, JobOutcome
from .spec import CODE_VERSION, JobSpec

MANIFEST_SCHEMA_VERSION = 1
MANIFEST_KIND = 'repro-sweep-manifest'

_FINISHED = (DONE, CACHED)


class SweepManifest:
    """Ordered ``key -> {spec, status, ...}`` map with atomic persistence."""

    def __init__(self, name: str = 'sweep',
                 specs: Optional[Sequence[JobSpec]] = None,
                 path: Optional[Union[str, Path]] = None):
        self.name = name
        self.path = Path(path) if path is not None else None
        self.entries: Dict[str, dict] = {}
        for s in specs or ():
            self.add(s)

    def add(self, spec: JobSpec) -> str:
        key = spec.key()
        if key not in self.entries:
            self.entries[key] = {'spec': spec.to_dict(), 'status': 'pending',
                                 'attempts': 0, 'error': '', 'elapsed': 0.0}
        return key

    # ------------------------------------------------------------- queries
    def specs(self) -> List[JobSpec]:
        return [JobSpec.from_dict(e['spec']) for e in self.entries.values()]

    def pending(self) -> List[JobSpec]:
        """Specs still needing execution (anything not done/cached)."""
        return [JobSpec.from_dict(e['spec'])
                for e in self.entries.values()
                if e['status'] not in _FINISHED]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.entries.values():
            out[e['status']] = out.get(e['status'], 0) + 1
        return out

    def record(self, outcome: JobOutcome) -> None:
        entry = self.entries.setdefault(
            outcome.key, {'spec': outcome.spec.to_dict()})
        entry.update(status=outcome.status, attempts=outcome.attempts,
                     error=outcome.error, elapsed=round(outcome.elapsed, 3))

    # -------------------------------------------------------------- persist
    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError('manifest has no path')
        self.path = target
        doc = {
            'schema_version': MANIFEST_SCHEMA_VERSION,
            'kind': MANIFEST_KIND,
            'name': self.name,
            'code_version': CODE_VERSION,
            'jobs': self.entries,
        }
        tmp = target.with_name(f'.{target.name}.{os.getpid()}.tmp')
        with open(tmp, 'w') as f:
            json.dump(doc, f, indent=1)
        os.replace(tmp, target)
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> 'SweepManifest':
        with open(path) as f:
            doc = json.load(f)
        if doc.get('kind') != MANIFEST_KIND:
            raise ValueError(f'{path}: not a sweep manifest')
        if doc.get('schema_version') != MANIFEST_SCHEMA_VERSION:
            raise ValueError(f'{path}: manifest schema '
                             f'v{doc.get("schema_version")} unsupported')
        m = cls(name=doc.get('name', 'sweep'), path=path)
        for stored_key, entry in doc.get('jobs', {}).items():
            spec = JobSpec.from_dict(entry['spec'])
            key = spec.key()
            fresh = dict(entry, spec=spec.to_dict())
            if key != stored_key:
                # the code-version salt moved under this manifest: the old
                # result is unaddressable, so the point runs again.
                fresh.update(status='pending', attempts=0, error='',
                             elapsed=0.0)
            m.entries[key] = fresh
        return m
