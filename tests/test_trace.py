"""Tests for the instruction tracer."""

from repro.isa import Assembler, opcodes as op
from repro.manycore import Fabric, Tracer, small_config
from tests.conftest import run_single_core


def traced_run(body, **tracer_kw):
    fabric = Fabric(small_config())
    if not fabric.memory:
        fabric.alloc(64)
    tracer = Tracer(**tracer_kw).attach(fabric)
    a = Assembler()
    a.csrr('x1', op.CSR_COREID)
    a.beq('x1', 'x0', 'main')
    a.halt()
    a.bind('main')
    body(a)
    a.halt()
    fabric.load_program(a.finish())
    fabric.run()
    return tracer


class TestTracer:
    def test_records_issued_instructions(self):
        def body(a):
            a.li('x5', 3)
            a.addi('x5', 'x5', 1)

        tracer = traced_run(body, cores=[0])
        texts = [e.text for e in tracer.entries]
        assert 'li x5, 3' in texts
        assert 'addi x5, x5, 1' in texts

    def test_core_filter(self):
        def body(a):
            a.nop()

        tracer = traced_run(body, cores=[5])
        # core 5 only executes the dispatch prologue + halt
        assert all(e.core == 5 for e in tracer.entries)
        assert len(tracer.entries) >= 2

    def test_cycle_window(self):
        def body(a):
            for _ in range(20):
                a.nop()

        tracer = traced_run(body, cores=[0], start=5, stop=10)
        assert all(5 <= e.cycle < 10 for e in tracer.entries)

    def test_limit_drops_and_reports(self):
        def body(a):
            for _ in range(30):
                a.nop()

        tracer = traced_run(body, cores=[0], limit=10)
        assert len(tracer.entries) == 10
        assert tracer.dropped > 0
        assert 'dropped' in tracer.render()

    def test_filtered_counter_core_filter(self):
        def body(a):
            for _ in range(10):
                a.nop()

        tracer = traced_run(body, cores=[0])
        # other cores run the dispatch prologue: those records are filtered
        assert tracer.filtered > 0
        assert all(e.core == 0 for e in tracer.entries)
        assert f'{tracer.filtered} entries filtered' in tracer.render()

    def test_filtered_counter_cycle_window(self):
        def body(a):
            for _ in range(20):
                a.nop()

        tracer = traced_run(body, cores=[0], start=5, stop=10)
        assert tracer.filtered > 0
        assert 'filtered' in tracer.render()

    def test_unfiltered_run_reports_nothing(self):
        def body(a):
            a.nop()

        tracer = traced_run(body)
        assert tracer.filtered == 0
        assert 'filtered' not in tracer.render()

    def test_render_format(self):
        def body(a):
            a.li('x5', 1)

        tracer = traced_run(body, cores=[0])
        text = tracer.render()
        assert 'c00[I]' in text  # independent-mode marker

    def test_untraced_run_has_no_overhead_hook(self):
        fabric = Fabric(small_config())
        assert fabric.trace is None

    def test_traces_vector_lanes(self):
        from repro.core import GroupDescriptor
        from repro.kernels.codegen import pack_frame_cfg

        fabric = Fabric(small_config())
        out = fabric.alloc(8)
        tracer = Tracer().attach(fabric)
        handle = fabric.register_group(GroupDescriptor(0, [0, 1, 2]))
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.li('x2', 3)
        a.bge('x1', 'x2', 'off')
        a.li('x3', pack_frame_cfg(4, 8))
        a.csrw(op.CSR_FRAME_CFG, 'x3')
        a.li('x4', handle)
        a.beq('x1', 'x0', 'scalar')
        a.vconfig('x4')
        a.halt()
        a.bind('scalar')
        a.vconfig('x4')
        a.vissue('mt')
        a.devec('resume')
        a.bind('resume')
        a.barrier()
        a.halt()
        a.bind('off')
        a.halt()
        a.bind('mt')
        a.addi('x10', 'x10', 1)
        a.vend()
        fabric.load_program(a.finish())
        fabric.run()
        lane_entries = tracer.per_core(2)
        assert any('addi x10' in e.text for e in lane_entries)
        # lane executed the forwarded instruction in vector mode
        from repro.core.vgroup import ROLE_VECTOR
        modes = {e.mode for e in lane_entries if 'addi x10' in e.text}
        assert ROLE_VECTOR in modes
