"""Calibrate the analytical model against discrete-simulator ground truth.

The calibration suite sweeps each modeled kernel over a grid varying
group size (named vector configs), frame-counter depth and LLC bank
count; ground truth comes from a :mod:`repro.jobs` sweep, so it is
content-addressed, resumable, and ~free to re-run.  Per-kernel
coefficients are fitted by non-negative least squares over the
closed-form feature vectors, and the result — coefficients, per-kernel
median/worst absolute percentage error, every calibration point, and
code-version/machine-hash provenance — lands in a schema-checked
``CALIB_*.json`` so model drift is gated like any other regression.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness.configs import CONFIGS
from ..jobs.spec import JobSpec
from ..manycore.config import DEFAULT_CONFIG, MachineConfig
from .analytic import (FEATURES, ModelError, compute_features,
                       estimate_energy_pj)
from .workload import build_workload

CALIB_SCHEMA_VERSION = 1
CALIB_KIND = 'repro-calib-report'

#: One kernel per template family is the minimum; the default suite
#: covers all three families with depth.
DEFAULT_KERNELS: Tuple[str, ...] = ('gemm', 'syrk', 'mvt', 'atax',
                                    'gesummv', '2dconv', 'fdtd-2d')
SMOKE_KERNELS: Tuple[str, ...] = ('gemm', 'mvt', '2dconv')

DEFAULT_CONFIGS: Tuple[str, ...] = ('V4', 'V16')
DEFAULT_DEPTHS: Tuple[int, ...] = (4, 5, 8)
DEFAULT_BANKS: Tuple[int, ...] = (4, 16)
#: One-factor-at-a-time excursions so the fit sees the marginal
#: sensitivity of the NoC-width and DRAM-bandwidth knobs — without them
#: those features are constant across the grid and the fitted
#: coefficients extrapolate badly during DSE.
DEFAULT_NOCS: Tuple[int, ...] = (2, 8)
DEFAULT_DRAMS: Tuple[float, ...] = (2.0, 8.0)


# ------------------------------------------------------------------- planning
def calibration_specs(kernels: Sequence[str] = DEFAULT_KERNELS,
                      scale: str = 'test',
                      configs: Sequence[str] = DEFAULT_CONFIGS,
                      depths: Sequence[int] = DEFAULT_DEPTHS,
                      banks: Sequence[int] = DEFAULT_BANKS,
                      nocs: Sequence[int] = DEFAULT_NOCS,
                      drams: Sequence[float] = DEFAULT_DRAMS,
                      base_machine: MachineConfig = DEFAULT_CONFIG,
                      ) -> List[JobSpec]:
    """The ground-truth job set: a kernels x configs x depths x banks
    grid plus per-config NoC-width and DRAM-bandwidth excursions."""
    for c in configs:
        if c not in CONFIGS or CONFIGS[c].kind != 'vector':
            raise ValueError(f'calibration config {c!r} must be a concrete '
                             f'vector config')
    specs = []
    for k in kernels:
        for cfg_name in configs:
            for d in depths:
                for b in banks:
                    machine = base_machine.scaled(frame_counters=d,
                                                  llc_banks=b)
                    specs.append(JobSpec.make(k, cfg_name, scale=scale,
                                              machine=machine))
            for noc in nocs:
                machine = base_machine.scaled(noc_width_words=noc)
                specs.append(JobSpec.make(k, cfg_name, scale=scale,
                                          machine=machine))
            for dram in drams:
                machine = base_machine.scaled(
                    dram_bandwidth_words_per_cycle=dram)
                specs.append(JobSpec.make(k, cfg_name, scale=scale,
                                          machine=machine))
    return specs


# -------------------------------------------------------------------- fitting
def fit_coefficients(X: Sequence[Sequence[float]],
                     y: Sequence[float]) -> List[float]:
    """Non-negative least squares via iterated clip-and-refit.

    Solves ordinary least squares on the active feature set, drops the
    most negative coefficient while any is negative, and refits.
    Deterministic: same inputs give bit-identical coefficients.
    """
    import numpy as np
    Xa = np.asarray(X, dtype=float)
    ya = np.asarray(y, dtype=float)
    n_feat = Xa.shape[1]
    active = list(range(n_feat))
    coeffs = np.zeros(n_feat)
    while active:
        sol, *_ = np.linalg.lstsq(Xa[:, active], ya, rcond=None)
        if (sol >= 0).all():
            for idx, v in zip(active, sol):
                coeffs[idx] = v
            break
        worst = int(np.argmin(sol))
        active.pop(worst)
    return [float(v) for v in coeffs]


def _ape(predicted: float, actual: float) -> float:
    """Absolute percentage error, in percent."""
    if actual == 0:
        return 0.0 if predicted == 0 else 100.0
    return abs(predicted - actual) / abs(actual) * 100.0


def _median(values: Sequence[float]) -> float:
    vs = sorted(values)
    n = len(vs)
    if not n:
        return 0.0
    mid = n // 2
    return vs[mid] if n % 2 else (vs[mid - 1] + vs[mid]) / 2.0


# ---------------------------------------------------------------- calibration
def run_calibration(outcomes, label: str = 'local',
                    suite: Optional[dict] = None) -> dict:
    """Fit coefficients from sweep outcomes; returns the CALIB document.

    ``outcomes`` are the :class:`~repro.jobs.engine.JobOutcome`\\ s of a
    :func:`calibration_specs` sweep.  Failed outcomes raise — a
    calibration over partial ground truth would silently skew the fit.
    """
    bad = [o for o in outcomes if not o.ok]
    if bad:
        raise ModelError(
            f'{len(bad)} calibration job(s) failed; first: '
            f'{bad[0].spec.label()}: {bad[0].error.strip().splitlines()[-1] if bad[0].error else bad[0].status}')
    per_kernel: Dict[str, List[Tuple[JobSpec, object]]] = {}
    for o in outcomes:
        per_kernel.setdefault(o.spec.benchmark, []).append((o.spec, o.result))

    coefficients: Dict[str, Dict[str, float]] = {}
    energy_scale: Dict[str, float] = {}
    errors: Dict[str, dict] = {}
    points: List[dict] = []
    all_apes: List[float] = []
    for kernel in sorted(per_kernel):
        rows: List[List[float]] = []
        cycles: List[float] = []
        metas = []
        for spec, result in per_kernel[kernel]:
            machine = _spec_machine(spec)
            cfg = CONFIGS[spec.config]
            eff = cfg.machine(machine)
            wl = build_workload(kernel, _spec_params(spec), eff,
                                cfg.lanes, cfg.pcv)
            feats = compute_features(wl, eff)
            rows.append([feats[f] for f in FEATURES])
            cycles.append(float(result.cycles))
            metas.append((spec, result, feats, wl, eff))
        coeffs = fit_coefficients(rows, cycles)
        coefficients[kernel] = {f: c for f, c in zip(FEATURES, coeffs)}
        ratios = []
        apes = []
        for (spec, result, feats, wl, eff), row, actual in \
                zip(metas, rows, cycles):
            predicted = sum(c * v for c, v in zip(coeffs, row))
            ape = _ape(predicted, actual)
            apes.append(ape)
            all_apes.append(ape)
            pred_e = estimate_energy_pj(wl, eff)
            sim_e = getattr(result, 'energy', None)
            if pred_e > 0 and sim_e is not None:
                ratios.append(sim_e.on_chip_total / pred_e)
            points.append({
                'benchmark': kernel,
                'config': spec.config,
                'machine': {'frame_counters': eff.frame_counters,
                            'llc_banks': eff.llc_banks,
                            'noc_width_words': eff.noc_width_words},
                'simulated_cycles': int(actual),
                'predicted_cycles': round(float(predicted), 3),
                'ape_pct': round(ape, 3),
            })
        energy_scale[kernel] = round(_median(ratios), 6) if ratios else 1.0
        errors[kernel] = {
            'n_points': len(apes),
            'median_ape_pct': round(_median(apes), 3),
            'worst_ape_pct': round(max(apes), 3) if apes else 0.0,
        }
    doc = build_calib_report(
        coefficients=coefficients, energy_scale=energy_scale,
        errors=errors, points=points,
        overall={'n_points': len(all_apes),
                 'median_ape_pct': round(_median(all_apes), 3),
                 'worst_ape_pct': round(max(all_apes), 3) if all_apes
                 else 0.0},
        label=label, suite=suite or {})
    validate_calib_report(doc)
    return doc


def _spec_machine(spec: JobSpec) -> MachineConfig:
    m = spec.machine_config()
    return m if m is not None else DEFAULT_CONFIG


def _spec_params(spec: JobSpec) -> Dict[str, int]:
    from ..kernels import registry
    bench = registry.make(spec.benchmark)
    params = bench.params_for('test' if spec.scale == 'test' else 'bench')
    params.update(spec.params_dict())
    return params


# ------------------------------------------------------------------- artifact
CALIB_SCHEMA = {
    'type': 'object',
    'required': ['schema_version', 'kind', 'label', 'generated',
                 'provenance', 'suite', 'coefficients', 'energy_scale',
                 'errors', 'overall', 'points'],
    'properties': {
        'schema_version': {'type': 'integer',
                           'enum': [CALIB_SCHEMA_VERSION]},
        'kind': {'type': 'string', 'enum': [CALIB_KIND]},
        'label': {'type': 'string'},
        'generated': {'type': 'object'},
        'provenance': {
            'type': 'object',
            'required': ['code_version', 'code_version_hash',
                         'machine_hash'],
            'properties': {
                'code_version': {'type': 'integer'},
                'code_version_hash': {'type': 'string'},
                'machine_hash': {'type': 'string'},
            },
        },
        'suite': {'type': 'object'},
        'coefficients': {'type': 'object'},
        'energy_scale': {'type': 'object'},
        'errors': {'type': 'object'},
        'overall': {
            'type': 'object',
            'required': ['n_points', 'median_ape_pct', 'worst_ape_pct'],
            'properties': {
                'n_points': {'type': 'integer', 'minimum': 0},
                'median_ape_pct': {'type': 'number', 'minimum': 0},
                'worst_ape_pct': {'type': 'number', 'minimum': 0},
            },
        },
        'points': {
            'type': 'array',
            'items': {
                'type': 'object',
                'required': ['benchmark', 'config', 'machine',
                             'simulated_cycles', 'predicted_cycles',
                             'ape_pct'],
                'properties': {
                    'benchmark': {'type': 'string'},
                    'config': {'type': 'string'},
                    'machine': {'type': 'object'},
                    'simulated_cycles': {'type': 'integer', 'minimum': 0},
                    'predicted_cycles': {'type': 'number', 'minimum': 0},
                    'ape_pct': {'type': 'number', 'minimum': 0},
                },
            },
        },
    },
}


class CalibValidationError(ValueError):
    pass


def validate_calib_report(doc: dict) -> None:
    from ..telemetry.report import check_schema
    errors = check_schema(doc, CALIB_SCHEMA)
    if errors:
        raise CalibValidationError('; '.join(errors[:20]))
    for kernel, coeffs in doc['coefficients'].items():
        missing = [f for f in FEATURES if f not in coeffs]
        if missing:
            raise CalibValidationError(
                f'coefficients[{kernel}] missing feature(s): '
                f'{", ".join(missing)}')


def build_calib_report(coefficients: dict, energy_scale: dict, errors: dict,
                       overall: dict, points: List[dict],
                       label: str = 'local',
                       suite: Optional[dict] = None) -> dict:
    from ..jobs.spec import CODE_VERSION, code_version_hash, machine_hash
    from ..telemetry.report import _generated
    return {
        'schema_version': CALIB_SCHEMA_VERSION,
        'kind': CALIB_KIND,
        'label': label,
        'generated': _generated(),
        'provenance': {
            'code_version': CODE_VERSION,
            'code_version_hash': code_version_hash(),
            'machine_hash': machine_hash(DEFAULT_CONFIG),
        },
        'suite': suite or {},
        'coefficients': coefficients,
        'energy_scale': energy_scale,
        'errors': errors,
        'overall': overall,
        'points': points,
    }


def calib_path(label: str, directory: str = '.') -> str:
    """Canonical artifact name: ``CALIB_<label>.json``."""
    safe = ''.join(c if c.isalnum() or c in '-_.' else '-' for c in label)
    return os.path.join(directory, f'CALIB_{safe}.json')


def save_calib_report(doc: dict, path: str) -> str:
    validate_calib_report(doc)
    tmp = f'{path}.tmp'
    with open(tmp, 'w') as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write('\n')
    os.replace(tmp, path)
    return path


def load_calib_report(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    validate_calib_report(doc)
    return doc


def render_calib_report(doc: dict) -> str:
    prov = doc['provenance']
    lines = [
        f"calibration {doc['label']} "
        f"(code v{prov['code_version']} "
        f"[{prov['code_version_hash'][:8]}], "
        f"machine {prov['machine_hash'][:8]})",
        f"  {doc['overall']['n_points']} point(s), "
        f"median APE {doc['overall']['median_ape_pct']:.1f}%, "
        f"worst {doc['overall']['worst_ape_pct']:.1f}%",
    ]
    for kernel in sorted(doc['errors']):
        e = doc['errors'][kernel]
        lines.append(f"  {kernel:10s} n={e['n_points']:<3d} "
                     f"median {e['median_ape_pct']:6.1f}%  "
                     f"worst {e['worst_ape_pct']:6.1f}%")
    return '\n'.join(lines)
