"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available benchmarks and configurations.
``run BENCH CONFIG [--scale test|bench]``
    Simulate one point, verify against numpy, print cycles/energy.
``figure NAME``
    Regenerate one paper figure (fig10a, fig10b, fig10c, fig11, fig14a,
    fig15c, fig16, fig17a, bfs).
``experiment FILE.json``
    Run a JSON experiment description (see harness/experiments.py and
    examples/experiments/).
"""

from __future__ import annotations

import argparse
import sys


def cmd_list(args):
    from .harness.configs import CONFIGS, META_CONFIGS
    from .kernels import registry
    print('benchmarks:')
    for cls in registry.ALL:
        b = cls()
        print(f'  {b.name:10s} bench={b.bench_params}')
    print('configurations:')
    for name in CONFIGS:
        print(f'  {name}')
    for name in META_CONFIGS:
        print(f'  {name} (meta)')
    return 0


def cmd_run(args):
    from .harness import run_benchmark
    from .kernels import registry
    bench = registry.make(args.benchmark)
    params = bench.params_for(args.scale)
    r = run_benchmark(bench, args.config, params)
    print(f'{bench.name} / {r.config}  params={params}')
    print(f'  cycles        {r.cycles}')
    print(f'  instructions  {r.instrs}')
    print(f'  icache        {r.icache_accesses}')
    if r.energy is not None:
        print(f'  energy        {r.energy.on_chip_total / 1e6:.3f} uJ '
              f'on-chip (+{r.energy.dram / 1e6:.3f} uJ DRAM)')
    print('  verified against the numpy reference')
    return 0


FIGURES = {
    'fig10a': 'fig10a_speedup', 'fig10b': 'fig10b_icache',
    'fig10c': 'fig10c_energy', 'fig11': 'fig11_scalability',
    'fig14a': 'fig14a_speedup', 'fig14b': 'fig14b_icache',
    'fig14c': 'fig14c_energy', 'fig15c': 'fig15c_frame_stalls',
    'fig16': 'fig16_vector_lengths', 'fig17a': 'fig17a_miss_rate',
    'fig17b': 'fig17b_llc_capacity', 'fig17c': 'fig17c_noc_width',
    'bfs': 'bfs_irregular',
}


def cmd_figure(args):
    from .harness import figures as F
    fn = getattr(F, FIGURES[args.name])
    cache = F.ResultCache(scale=args.scale)
    series = fn(cache)
    print(series.render())
    return 0


def cmd_experiment(args):
    from .harness.experiments import run_experiment
    result = run_experiment(args.file)
    print(result.render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog='repro',
        description='Rockcress (MICRO 2021) reproduction CLI')
    sub = parser.add_subparsers(dest='command', required=True)

    sub.add_parser('list', help='show benchmarks and configurations')

    p = sub.add_parser('run', help='simulate one benchmark/configuration')
    p.add_argument('benchmark')
    p.add_argument('config')
    p.add_argument('--scale', choices=('test', 'bench'), default='bench')

    p = sub.add_parser('figure', help='regenerate one paper figure')
    p.add_argument('name', choices=sorted(FIGURES))
    p.add_argument('--scale', choices=('test', 'bench'), default='bench')

    p = sub.add_parser('experiment', help='run a JSON experiment file')
    p.add_argument('file')

    args = parser.parse_args(argv)
    return {'list': cmd_list, 'run': cmd_run, 'figure': cmd_figure,
            'experiment': cmd_experiment}[args.command](args)


if __name__ == '__main__':
    sys.exit(main())
