"""gemm: C = alpha*A.B + beta*C (paper Table 2, 256x256 inputs).

Algorithm opt (paper): tiled outer product; each lane owns FLEN columns of
an output row and the scalar core streams rows of B with GROUP loads while
broadcasting A[i][k] chunks with SINGLE loads.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_matmul_like
from .vector_templates import MatTerm, emit_matmul_like

ALPHA = 1.5
BETA = 1.2


class Gemm(Benchmark):
    name = 'gemm'
    test_params = {'ni': 8, 'nj': 16, 'nk': 8}
    bench_params = {'ni': 32, 'nj': 32, 'nk': 24}

    def setup(self, fabric: Fabric, params: Dict[str, int]) -> Workspace:
        ni, nj, nk = params['ni'], params['nj'], params['nk']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((ni, nk)))
        self.alloc_np(fabric, ws, 'B', g.random((nk, nj)))
        self.alloc_np(fabric, ws, 'C', g.random((ni, nj)))
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        c = refs.gemm(ws.inputs['A'], ws.inputs['B'], ws.inputs['C'],
                      ALPHA, BETA)
        return {'C': c}

    def _terms(self, ws: Workspace, params):
        nj, nk = params['nj'], params['nk']
        return [MatTerm(bcast_base=ws.base('A'), bcast_stride=nk,
                        group_base=ws.base('B'), group_stride=nj)]

    def build_mimd(self, fabric: Fabric, ws: Workspace, params, *,
                   prefetch: bool, pcv: bool = False) -> Program:
        ni, nj, nk = params['ni'], params['nj'], params['nk']
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: mimd_matmul_like(
            a, ni=ni, nj=nj, nk=nk, terms=self._terms(ws, params),
            out_base=ws.base('C'), out_stride=nj, alpha=ALPHA, beta=BETA,
            cfg=fabric.cfg, prefetch=prefetch, pcv=pcv,
            kb=min(4, nk)))
        return mb.build()

    def build_vector(self, fabric: Fabric, ws: Workspace, params,
                     vp: VectorParams) -> Program:
        ni, nj, nk = params['ni'], params['nj'], params['nk']
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        flen, pcv = self.fitted_flen(fabric, vp.lanes, vp.pcv, nj, ni=ni)
        emit_matmul_like(
            p, name='gemm', ni=ni, nj=nj, nk=nk,
            terms=self._terms(ws, params), out_base=ws.base('C'),
            out_stride=nj, alpha=ALPHA, beta=BETA, kb=min(4, nk),
            flen=flen, pcv=pcv)
        return p.finish()

    def frame_size_for(self, fabric: Fabric, lanes: int, pcv: bool) -> int:
        flen = self.flen_for(fabric, lanes, pcv)
        kb = 4
        return kb * flen + kb

    def mt_body_estimate(self, params, lanes: int) -> int:
        flen = 16 // lanes if lanes <= 16 else 1
        return 4 * (1 + 2 * flen) + 3
