"""FleetFlight: the router-side collector tying the layer together.

One :class:`FleetFlight` instance rides along a
:class:`~repro.fleet.FleetRouter` run (``FleetRouter(..., flight=...)``)
and turns routing decisions into the three flight artifacts:

* **spans** — every request's life as a tree (root ``request`` span on
  the router track; per-attempt queue waits, reroute gaps, shard
  execution windows, and causal phase leaves), written as a flight
  journal and mergeable into one Perfetto trace;
* **events** — the black-box ring (:class:`FlightRecorder`), including
  events synthesized *inside* shard workers and shipped back over the
  wire protocol (rebased from shard-local to global cycles);
* **post-mortems** — dumped automatically on the crash/deadlock
  triggers as they happen (and on SLO-fail by the CLI after the run's
  report is evaluated), each correlating the ring, recent metric
  snapshots, and the spans still open at the trigger instant.

Everything here is host-side bookkeeping over numbers the router
already computed: no fabric event is ever posted, so simulated cycle
counts and output digests are bit-identical with flight on or off —
the same discipline (and the same enforcement tests) as the observe
plane.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from .anomaly import AnomalyDetector, feed_fleet_epoch
from .postmortem import (build_postmortem, postmortem_path,
                         save_postmortem)
from .recorder import FlightRecorder
from .spans import (KIND_PHASE, KIND_REQUEST, KIND_REROUTE_WAIT,
                    KIND_ROUTER_QUEUE, KIND_SHARD_EXEC, TRACK_ROUTER,
                    make_span, shard_track, write_journal)

#: phase order for laying breakdown leaves end to end (matches
#: repro.observe.rtrace.BREAKDOWN_PHASES)
_PHASE_ORDER = ('queue', 'launch', 'execute', 'frame_stall', 'llc',
                'inet', 'unattributed')


def _trace_id(req) -> str:
    return req.trace_id if req.trace_id is not None \
        else f'req-{req.req_id}'


class FleetFlight:
    """Collects spans, events, anomalies, and post-mortems for one run."""

    def __init__(self, label: str = 'fleet', out_dir: str = '.',
                 ring_capacity: int = 256,
                 detector: Optional[AnomalyDetector] = None,
                 shard_metrics_dir: Optional[str] = None,
                 snapshot_interval: int = 5000):
        self.label = label
        self.out_dir = out_dir
        self.shard_metrics_dir = shard_metrics_dir
        self.snapshot_interval = snapshot_interval
        self.recorder = FlightRecorder(capacity=ring_capacity,
                                       source='router')
        self.detector = detector if detector is not None \
            else AnomalyDetector()
        self.spans: List[dict] = []
        self.postmortems: List[dict] = []  # {'trigger','path','t'}
        self._queue_since: Dict[int, int] = {}   # req_id -> enqueue t
        self._open_exec: Dict[int, dict] = {}    # req_id -> open span
        self._slo_status: Optional[str] = None
        self._last_util: Optional[float] = None

    # ------------------------------------------------------------ router hooks
    def on_admit(self, entry, t: int) -> None:
        req = entry.req
        self.recorder.record('admit', t, req_id=req.req_id,
                             trace_id=_trace_id(req), kernel=req.kernel,
                             priority=req.priority, arrival=req.arrival)
        # the queue wait is measured from arrival, not from the epoch
        # boundary that happened to pull the request off the stream
        self._queue_since[req.req_id] = req.arrival

    def on_reject(self, entry, t: int) -> None:
        req = entry.req
        tid = _trace_id(req)
        self.recorder.record('reject', t, req_id=req.req_id,
                             trace_id=tid, kernel=req.kernel,
                             reason='router queue at cap')
        self.spans.append(make_span(
            tid, f'{tid}/q1', 'router.reject', KIND_ROUTER_QUEUE,
            TRACK_ROUTER, req.arrival, t, parent_id=f'{tid}/root',
            attrs={'req_id': req.req_id, 'rejected': True}))

    def on_dispatch(self, sh, entries, t: int, epoch: int,
                    crash: bool) -> None:
        self.recorder.record('dispatch', t, shard=sh.shard_id,
                             epoch=epoch, requests=len(entries),
                             crash_injected=crash)
        for entry in entries:
            req = entry.req
            tid = _trace_id(req)
            n = entry.attempts  # already bumped for this dispatch
            since = self._queue_since.pop(req.req_id, req.arrival)
            kind = KIND_ROUTER_QUEUE if n == 1 else KIND_REROUTE_WAIT
            name = 'router.queue' if n == 1 else 'router.requeue'
            self.spans.append(make_span(
                tid, f'{tid}/q{n}', name, kind, TRACK_ROUTER, since, t,
                parent_id=f'{tid}/root',
                attrs={'req_id': req.req_id, 'attempt': n,
                       'shard': sh.shard_id}))
            self._open_exec[req.req_id] = make_span(
                tid, f'{tid}/x{n}', f'shard{sh.shard_id}.exec',
                KIND_SHARD_EXEC, shard_track(sh.shard_id), t, None,
                parent_id=f'{tid}/root',
                attrs={'req_id': req.req_id, 'attempt': n,
                       'shard': sh.shard_id})

    def on_batch_done(self, sh, info: dict, doc: dict,
                      epoch: int) -> None:
        dispatch = info['dispatched_at']
        makespan = doc['makespan']
        summary = doc['report']['summary']
        self._last_util = summary.get('tile_utilization')
        self.recorder.record('batch_done', dispatch + makespan,
                             shard=sh.shard_id, epoch=info['epoch'],
                             requests=len(info['entries']),
                             makespan=makespan,
                             tile_utilization=self._last_util)
        # shard-local flight events arrive in local cycles; rebase
        events = doc.get('flight_events')
        if events:
            rebased = []
            for ev in events:
                ev = dict(ev, t=dispatch + ev.get('t', 0))
                rebased.append(ev)
            self.recorder.ingest(rebased)
            for ev in rebased:
                if ev['kind'] == 'deadlock':
                    self.dump_postmortem(
                        'deadlock', ev.get('detail',
                                           'deadlock in shard worker'),
                        ev['t'])
        for rec in doc['report']['requests']:
            span = self._open_exec.pop(rec['req_id'], None)
            if span is None:
                continue
            local_end = rec.get('finished_at')
            end = dispatch + (local_end if local_end is not None
                              else makespan)
            span['end'] = end
            span.setdefault('attrs', {})['state'] = rec['state']
            self.spans.append(span)
            bd = rec.get('breakdown')
            if bd:
                # phase leaves tile the exec window exactly: the
                # in-shard conservation invariant says they sum to the
                # local latency, which is this span's width
                at = dispatch
                for i, phase in enumerate(_PHASE_ORDER):
                    width = bd.get(phase, 0)
                    if not width:
                        continue
                    self.spans.append(make_span(
                        span['trace_id'],
                        f'{span["span_id"]}.p{i}', phase, KIND_PHASE,
                        span['track'], at, at + width,
                        parent_id=span['span_id']))
                    at += width

    def on_crash(self, sh, inflight_entries, backlog_entries,
                 t: int, epoch: int) -> None:
        self.recorder.record('crash', t, shard=sh.shard_id, epoch=epoch,
                             inflight=len(inflight_entries),
                             backlog=len(backlog_entries))
        for entry in inflight_entries:
            span = self._open_exec.pop(entry.req.req_id, None)
            if span is None:
                continue
            span['end'] = t
            span.setdefault('attrs', {})['crashed'] = True
            self.spans.append(span)

    def on_reroute(self, entry, sh, t: int) -> None:
        req = entry.req
        self.recorder.record('reroute', t, req_id=req.req_id,
                             trace_id=_trace_id(req),
                             from_shard=sh.shard_id,
                             attempt=entry.attempts)
        # in-flight victims start a fresh wait at the crash boundary;
        # undispatched backlog orphans keep their already-open wait (a
        # second setdefault must not shorten it)
        self._queue_since.setdefault(req.req_id, t)

    def on_reroute_exhausted(self, entry, sh, t: int) -> None:
        req = entry.req
        tid = _trace_id(req)
        self.recorder.record('reroute_exhausted', t, req_id=req.req_id,
                             trace_id=tid, from_shard=sh.shard_id,
                             attempts=entry.attempts)
        since = self._queue_since.pop(req.req_id, None)
        if since is not None:
            self.spans.append(make_span(
                tid, f'{tid}/q{entry.attempts + 1}', 'router.abandon',
                KIND_REROUTE_WAIT, TRACK_ROUTER, since, t,
                parent_id=f'{tid}/root', attrs={'req_id': req.req_id}))

    def on_replace(self, event: dict, t: int) -> None:
        self.recorder.record('replace', t, **{
            k: event[k] for k in ('epoch', 'reason', 'shards_before',
                                  'shards_after') if k in event})

    def on_autoscale(self, event: dict, t: int) -> None:
        self.recorder.record('autoscale', t, **{
            k: event[k] for k in ('epoch', 'action', 'reason',
                                  'shards_before', 'shards_after',
                                  'latency_p99', 'tile_utilization')
            if k in event})

    def on_epoch(self, row: dict) -> None:
        """Clock the detector off one epoch-log row (the same snapshot
        the JSONL sink sees) and remember it for post-mortem context."""
        t = row['cycle']
        self.recorder.record_snapshot(t, row.get('metrics', {}))
        for ev in feed_fleet_epoch(self.detector, row, self._last_util):
            self.recorder.record('anomaly', ev['t'], **{
                k: v for k, v in ev.items() if k != 't'})

    def on_slo(self, status: str, t: int, detail: str = '') -> None:
        """Record a transition whenever the SLO status changes."""
        if status == self._slo_status:
            return
        self.recorder.record('slo_transition', t,
                             status=status, previous=self._slo_status,
                             detail=detail)
        self._slo_status = status

    # -------------------------------------------------------------- finalize
    def finalize(self, entries, final_cycle: int) -> None:
        """Close dangling spans and mint every request's root span."""
        for req_id, span in sorted(self._open_exec.items()):
            span['end'] = final_cycle
            span.setdefault('attrs', {})['stranded'] = True
            self.spans.append(span)
        self._open_exec.clear()
        for entry in entries:
            req = entry.req
            tid = _trace_id(req)
            since = self._queue_since.pop(req.req_id, None)
            if since is not None:
                self.spans.append(make_span(
                    tid, f'{tid}/q{entry.attempts + 1}',
                    'router.stranded', KIND_ROUTER_QUEUE, TRACK_ROUTER,
                    since, final_cycle, parent_id=f'{tid}/root',
                    attrs={'req_id': req.req_id}))
            rec = entry.record or {}
            end = rec.get('finished_at')
            if end is None:
                end = final_cycle
            attrs = {'req_id': req.req_id, 'kernel': req.kernel,
                     'state': entry.state, 'attempts': entry.attempts,
                     'rerouted': entry.rerouted}
            if entry.shard is not None:
                attrs['shard'] = entry.shard
            self.spans.append(make_span(
                tid, f'{tid}/root', f'req{req.req_id}:{req.kernel}',
                KIND_REQUEST, TRACK_ROUTER, req.arrival, end,
                attrs=attrs))

    # ------------------------------------------------------------- artifacts
    def journal_path(self) -> str:
        safe = ''.join(c if c.isalnum() or c in '-_' else '_'
                       for c in self.label)
        return os.path.join(self.out_dir, f'FLIGHT_{safe}.jsonl')

    def write_journal(self, path: Optional[str] = None) -> str:
        path = path if path is not None else self.journal_path()
        write_journal(path, self.spans, self.detector.anomalies,
                      label=self.label)
        return path

    def inflight_spans(self) -> List[dict]:
        """Spans open right now (post-mortem ``inflight`` section)."""
        out = [dict(span) for _, span in sorted(self._open_exec.items())]
        return out

    def dump_postmortem(self, trigger: str, detail: str,
                        t: int) -> str:
        doc = build_postmortem(
            self.recorder, self.label, trigger, detail, t,
            inflight=self.inflight_spans(),
            anomalies=self.detector.anomalies)
        path = postmortem_path(self.label, trigger, self.out_dir)
        save_postmortem(doc, path)
        self.postmortems.append({'trigger': trigger, 'path': path,
                                 't': int(t)})
        return path
