"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available benchmarks and configurations.
``run BENCH CONFIG [--scale test|bench] [--report OUT.json]
[--trace OUT.json]``
    Simulate one point, verify against numpy, print cycles/energy.
    ``--report`` enables telemetry and writes the schema-checked run
    report; ``--trace`` writes a Perfetto-loadable Chrome trace.
``figure NAME``
    Regenerate one paper figure (fig10a, fig10b, fig10c, fig11, fig14a,
    fig15c, fig16, fig17a, bfs).
``experiment FILE.json``
    Run a JSON experiment description (see harness/experiments.py and
    examples/experiments/).
``report FILE.json``
    Validate a run report against the schema and print its summary
    (CPI stack, histograms, sample count).
``compare A.json B.json [--threshold 0.02]``
    Diff two run reports; exits nonzero when B regresses cycles (or any
    stall cause) beyond the threshold.
"""

from __future__ import annotations

import argparse
import sys


def cmd_list(args):
    from .harness.configs import CONFIGS, META_CONFIGS
    from .kernels import registry
    print('benchmarks:')
    for cls in registry.ALL:
        b = cls()
        print(f'  {b.name:10s} bench={b.bench_params}')
    print('configurations:')
    for name in CONFIGS:
        print(f'  {name}')
    for name in META_CONFIGS:
        print(f'  {name} (meta)')
    return 0


def cmd_run(args):
    from .harness import run_benchmark
    from .kernels import registry
    bench = registry.make(args.benchmark)
    params = bench.params_for(args.scale)
    telemetry = tracer = None
    if args.report or args.trace:
        from .telemetry import Telemetry
        telemetry = Telemetry(sample_interval=args.sample_interval,
                              per_core_samples=args.per_core_samples)
    if args.trace:
        from .manycore import Tracer
        tracer = Tracer(limit=args.trace_limit)
    r = run_benchmark(bench, args.config, params, telemetry=telemetry,
                      tracer=tracer)
    print(f'{bench.name} / {r.config}  params={params}')
    print(f'  cycles        {r.cycles}')
    print(f'  instructions  {r.instrs}')
    print(f'  icache        {r.icache_accesses}')
    if r.energy is not None:
        print(f'  energy        {r.energy.on_chip_total / 1e6:.3f} uJ '
              f'on-chip (+{r.energy.dram / 1e6:.3f} uJ DRAM)')
    print('  verified against the numpy reference')
    if args.report:
        r.to_json(args.report)
        print(f'  report        {args.report} (schema-valid)')
    if args.trace:
        from .telemetry import write_chrome_trace
        doc = write_chrome_trace(args.trace, tracer=tracer,
                                 telemetry=telemetry)
        print(f'  trace         {args.trace} '
              f'({len(doc["traceEvents"])} events; load in '
              f'ui.perfetto.dev)')
    return 0


def cmd_report(args):
    from .telemetry import ReportValidationError, load_report, render_report
    try:
        doc = load_report(args.file)
    except ReportValidationError as exc:
        print(f'{args.file}: INVALID report: {exc}', file=sys.stderr)
        return 1
    print(render_report(doc))
    return 0


def cmd_compare(args):
    from .telemetry import ReportValidationError, compare_reports, load_report
    try:
        a = load_report(args.a)
        b = load_report(args.b)
    except ReportValidationError as exc:
        print(f'invalid report: {exc}', file=sys.stderr)
        return 1
    text, regressed = compare_reports(a, b, threshold=args.threshold)
    print(text)
    return 2 if regressed else 0


FIGURES = {
    'fig10a': 'fig10a_speedup', 'fig10b': 'fig10b_icache',
    'fig10c': 'fig10c_energy', 'fig11': 'fig11_scalability',
    'fig14a': 'fig14a_speedup', 'fig14b': 'fig14b_icache',
    'fig14c': 'fig14c_energy', 'fig15c': 'fig15c_frame_stalls',
    'fig16': 'fig16_vector_lengths', 'fig17a': 'fig17a_miss_rate',
    'fig17b': 'fig17b_llc_capacity', 'fig17c': 'fig17c_noc_width',
    'bfs': 'bfs_irregular',
}


def cmd_figure(args):
    from .harness import figures as F
    fn = getattr(F, FIGURES[args.name])
    cache = F.ResultCache(scale=args.scale)
    series = fn(cache)
    print(series.render())
    return 0


def cmd_experiment(args):
    from .harness.experiments import run_experiment
    result = run_experiment(args.file)
    print(result.render())
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog='repro',
        description='Rockcress (MICRO 2021) reproduction CLI')
    sub = parser.add_subparsers(dest='command', required=True)

    sub.add_parser('list', help='show benchmarks and configurations')

    p = sub.add_parser('run', help='simulate one benchmark/configuration')
    p.add_argument('benchmark')
    p.add_argument('config')
    p.add_argument('--scale', choices=('test', 'bench'), default='bench')
    p.add_argument('--report', metavar='OUT.json',
                   help='enable telemetry; write the run-report artifact')
    p.add_argument('--trace', metavar='OUT.json',
                   help='enable telemetry + tracing; write a Perfetto '
                        '(Chrome trace-event) JSON')
    p.add_argument('--sample-interval', type=int, default=1000,
                   metavar='N', help='cycles between interval samples '
                                     '(default 1000; 0 disables sampling)')
    p.add_argument('--per-core-samples', action='store_true',
                   help='record per-core stall deltas in every sample')
    p.add_argument('--trace-limit', type=int, default=200_000,
                   help='max traced instructions (default 200000)')

    p = sub.add_parser('figure', help='regenerate one paper figure')
    p.add_argument('name', choices=sorted(FIGURES))
    p.add_argument('--scale', choices=('test', 'bench'), default='bench')

    p = sub.add_parser('experiment', help='run a JSON experiment file')
    p.add_argument('file')

    p = sub.add_parser('report', help='validate + summarize a run report')
    p.add_argument('file')

    p = sub.add_parser('compare', help='diff two run reports; nonzero '
                                       'exit on regression')
    p.add_argument('a')
    p.add_argument('b')
    p.add_argument('--threshold', type=float, default=0.02,
                   help='relative regression threshold (default 0.02)')

    args = parser.parse_args(argv)
    return {'list': cmd_list, 'run': cmd_run, 'figure': cmd_figure,
            'experiment': cmd_experiment, 'report': cmd_report,
            'compare': cmd_compare}[args.command](args)


if __name__ == '__main__':
    sys.exit(main())
