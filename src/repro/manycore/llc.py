"""Shared last-level cache banks with wide-access support.

Each bank (paper: 16 banks, 256 kB total, 4-way, pseudo-LRU, write-back)
owns a stripe of the global address space (``line % num_banks``).  Banks
accept one request per cycle and emit one response packet per cycle per
port; a response packet carries up to ``noc_width_words`` words to a single
destination core.  This response serialization is the paper's Section 3.4
counter mechanism: a wide access hit initializes a counter and the bank
generates per-chunk responses serially.

The cache stores *timing* state only (tags, dirtiness); data always lives in
the fabric's flat memory and is read at response-emission time.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

KIND_LOAD = 0
KIND_STORE = 1
KIND_WIDE = 2


class MemRequest:
    """One request from a core to an LLC bank."""

    __slots__ = ('kind', 'addr', 'nwords', 'core', 'chunks', 'on_data',
                 'value', 'is_frame', 't_issue', 'job')

    def __init__(self, kind: int, addr: int, nwords: int, core: int,
                 chunks=None, on_data: Optional[Callable] = None,
                 value=None, is_frame: bool = False):
        self.kind = kind
        self.addr = addr
        self.nwords = nwords
        self.core = core
        self.chunks = chunks  # [(addr, count, dest_core, dest_spad_off)]
        self.on_data = on_data
        self.value = value
        self.is_frame = is_frame
        self.t_issue = None  # issue cycle, set only when telemetry is on
        self.job = None  # issuing FabricJob (serve mode); None classically


class LLCBank:
    """One LLC bank: tag array, MSHRs, request and response ports."""

    def __init__(self, bank_id: int, fabric, cfg, stats):
        self.bank_id = bank_id
        self.fabric = fabric
        self.cfg = cfg
        self.stats = stats
        self.line_words = cfg.line_words
        self.num_sets = cfg.llc_sets_per_bank
        self.ways = cfg.llc_ways
        self.hit_latency = cfg.llc_hit_latency
        self.noc_width = cfg.noc_width_words
        # per-set MRU-ordered list of line ids (front = most recent)
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._resident = 0  # total lines across sets (occupancy telemetry)
        self._dirty = set()
        self._mshr: Dict[int, List[MemRequest]] = {}
        self._req_free = 0.0
        self._resp_free = 0.0

    # -- tag array ------------------------------------------------------------
    def _set_of(self, line: int) -> int:
        return (line // self.cfg.llc_banks) % self.num_sets

    def _lookup(self, line: int) -> bool:
        s = self._sets[self._set_of(line)]
        if line in s:
            s.remove(line)
            s.insert(0, line)
            return True
        return False

    def _insert(self, line: int, now: int) -> None:
        s = self._sets[self._set_of(line)]
        if line in s:
            return
        if len(s) >= self.ways:
            victim = s.pop()
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.fabric.dram.write_line(now)
        else:
            self._resident += 1
        s.insert(0, line)

    def resident_lines(self) -> int:
        return self._resident

    # -- request handling -------------------------------------------------------
    def access(self, req: MemRequest, arrive: int) -> None:
        """Accept a request; the bank port serializes at 1/cycle."""
        start = max(float(arrive), self._req_free)
        self._req_free = start + 1.0
        tel = self.fabric.telemetry
        if tel is not None:
            tel.on_llc_queue(start - arrive)
        obs = self.fabric.observe
        if obs is not None:
            obs.on_llc_wait((self.bank_id, start - arrive))
        rt = req.job.rtrace if req.job is not None else None
        if rt is not None:
            rt.llc_wait += start - arrive
            rt.llc_accesses += 1
        t = int(math.ceil(start)) + self.hit_latency
        self.stats.llc_accesses += 1
        if req.kind == KIND_WIDE:
            self.stats.wide_requests += 1
        line = req.addr // self.line_words
        if self._lookup(line):
            self._complete(req, t)
        else:
            self.stats.llc_misses += 1
            if obs is not None:
                obs.on_llc_miss(self.bank_id)
            if rt is not None:
                rt.llc_misses += 1
            waiting = self._mshr.get(line)
            if waiting is None:
                self._mshr[line] = [req]
                self.fabric.dram.read_line(
                    t, self.fabric, lambda now, ln=line: self._filled(ln, now))
            else:
                waiting.append(req)

    def _filled(self, line: int, now: int) -> None:
        self._insert(line, now)
        for req in self._mshr.pop(line, []):
            self._complete(req, now)

    def _complete(self, req: MemRequest, ready: int) -> None:
        mem = self.fabric.memory
        noc = self.fabric.noc
        tel = self.fabric.telemetry
        if req.kind == KIND_STORE:
            mem[req.addr] = req.value
            self._dirty.add(req.addr // self.line_words)
            self.stats.llc_word_writes += 1
            if req.job is not None:
                self.fabric.job_op_done(req.job, ready)
            return
        if req.kind == KIND_LOAD:
            self.stats.llc_word_reads += 1
            emit = self._emit_slot(ready)
            value = mem[req.addr]
            hops = noc.bank_hops(req.core, self.bank_id)
            delay = noc.delay_for_hops(hops)
            arrival = emit + delay
            self.fabric.count_hops(hops)
            if tel is not None:
                tel.on_noc_traversal(delay)
            self.fabric.post(arrival,
                             lambda now, r=req, v=value: r.on_data(v, now))
            if req.job is not None:
                # posted after on_data with the same timestamp, so the job's
                # op counter drains only once the data has landed
                self.fabric.post(
                    arrival,
                    lambda now, r=req: self.fabric.job_op_done(r.job, now))
            return
        # wide access: serialized response packets per chunk.  NoC
        # traversal telemetry for these packets is *derived at drain
        # time* from the chunk list (delays are a pure function of
        # (dest core, bank)), so the hot loop carries no probes.
        last_emit = ready
        last_arrival = ready
        for (addr, count, dest_core, dest_off) in req.chunks:
            self.stats.llc_word_reads += count
            sent = 0
            while sent < count:
                n = min(self.noc_width, count - sent)
                emit = self._emit_slot(ready)
                values = mem[addr + sent:addr + sent + n]
                hops = noc.bank_hops(dest_core, self.bank_id)
                delay = noc.delay_for_hops(hops)
                arrival = emit + delay
                self.fabric.count_hops(hops * n)
                self.fabric.post_spad_delivery(
                    arrival, dest_core, dest_off + sent, values,
                    req.is_frame)
                sent += n
                if emit > last_emit:
                    last_emit = emit
                if arrival > last_arrival:
                    last_arrival = arrival
        if req.job is not None:
            self.fabric.post(
                last_arrival,
                lambda now, r=req: self.fabric.job_op_done(r.job, now))
        if tel is not None:
            tel.on_wide_served((req, ready, last_emit, last_arrival,
                                self.bank_id))

    def _emit_slot(self, ready: int) -> int:
        """Claim one cycle of the response port; returns the emit cycle."""
        self.stats.response_packets += 1
        if self.cfg.ideal_llc_ports:
            return ready
        emit = max(float(ready), self._resp_free)
        self._resp_free = emit + 1.0
        return int(math.ceil(emit))
