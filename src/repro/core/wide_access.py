"""Wide vector-load expansion (paper Sections 2.3.2 and 3.4).

A ``vload`` names a memory address, a destination scratchpad offset, a first
recipient (``core_off``), a per-core width, and a variant.  The LLC serves
the whole request from one cache line and scatters serialized word responses
as

    (Addr + Cnt) -> (BC + Cnt / RPC,  BO + Cnt % RPC)

This module turns a vload into *chunks* — ``(addr, count, dest_core,
dest_spad_off)`` — each of which the LLC bank later emits as one or more
response packets.  Unaligned accesses use the paper's instruction-pair
scheme: a PREFIX part covering the tail of the first line and a SUFFIX part
covering the head of the second; both are issued with identical operands and
each generates a request to (at most) one line.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..isa.instruction import (VL_ALIGNED, VL_GROUP, VL_PREFIX, VL_SELF,
                               VL_SINGLE, VL_SUFFIX)

Chunk = Tuple[int, int, int, int]  # (addr, count, dest_core, dest_spad_off)


class VloadError(Exception):
    """A malformed wide access (bad variant, span, or recipient)."""


def recipients(variant: int, core_off: int, lanes: List[int],
               requester: int) -> List[int]:
    """Cores that receive data, in response order."""
    if variant == VL_SELF:
        return [requester]
    if not lanes:
        raise VloadError('SINGLE/GROUP vload outside a vector group')
    if variant == VL_SINGLE:
        if not 0 <= core_off < len(lanes):
            raise VloadError(f'core_off {core_off} out of range')
        return [lanes[core_off]]
    if variant == VL_GROUP:
        if not 0 <= core_off < len(lanes):
            raise VloadError(f'core_off {core_off} out of range')
        return lanes[core_off:]
    raise VloadError(f'unknown vload variant {variant}')


def group_recipients_capped(core_off: int, lanes: List[int], width: int,
                            line_words: int) -> List[int]:
    """GROUP recipients, capped so the total request fits one cache line.

    The paper limits a vector load to a single cache line; when
    ``width * remaining_lanes`` would exceed it, the response simply stops
    at the line boundary, i.e. only the first ``line_words // width`` lanes
    from ``core_off`` receive data.  Software issues further GROUP loads at
    stepped core offsets to cover wider spans.
    """
    max_lanes = max(1, line_words // width)
    return lanes[core_off:core_off + max_lanes]


def expand_vload(addr: int, spad_off: int, core_off: int, width: int,
                 variant: int, part: int, lanes: List[int], requester: int,
                 line_words: int) -> Optional[Tuple[int, List[Chunk]]]:
    """Compute the request for one vload instruction.

    Returns ``(start_addr, chunks)`` covering this part's word range, or
    ``None`` when the part covers no words (e.g. the SUFFIX half of an
    access that turned out to be aligned).  All words of one part live in a
    single cache line, which is what lets the LLC serve it with one lookup.
    """
    if width <= 0:
        raise VloadError('vload of zero words')
    dests = recipients(variant, core_off, lanes, requester)
    if variant == VL_GROUP:
        dests = group_recipients_capped(core_off, lanes, width, line_words)
    total = width * len(dests) if variant == VL_GROUP else width
    if total <= 0:
        raise VloadError('vload of zero words')

    line_off = addr % line_words
    first_line_words = min(total, line_words - line_off)
    if part == VL_ALIGNED:
        if line_off + total > line_words:
            raise VloadError(
                f'aligned vload spans lines: addr={addr} total={total} '
                f'(use the PREFIX/SUFFIX pair for unaligned accesses)')
        lo, hi = 0, total
    elif part == VL_PREFIX:
        lo, hi = 0, first_line_words
    elif part == VL_SUFFIX:
        lo, hi = first_line_words, total
    else:
        raise VloadError(f'unknown vload part {part}')
    if lo >= hi:
        return None
    if part == VL_SUFFIX and hi - lo > line_words:
        raise VloadError('vload longer than two cache lines')

    # Build per-recipient contiguous chunks over the word range [lo, hi).
    chunks: List[Chunk] = []
    k = lo
    while k < hi:
        if variant == VL_GROUP:
            d = k // width
            in_core = k % width
        else:
            d = 0
            in_core = k
        run = min(hi, (d + 1) * width if variant == VL_GROUP else hi) - k
        chunks.append((addr + k, run, dests[d], spad_off + in_core))
        k += run
    return addr + lo, chunks


def total_words(chunks: List[Chunk]) -> int:
    return sum(c[1] for c in chunks)


def chunks_per_core(chunks: List[Chunk]) -> dict:
    """Words delivered to each destination core, ``{core: words}``.

    Used by telemetry to annotate wide-access service-window spans with
    the scatter pattern (how one line fans out across a vector group).
    """
    out: dict = {}
    for (_addr, count, dest_core, _off) in chunks:
        out[dest_core] = out.get(dest_core, 0) + count
    return out
