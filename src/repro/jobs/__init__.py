"""Sweep execution engine with a persistent, content-addressed store.

Turns any (benchmark x configuration x machine) sweep into a manifest of
hashable :class:`JobSpec` points and executes them across a farm of
worker processes with per-job timeout, bounded retry and crashed-worker
recovery.  Results persist in a :class:`ResultStore` keyed by a hash of
everything that determines the outcome (plus a code-version salt), so
re-running a sweep is free and interrupting one loses only in-flight
jobs.

Quick start::

    from repro.jobs import ResultStore, SweepEngine, plan_figures

    specs = plan_figures(['fig10a'], scale='test')
    engine = SweepEngine(jobs=4, store=ResultStore('.sweep-store'))
    outcomes = engine.execute(specs)

See ``docs/sweeps.md`` for the job model, cache keying and CLI.
"""

from .engine import (CACHED, CRASHED, DONE, FAILED, TIMEOUT, JobOutcome,
                     SweepEngine, any_failed, render_summary, run_job)
from .manifest import MANIFEST_SCHEMA_VERSION, SweepManifest
from .planner import PlanningCache, plan_figures
from .report import SWEEP_REPORT_KIND, SWEEP_SCHEMA_VERSION, \
    build_sweep_report
from .serialize import RESULT_SCHEMA_VERSION, result_from_dict, \
    result_to_dict
from .spec import CODE_VERSION, JobSpec, code_version_hash, machine_hash
from .store import ResultStore

__all__ = [
    'JobSpec', 'JobOutcome', 'SweepEngine', 'SweepManifest', 'ResultStore',
    'PlanningCache', 'plan_figures', 'run_job', 'any_failed',
    'render_summary', 'build_sweep_report', 'result_to_dict',
    'result_from_dict', 'machine_hash', 'code_version_hash',
    'CODE_VERSION',
    'RESULT_SCHEMA_VERSION', 'MANIFEST_SCHEMA_VERSION',
    'SWEEP_REPORT_KIND', 'SWEEP_SCHEMA_VERSION',
    'DONE', 'CACHED', 'FAILED', 'TIMEOUT', 'CRASHED',
]
