"""Differential property tests through the full vector-group path.

Hypothesis generates random elementwise expression kernels; each runs on a
vector group via the complete machinery — group formation, scalar-core
GROUP vloads, DAE frames, instruction forwarding, predication-free bodies,
lane stores — and must reproduce the numpy evaluation of the same
expression exactly.  This exercises interactions no unit test reaches
(frame rotation under random body lengths, inet pacing with varying
microthread sizes, multi-input frames).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GroupDescriptor
from repro.isa import Assembler, VL_GROUP, opcodes as op
from repro.kernels.codegen import pack_frame_cfg
from repro.manycore import Fabric, small_config

LANES = 4
FLEN = 2

#: (mnemonic, numpy function) for binary elementwise ops over two operand
#: streams and an accumulator
OPS = [
    ('fadd', np.add),
    ('fsub', np.subtract),
    ('fmul', np.multiply),
    ('fmin', np.minimum),
    ('fmax', np.maximum),
]


@st.composite
def elementwise_kernels(draw):
    """A random chain out[i] = f_k(...f_1(a[i], b[i])..., b[i])."""
    n_ops = draw(st.integers(1, 6))
    ops = [draw(st.sampled_from(OPS)) for _ in range(n_ops)]
    n_chunks = draw(st.integers(1, 6))  # frames per lane stream
    finite = st.floats(-100, 100, allow_nan=False, allow_infinity=False,
                       width=32)
    n = LANES * FLEN * n_chunks
    a = [draw(finite) for _ in range(n)]
    b = [draw(finite) for _ in range(n)]
    return ops, a, b


def run_vector_elementwise(ops, a_data, b_data):
    """out = chain(a, b) via a 4-lane vector group with 2-word frames."""
    n = len(a_data)
    fabric = Fabric(small_config())
    a_base = fabric.alloc(a_data)
    b_base = fabric.alloc(b_data)
    out = fabric.alloc(n)
    handle = fabric.register_group(GroupDescriptor(0, [0, 1, 2, 3, 4]))
    frame_words = 2 * FLEN  # a-chunk + b-chunk
    n_frames = n // (LANES * FLEN)

    asm = Assembler()
    asm.csrr('x1', op.CSR_COREID)
    asm.li('x2', LANES + 1)
    asm.bge('x1', 'x2', 'idle')
    asm.li('x3', pack_frame_cfg(frame_words, 8))
    asm.csrw(op.CSR_FRAME_CFG, 'x3')
    asm.li('x4', 0)
    asm.beq('x1', 'x0', 'scalar')
    asm.vconfig('x4')
    asm.halt()

    asm.bind('scalar')
    asm.vconfig('x4')
    asm.li('x22', 0)                       # frame slot pointer
    asm.li('x23', frame_words * 8)
    asm.li('x10', a_base)
    asm.li('x11', b_base)
    asm.vissue('init')
    for _ in range(n_frames):
        asm.vload('x22', 'x10', 0, FLEN, VL_GROUP)
        asm.addi('x24', 'x22', FLEN)
        asm.vload('x24', 'x11', 0, FLEN, VL_GROUP)
        asm.vissue('body')
        asm.addi('x10', 'x10', LANES * FLEN)
        asm.addi('x11', 'x11', LANES * FLEN)
        wrap = asm.label()
        asm.addi('x22', 'x22', frame_words)
        asm.blt('x22', 'x23', wrap.name)
        asm.li('x22', 0)
        asm.bind(wrap)
    asm.devec('resume')
    asm.j('resume')
    asm.bind('idle')
    asm.j('resume')
    asm.bind('resume')
    asm.barrier()
    asm.halt()

    asm.bind('init')
    asm.csrr('x29', op.CSR_TID)
    asm.li('x12', out)
    asm.li('x13', FLEN)
    asm.mul('x13', 'x13', 'x29')
    asm.add('x12', 'x12', 'x13')           # lane's output cursor
    asm.vend()

    asm.bind('body')
    asm.frame_start('x28')
    for f in range(FLEN):
        asm.lwsp('f1', 'x28', f)           # a element
        asm.lwsp('f2', 'x28', FLEN + f)    # b element
        for name, _ in ops:
            getattr(asm, name)('f1', 'f1', 'f2')
        asm.sw('f1', 'x12', f)
    asm.remem()
    asm.li('x14', LANES * FLEN)
    asm.add('x12', 'x12', 'x14')
    asm.vend()

    fabric.load_program(asm.finish())
    fabric.run()
    return fabric, fabric.read_array(out, n)


def numpy_reference(ops, a_data, b_data):
    acc = np.array(a_data, dtype=float)
    b = np.array(b_data, dtype=float)
    for _, fn in ops:
        acc = fn(acc, b)
    return acc


class TestVectorDifferential:
    @given(elementwise_kernels())
    @settings(max_examples=25, deadline=None)
    def test_vector_group_matches_numpy(self, kernel):
        ops, a_data, b_data = kernel
        _, got = run_vector_elementwise(ops, a_data, b_data)
        want = numpy_reference(ops, a_data, b_data)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    @given(elementwise_kernels())
    @settings(max_examples=10, deadline=None)
    def test_lockstep_invariants(self, kernel):
        """Lanes execute in lockstep: every lane issues the same number
        of forwarded instructions, and only the expander fetches them."""
        ops, a_data, b_data = kernel
        fabric, _ = run_vector_elementwise(ops, a_data, b_data)
        lanes = [fabric.tiles[i] for i in range(1, LANES + 1)]
        forwarded = [t.stats.instrs - t.stats.icache_accesses
                     for t in lanes]
        # the expander (lane 0) fetches what trailing lanes receive
        assert forwarded[1] == forwarded[2] == forwarded[3]
        assert forwarded[1] > 0
        expander = lanes[0]
        assert expander.stats.inet_forwards >= forwarded[1]
        # frames were consumed equally on every lane
        consumed = {t.stats.frames_consumed for t in lanes}
        assert len(consumed) == 1
