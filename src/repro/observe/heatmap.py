"""Grid-shaped congestion heatmaps with ASCII rendering.

Three fabric surfaces get spatial views:

* **NoC link utilization** — words moved per mesh link, accumulated by
  walking each memory request/response's XY dimension-ordered route at
  drain time (the hot path only records *which* request moved; routes
  are recomputed lazily from the static topology).
* **LLC bank occupancy** — resident lines per bank, pulled from
  ``bank.resident_lines()`` at snapshot boundaries.
* **Inet backpressure** — per-tile sender-stall cycles, read from the
  per-core stall taxonomy at snapshot boundaries.

A :class:`Heatmap` is just a dense ``width x height`` float grid plus a
title; :meth:`render` shades cells with a 10-step ASCII ramp normalized
to the hottest cell, which is enough to spot a hot bank column or a
congested mesh quadrant from a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: dark -> hot shading ramp (index 0 is "no traffic")
RAMP = ' .:-=+*#%@'


class Heatmap:
    """A dense ``width x height`` grid of non-negative intensities."""

    __slots__ = ('title', 'width', 'height', 'cells', 'unit')

    def __init__(self, title: str, width: int, height: int,
                 unit: str = ''):
        self.title = title
        self.width = width
        self.height = height
        self.unit = unit
        self.cells = [[0.0] * width for _ in range(height)]

    def add(self, x: int, y: int, v: float = 1.0) -> None:
        self.cells[y][x] += v

    def set(self, x: int, y: int, v: float) -> None:
        self.cells[y][x] = v

    def clear(self) -> None:
        for row in self.cells:
            for x in range(self.width):
                row[x] = 0.0

    def peak(self) -> float:
        return max((v for row in self.cells for v in row), default=0.0)

    def total(self) -> float:
        return sum(v for row in self.cells for v in row)

    def to_dict(self) -> dict:
        return {'title': self.title, 'width': self.width,
                'height': self.height, 'unit': self.unit,
                'peak': self.peak(), 'total': self.total(),
                'cells': [[round(v, 3) for v in row]
                          for row in self.cells]}

    def render(self, indent: str = '  ') -> str:
        """Shaded ASCII grid, normalized to the hottest cell."""
        peak = self.peak()
        lines = [f'{self.title}  (peak {peak:.0f}'
                 f'{" " + self.unit if self.unit else ""})']
        hi = len(RAMP) - 1
        for row in self.cells:
            chars = []
            for v in row:
                if peak <= 0 or v <= 0:
                    chars.append(RAMP[0])
                else:
                    chars.append(RAMP[max(1, round(v / peak * hi))])
            lines.append(indent + ' '.join(chars))
        return '\n'.join(lines)


class LinkHeatmap:
    """Per-link NoC word counts, projected onto a per-node grid.

    Links are undirected ``(node_a, node_b)`` pairs where a node is a
    mesh coordinate ``(col, row)``; LLC banks sit on virtual rows ``-1``
    (top edge) and ``height`` (bottom edge).  The grid view charges each
    link's words to both endpoints that lie inside the mesh, which makes
    congested routers visually hot without needing per-edge glyphs.
    """

    __slots__ = ('width', 'height', 'links')

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.links: Dict[Tuple[Tuple[int, int], Tuple[int, int]],
                         float] = {}

    def add_route(self, links, words: float) -> None:
        for a, b in links:
            key = (a, b) if a <= b else (b, a)
            self.links[key] = self.links.get(key, 0.0) + words

    def clear(self) -> None:
        self.links.clear()

    def to_grid(self, title: str = 'noc link utilization') -> Heatmap:
        hm = Heatmap(title, self.width, self.height, unit='words')
        for (a, b), words in self.links.items():
            for col, row in (a, b):
                if 0 <= row < self.height:
                    hm.add(col, row, words)
        return hm

    def top_links(self, n: int = 5) -> List[dict]:
        ranked = sorted(self.links.items(),
                        key=lambda kv: (-kv[1], kv[0]))[:n]
        return [{'a': list(a), 'b': list(b), 'words': round(w, 1)}
                for (a, b), w in ranked]

    def to_dict(self) -> dict:
        return {'n_links': len(self.links),
                'total_words': round(sum(self.links.values()), 1),
                'top_links': self.top_links(),
                'grid': self.to_grid().to_dict()}
