"""Figure 10: the headline result.

Paper: software-defined vectors beat the MLP-optimized manycore baseline
by 1.7x on average (10a), amortize I-cache accesses (10b), and cut total
on-chip dynamic energy by ~22% vs NV_PF (10c).
"""

from repro.harness.figures import (fig10a_speedup, fig10b_icache,
                                   fig10c_energy)

from conftest import SCALE, emit

STRICT = SCALE == 'bench'  # test-scale inputs are setup-dominated


def test_fig10a_speedup(benchmark, cache):
    s = benchmark.pedantic(lambda: fig10a_speedup(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    # NV_PF exploits MLP over NV ...
    assert mean['NV_PF'] > 1.3
    # ... and software-defined vectors beat NV_PF on average
    assert mean['BEST_V'] > mean['NV_PF']
    if STRICT:
        # paper: 1.7x over NV_PF.  At our scaled inputs the compute-bound
        # kernels stay LLC-resident and lose the paper's DRAM-contention
        # gains, so the suite mean lands lower; the memory-bound matvec
        # family reproduces at full strength (see EXPERIMENTS.md).
        assert mean['BEST_V'] > mean['NV_PF'] * 1.05
        # per-benchmark shapes the paper calls out: bicg/mvt shine,
        # gramschm does not improve
        assert s.rows['bicg']['BEST_V'] > 1.5 * s.rows['bicg']['NV_PF']
        assert s.rows['mvt']['BEST_V'] > 1.5 * s.rows['mvt']['NV_PF']
        assert (s.rows['gramschm']['BEST_V'] <
                1.3 * s.rows['gramschm']['NV_PF'])


def test_fig10b_icache(benchmark, cache):
    s = benchmark.pedantic(lambda: fig10b_icache(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    # vector groups fetch significantly less than either baseline
    assert mean['BEST_V'] < mean['NV']
    if STRICT:
        assert mean['BEST_V'] < 0.75 * mean['NV']
        assert mean['BEST_V'] < 0.85 * mean['NV_PF']


def test_fig10c_energy(benchmark, cache):
    s = benchmark.pedantic(lambda: fig10c_energy(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    # the paper: vectors cut energy vs NV_PF and roughly match NV
    if STRICT:
        assert mean['BEST_V'] < 0.95 * mean['NV_PF']
        assert mean['BEST_V'] < 1.1 * mean['NV']
