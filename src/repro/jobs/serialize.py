"""Lossless RunResult <-> JSON-safe dict conversion for the result store.

Everything a :class:`~repro.harness.runner.RunResult` carries that is
needed to regenerate any figure or experiment table — final cycle count,
the full per-core/memory/NoC statistics, the energy breakdown, the input
parameters, and the machine configuration — round-trips exactly.  The
``telemetry`` attachment is the one exception: sweeps run telemetry-free
(it is an interactive-debugging feature and would dominate pipe traffic),
so it serializes to nothing and deserializes as ``None``.

``RESULT_SCHEMA_VERSION`` is embedded in every stored document and in the
run-report artifact; readers treat a mismatch as a cache miss, so schema
evolution never requires clearing stores by hand.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..energy.model import EnergyBreakdown
from ..harness.runner import RunResult
from ..manycore.config import MachineConfig
from ..manycore.stats import CoreStats, MemStats, RunStats

#: Bump when the serialized layout changes; old store entries become misses.
RESULT_SCHEMA_VERSION = 1


def stats_to_dict(stats: RunStats) -> dict:
    """Flatten a RunStats (full per-core + memory counters) losslessly."""
    return {
        'cycles': stats.cycles,
        'noc_word_hops': stats.noc_word_hops,
        'mem': dataclasses.asdict(stats.mem),
        'cores': {str(cid): dataclasses.asdict(cs)
                  for cid, cs in stats.cores.items()},
    }


def stats_from_dict(sd: dict) -> RunStats:
    return RunStats(
        cycles=sd['cycles'],
        cores={int(cid): CoreStats(**cs)
               for cid, cs in sd['cores'].items()},
        mem=MemStats(**sd['mem']),
        noc_word_hops=sd['noc_word_hops'])


def result_to_dict(r: RunResult) -> dict:
    """Flatten one RunResult to a JSON-safe dict (telemetry excluded)."""
    return {
        'schema_version': RESULT_SCHEMA_VERSION,
        'benchmark': r.benchmark,
        'config': r.config,
        'cycles': r.cycles,
        'stats': stats_to_dict(r.stats),
        'energy': (dataclasses.asdict(r.energy)
                   if r.energy is not None else None),
        'params': dict(r.params) if r.params is not None else None,
        'machine': (dataclasses.asdict(r.machine)
                    if r.machine is not None else None),
    }


def result_from_dict(doc: dict, source: str = 'store') -> RunResult:
    """Rebuild a RunResult; raises ValueError on schema mismatch.

    ``source`` lands in ``RunResult.source`` ('simulated' for results that
    just crossed a worker pipe, 'store' for on-disk cache hits) so reports
    built from cached results are distinguishable from fresh ones.
    """
    version = doc.get('schema_version')
    if version != RESULT_SCHEMA_VERSION:
        raise ValueError(f'result schema v{version} != '
                         f'v{RESULT_SCHEMA_VERSION}')
    stats = stats_from_dict(doc['stats'])
    energy: Optional[EnergyBreakdown] = (
        EnergyBreakdown(**doc['energy'])
        if doc.get('energy') is not None else None)
    machine: Optional[MachineConfig] = (
        MachineConfig(**doc['machine'])
        if doc.get('machine') is not None else None)
    return RunResult(doc['benchmark'], doc['config'], doc['cycles'], stats,
                     energy, params=doc.get('params'), machine=machine,
                     telemetry=None, source=source)
