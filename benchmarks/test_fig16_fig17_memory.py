"""Figures 16 and 17: vector length, long lines, and memory sensitivity."""

from repro.harness.figures import (bfs_irregular, fig16_vector_lengths,
                                   fig17a_miss_rate, fig17b_llc_capacity,
                                   fig17c_noc_width)
from repro.kernels import registry

from conftest import emit


def test_fig16_vector_length_flexibility(benchmark, cache):
    s = benchmark.pedantic(lambda: fig16_vector_lengths(cache),
                           rounds=1, iterations=1)
    emit(s)
    # vector-length flexibility: the best width is per-application (the
    # paper's V16/V4 mean is ~0.73; ours lands nearby).  V16 must lose
    # badly somewhere and stay competitive somewhere.
    vals = [r['V16'] for r in s.rows.values()]
    assert min(vals) < 0.8, 'V16 should lose somewhere'
    assert max(vals) > 0.9, 'V16 should stay competitive somewhere'
    mean = s.mean_row()
    assert 0.5 < mean['V16'] < 1.1
    # long lines + SIMD help at least one of the modified benchmarks
    ll = [r['V16_LL_PCV'] for b, r in s.rows.items()
          if 'V16_LL_PCV' in r]
    assert any(v > 1.0 for v in ll)


def test_fig17a_llc_miss_rate(benchmark, cache):
    s = benchmark.pedantic(lambda: fig17a_miss_rate(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    # vector groups do not increase the miss rate on average, and the
    # column-wise matvecs see better line utilization (paper: bicg, mvt)
    assert mean['BEST_V'] <= mean['NV_PF'] * 1.1


def test_fig17b_llc_capacity(benchmark, cache):
    s = benchmark.pedantic(lambda: fig17b_llc_capacity(cache),
                           rounds=1, iterations=1)
    emit(s)
    # a larger LLC never hurts; some benchmarks are sensitive
    for b, r in s.rows.items():
        assert r['NV_PF_32kB'] >= r['NV_PF_16kB'] * 0.9


def test_fig17c_noc_width(benchmark, cache):
    s = benchmark.pedantic(lambda: fig17c_noc_width(cache),
                           rounds=1, iterations=1)
    emit(s)
    # paper: network width is not critical — a single-word NoC loses
    # little on average
    for b, r in s.rows.items():
        assert r['NV_PF_NW4'] >= r['NV_PF_NW1'] * 0.95
        assert r['V4_NW4'] >= r['V4_NW1'] * 0.9


def test_bfs_irregular(benchmark, cache):
    s = benchmark.pedantic(lambda: bfs_irregular(cache),
                           rounds=1, iterations=1)
    emit(s)
    # Section 6.6: pure manycore mode wins big on irregular bfs
    assert s.rows['bfs']['NV'] > 1.8
