"""Frame-queue bookkeeping for decoupled access/execute (paper Section 3.3).

A frame is a fixed-size chunk of a core's scratchpad that one microthread
consumes.  The scratchpad dedicates a circular buffer of ``num_slots``
frame-sized regions starting at ``base``.  Hardware keeps ``num_counters``
arrival counters (the paper uses five 10-bit counters): counter *i* counts
words that have arrived for frame ``head + i``.  When the head counter
reaches ``frame_size`` the frame is ready; freeing the head shifts all
counters left and zeroes the last one.

Frames are identified externally by their scratchpad offset; the queue infers
the *absolute* frame sequence number from the slot, which is unambiguous as
long as the open-frame window never exceeds the number of slots — exactly the
invariant the paper's compiler pacing (Section 4.2) guarantees.
"""

from __future__ import annotations


class FrameWindowOverflow(Exception):
    """Data arrived for a frame beyond the hardware counter window.

    In the paper this cannot happen for correctly compiled code: the
    compiler's implicit-synchronization bound paces the scalar core.  The
    simulator raises instead of corrupting state, modeling a hardware fault.
    """


class FrameQueue:
    """Arrival-counter bookkeeping for the DAE frame circular buffer."""

    def __init__(self, base: int, frame_size: int, num_slots: int,
                 num_counters: int = 5):
        if frame_size <= 0:
            raise ValueError('frame_size must be positive')
        if num_slots < num_counters:
            raise ValueError('need at least as many slots as counters '
                             '(window must fit in the buffer)')
        self.base = base
        self.frame_size = frame_size
        self.num_slots = num_slots
        self.num_counters = num_counters
        self.head = 0  # absolute sequence number of the head frame
        self.counters = [0] * num_counters
        self.total_words = 0
        self.frames_freed = 0

    @property
    def region_words(self) -> int:
        """Scratchpad words occupied by the frame buffer."""
        return self.num_slots * self.frame_size

    def slot_offset(self, seq: int) -> int:
        """Scratchpad offset of the frame with absolute sequence ``seq``."""
        return self.base + (seq % self.num_slots) * self.frame_size

    def seq_for_offset(self, spad_offset: int) -> int:
        """Infer the absolute frame sequence for an arriving word."""
        rel = spad_offset - self.base
        if not 0 <= rel < self.region_words:
            raise ValueError(f'offset {spad_offset} outside frame region')
        slot = rel // self.frame_size
        head_slot = self.head % self.num_slots
        return self.head + ((slot - head_slot) % self.num_slots)

    def contains(self, spad_offset: int) -> bool:
        return self.base <= spad_offset < self.base + self.region_words

    def word_arrived(self, spad_offset: int) -> None:
        """Record one word arriving into the frame region."""
        seq = self.seq_for_offset(spad_offset)
        idx = seq - self.head
        if idx >= self.num_counters:
            raise FrameWindowOverflow(
                f'word for frame {seq} but window is '
                f'[{self.head}, {self.head + self.num_counters})')
        self.counters[idx] += 1
        if self.counters[idx] > self.frame_size:
            raise FrameWindowOverflow(
                f'frame {seq} received more than {self.frame_size} words')
        self.total_words += 1

    def head_ready(self) -> bool:
        """Is the frame at the head of the queue completely filled?"""
        return self.counters[0] >= self.frame_size

    def head_offset(self) -> int:
        return self.slot_offset(self.head)

    def free_head(self) -> None:
        """Free the head frame (the ``remem`` instruction)."""
        if not self.head_ready():
            raise FrameWindowOverflow(
                f'remem on frame {self.head} before it was filled')
        self.head += 1
        self.counters.pop(0)
        self.counters.append(0)
        self.frames_freed += 1

    def open_frames(self) -> int:
        """Number of frames in the window with at least one arrived word."""
        return sum(1 for c in self.counters if c > 0)

    def __repr__(self):
        return (f'FrameQueue(head={self.head}, counters={self.counters}, '
                f'fsize={self.frame_size}, slots={self.num_slots})')
