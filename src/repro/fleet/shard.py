"""Shard execution: one fabric per batch, in a crash-isolated worker.

A **shard** is one simulated fabric owned by the fleet.  The router
hands a shard its backlog as a :class:`ShardBatch` — a pickle- and
JSON-safe spec naming the requests (rebased to local arrival 0) — and a
worker process executes it end to end: fresh
:class:`~repro.manycore.Fabric`, :class:`~repro.serve.ServeScheduler`,
full schema-checked serve report, plus a sha256 **output digest** per
completed request.  Digests are what make fleet fault tolerance
*checkable*: PR 3's co-scheduling guarantee (job-ranked CSRs) means a
request's outputs are bit-identical no matter which shard runs it next
to which strangers, so a re-routed request after a shard crash must
reproduce the exact digest of the crash-free run.

Batches run through :class:`ShardPool`, a thin skin over
:class:`~repro.jobs.SweepEngine` with dict passthrough as the wire
format and ``retries=0``: a worker that dies (including the fleet's own
injected ``SIGKILL``) surfaces as a ``crashed`` outcome for the router
to re-route, instead of being silently retried on the same shard.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..jobs.engine import JobOutcome, SweepEngine
from ..jobs.serialize import stats_to_dict

#: shard lifecycle states (router-side)
ACTIVE = 'active'        # routable: accepts new requests
DRAINING = 'draining'    # scale-down target: finishes its work, no new work
DEAD = 'dead'            # crashed: its requests were re-routed
RETIRED = 'retired'      # drained cleanly after scale-down


@dataclass(frozen=True)
class ShardBatch:
    """One busy period of one shard: requests rebased to local cycle 0."""

    shard_id: int
    epoch: int
    requests: Tuple[dict, ...]  # KernelRequest.to_dict() forms, arrival 0
    verify: bool = True
    digests: bool = True
    crash: bool = False  # fault injection: worker SIGKILLs itself
    max_cycles: int = 200_000_000
    #: flight recording: synthesize launch/complete/deadlock events in
    #: the worker and ship them back in the result dict
    flight: bool = False
    #: per-shard observe-plane JSONL stream (append mode, shared across
    #: this shard's batches); None disables the plane entirely
    metrics_out: Optional[str] = None
    snapshot_interval: int = 5000

    def key(self) -> str:
        canon = json.dumps(
            {'shard': self.shard_id, 'epoch': self.epoch,
             'requests': list(self.requests), 'verify': self.verify,
             'digests': self.digests, 'crash': self.crash},
            sort_keys=True)
        digest = hashlib.sha256(canon.encode()).hexdigest()[:16]
        return f'fleet-{digest}'

    def label(self) -> str:
        return (f'shard{self.shard_id}@e{self.epoch} '
                f'({len(self.requests)} request(s))')


def output_digest(outputs: Dict[str, object]) -> str:
    """sha256 over a request's named output arrays, bit-exact."""
    h = hashlib.sha256()
    for name in sorted(outputs):
        h.update(name.encode())
        h.update(outputs[name].tobytes())
    return h.hexdigest()


def run_shard_batch(batch: ShardBatch) -> dict:
    """Worker entry: serve one batch on a fresh fabric, return a dict.

    The return value is the shard's complete story for this busy period:
    the schema-checked serve report (local timeline, per-request
    breakdowns), per-request output digests, and the batch's merged
    :class:`~repro.manycore.RunStats` in lossless dict form so the
    parent can :meth:`~repro.manycore.RunStats.merge` across the fleet.
    """
    if batch.crash:
        # fault injection: die the way a real OOM-killed worker dies —
        # no result, no traceback, just a SIGKILL exit code for the
        # engine's crash detector
        os.kill(os.getpid(), signal.SIGKILL)
    from ..manycore import Fabric
    from ..serve import (DONE, KernelRequest, ServeScheduler,
                         build_serve_report, request_outputs)
    requests = [KernelRequest.from_dict(d) for d in batch.requests]
    fabric = Fabric()
    plane = None
    if batch.metrics_out is not None:
        from ..observe import ObservePlane
        plane = ObservePlane(snapshot_interval=batch.snapshot_interval,
                             metrics_out=batch.metrics_out, append=True)
        plane.attach(fabric)
    scheduler = ServeScheduler(fabric, verify=batch.verify)
    result = scheduler.run(requests, max_cycles=batch.max_cycles)
    if plane is not None:
        plane.finalize(fabric.cycle)
    report = build_serve_report(result)
    digests: Dict[str, str] = {}
    if batch.digests:
        for req in result.requests:
            if req.state == DONE:
                outs = request_outputs(fabric, req)
                if outs is not None:
                    digests[str(req.req_id)] = output_digest(outs)
    doc = {
        'shard_id': batch.shard_id,
        'epoch': batch.epoch,
        'makespan': result.makespan,
        'num_tiles': result.num_tiles,
        'report': report,
        'digests': digests,
        'stats': (stats_to_dict(result.merged_stats)
                  if result.merged_stats is not None else None),
    }
    if batch.flight:
        doc['flight_events'] = _synthesize_flight_events(batch, result)
    return doc


def _synthesize_flight_events(batch: ShardBatch, result) -> List[dict]:
    """The shard worker's own black box, reconstructed post-run.

    The worker records in *local* cycles (the router rebases by the
    dispatch offset) and in request order, from the scheduler's exact
    per-request timeline — a crashed worker ships nothing back, which
    is precisely the black-box property the router-side ring exists to
    cover.
    """
    source = f'shard{batch.shard_id}'
    events: List[dict] = []
    seq = 0
    for req in result.requests:
        tid = req.trace_id if req.trace_id is not None \
            else f'req-{req.req_id}'
        if req.launched_at is not None:
            events.append({'seq': seq, 'kind': 'launch',
                           't': req.launched_at, 'source': source,
                           'req_id': req.req_id, 'trace_id': tid,
                           'kernel': req.kernel})
            seq += 1
        if req.finished_at is not None:
            events.append({'seq': seq, 'kind': 'complete',
                           't': req.finished_at, 'source': source,
                           'req_id': req.req_id, 'trace_id': tid,
                           'state': req.state})
            seq += 1
        if getattr(req, '_kill_reason', None) == 'deadlock':
            events.append({'seq': seq, 'kind': 'deadlock',
                           't': req.finished_at or 0, 'source': source,
                           'req_id': req.req_id, 'trace_id': tid,
                           'detail': (req.error or 'deadlock')[:2000]})
            seq += 1
    events.sort(key=lambda e: (e['t'], e['seq']))
    return events


class ShardPool:
    """Parallel shard-batch execution on the SweepEngine worker farm.

    Reuses the engine's pipe protocol, per-batch timeout, and
    crashed-worker detection verbatim; substitutes dict passthrough for
    the RunResult wire format and disables retries so every crash is
    the *router's* decision to handle (re-route), not the engine's
    (silent same-shard retry).
    """

    def __init__(self, workers: int = 4, timeout: Optional[float] = None,
                 mp_context: Optional[str] = None):
        self.engine = SweepEngine(
            jobs=workers, timeout=timeout, retries=0, store=None,
            job_fn=run_shard_batch, mp_context=mp_context,
            encode=lambda doc: doc, decode=lambda doc: doc)

    @property
    def launched(self) -> int:
        return self.engine.launched

    def run_batches(self,
                    batches: Sequence[ShardBatch]) -> List[JobOutcome]:
        """Execute one epoch's batches in parallel; outcomes in order."""
        if not batches:
            return []
        return self.engine.execute(batches)
