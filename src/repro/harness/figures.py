"""Regenerate every table and figure of the paper's evaluation section.

Each ``fig*`` function returns a :class:`Series` — per-benchmark rows of
per-configuration values plus a mean — and can render itself as the text
analogue of the paper's plot.  A shared :class:`ResultCache` makes sure
each (benchmark, configuration, machine-override) point simulates once per
session even when several figures need it.

Inputs are scaled down from the paper's (see EXPERIMENTS.md); the point of
these harnesses is the *shape* — who wins, by what factor, where the
crossovers sit — not absolute cycle counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.vgroup import plan_groups
from ..kernels import registry
from ..manycore import DEFAULT_CONFIG, MachineConfig
from .configs import CONFIGS, META_CONFIGS, get
from .runner import RunResult, run_benchmark


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def amean(values: Sequence[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


class ResultCache:
    """Memoize simulation results across figures.

    Keys are the content-addressed :meth:`repro.jobs.JobSpec.key` hashes,
    so ``active_cores=None`` vs ``()`` and parameter-dict ordering never
    split a cache entry.  An optional persistent
    :class:`repro.jobs.ResultStore` backs the in-memory dict: hits are
    rehydrated from disk and fresh results written back, which is how
    ``repro sweep`` farms points out in parallel and figure regeneration
    afterwards simulates nothing (see docs/sweeps.md).
    ``self.simulations`` counts actual simulator launches.
    """

    def __init__(self, scale: str = 'bench', verify: bool = True,
                 store=None):
        self.scale = scale
        self.verify = verify
        self.store = store
        self._results: Dict[str, RunResult] = {}
        self.simulations = 0

    def _spec(self, bench_name, config_name, machine, active_cores,
              params_override):
        from ..jobs.spec import JobSpec
        return JobSpec.make(bench_name, config_name, scale=self.scale,
                            verify=self.verify,
                            params_override=params_override,
                            machine=machine, active_cores=active_cores)

    def prime(self, spec, result: RunResult) -> None:
        """Pre-populate one point (used by the parallel sweep paths)."""
        self._results[spec.key()] = result

    def run(self, bench_name: str, config_name: str,
            machine: Optional[MachineConfig] = None,
            active_cores: Optional[tuple] = None,
            params_override: Optional[dict] = None) -> RunResult:
        spec = self._spec(bench_name, config_name, machine, active_cores,
                          params_override)
        key = spec.key()
        result = self._results.get(key)
        if result is None and self.store is not None:
            result = self.store.get(key)
            if result is not None:
                self._results[key] = result
        if result is None:
            from ..jobs.engine import run_job
            result = run_job(spec)
            self.simulations += 1
            self._results[key] = result
            if self.store is not None:
                self.store.put(key, result)
        return result


@dataclass
class Series:
    """One figure's data: rows (benchmarks) x columns (configurations)."""

    title: str
    columns: List[str]
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    mean_kind: str = 'geomean'
    value_format: str = '{:.2f}'
    note: str = ''

    def add(self, row: str, col: str, value: float) -> None:
        self.rows.setdefault(row, {})[col] = value

    def mean_row(self) -> Dict[str, float]:
        fn = geomean if self.mean_kind == 'geomean' else amean
        out = {}
        for col in self.columns:
            out[col] = fn([r[col] for r in self.rows.values() if col in r])
        return out

    def render(self) -> str:
        name_w = max([len(r) for r in self.rows] + [10])
        col_w = max([len(c) for c in self.columns] + [8]) + 1
        lines = [self.title]
        if self.note:
            lines.append(self.note)
        header = ' ' * name_w + ''.join(f'{c:>{col_w}}'
                                        for c in self.columns)
        lines.append(header)
        lines.append('-' * len(header))
        for row, vals in self.rows.items():
            cells = ''.join(
                f'{self.value_format.format(vals[c]):>{col_w}}'
                if c in vals else f'{"-":>{col_w}}'
                for c in self.columns)
            lines.append(f'{row:<{name_w}}{cells}')
        mean = self.mean_row()
        label = 'GeoMean' if self.mean_kind == 'geomean' else 'ArithMean'
        cells = ''.join(f'{self.value_format.format(mean[c]):>{col_w}}'
                        for c in self.columns)
        lines.append('-' * len(header))
        lines.append(f'{label:<{name_w}}{cells}')
        return '\n'.join(lines)


POLY = [c.name for c in registry.POLYBENCH]


# ------------------------------------------------------------------ Figure 10
def fig10a_speedup(cache: ResultCache,
                   benches: Sequence[str] = POLY) -> Series:
    """Speedup over the NV baseline (paper Figure 10a)."""
    s = Series('Figure 10a: speedup relative to NV',
               ['NV', 'NV_PF', 'BEST_V'])
    for b in benches:
        base = cache.run(b, 'NV').cycles
        s.add(b, 'NV', 1.0)
        s.add(b, 'NV_PF', base / cache.run(b, 'NV_PF').cycles)
        s.add(b, 'BEST_V', base / _best_v(cache, b).cycles)
    return s


def fig10b_icache(cache: ResultCache,
                  benches: Sequence[str] = POLY) -> Series:
    """I-cache accesses relative to NV (paper Figure 10b)."""
    s = Series('Figure 10b: I-cache accesses relative to NV',
               ['NV', 'NV_PF', 'BEST_V'])
    for b in benches:
        base = cache.run(b, 'NV').icache_accesses
        s.add(b, 'NV', 1.0)
        s.add(b, 'NV_PF', cache.run(b, 'NV_PF').icache_accesses / base)
        s.add(b, 'BEST_V', _best_v(cache, b).icache_accesses / base)
    return s


def fig10c_energy(cache: ResultCache,
                  benches: Sequence[str] = POLY) -> Series:
    """Total on-chip energy relative to NV (paper Figure 10c)."""
    s = Series('Figure 10c: total on-chip energy relative to NV',
               ['NV', 'NV_PF', 'BEST_V'])
    for b in benches:
        base = cache.run(b, 'NV').energy.on_chip_total
        s.add(b, 'NV', 1.0)
        s.add(b, 'NV_PF',
              cache.run(b, 'NV_PF').energy.on_chip_total / base)
        s.add(b, 'BEST_V', _best_v(cache, b).energy.on_chip_total / base)
    return s


def _best_v(cache: ResultCache, bench: str) -> RunResult:
    """BEST_V: fastest of V4/V16, plus long lines where the paper uses
    them (Table 3's "Long Lines: ?")."""
    members = ['V4', 'V16']
    # the long-line variants need bench-scale inputs (row spans of one
    # 256-byte line)
    if bench in registry.LONG_LINE_SET and cache.scale == 'bench':
        members.append('V16_LL')
    best = None
    for m in members:
        r = cache.run(bench, m)
        if best is None or r.cycles < best.cycles:
            best = r
    return best


def _best_v_pcv(cache: ResultCache, bench: str) -> RunResult:
    if bench == 'gramschm':
        return _best_v(cache, bench)  # paper: no SIMD variant; closest valid
    best = None
    for m in ('V4_PCV', 'V16_PCV'):
        r = cache.run(bench, m)
        if best is None or r.cycles < best.cycles:
            best = r
    return best


# ------------------------------------------------------------------ Figure 11
CORE_COUNTS = (1, 4, 16, 64)


def fig11_scalability(cache: ResultCache,
                      benches: Sequence[str] = POLY) -> Series:
    """NV_PF speedup for 1/4/16/64 cores over one core (Figure 11)."""
    cols = [f'NV_PF_{n}' for n in CORE_COUNTS]
    s = Series('Figure 11: NV_PF speedup vs a single core', cols)
    for b in benches:
        base = cache.run(b, 'NV_PF', active_cores=(0,)).cycles
        for n in CORE_COUNTS:
            r = cache.run(b, 'NV_PF', active_cores=tuple(range(n)))
            s.add(b, f'NV_PF_{n}', base / r.cycles)
    return s


# ------------------------------------------------- Figures 12/13 (CPI stacks)
CPI_COMPONENTS = ('issued', 'frame', 'inet', 'other')


def cpi_stack(result: RunResult, cores: Optional[Sequence[int]] = None
              ) -> Dict[str, float]:
    """Per-core CPI decomposition (paper footnote 1): each component is
    stall cycles per issued instruction; the total equals the actual CPI."""
    stats = [result.stats.cores[c] for c in
             (cores if cores is not None else result.stats.cores)]
    stats = [c for c in stats if c.instrs > 0]
    instrs = sum(c.instrs for c in stats)
    if instrs == 0:
        return {k: 0.0 for k in CPI_COMPONENTS}
    frame = sum(c.stall_frame + c.stall_loadq for c in stats)
    inet = sum(c.stall_inet_input + c.stall_backpressure for c in stats)
    other = sum(c.stall_scoreboard + c.stall_branch + c.stall_other
                for c in stats)
    return {
        'issued': 1.0,
        'frame': frame / instrs,
        'inet': inet / instrs,
        'other': other / instrs,
    }


def fig12_cpi_by_cores(cache: ResultCache,
                       benches: Sequence[str] = POLY) -> Dict[str, Dict]:
    """CPI stacks for NV_PF at 1/16/64 cores (Figure 12)."""
    out = {}
    for b in benches:
        out[b] = {}
        for n in (1, 16, 64):
            r = cache.run(b, 'NV_PF', active_cores=tuple(range(n)))
            out[b][f'NV_PF_{n}'] = cpi_stack(r)
    return out


def fig13_cpi_bandwidth(cache: ResultCache,
                        benches: Sequence[str] = POLY) -> Dict[str, Dict]:
    """CPI stacks: NV_PF vs NV_PF with 2x DRAM bandwidth vs V4 (Fig 13).

    For V4 only expander cores are averaged, as in the paper ("the root
    cause of a stall is not apparent in a non-expander vector core").
    """
    bw2 = DEFAULT_CONFIG.scaled(
        dram_bandwidth_words_per_cycle=2 *
        DEFAULT_CONFIG.dram_bandwidth_words_per_cycle)
    groups, _ = plan_groups(DEFAULT_CONFIG.mesh_width,
                            DEFAULT_CONFIG.mesh_height, 4)
    expanders = [g.expander for g in groups]
    out = {}
    for b in benches:
        out[b] = {
            'B': cpi_stack(cache.run(b, 'NV_PF')),
            '2X': cpi_stack(cache.run(b, 'NV_PF', machine=bw2)),
            'V4': cpi_stack(cache.run(b, 'V4'), cores=expanders),
        }
    return out


def render_cpi(table: Dict[str, Dict], title: str) -> str:
    lines = [title]
    for b, cfgs in table.items():
        for cfg, comp in cfgs.items():
            total = sum(comp.values())
            parts = ' '.join(f'{k}={v:.2f}' for k, v in comp.items())
            lines.append(f'  {b:10s} {cfg:10s} CPI={total:6.2f}  {parts}')
    return '\n'.join(lines)


# ------------------------------------------------------------------ Figure 14
def fig14a_speedup(cache: ResultCache,
                   benches: Sequence[str] = POLY) -> Series:
    """Speedup vs NV_PF with SIMD units and the GPU (Figure 14a)."""
    s = Series('Figure 14a: speedup relative to NV_PF',
               ['NV_PF', 'PCV_PF', 'BEST_V', 'BEST_V_PCV', 'GPU'])
    for b in benches:
        base = cache.run(b, 'NV_PF').cycles
        s.add(b, 'NV_PF', 1.0)
        s.add(b, 'PCV_PF', base / cache.run(b, 'PCV_PF').cycles)
        s.add(b, 'BEST_V', base / _best_v(cache, b).cycles)
        s.add(b, 'BEST_V_PCV', base / _best_v_pcv(cache, b).cycles)
        s.add(b, 'GPU', base / cache.run(b, 'GPU').cycles)
    return s


def fig14b_icache(cache: ResultCache,
                  benches: Sequence[str] = POLY) -> Series:
    s = Series('Figure 14b: I-cache accesses relative to NV_PF',
               ['NV_PF', 'PCV_PF', 'BEST_V', 'BEST_V_PCV'])
    for b in benches:
        base = cache.run(b, 'NV_PF').icache_accesses
        s.add(b, 'NV_PF', 1.0)
        s.add(b, 'PCV_PF', cache.run(b, 'PCV_PF').icache_accesses / base)
        s.add(b, 'BEST_V', _best_v(cache, b).icache_accesses / base)
        s.add(b, 'BEST_V_PCV',
              _best_v_pcv(cache, b).icache_accesses / base)
    return s


def fig14c_energy(cache: ResultCache,
                  benches: Sequence[str] = POLY) -> Series:
    s = Series('Figure 14c: total on-chip energy relative to NV_PF',
               ['NV_PF', 'PCV_PF', 'BEST_V', 'BEST_V_PCV'])
    for b in benches:
        base = cache.run(b, 'NV_PF').energy.on_chip_total
        s.add(b, 'NV_PF', 1.0)
        s.add(b, 'PCV_PF',
              cache.run(b, 'PCV_PF').energy.on_chip_total / base)
        s.add(b, 'BEST_V', _best_v(cache, b).energy.on_chip_total / base)
        s.add(b, 'BEST_V_PCV',
              _best_v_pcv(cache, b).energy.on_chip_total / base)
    return s


# ------------------------------------------------------------------ Figure 15
FIG15_BENCHES = ('2dconv', '3dconv', 'bicg', 'gemm', 'syr2k')


def fig15_inet_stalls(cache: ResultCache, lanes: int,
                      benches: Sequence[str] = FIG15_BENCHES,
                      kind: str = 'input') -> Dict[str, List[float]]:
    """inet stalls by hop distance from the scalar core (Figures 15a/15b).

    ``kind='input'`` counts input-queue-empty stalls, ``'backpressure'``
    counts output-full stalls; both relative to total cycles, per hop.
    """
    cfg = DEFAULT_CONFIG
    groups, _ = plan_groups(cfg.mesh_width, cfg.mesh_height, lanes)
    out = {}
    for b in benches:
        r = cache.run(b, f'V{lanes}')
        cycles = max(1, r.cycles)
        per_hop = [0.0] * (lanes + 1)
        counts = [0] * (lanes + 1)
        for g in groups:
            for cid in g.tiles:
                hop = g.hop_of(cid)
                cs = r.stats.cores[cid]
                stall = (cs.stall_inet_input if kind == 'input'
                         else cs.stall_backpressure)
                per_hop[hop] += stall / cycles
                counts[hop] += 1
        out[b] = [per_hop[h] / counts[h] if counts[h] else 0.0
                  for h in range(lanes + 1)]
    return out


def fig15c_frame_stalls(cache: ResultCache,
                        benches: Sequence[str] = POLY) -> Series:
    """Fraction of cycles waiting for a frame: NV_PF vs V4 (Figure 15c)."""
    s = Series('Figure 15c: fraction of cycles waiting for a frame',
               ['NV_PF', 'V4'], mean_kind='amean')
    cfg = DEFAULT_CONFIG
    groups, _ = plan_groups(cfg.mesh_width, cfg.mesh_height, 4)
    lane_ids = [cid for g in groups for cid in g.lanes]
    for b in benches:
        pf = cache.run(b, 'NV_PF')
        active = [c for c in pf.stats.cores.values() if c.instrs > 0]
        frac = (sum(c.stall_frame + c.stall_loadq for c in active) /
                max(1, len(active) * pf.cycles))
        s.add(b, 'NV_PF', frac)
        v4 = cache.run(b, 'V4')
        vstats = [v4.stats.cores[c] for c in lane_ids]
        frac = (sum(c.stall_frame for c in vstats) /
                max(1, len(vstats) * v4.cycles))
        s.add(b, 'V4', frac)
    return s


# ------------------------------------------------------------------ Figure 16
def fig16_vector_lengths(cache: ResultCache,
                         benches: Sequence[str] = POLY) -> Series:
    """Speedup of vector-length / long-line variants over V4 (Figure 16)."""
    s = Series('Figure 16: speedup relative to V4',
               ['V4', 'V4_LL_PCV', 'V16', 'V16_LL_PCV'])
    for b in benches:
        base = cache.run(b, 'V4').cycles
        s.add(b, 'V4', 1.0)
        s.add(b, 'V16', base / cache.run(b, 'V16').cycles)
        if (b in registry.LONG_LINE_SET and b != 'gramschm'
                and cache.scale == 'bench'):
            s.add(b, 'V4_LL_PCV',
                  base / cache.run(b, 'V4_LL_PCV').cycles)
            s.add(b, 'V16_LL_PCV',
                  base / cache.run(b, 'V16_LL_PCV').cycles)
    return s


# ------------------------------------------------------------------ Figure 17
def fig17a_miss_rate(cache: ResultCache,
                     benches: Sequence[str] = POLY) -> Series:
    """LLC miss rates (Figure 17a)."""
    s = Series('Figure 17a: LLC miss rate',
               ['NV', 'NV_PF', 'BEST_V', 'V16_LL'], mean_kind='amean',
               value_format='{:.3f}')
    for b in benches:
        s.add(b, 'NV', cache.run(b, 'NV').stats.mem.miss_rate)
        s.add(b, 'NV_PF', cache.run(b, 'NV_PF').stats.mem.miss_rate)
        s.add(b, 'BEST_V', _best_v(cache, b).stats.mem.miss_rate)
        if b in registry.LONG_LINE_SET and cache.scale == 'bench':
            s.add(b, 'V16_LL', cache.run(b, 'V16_LL').stats.mem.miss_rate)
    return s


def fig17b_llc_capacity(cache: ResultCache,
                        benches: Sequence[str] = POLY) -> Series:
    """Sensitivity to LLC capacity (Figure 17b).

    The paper shrinks the LLC to 16/32 kB for this sweep so capacity
    pressure is visible; we do the same relative to our scaled inputs.
    """
    cols = []
    s = Series('Figure 17b: speedup relative to NV_PF @ 32kB LLC', [])
    for b in benches:
        base = None
        for name, cfgname in [('NV_PF', 'NV_PF'), ('V4', 'V4'),
                              ('V16_LL', 'V16_LL')]:
            if cfgname == 'V16_LL' and (
                    b not in registry.LONG_LINE_SET or
                    cache.scale != 'bench'):
                continue
            for kb in (16, 32):
                machine = get(cfgname).machine().scaled(
                    llc_capacity_bytes=kb * 1024)
                r = cache.run(b, cfgname, machine=machine)
                col = f'{name}_{kb}kB'
                if col not in s.columns:
                    s.columns.append(col)
                if name == 'NV_PF' and kb == 32:
                    base = r.cycles
                s.add(b, col, r.cycles)
        for col in list(s.rows[b]):
            s.rows[b][col] = base / s.rows[b][col]
    return s


def fig17c_noc_width(cache: ResultCache,
                     benches: Sequence[str] = POLY) -> Series:
    """Sensitivity to on-chip network width (Figure 17c)."""
    s = Series('Figure 17c: speedup relative to NV_PF @ NW1', [])
    for b in benches:
        base = None
        for name, cfgname in [('NV_PF', 'NV_PF'), ('V4', 'V4'),
                              ('V16_LL', 'V16_LL')]:
            if cfgname == 'V16_LL' and (
                    b not in registry.LONG_LINE_SET or
                    cache.scale != 'bench'):
                continue
            for nw in (1, 4):
                machine = get(cfgname).machine().scaled(
                    noc_width_words=nw)
                r = cache.run(b, cfgname, machine=machine)
                col = f'{name}_NW{nw}'
                if col not in s.columns:
                    s.columns.append(col)
                if name == 'NV_PF' and nw == 1:
                    base = r.cycles
                s.add(b, col, r.cycles)
        for col in list(s.rows[b]):
            s.rows[b][col] = base / s.rows[b][col]
    return s


# ------------------------------------------------------------- Section 6.6 bfs
def bfs_irregular(cache: ResultCache) -> Series:
    """NV vs vector groups on bfs (Section 6.6: NV is ~2.9x faster)."""
    s = Series('Section 6.6: bfs speedup relative to V4 (higher = NV wins)',
               ['NV', 'V4', 'V16'])
    base = cache.run('bfs', 'V4').cycles
    s.add('bfs', 'NV', base / cache.run('bfs', 'NV').cycles)
    s.add('bfs', 'V4', 1.0)
    s.add('bfs', 'V16', base / cache.run('bfs', 'V16').cycles)
    return s


#: CLI/sweep-facing registry: figure name -> function name in this module.
#: Every entry takes (cache, benches=...) except 'bfs' (cache only).
FIGURES = {
    'fig10a': 'fig10a_speedup', 'fig10b': 'fig10b_icache',
    'fig10c': 'fig10c_energy', 'fig11': 'fig11_scalability',
    'fig14a': 'fig14a_speedup', 'fig14b': 'fig14b_icache',
    'fig14c': 'fig14c_energy', 'fig15c': 'fig15c_frame_stalls',
    'fig16': 'fig16_vector_lengths', 'fig17a': 'fig17a_miss_rate',
    'fig17b': 'fig17b_llc_capacity', 'fig17c': 'fig17c_noc_width',
    'bfs': 'bfs_irregular',
}
