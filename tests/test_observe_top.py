"""``repro top``: dashboard frames render from live plane snapshots."""

import io

from repro.observe.top import TopDashboard, run_top
from repro.serve import generate_trace


def _trace():
    return generate_trace(seed=3, n_requests=4, scale='test',
                          mean_interarrival=400)


def test_run_top_streams_frames():
    stream = io.StringIO()
    result = run_top(_trace(), refresh=1500, stream=stream)
    assert all(r.state == 'done' for r in result.requests)
    dash = result.dashboard
    assert dash.frames >= 2
    assert dash.frames == result.plane.snapshots
    text = stream.getvalue()
    # plain (non-tty) stream appends frames instead of ANSI-clearing
    assert '\x1b[' not in text
    frames = [f for f in text.split('\n\n') if f.strip()]
    assert len(frames) >= dash.frames - 1
    first = text.split('\n\n')[0]
    assert first.startswith('repro top — cycle ')
    assert 'requests:' in first and 'fabric:' in first
    assert 'noc link utilization' in text
    # later frames report completions and latency percentiles
    assert 'latency: p50' in text
    assert ' done,' in text


def test_dashboard_respects_max_rows_and_ansi():
    stream = io.StringIO()
    result = run_top(_trace(), refresh=2000, stream=stream)
    plane = result.plane
    # synthesize a crowded in-flight table and re-render one frame
    for i in range(20):
        plane.inflight[1000 + i] = {
            'req_id': 1000 + i, 'kernel': 'gemm', 'state': 'queued',
            'tiles': 4, 'priority': 0, 'since': 0}
    dash = TopDashboard(plane, max_rows=5, stream=io.StringIO(),
                        use_ansi=True)
    frame = dash.render_frame(now=12345)
    assert 'cycle 12345' in frame
    assert '... ' in frame and ' more' in frame
    assert frame.count('queued') >= 5
    dash._on_snapshot(plane, 12345)
    out = dash.stream.getvalue()
    assert out.startswith('\x1b[2J\x1b[H')  # ANSI repaint-in-place
    assert dash.frames == 1
