#!/usr/bin/env python3
"""Configurable vector length: sweep group sizes on one kernel.

Software-defined vectors let the application pick its hardware vector
length (paper Section 2.1); this sweep shows the trade-off the paper's
Figure 16 explores: longer groups amortize more frontend energy but
concentrate more memory work on a single scalar core.

Run:  python examples/vector_length_sweep.py [benchmark]
"""

import sys

from repro.core.vgroup import plan_groups, utilization
from repro.harness import run_benchmark
from repro.harness.configs import Config
from repro.kernels import registry
from repro.manycore import DEFAULT_CONFIG


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else 'bicg'
    bench = registry.make(name)
    params = bench.bench_params
    w, h = DEFAULT_CONFIG.mesh_width, DEFAULT_CONFIG.mesh_height
    print(f'benchmark: {name}  params: {params}  fabric: {w}x{h}\n')
    print(f'{"lanes":>6s} {"groups":>7s} {"tiles used":>11s} '
          f'{"cycles":>9s} {"fetches":>9s} {"energy":>10s}')

    for lanes in (2, 4, 8, 16):
        groups, idle = plan_groups(w, h, lanes)
        cfg = Config(f'V{lanes}', 'vector', lanes=lanes)
        r = run_benchmark(bench, cfg, params)
        used = w * h - len(idle)
        print(f'{lanes:6d} {len(groups):7d} {used:8d} '
              f'({utilization(w, h, lanes):4.0%}) {r.cycles:9d} '
              f'{r.icache_accesses:9d} '
              f'{r.energy.on_chip_total / 1e6:8.2f}uJ')

    print('\nshorter groups keep more scalar cores feeding memory; longer '
          'groups amortize\nmore fetch energy — the best point is '
          'per-application (paper Figure 16).')


if __name__ == '__main__':
    main()
