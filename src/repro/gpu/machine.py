"""A cycle-approximate SIMT GPU model (paper Section 5.3).

Execution: each compute unit issues at most one wavefront instruction per
cycle, round-robin over its resident wavefronts; a vector ALU retires a
64-thread wavefront instruction in four cycles.  Wavefront registers are
numpy vectors (one element per thread), per-lane masking follows the same
predication ops as the SDV ISA, and control flow must be wavefront-uniform
(divergent branches are a modeling error — kernels use predication, the
same discipline the vector groups follow).

Memory: per-lane addresses coalesce into distinct cache lines.  Lines walk
the TCP (per-CU L1) -> TCC (shared L2) -> GPU LLC -> DRAM hierarchy; each
level serializes one line per cycle per port, the same contention treatment
the manycore model uses for its LLC banks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..isa import Program, opcodes as op
from ..isa.instruction import Instr
from .config import DEFAULT_GPU, GpuConfig

INF = 1 << 60


class GpuError(Exception):
    """Divergent control flow or an unsupported instruction on the GPU."""


class _TagArray:
    """Set-associative tag array with LRU and a 1-line/cycle port."""

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int,
                 hit_latency: int):
        lines = max(1, capacity_bytes // line_bytes)
        self.num_sets = max(1, lines // ways)
        self.ways = ways
        self.hit_latency = hit_latency
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._port_free = 0.0
        self.accesses = 0
        self.misses = 0

    def access(self, line: int, now: float) -> (bool, float):
        """Returns (hit, time_after_this_level)."""
        start = max(now, self._port_free)
        self._port_free = start + 1.0
        self.accesses += 1
        s = self._sets[line % self.num_sets]
        if line in s:
            s.remove(line)
            s.insert(0, line)
            return True, start + self.hit_latency
        self.misses += 1
        if len(s) >= self.ways:
            s.pop()
        s.insert(0, line)
        return False, start + self.hit_latency


class GpuMemSystem:
    """TCP -> TCC -> LLC -> DRAM line pipeline."""

    def __init__(self, cfg: GpuConfig):
        self.cfg = cfg
        lb = cfg.cache_line_bytes
        self.tcp = [_TagArray(cfg.tcp_capacity_bytes, cfg.tcp_ways, lb,
                              cfg.tcp_hit_latency)
                    for _ in range(cfg.compute_units)]
        self.tcc = _TagArray(cfg.tcc_capacity_bytes, cfg.tcc_ways, lb,
                             cfg.tcc_hit_latency)
        self.llc = _TagArray(cfg.llc_capacity_bytes, cfg.llc_ways, lb,
                             cfg.llc_hit_latency)
        self._dram_free = 0.0
        self.dram_lines = 0

    def access_lines(self, cu: int, lines: Sequence[int],
                     now: int) -> float:
        """Service a coalesced set of lines; returns completion time."""
        done = float(now)
        for line in lines:
            hit, t = self.tcp[cu].access(line, now)
            if not hit:
                hit, t = self.tcc.access(line, t)
                if not hit:
                    hit, t = self.llc.access(line, t)
                    if not hit:
                        start = max(t, self._dram_free)
                        xfer = (self.cfg.line_words /
                                self.cfg.dram_bandwidth_words_per_cycle)
                        self._dram_free = start + xfer
                        self.dram_lines += 1
                        t = start + self.cfg.dram_latency + xfer
            done = max(done, t)
        return done


class Wavefront:
    """One 64-thread wavefront executing a kernel program."""

    def __init__(self, wid: int, cu: int, cfg: GpuConfig):
        self.wid = wid
        self.cu = cu
        self.cfg = cfg
        n = cfg.wavefront_size
        self.regs: List[np.ndarray] = [np.zeros(n) for _ in range(64)]
        self.mask = np.ones(n, dtype=bool)
        self.pc = 0
        self.done = False
        self.busy = [0.0] * 64  # scoreboard
        self.ready_at = 0.0
        self.instrs = 0


class GpuMachine:
    """The APU: compute units + memory hierarchy + flat global memory.

    Presents the same allocation interface as the manycore ``Fabric`` so
    benchmark ``setup``/``verify`` work unchanged.
    """

    def __init__(self, cfg: GpuConfig = DEFAULT_GPU):
        self.cfg = cfg
        self._alloc_list: List[float] = []
        self.memory: Optional[np.ndarray] = None
        self.mem = GpuMemSystem(cfg)
        self.cycle = 0
        self.total_instrs = 0
        self.telemetry = None  # optional Telemetry (see repro.telemetry)

    # -- Fabric-compatible allocation ----------------------------------------
    def alloc(self, data_or_size, fill=0.0) -> int:
        lw = self.cfg.line_words
        base = ((max(len(self._alloc_list), lw) + lw - 1) // lw) * lw
        if isinstance(data_or_size, int):
            values = [fill] * data_or_size
        else:
            values = [float(v) for v in data_or_size]
        self._alloc_list.extend([0.0] * (base - len(self._alloc_list)))
        self._alloc_list.extend(values)
        pad = (lw - len(self._alloc_list) % lw) % lw + lw
        self._alloc_list.extend([0.0] * pad)
        return base

    def read_array(self, base: int, n: int) -> List[float]:
        return list(self.memory[base:base + n])

    def _freeze_memory(self) -> None:
        self.memory = np.array(self._alloc_list, dtype=float)

    # -- kernel execution -------------------------------------------------------
    def launch(self, program: Program, entry: int = 0) -> int:
        """Run one kernel to completion; returns cycles consumed."""
        if self.memory is None:
            self._freeze_memory()
        cfg = self.cfg
        wavefronts: List[Wavefront] = []
        wid = 0
        for cu in range(cfg.compute_units):
            for _ in range(cfg.wavefronts_per_cu):
                wf = Wavefront(wid, cu, cfg)
                wf.pc = entry
                base = wid * cfg.wavefront_size
                wf.tid = np.arange(base, base + cfg.wavefront_size,
                                   dtype=float)
                wavefronts.append(wf)
                wid += 1

        start = self.cycle + cfg.kernel_launch_overhead
        now = float(start)
        rr = [0] * cfg.compute_units
        per_cu = [[w for w in wavefronts if w.cu == c]
                  for c in range(cfg.compute_units)]
        live = set(range(len(wavefronts)))
        while live:
            progressed = False
            next_time = INF
            for cu in range(cfg.compute_units):
                wfs = per_cu[cu]
                issued = False
                for k in range(len(wfs)):
                    wf = wfs[(rr[cu] + k) % len(wfs)]
                    if wf.done:
                        continue
                    t = self._try_issue(wf, program, now)
                    if t is True:
                        rr[cu] = (rr[cu] + k + 1) % len(wfs)
                        issued = True
                        progressed = True
                        if wf.done:
                            live.discard(wf.wid)
                        break
                    next_time = min(next_time, t)
                if issued:
                    next_time = min(next_time, now + 1)
            if not live:
                break
            if progressed:
                now += 1.0
            else:
                if next_time >= INF:
                    raise GpuError('GPU deadlock: no wavefront can issue')
                now = max(now + 1.0, float(next_time))
        self.cycle = int(math.ceil(now))
        return self.cycle - start + cfg.kernel_launch_overhead

    # -- per-instruction execution ---------------------------------------------
    def _try_issue(self, wf: Wavefront, program: Program, now: float):
        """Issue wavefront's next instruction if ready.

        Returns True when issued, else the earliest cycle it could issue.
        """
        inst: Instr = program.instrs[wf.pc]
        worst = 0.0
        for r in inst.reads:
            worst = max(worst, wf.busy[r])
        for w in inst.writes:
            worst = max(worst, wf.busy[w])
        if worst > now:
            return worst
        self._execute(wf, inst, now)
        wf.instrs += 1
        self.total_instrs += 1
        return True

    def _writeback(self, wf: Wavefront, rd: int, value: np.ndarray,
                   at: float) -> None:
        if rd == 0:
            return
        old = wf.regs[rd]
        wf.regs[rd] = np.where(wf.mask, value, old)
        wf.busy[rd] = at

    def _execute(self, wf: Wavefront, inst: Instr, now: float) -> None:
        o = inst.op
        cfg = self.cfg
        regs = wf.regs
        wb = now + cfg.valu_latency
        rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2

        if o == op.LI:
            self._writeback(wf, rd, np.full(cfg.wavefront_size,
                                            float(inst.imm)), wb)
        elif o == op.MV:
            self._writeback(wf, rd, regs[rs1], wb)
        elif o == op.CSRR:
            if inst.imm == op.CSR_TID:
                self._writeback(wf, rd, wf.tid.copy(), wb)
            elif inst.imm == op.CSR_NCORES:
                self._writeback(wf, rd, np.full(cfg.wavefront_size,
                                                float(cfg.total_threads)),
                                wb)
            else:
                raise GpuError(f'unsupported CSR {inst.imm} on GPU')
        elif o in (op.ADD, op.FADD):
            self._writeback(wf, rd, regs[rs1] + regs[rs2], wb)
        elif o in (op.SUB, op.FSUB):
            self._writeback(wf, rd, regs[rs1] - regs[rs2], wb)
        elif o in (op.MUL, op.FMUL):
            self._writeback(wf, rd, regs[rs1] * regs[rs2], wb)
        elif o == op.FMA:
            self._writeback(wf, rd, regs[rd] + regs[rs1] * regs[rs2], wb)
        elif o == op.FDIV:
            self._writeback(wf, rd, regs[rs1] / regs[rs2], wb)
        elif o == op.DIV:
            with np.errstate(divide='ignore', invalid='ignore'):
                q = np.nan_to_num(np.trunc(regs[rs1] / regs[rs2]))
            self._writeback(wf, rd, q, wb)
        elif o == op.REM:
            with np.errstate(divide='ignore', invalid='ignore'):
                q = np.nan_to_num(np.trunc(regs[rs1] / regs[rs2]))
            self._writeback(wf, rd, regs[rs1] - q * regs[rs2], wb)
        elif o == op.FSQRT:
            self._writeback(wf, rd, np.sqrt(np.abs(regs[rs1])), wb)
        elif o == op.FMIN:
            self._writeback(wf, rd, np.minimum(regs[rs1], regs[rs2]), wb)
        elif o == op.FMAX:
            self._writeback(wf, rd, np.maximum(regs[rs1], regs[rs2]), wb)
        elif o in (op.FABS,):
            self._writeback(wf, rd, np.abs(regs[rs1]), wb)
        elif o in (op.FNEG,):
            self._writeback(wf, rd, -regs[rs1], wb)
        elif o == op.ADDI:
            self._writeback(wf, rd, regs[rs1] + inst.imm, wb)
        elif o == op.SLT:
            self._writeback(wf, rd,
                            (regs[rs1] < regs[rs2]).astype(float), wb)
        elif o == op.SLTI:
            self._writeback(wf, rd, (regs[rs1] < inst.imm).astype(float),
                            wb)
        elif o in (op.FLT,):
            self._writeback(wf, rd,
                            (regs[rs1] < regs[rs2]).astype(float), wb)
        elif o in (op.FLE,):
            self._writeback(wf, rd,
                            (regs[rs1] <= regs[rs2]).astype(float), wb)
        elif o in (op.FEQ,):
            self._writeback(wf, rd,
                            (regs[rs1] == regs[rs2]).astype(float), wb)
        elif o == op.AND:
            self._writeback(wf, rd, (regs[rs1].astype(int) &
                                     regs[rs2].astype(int)).astype(float),
                            wb)
        elif o == op.OR:
            self._writeback(wf, rd, (regs[rs1].astype(int) |
                                     regs[rs2].astype(int)).astype(float),
                            wb)
        elif o in (op.FCVT_WS,):
            self._writeback(wf, rd, np.trunc(regs[rs1]), wb)
        elif o in (op.FCVT_SW,):
            self._writeback(wf, rd, regs[rs1].astype(float), wb)

        elif o == op.LW:
            addrs = (regs[rs1].astype(int) + inst.imm)
            active = wf.mask
            safe = np.clip(addrs, 0, len(self.memory) - 1)
            values = self.memory[safe]
            lines = np.unique(safe[active] // cfg.line_words) \
                if active.any() else np.empty(0, dtype=int)
            done = self.mem.access_lines(wf.cu, lines.tolist(), now)
            if self.telemetry is not None:
                self.telemetry.on_gpu_mem(done - now)
            self._writeback(wf, rd, values, done)
        elif o == op.SW:
            addrs = (regs[rs1].astype(int) + inst.imm)
            active = wf.mask
            if active.any():
                safe = np.clip(addrs, 0, len(self.memory) - 1)
                self.memory[safe[active]] = regs[rs2][active]
                lines = np.unique(safe[active] // cfg.line_words)
                done = self.mem.access_lines(wf.cu, lines.tolist(), now)
                if self.telemetry is not None:
                    self.telemetry.on_gpu_mem(done - now)

        elif o == op.VOTE_ANY:
            any_set = bool(np.any(wf.mask & (regs[rs1] != 0)))
            self._writeback(wf, rd,
                            np.full(cfg.wavefront_size, float(any_set)),
                            now + 1)
        elif o == op.PRED_EQ:
            wf.mask = regs[rs1] == regs[rs2]
        elif o == op.PRED_NEQ:
            wf.mask = regs[rs1] != regs[rs2]

        elif op.is_branch(o) or o == op.J:
            if o == op.J:
                wf.pc = inst.imm
                return
            a, b = regs[rs1], regs[rs2]
            if o == op.BEQ:
                taken = a == b
            elif o == op.BNE:
                taken = a != b
            elif o == op.BLT:
                taken = a < b
            else:
                taken = a >= b
            t0 = bool(taken[0])
            if not bool(np.all(taken == t0)):
                raise GpuError(f'divergent branch at pc {wf.pc}; GPU '
                               f'kernels must use predication')
            wf.pc = inst.imm if t0 else wf.pc + 1
            return
        elif o == op.HALT:
            wf.done = True
            return
        elif o == op.NOP:
            pass
        else:
            raise GpuError(f'opcode {op.name(o)} unsupported on the GPU')
        wf.pc += 1
