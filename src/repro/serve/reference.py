"""Isolated-run references for co-scheduling equivalence checks.

The serving acceptance bar is *bit-identical results*: a kernel scheduled
next to strangers on a shared fabric must produce exactly the output it
would produce running alone.  This module builds that "alone" baseline.

Equivalence holds by construction, and these helpers make the
construction explicit: a serve region is a contiguous run of the
serpentine path, and tiles inside a job are ranked by their position on
that run — so a fresh fabric running the same program on the serpentine
*prefix* of the same length sees identical ``tid`` / ``ncores`` /
``group_id`` / ``ngroups`` CSR values, and therefore executes the exact
same floating-point dataflow.  Array base addresses differ between the
shared and isolated fabrics, but addresses never enter the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.vgroup import serpentine_order
from ..kernels import registry
from ..kernels.base import VectorParams
from ..manycore import Fabric, RunStats
from .request import KernelRequest


@dataclass
class IsolatedRun:
    """Outputs (and cost) of one request run alone on a fresh fabric."""

    outputs: Dict[str, np.ndarray]
    cycles: int
    stats: RunStats


def isolated_reference(req: KernelRequest,
                       machine=None,
                       max_cycles: int = 200_000_000) -> IsolatedRun:
    """Run ``req`` alone, on the serpentine prefix matching its shape."""
    fabric = Fabric(machine) if machine is not None else Fabric()
    bench = registry.make(req.kernel)
    ws = bench.setup(fabric, req.params)
    vp = VectorParams(lanes=req.lanes, max_groups=req.groups)
    prog = bench.build_vector(fabric, ws, req.params, vp)
    order = serpentine_order(fabric.cfg.mesh_width, fabric.cfg.mesh_height)
    fabric.load_program(prog, active_cores=order[:req.tiles_needed])
    stats = fabric.run(max_cycles=max_cycles)
    bench.verify(fabric, ws, req.params)
    return IsolatedRun(outputs=_read_outputs(fabric, bench, ws, req.params),
                       cycles=stats.cycles, stats=stats)


def request_outputs(fabric: Fabric,
                    req: KernelRequest) -> Optional[Dict[str, np.ndarray]]:
    """Read a served request's output arrays off the shared fabric.

    Returns None for requests that never launched (their workspace was
    never allocated).  Must be called after the serving run, before the
    fabric is reused.
    """
    if req._ws is None or req._bench is None:
        return None
    return _read_outputs(fabric, req._bench, req._ws, req.params)


def _read_outputs(fabric, bench, ws, params) -> Dict[str, np.ndarray]:
    out = {}
    for name, want in bench.expected(ws, params).items():
        size = np.asarray(want, dtype=float).ravel().size
        out[name] = np.array(fabric.read_array(ws.base(name), size),
                             dtype=float)
    return out
