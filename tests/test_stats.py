"""RunStats: summary text, stall breakdown, and cross-run merge."""

import dataclasses

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import small_config
from repro.manycore.stats import (STALL_CAUSES, CoreStats, MemStats,
                                  RunStats)


def run_gemm(config='V4'):
    bench = registry.make('gemm')
    params = bench.params_for('test')
    return run_benchmark(bench, config, params, base_machine=small_config())


class TestSummary:
    def test_summary_includes_full_stall_taxonomy(self):
        r = run_gemm()
        text = r.stats.summary()
        for cause in STALL_CAUSES:
            assert cause[len('stall_'):] in text, cause
        assert 'stall cycles:' in text

    def test_summary_includes_noc_word_hops(self):
        r = run_gemm()
        assert f'NoC word-hops: {r.stats.noc_word_hops}' in \
            r.stats.summary()
        assert r.stats.noc_word_hops > 0

    def test_stall_breakdown_matches_cores(self):
        r = run_gemm()
        breakdown = r.stats.stall_breakdown()
        assert set(breakdown) == set(STALL_CAUSES)
        for cause, total in breakdown.items():
            assert total == sum(getattr(c, cause)
                                for c in r.stats.cores.values())


class TestMerge:
    def make(self, cid, **kw):
        rs = RunStats(cycles=kw.pop('cycles', 10))
        rs.noc_word_hops = kw.pop('noc_word_hops', 0)
        rs.mem = MemStats(**{k: v for k, v in kw.items()
                             if k in {f.name for f in
                                      dataclasses.fields(MemStats)}})
        core_kw = {k: v for k, v in kw.items()
                   if k in {f.name for f in dataclasses.fields(CoreStats)}}
        rs.cores[cid] = CoreStats(**core_kw)
        return rs

    def test_merge_sums_everything(self):
        a = self.make(0, cycles=100, instrs=40, stall_frame=5,
                      llc_accesses=7, noc_word_hops=11)
        b = self.make(0, cycles=50, instrs=10, stall_frame=2,
                      llc_accesses=3, noc_word_hops=4)
        m = RunStats.merge([a, b])
        assert m.cycles == 150
        assert m.noc_word_hops == 15
        assert m.mem.llc_accesses == 10
        assert m.cores[0].instrs == 50
        assert m.cores[0].stall_frame == 7

    def test_merge_matches_cores_by_id(self):
        a = self.make(0, instrs=5)
        b = self.make(3, instrs=7)
        m = RunStats.merge([a, b])
        assert set(m.cores) == {0, 3}
        assert m.cores[0].instrs == 5
        assert m.cores[3].instrs == 7

    def test_merge_of_real_runs(self):
        r1, r2 = run_gemm('V4'), run_gemm('NV')
        m = RunStats.merge([r1.stats, r2.stats])
        assert m.total_instrs == \
            r1.stats.total_instrs + r2.stats.total_instrs
        assert m.mem.llc_accesses == \
            r1.stats.mem.llc_accesses + r2.stats.mem.llc_accesses
        for cause in STALL_CAUSES:
            assert m.stall_breakdown()[cause] == \
                r1.stats.stall_breakdown()[cause] + \
                r2.stats.stall_breakdown()[cause]

    def test_merge_empty(self):
        m = RunStats.merge([])
        assert m.cycles == 0 and not m.cores
