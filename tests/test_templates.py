"""Structural tests on the generated kernels (the codegen contract).

These inspect assembled programs rather than running them: load counts per
frame, dispatch structure, unaligned pairs, and predication placement are
the codegen-level invariants the runtime tests assume.
"""

import pytest

from repro.core.vgroup import plan_groups
from repro.isa import VL_ALIGNED, VL_PREFIX, VL_SUFFIX, opcodes as op
from repro.kernels.base import VectorParams
from repro.kernels.registry import make
from repro.manycore import Fabric, small_config


def build(name, config='V4', scale='test'):
    bench = make(name)
    fabric = Fabric(small_config())
    params = bench.params_for(scale)
    ws = bench.setup(fabric, params)
    if config.startswith('V'):
        vp = VectorParams(lanes=int(config[1:].split('_')[0]))
        prog = bench.build_vector(fabric, ws, params, vp)
    else:
        prog = bench.build_mimd(fabric, ws, params,
                                prefetch=config == 'NV_PF')
    return fabric, prog


def ops_of(prog):
    return [i.op for i in prog.instrs]


class TestVectorProgramStructure:
    def test_gemm_has_full_sdv_lifecycle(self):
        _, prog = build('gemm', 'V4')
        ops = ops_of(prog)
        for needed in (op.VCONFIG, op.VISSUE, op.VLOAD, op.FRAME_START,
                       op.REMEM, op.VEND, op.DEVEC, op.BARRIER, op.HALT):
            assert needed in ops, op.name(needed)

    def test_group_and_single_variants_used(self):
        """gemm's scalar stream mixes GROUP loads (B rows) and SINGLE
        broadcasts (A chunks), per the template design."""
        from repro.isa.instruction import VL_GROUP, VL_SINGLE
        _, prog = build('gemm', 'V4')
        variants = {i.ex[2] for i in prog.instrs if i.op == op.VLOAD}
        assert VL_GROUP in variants
        assert VL_SINGLE in variants

    def test_stencil_emits_unaligned_pairs(self):
        """2dconv's shifted taps must use the PREFIX/SUFFIX pair."""
        _, prog = build('2dconv', 'V4')
        parts = [i.ex[3] for i in prog.instrs if i.op == op.VLOAD]
        assert VL_PREFIX in parts
        assert VL_SUFFIX in parts
        assert parts.count(VL_PREFIX) == parts.count(VL_SUFFIX)

    def test_stencil_predication_wraps_stores(self):
        """Every pred-off region in the stencil body closes with the
        re-enable idiom pred_eq x0, x0."""
        _, prog = build('2dconv', 'V4')
        instrs = prog.instrs
        opens = [k for k, i in enumerate(instrs)
                 if i.op == op.PRED_EQ and (i.rs1 != 0 or i.rs2 != 0)]
        assert opens, 'boundary masking should exist'
        for k in opens:
            # the next predication op after an open must be the re-enable
            for j in range(k + 1, len(instrs)):
                if instrs[j].op in (op.PRED_EQ, op.PRED_NEQ):
                    assert instrs[j].op == op.PRED_EQ
                    assert instrs[j].rs1 == 0 and instrs[j].rs2 == 0
                    break

    def test_mimd_kernels_have_no_sdv_group_ops(self):
        _, prog = build('gemm', 'NV')
        ops = ops_of(prog)
        for banned in (op.VCONFIG, op.VISSUE, op.DEVEC, op.VEND):
            assert banned not in ops, op.name(banned)

    def test_nv_pf_uses_self_vloads_only(self):
        from repro.isa.instruction import VL_SELF
        _, prog = build('gemm', 'NV_PF')
        variants = {i.ex[2] for i in prog.instrs if i.op == op.VLOAD}
        assert variants == {VL_SELF}

    def test_nv_has_no_vloads(self):
        _, prog = build('gemm', 'NV')
        assert op.VLOAD not in ops_of(prog)

    def test_dispatch_table_covers_every_core(self):
        fabric, prog = build('bicg', 'V4')
        # the first phase's dispatch reads one table entry per core; every
        # entry must be a valid pc
        groups, idle = plan_groups(4, 4, 4)
        # find the table by looking at memory: entries patched at finish()
        # are the only integers >= 0 and < len(prog) in the first lines...
        # instead assert via the jr-based dispatch: program starts csrr/jr
        ops = ops_of(prog)[:8]
        assert op.JR in ops

    def test_program_fits_plausible_icache_footprint(self):
        """Programs stay small; per-core working sets fit the 1k-instr
        I-cache after the dispatch jump."""
        _, prog = build('gemm', 'V4')
        assert len(prog) < 4000


class TestAblationKnobsReachCodegen:
    def test_long_lines_reduce_vload_count(self):
        """With 256 B lines one GROUP vload covers what four did at 64 B,
        so the scalar stream shrinks (the Figure 16 mechanism)."""
        bench = make('gesummv')
        counts = {}
        for line_bytes in (64, 256):
            fabric = Fabric(small_config(cache_line_bytes=line_bytes))
            params = dict(bench.test_params)
            params['n'] = 64
            ws = bench.setup(fabric, params)
            prog = bench.build_vector(fabric, ws, params,
                                      VectorParams(lanes=4))
            counts[line_bytes] = sum(1 for i in prog.instrs
                                     if i.op == op.VLOAD)
        assert counts[256] < counts[64]
