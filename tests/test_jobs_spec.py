"""Job-spec normalization, content-addressed keys, and cache keying."""

import pytest

from repro.harness.figures import ResultCache
from repro.jobs import JobSpec, machine_hash
from repro.jobs import spec as spec_mod
from repro.manycore import DEFAULT_CONFIG, small_config


class TestNormalization:
    def test_param_dict_ordering_does_not_change_key(self):
        a = JobSpec.make('gemm', 'NV', params_override={'n': 8, 'm': 4})
        b = JobSpec.make('gemm', 'NV', params_override={'m': 4, 'n': 8})
        assert a == b
        assert a.key() == b.key()

    def test_active_cores_empty_and_none_are_equal(self):
        assert JobSpec.make('gemm', 'NV', active_cores=None) == \
            JobSpec.make('gemm', 'NV', active_cores=())
        assert JobSpec.make('gemm', 'NV', active_cores=[]).active_cores \
            is None

    def test_active_cores_order_preserved(self):
        # core order is part of the point's identity (placement matters)
        a = JobSpec.make('gemm', 'NV', active_cores=(0, 1))
        b = JobSpec.make('gemm', 'NV', active_cores=(1, 0))
        assert a.key() != b.key()

    def test_machine_config_flattens_and_keys_structurally(self):
        a = JobSpec.make('gemm', 'NV', machine=small_config())
        b = JobSpec.make('gemm', 'NV', machine=small_config())
        c = JobSpec.make('gemm', 'NV', machine=DEFAULT_CONFIG)
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert a.machine_config() == small_config()

    def test_default_machine_is_none(self):
        s = JobSpec.make('gemm', 'NV')
        assert s.machine is None and s.machine_config() is None


class TestKeys:
    def test_key_differs_by_every_dimension(self):
        base = JobSpec.make('gemm', 'NV')
        others = [
            JobSpec.make('bicg', 'NV'),
            JobSpec.make('gemm', 'V4'),
            JobSpec.make('gemm', 'NV', scale='test'),
            JobSpec.make('gemm', 'NV', verify=False),
            JobSpec.make('gemm', 'NV', params_override={'n': 2}),
            JobSpec.make('gemm', 'NV', machine=small_config()),
            JobSpec.make('gemm', 'NV', active_cores=(0,)),
            JobSpec.make('gemm', 'NV', max_cycles=123),
        ]
        keys = {base.key()} | {o.key() for o in others}
        assert len(keys) == len(others) + 1

    def test_code_version_salt_changes_key(self, monkeypatch):
        s = JobSpec.make('gemm', 'NV')
        before = s.key()
        monkeypatch.setattr(spec_mod, 'CODE_VERSION',
                            spec_mod.CODE_VERSION + 1)
        assert s.key() != before
        assert s.key(salt=spec_mod.CODE_VERSION - 1) == before

    def test_round_trip_through_dict(self):
        s = JobSpec.make('gemm', 'V4', scale='test', verify=False,
                         params_override={'n': 8},
                         machine=small_config(), active_cores=(3, 1),
                         max_cycles=999)
        assert JobSpec.from_dict(s.to_dict()) == s
        # and through JSON (tuples -> lists -> normalized back)
        import json
        assert JobSpec.from_dict(json.loads(json.dumps(s.to_dict()))) == s


class TestMachineHash:
    def test_stable_and_distinct(self):
        assert machine_hash(None) == 'default'
        assert machine_hash(DEFAULT_CONFIG) == machine_hash(DEFAULT_CONFIG)
        assert machine_hash(DEFAULT_CONFIG) != machine_hash(small_config())


class TestResultCacheKeying:
    """ResultCache.run must normalize before keying (satellite fix)."""

    def test_active_cores_none_vs_empty_single_simulation(self):
        cache = ResultCache(scale='test')
        r1 = cache.run('bicg', 'NV', active_cores=None)
        r2 = cache.run('bicg', 'NV', active_cores=())
        assert r1 is r2
        assert cache.simulations == 1

    def test_params_override_ordering_single_simulation(self):
        cache = ResultCache(scale='test')
        pa = dict([('n', 32), ('m', 32)])
        pb = dict([('m', 32), ('n', 32)])
        r1 = cache.run('bicg', 'NV', params_override=pa)
        r2 = cache.run('bicg', 'NV', params_override=pb)
        assert r1 is r2
        assert cache.simulations == 1

    def test_distinct_points_still_distinct(self):
        cache = ResultCache(scale='test')
        cache.run('bicg', 'NV')
        cache.run('bicg', 'NV', active_cores=(0,))
        assert cache.simulations == 2
