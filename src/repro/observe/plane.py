"""The observability plane: probes -> registry + heatmaps + snapshots.

:class:`ObservePlane` is the serving-time counterpart of
:class:`~repro.telemetry.Telemetry`, and follows the same discipline so
it can stay attached by default:

* the fabric holds ``fabric.observe = None`` unless a plane is attached,
  so the disabled path costs one attribute load and a None check per
  probe site;
* enabled probes are pre-bound ``list.append`` calls that record a
  reference or a small tuple — no route walking, no dict lookups, no
  label formatting on the hot path;
* everything expensive (XY route enumeration, per-bank labeling,
  histogram bucketing, JSONL serialization) happens at *drain* time,
  on snapshot boundaries driven by the fabric's clock the same way the
  telemetry sampler is (no events are posted, so the barrier
  memory-fence check and therefore simulated cycle counts are
  bit-identical with the plane attached — enforced by test).

The plane owns a :class:`~repro.observe.metrics.MetricsRegistry`, the
three congestion heatmaps (NoC link words, LLC bank occupancy, inet
backpressure), an optional JSONL time-series sink (``--metrics-out``),
and an ``on_snapshot`` callback that `repro top` uses to refresh its
dashboard.
"""

from __future__ import annotations

import json
from typing import Callable, List, Optional, Tuple

from ..manycore.llc import KIND_LOAD, KIND_STORE, MemRequest
from ..manycore.noc import bank_coords, tile_coords
from .heatmap import Heatmap, LinkHeatmap
from .metrics import MetricsRegistry

_INF = 1 << 60

_KIND_NAME = {KIND_LOAD: 'load', KIND_STORE: 'store'}


class ObservePlane:
    """Attachable, side-effect-free observer of one fabric."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 snapshot_interval: int = 5000,
                 metrics_out: Optional[str] = None,
                 on_snapshot: Optional[Callable] = None,
                 append: bool = False):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.interval = snapshot_interval
        self.metrics_out = metrics_out
        self.on_snapshot = on_snapshot
        # append mode lets several successive fabrics (fleet shard
        # batches) share one JSONL stream per shard
        self.append = append
        self.next_due = _INF
        self.snapshots = 0
        self._fabric = None
        self._sink = None
        self._last_cycle = 0
        self._bp_base: List[int] = []  # per-tile backpressure baseline

        # hot-path queues; probes are the bound append methods
        self._mem_reqs: List[MemRequest] = []
        self._llc_waits: List[Tuple[int, float]] = []
        self._llc_misses: List[int] = []
        self._remote: List[Tuple[int, int]] = []
        self._frames: List[Tuple[int, int]] = []
        self.on_mem_req = self._mem_reqs.append
        self.on_llc_wait = self._llc_waits.append
        self.on_llc_miss = self._llc_misses.append
        self.on_remote_store = self._remote.append
        self.on_frame_words = self._frames.append

        # heatmaps (sized at bind, when the mesh geometry is known)
        self.link_heat: Optional[LinkHeatmap] = None
        self.llc_heat: Optional[Heatmap] = None
        self.inet_heat: Optional[Heatmap] = None
        self._routes = {}  # (src, dst, is_bank) -> [((x,y),(x,y)), ...]

        reg = self.registry
        self._m_req = reg.counter(
            'mem_requests_total', 'memory requests sent to LLC banks')
        self._m_words = reg.counter(
            'noc_words_total', 'data words moved across NoC links',
            unit='words')
        self._m_llc_acc = reg.counter(
            'llc_bank_accesses_total', 'requests accepted per LLC bank')
        self._m_llc_miss = reg.counter(
            'llc_bank_misses_total', 'line misses per LLC bank')
        self._h_llc_wait = reg.histogram(
            'llc_queue_wait_cycles', 'bank request-port queueing delay')
        self._m_frames = reg.counter(
            'frame_words_total', 'DAE frame words delivered to scratchpads',
            unit='words')
        self._m_remote = reg.counter(
            'remote_stores_total', 'core-to-core scratchpad stores')
        self._g_llc_lines = reg.gauge(
            'llc_resident_lines', 'lines resident per LLC bank')
        self._g_inet = reg.gauge(
            'inet_queue_depth_total', 'inet messages in flight')
        self._g_inet_msgs = reg.gauge(
            'inet_messages_total', 'lifetime inet messages accepted')
        self._g_cycle = reg.gauge('sim_cycle', 'current simulated cycle')
        self._g_tiles = reg.gauge(
            'tiles_active', 'tiles currently owned by a live job')
        # serving-side families (fed by ServeScheduler on state changes)
        self._c_req_state = reg.counter(
            'serve_requests_total', 'request state transitions')
        self._g_queue = reg.gauge(
            'serve_queue_depth', 'requests waiting for tiles')
        self._g_running = reg.gauge(
            'serve_running_jobs', 'requests currently executing')
        self._h_latency = reg.histogram(
            'serve_latency_cycles', 'arrival-to-finish latency')
        self._h_wait = reg.histogram(
            'serve_queue_wait_cycles', 'arrival-to-launch queue wait')
        self._h_service = reg.histogram(
            'serve_service_cycles', 'launch-to-finish service time')
        #: live request table for dashboards: req_id -> row dict
        self.inflight = {}

    # ------------------------------------------------------------ attach/detach
    def attach(self, fabric) -> 'ObservePlane':
        """Install this plane on ``fabric`` (idempotent)."""
        fabric.observe = self
        self.bind(fabric)
        return self

    def detach(self, fabric) -> None:
        if fabric.observe is self:
            fabric.observe = None

    def bind(self, fabric) -> None:
        """Capture geometry and counter baselines; idempotent per fabric."""
        if self._fabric is fabric:
            return
        self._fabric = fabric
        cfg = fabric.cfg
        w, h = cfg.mesh_width, cfg.mesh_height
        self.link_heat = LinkHeatmap(w, h)
        self.llc_heat = Heatmap('llc bank occupancy', w, 2, unit='lines')
        self.inet_heat = Heatmap('inet backpressure', w, h, unit='cycles')
        self._bp_base = [t.stats.stall_backpressure for t in fabric.tiles]
        # pre-resolved geometry and label children: drain/take touch
        # these per record, so resolving them here keeps label-dict
        # construction and coordinate math out of the per-snapshot cost
        self._tile_xy = [tile_coords(t.core_id, w) for t in fabric.tiles]
        nbanks = cfg.llc_banks
        self._bank_xy = [bank_coords(i, nbanks, w, h) for i in range(nbanks)]
        self._bank_acc = [self._m_llc_acc.labels(bank=i)
                          for i in range(nbanks)]
        self._bank_miss = [self._m_llc_miss.labels(bank=i)
                           for i in range(nbanks)]
        self._bank_lines = [self._g_llc_lines.labels(bank=i)
                            for i in range(nbanks)]
        self._kind_req = {k: self._m_req.labels(kind=k)
                          for k in ('load', 'store', 'wide')}
        self._last_cycle = fabric.cycle
        self.next_due = (fabric.cycle + self.interval if self.interval
                         else _INF)
        if self.metrics_out and self._sink is None:
            self._sink = open(self.metrics_out,
                              'a' if self.append else 'w')

    # ----------------------------------------------------------------- routing
    def _route(self, src: int, dst: int, to_bank: bool):
        key = (src, dst, to_bank)
        links = self._routes.get(key)
        if links is None:
            noc = self._fabric.noc
            a = tile_coords(src, noc.width)
            if to_bank:
                b = bank_coords(dst, noc.num_banks, noc.width, noc.height)
            else:
                b = tile_coords(dst, noc.width)
            from ..manycore.noc import route_xy
            links = self._routes[key] = route_xy(a, b)
        return links

    # ------------------------------------------------------------------- drain
    def drain(self) -> None:
        """Fold queued hot-path records into the registry and heatmaps.

        Records are first aggregated into word counts per *flow*
        ``(src, dst, to_bank)`` and per label child, so route walking
        and labeled-counter updates happen once per distinct flow/label
        rather than once per record — drain cost tracks the traffic
        *pattern*, not the traffic volume, which is what keeps the <5%
        overhead gate honest on wide-access-heavy workloads.
        """
        fabric = self._fabric
        if fabric is None:
            return
        lw = fabric.cfg.line_words
        nbanks = fabric.cfg.llc_banks
        heat = self.link_heat
        if self._mem_reqs:
            flows = {}
            kinds = {'load': 0, 'store': 0, 'wide': 0}
            words_total = 0
            for req in self._mem_reqs:
                bank = (req.addr // lw) % nbanks
                kinds[_KIND_NAME.get(req.kind, 'wide')] += 1
                # request packet toward the bank (+ response for loads)
                words = 2 if req.kind == KIND_LOAD else 1
                key = (req.core, bank, True)
                flows[key] = flows.get(key, 0) + words
                words_total += words
                if req.chunks is not None:  # wide: per-chunk responses
                    for (_, count, dest_core, _) in req.chunks:
                        key = (dest_core, bank, True)
                        flows[key] = flows.get(key, 0) + count
                        words_total += count
            del self._mem_reqs[:]
            for (src, dst, to_bank), words in flows.items():
                heat.add_route(self._route(src, dst, to_bank), words)
            for kind, n in kinds.items():
                if n:
                    self._kind_req[kind].inc(n)
            self._m_words.inc(words_total)
        if self._remote:
            flows = {}
            for src, dst in self._remote:
                flows[(src, dst)] = flows.get((src, dst), 0) + 1
            self._m_words.inc(len(self._remote))
            self._m_remote.inc(len(self._remote))
            del self._remote[:]
            for (src, dst), words in flows.items():
                heat.add_route(self._route(src, dst, False), words)
        if self._llc_waits:
            per_bank = [0] * nbanks
            observe_wait = self._h_llc_wait.observe
            for bank, wait in self._llc_waits:
                per_bank[bank] += 1
                observe_wait(wait)
            del self._llc_waits[:]
            for bank, n in enumerate(per_bank):
                if n:
                    self._bank_acc[bank].inc(n)
        if self._llc_misses:
            per_bank = [0] * nbanks
            for bank in self._llc_misses:
                per_bank[bank] += 1
            del self._llc_misses[:]
            for bank, n in enumerate(per_bank):
                if n:
                    self._bank_miss[bank].inc(n)
        if self._frames:
            self._m_frames.inc(sum(n for _core, n in self._frames))
            del self._frames[:]

    # ---------------------------------------------------------------- snapshot
    def take(self, now: int) -> None:
        """Drain + refresh gauges/heatmaps; called on clock boundaries.

        Snapshot cycle stamps are strictly increasing: when the final
        ``finalize`` call lands on a cycle that a periodic snapshot
        already stamped, state is refreshed but no duplicate JSONL line
        is emitted (the ``final`` record carries the end-of-run metrics
        instead) — guarded by test_observe_snapshots.
        """
        fabric = self._fabric
        if fabric is None:
            return
        if self.interval:
            self.next_due = now - now % self.interval + self.interval
        duplicate = self.snapshots and now == self._last_cycle
        self.drain()
        for b in fabric.banks:
            lines = b.resident_lines()
            self._bank_lines[b.bank_id].set(lines)
            col, row = self._bank_xy[b.bank_id]
            self.llc_heat.set(col, 0 if row < 0 else 1, lines)
        depth = 0
        pushes = 0
        active = 0
        for t in fabric.tiles:
            depth += len(t.inet_in)
            pushes += t.inet_in.pushes
            if t.job is not None and not t.job.finished:
                active += 1
            x, y = self._tile_xy[t.core_id]
            self.inet_heat.set(
                x, y, t.stats.stall_backpressure - self._bp_base[t.core_id])
        self._g_inet.set(depth)
        self._g_inet_msgs.set(pushes)
        self._g_tiles.set(active)
        self._g_cycle.set(now)
        self._last_cycle = now
        if duplicate:
            return
        self.snapshots += 1
        if self._sink is not None:
            self._sink.write(json.dumps(
                {'cycle': now, 'metrics': self.registry.snapshot()}) + '\n')
        if self.on_snapshot is not None:
            self.on_snapshot(self, now)

    def finalize(self, now: int) -> None:
        """Closing snapshot + heatmap summary; flushes the JSONL sink.

        The trailing ``final`` record carries the end-of-run metrics
        snapshot (identical to the in-memory registry state after the
        run) alongside the heatmap summary.
        """
        if self._fabric is None:
            return
        self.take(now)
        if self._sink is not None:
            self._sink.write(json.dumps(
                {'cycle': now, 'final': True,
                 'metrics': self.registry.snapshot(),
                 'heatmaps': self.heatmaps_dict(),
                 'provenance': self.provenance_dict()}) + '\n')
            self._sink.close()
            self._sink = None

    # ------------------------------------------------------------ serve events
    def on_request_state(self, req, now: int, scheduler=None) -> None:
        """A request changed state (rare; called by the scheduler)."""
        self._c_req_state.labels(state=req.state).inc()
        if scheduler is not None:
            self._g_queue.set(len(scheduler.queue))
            self._g_running.set(len(scheduler.running))
        row = {'req_id': req.req_id, 'kernel': req.kernel,
               'state': req.state, 'tiles': req.tiles_needed,
               'priority': req.priority, 'arrival': req.arrival,
               'since': now}
        if req.state in ('queued', 'running'):
            self.inflight[req.req_id] = row
        else:
            self.inflight.pop(req.req_id, None)
            if req.latency is not None:
                self._h_latency.observe(req.latency)
            if req.queue_wait is not None:
                self._h_wait.observe(req.queue_wait)
            if req.service_cycles is not None:
                self._h_service.observe(req.service_cycles)

    # ----------------------------------------------------------------- export
    def provenance_dict(self) -> dict:
        """The same ``code_version_hash`` + machine-hash pair that
        BENCH_*/CALIB_* artifacts carry, so heatmap and metrics-snapshot
        files are cross-checkable against ``repro version``."""
        from ..jobs.spec import code_version_hash, machine_hash
        cfg = self._fabric.cfg if self._fabric is not None else None
        return {'code_version_hash': code_version_hash(),
                'machine_hash': machine_hash(cfg)}

    def heatmaps_dict(self) -> dict:
        self.drain()
        return {'noc': self.link_heat.to_dict() if self.link_heat else {},
                'llc': self.llc_heat.to_dict() if self.llc_heat else {},
                'inet': self.inet_heat.to_dict() if self.inet_heat else {},
                'provenance': self.provenance_dict()}

    def render_heatmaps(self) -> str:
        self.drain()
        parts = []
        if self.link_heat is not None:
            parts.append(self.link_heat.to_grid().render())
        if self.llc_heat is not None:
            parts.append(self.llc_heat.render())
        if self.inet_heat is not None:
            parts.append(self.inet_heat.render())
        return '\n\n'.join(parts)

    def report_dict(self) -> dict:
        """The ``observability`` section of a serving report."""
        self.drain()
        return {'snapshots': self.snapshots,
                'metrics': self.registry.snapshot(),
                'heatmaps': self.heatmaps_dict()}
