"""Closed-form per-kernel workload descriptions.

Each modeled benchmark gets a builder that mirrors the *geometry* of its
vector-template code generation (:mod:`repro.kernels.vector_templates`)
without assembling a program or touching a fabric: how many tiles the
work divides into, how many DAE frames each tile consumes, how many
scalar-stream and microthread instructions one frame costs, and how many
response packets the LLC must emit to fill it.  The builders reuse the
benchmarks' own FLEN-selection methods (``fitted_flen`` /
``matvec_flen`` / ``flen_for``, which read only ``fabric.cfg``) through
a config shim, so the modeled frame shapes match what the code generator
would actually emit for the same machine.

Counts here are first-order estimates: exact for the structural
quantities (tiles, frames, frame words, packets) and approximate for
instruction counts (the calibration fit in
:mod:`repro.model.calibrate` absorbs per-kernel CPI and constant
factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..manycore.config import MachineConfig


class WorkloadError(ValueError):
    """The kernel/config/machine combination cannot be code-generated."""


class _CfgView:
    """Duck-types the one attribute the flen helpers read (``.cfg``)."""

    def __init__(self, cfg: MachineConfig):
        self.cfg = cfg


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _span_vloads(lanes: int, flen: int, line_words: int,
                 unaligned: bool = False) -> int:
    """vload instructions for one full ``flen * lanes`` GROUP span.

    Mirrors ``_emit_group_span``: a single GROUP vload covers at most one
    cache line, so wide spans split into several stepped vloads;
    unaligned sections use the prefix/suffix instruction pair.
    """
    lanes_per_load = max(1, min(lanes, line_words // max(1, flen)))
    splits = _ceil_div(lanes, lanes_per_load)
    return splits * (2 if unaligned else 1)


@dataclass(frozen=True)
class VectorPhase:
    """One vector phase (group formation -> scalar stream -> barrier)."""

    name: str
    tiles: int                 # total units of group work across the machine
    frames_per_tile: int
    frame_words: int           # per-lane frame footprint in words
    flen: int
    pcv: bool
    scalar_per_frame: int      # scalar-stream instrs per frame
    scalar_per_tile: int       # scalar instrs per tile outside the DAE loop
    mt_per_frame: int          # per-lane microthread instrs per frame
    mt_per_tile: int           # per-lane init/fini instrs per tile
    flops_per_frame: int       # per-lane FMA-class ops per frame
    packets_per_frame: int     # LLC response packets to fill one frame
    store_words_per_tile: int  # LLC words stored per tile (whole group)
    load_words_per_tile: int = 0  # extra scalar LLC load words per tile


@dataclass(frozen=True)
class MimdPhase:
    """One SPMD phase (reductions, transposes, boundary fix-ups)."""

    name: str
    items: int            # work items, strided across all cores
    instrs_per_item: int
    loads_per_item: int   # LLC word loads per item
    stores_per_item: int


@dataclass(frozen=True)
class Workload:
    """The closed-form description of one (kernel, params, machine) run."""

    benchmark: str
    lanes: int
    pcv: bool
    phases: Tuple = ()
    repeat: int = 1            # outer time loop (fdtd-2d's tmax)
    footprint_words: int = 0   # unique memory words touched

    @property
    def vector_phases(self) -> List[VectorPhase]:
        return [p for p in self.phases if isinstance(p, VectorPhase)]

    @property
    def n_phases(self) -> int:
        return len(self.phases) * self.repeat


# ------------------------------------------------------------ phase builders
def _matmul_phase(name: str, *, ni: int, nj: int, nk: int, nterms: int,
                  kb: int, flen: int, pcv: bool, lanes: int,
                  cfg: MachineConfig, alpha: float = 1.0,
                  beta: float = 0.0) -> VectorPhase:
    w = flen * lanes
    if nj % w or nk % kb:
        raise WorkloadError(f'{name}: nj={nj} % {w} or nk={nk} % {kb} != 0')
    njc = nj // w
    tiles = ni * njc
    frames_per_tile = nk // kb
    frame_words = nterms * kb * flen + nterms * kb
    sw = cfg.simd_width
    line = cfg.line_words
    noc = cfg.noc_width_words

    span = _span_vloads(lanes, flen, line)
    scalar_per_frame = (nterms * kb * (span + 2)       # group spans + advance
                        + nterms * (1 + lanes)         # SINGLE broadcasts
                        + nterms + 5)                  # advance + slot + loop
    if pcv:
        nv = max(1, flen // sw)
        mt_per_frame = 3 + kb * nterms * (2 + 3 * nv)
        flops_per_frame = kb * nterms * nv
        mt_per_tile = 2 * nv + nv * 4 + flen * 3 + 16
    else:
        ka = max(1, 4 // max(1, flen))
        mt_per_frame = 3 + kb * nterms * (1 + 2 * flen)
        flops_per_frame = kb * nterms * flen
        mt_per_tile = (2 * flen * ka + flen * (ka - 1)
                       + flen * (2 + (3 if beta else 0)
                                 + (1 if alpha != 1.0 else 0)) + 14)
    scalar_per_tile = 6 + 4 * nterms
    # every GROUP span delivers flen words to each of `lanes` lanes; each
    # lane chunk ships in ceil(flen/noc) packets.  SINGLE broadcasts ship
    # kb words to one lane per vload.
    packets_per_frame = (nterms * kb * lanes * _ceil_div(flen, noc)
                         + nterms * lanes * _ceil_div(kb, noc))
    store_words_per_tile = w + (w if beta else 0)
    return VectorPhase(
        name=name, tiles=tiles, frames_per_tile=frames_per_tile,
        frame_words=frame_words, flen=flen, pcv=pcv,
        scalar_per_frame=scalar_per_frame, scalar_per_tile=scalar_per_tile,
        mt_per_frame=mt_per_frame, mt_per_tile=mt_per_tile,
        flops_per_frame=flops_per_frame, packets_per_frame=packets_per_frame,
        store_words_per_tile=store_words_per_tile)


def _rowdot_phase(name: str, *, nrows: int, ncols: int, nterms: int,
                  flen: int, pcv: bool, lanes: int,
                  cfg: MachineConfig) -> VectorPhase:
    sw = cfg.simd_width
    if pcv and flen % sw:
        pcv = False            # template falls back to scalar lane bodies
    w = flen * lanes
    if ncols % w:
        raise WorkloadError(f'{name}: ncols={ncols} not a multiple of {w}')
    frames_per_row = ncols // w
    frame_words = (nterms + 1) * flen
    noc = cfg.noc_width_words
    span = _span_vloads(lanes, flen, cfg.line_words)
    scalar_per_frame = (nterms + 1) * (span + 2) + (nterms + 1) + 5
    if pcv:
        nv = max(1, flen // sw)
        mt_per_frame = 3 + nv * (2 + 3 * nterms)
        flops_per_frame = nv * nterms
    else:
        mt_per_frame = 3 + 1 + flen * (1 + 2 * nterms)
        flops_per_frame = flen * nterms
    mt_per_tile = 2 * nterms * 4 + nterms * 6 + 8
    scalar_per_tile = 8 + 3 * nterms
    packets_per_frame = (nterms + 1) * lanes * _ceil_div(flen, noc)
    return VectorPhase(
        name=name, tiles=nrows, frames_per_tile=frames_per_row,
        frame_words=frame_words, flen=flen, pcv=pcv,
        scalar_per_frame=scalar_per_frame, scalar_per_tile=scalar_per_tile,
        mt_per_frame=mt_per_frame, mt_per_tile=mt_per_tile,
        flops_per_frame=flops_per_frame, packets_per_frame=packets_per_frame,
        store_words_per_tile=nterms * lanes)   # per-lane partial stores


def _stencil_phase(name: str, *, n_out_rows: int, ncols: int,
                   n_aligned: int, n_unaligned: int, has_old: bool,
                   flen: int, lanes: int, cfg: MachineConfig) -> VectorPhase:
    nsec = n_aligned + n_unaligned
    nsec_frame = nsec + (1 if has_old else 0)
    # mirror the template's span shrink to fit the counter window
    while flen > 1 and nsec_frame * flen * cfg.frame_counters > cfg.spad_words:
        flen //= 2
    w = flen * lanes
    if ncols % w:
        raise WorkloadError(f'{name}: ncols={ncols} not a multiple of {w}')
    njc = ncols // w
    tiles = n_out_rows * njc
    frame_words = nsec_frame * flen
    noc = cfg.noc_width_words
    line = cfg.line_words
    spans = (n_aligned + (1 if has_old else 0)) \
        * (_span_vloads(lanes, flen, line) + 6) \
        + n_unaligned * (_span_vloads(lanes, flen, line, unaligned=True) + 6)
    scalar_per_tile = spans + 2 + 1 + 10   # slot advance + vissue + walk
    nacc = min(3, nsec)
    mt_per_tile = (3 + flen * (2 * nacc + 1 + 2 * nsec + (nacc - 1)
                               + (3 if has_old else 0) + 4 + 1) + 12)
    flops = flen * (nsec + (1 if has_old else 0))
    packets = ((n_aligned + (1 if has_old else 0))
               * lanes * _ceil_div(flen, noc)
               + n_unaligned * lanes * 2 * _ceil_div(flen, noc))
    return VectorPhase(
        name=name, tiles=tiles, frames_per_tile=1, frame_words=frame_words,
        flen=flen, pcv=False,
        scalar_per_frame=0, scalar_per_tile=scalar_per_tile,
        mt_per_frame=0, mt_per_tile=mt_per_tile,
        flops_per_frame=flops, packets_per_frame=packets,
        store_words_per_tile=w)


def _reduce_phase(nrows: int, nterms: int, lanes: int,
                  accumulate: bool = False) -> MimdPhase:
    return MimdPhase(
        name='reduce', items=nrows,
        instrs_per_item=nterms * (2 * lanes + 4) + 10,
        loads_per_item=nterms * lanes + (1 if accumulate else 0),
        stores_per_item=1)


# ------------------------------------------------------------ kernel models
def _wl_gemm(bench, params, cfg, lanes, pcv) -> Workload:
    ni, nj, nk = params['ni'], params['nj'], params['nk']
    shim = _CfgView(cfg)
    flen, use_pcv = bench.fitted_flen(shim, lanes, pcv, nj, ni=ni)
    phase = _matmul_phase('gemm', ni=ni, nj=nj, nk=nk, nterms=1,
                          kb=min(4, nk), flen=flen, pcv=use_pcv,
                          lanes=lanes, cfg=cfg, alpha=1.5, beta=1.2)
    return Workload('gemm', lanes, pcv, phases=(phase,),
                    footprint_words=ni * nk + nk * nj + 2 * ni * nj)


def _wl_matvec(name, params, bench, cfg, lanes, pcv, order) -> Workload:
    """Shared shape of mvt / atax / bicg: rowdot + reduce + matmul(ni=1)."""
    n = params['n']
    shim = _CfgView(cfg)
    rflen = bench.matvec_flen(shim, lanes, pcv, n)
    mflen, mpcv = bench.fitted_flen(shim, lanes, pcv, n, ni=1)
    rowdot = _rowdot_phase(f'{name}_r', nrows=n, ncols=n, nterms=1,
                           flen=rflen, pcv=pcv, lanes=lanes, cfg=cfg)
    reduce_ = _reduce_phase(n, 1, lanes, accumulate=(name == 'mvt'))
    matmul = _matmul_phase(f'{name}_m', ni=1, nj=n, nk=n, nterms=1,
                           kb=min(4, n), flen=mflen, pcv=mpcv, lanes=lanes,
                           cfg=cfg, beta=(1.0 if name == 'mvt' else 0.0))
    by_key = {'r': rowdot, 'd': reduce_, 'm': matmul}
    return Workload(name, lanes, pcv,
                    phases=tuple(by_key[k] for k in order),
                    footprint_words=n * n + 6 * n + n * lanes)


def _wl_mvt(bench, params, cfg, lanes, pcv):
    return _wl_matvec('mvt', params, bench, cfg, lanes, pcv, 'rdm')


def _wl_atax(bench, params, cfg, lanes, pcv):
    return _wl_matvec('atax', params, bench, cfg, lanes, pcv, 'rdm')


def _wl_bicg(bench, params, cfg, lanes, pcv):
    return _wl_matvec('bicg', params, bench, cfg, lanes, pcv, 'mrd')


def _wl_gesummv(bench, params, cfg, lanes, pcv) -> Workload:
    n = params['n']
    shim = _CfgView(cfg)
    flen = bench.matvec_flen(shim, lanes, pcv, n)
    rowdot = _rowdot_phase('gesummv', nrows=n, ncols=n, nterms=2,
                           flen=flen, pcv=pcv, lanes=lanes, cfg=cfg)
    reduce_ = _reduce_phase(n, 2, lanes)
    return Workload('gesummv', lanes, pcv, phases=(rowdot, reduce_),
                    footprint_words=2 * n * n + 4 * n + 2 * n * lanes)


def _wl_syrk(bench, params, cfg, lanes, pcv) -> Workload:
    n, m = params['n'], params['m']
    shim = _CfgView(cfg)
    flen, use_pcv = bench.fitted_flen(shim, lanes, pcv, n, ni=n)
    transpose = MimdPhase('transpose', items=n * m, instrs_per_item=8,
                          loads_per_item=1, stores_per_item=1)
    matmul = _matmul_phase('syrk', ni=n, nj=n, nk=m, nterms=1,
                           kb=min(4, m), flen=flen, pcv=use_pcv,
                           lanes=lanes, cfg=cfg, alpha=1.5, beta=1.2)
    return Workload('syrk', lanes, pcv, phases=(transpose, matmul),
                    footprint_words=3 * n * m + 2 * n * n)


def _wl_syr2k(bench, params, cfg, lanes, pcv) -> Workload:
    n, m = params['n'], params['m']
    shim = _CfgView(cfg)
    flen, use_pcv = bench.fitted_flen(shim, lanes, pcv, n, ni=n)
    transposes = tuple(
        MimdPhase(f'transpose{i}', items=n * m, instrs_per_item=8,
                  loads_per_item=1, stores_per_item=1) for i in range(2))
    matmul = _matmul_phase('syr2k', ni=n, nj=n, nk=m, nterms=2,
                           kb=min(4, m), flen=flen, pcv=use_pcv,
                           lanes=lanes, cfg=cfg, alpha=1.5, beta=1.2)
    return Workload('syr2k', lanes, pcv, phases=transposes + (matmul,),
                    footprint_words=6 * n * m + 2 * n * n)


def _wl_conv2d(bench, params, cfg, lanes, pcv) -> Workload:
    n, m = params['n'], params['m']
    shim = _CfgView(cfg)
    flen, _ = bench.fitted_flen(shim, lanes, pcv, m, ni=n - 2, cap=4)
    # 3x3 taps: the dj == 0 column (3 sections) is aligned, 6 are shifted
    phase = _stencil_phase('conv2d', n_out_rows=n - 2, ncols=m,
                           n_aligned=3, n_unaligned=6, has_old=False,
                           flen=flen, lanes=lanes, cfg=cfg)
    return Workload('2dconv', lanes, pcv, phases=(phase,),
                    footprint_words=2 * n * m)


def _wl_fdtd2d(bench, params, cfg, lanes, pcv) -> Workload:
    n, m, tmax = params['n'], params['m'], params['tmax']
    shim = _CfgView(cfg)
    flen, _ = bench.fitted_flen(shim, lanes, pcv, m, ni=n, cap=4)
    fict = MimdPhase('fict', items=m, instrs_per_item=6,
                     loads_per_item=1, stores_per_item=1)
    ey = _stencil_phase('fdtd_ey', n_out_rows=n - 1, ncols=m,
                        n_aligned=2, n_unaligned=0, has_old=True,
                        flen=flen, lanes=lanes, cfg=cfg)
    ex = _stencil_phase('fdtd_ex', n_out_rows=n, ncols=m,
                        n_aligned=1, n_unaligned=1, has_old=True,
                        flen=flen, lanes=lanes, cfg=cfg)
    hz = _stencil_phase('fdtd_hz', n_out_rows=n - 1, ncols=m,
                        n_aligned=3, n_unaligned=1, has_old=True,
                        flen=flen, lanes=lanes, cfg=cfg)
    return Workload('fdtd-2d', lanes, pcv, phases=(fict, ey, ex, hz),
                    repeat=tmax, footprint_words=3 * n * m + m + tmax)


_BUILDERS: Dict[str, Callable] = {
    'gemm': _wl_gemm,
    'mvt': _wl_mvt,
    'atax': _wl_atax,
    'bicg': _wl_bicg,
    'gesummv': _wl_gesummv,
    'syrk': _wl_syrk,
    'syr2k': _wl_syr2k,
    '2dconv': _wl_conv2d,
    'fdtd-2d': _wl_fdtd2d,
}

#: Benchmarks the analytical model covers: the matvec family (mvt, atax,
#: bicg, gesummv), the matmul family (gemm, syrk, syr2k) and the stencil
#: family (2dconv, fdtd-2d).
MODELED_KERNELS: Tuple[str, ...] = tuple(sorted(_BUILDERS))


def build_workload(bench_name: str, params: Dict[str, int],
                   cfg: MachineConfig, lanes: int, pcv: bool) -> Workload:
    """Closed-form workload for one (kernel, params, machine, group shape).

    Raises :class:`WorkloadError` for un-modeled benchmarks or infeasible
    geometry (the same combinations the code generator would reject).
    """
    builder = _BUILDERS.get(bench_name)
    if builder is None:
        raise WorkloadError(
            f'benchmark {bench_name!r} is not analytically modeled '
            f'(modeled: {", ".join(MODELED_KERNELS)})')
    from ..kernels import registry
    bench = registry.make(bench_name)
    try:
        return builder(bench, params, cfg, lanes, pcv)
    except ValueError as e:
        raise WorkloadError(str(e))
