"""Vector group descriptors and fabric layout planning (paper Section 2.1).

A vector group is a contiguous region of tiles: one *scalar* core followed by
``lanes`` vector lanes, the first of which is the *expander*.  The cores on
the lane path must be mesh-adjacent so the static inet links work; we lay
groups out along a serpentine walk of the mesh, which guarantees adjacency
for any contiguous run of tiles.

The group descriptor stands in for the paper's ``vconfig`` CSR bitmask: in
hardware each core computes a bitmask describing the forwarding path and
frontend configuration; here the runner registers a descriptor with the
fabric and cores name it by handle when executing ``vconfig``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

# Core roles
ROLE_INDEPENDENT = 0
ROLE_SCALAR = 1
ROLE_EXPANDER = 2
ROLE_VECTOR = 3

ROLE_NAMES = {ROLE_INDEPENDENT: 'independent', ROLE_SCALAR: 'scalar',
              ROLE_EXPANDER: 'expander', ROLE_VECTOR: 'vector'}


@dataclass
class GroupDescriptor:
    """Static description of one vector group.

    ``tiles`` lists core ids in inet path order: ``tiles[0]`` is the scalar
    core, ``tiles[1]`` the expander, and the rest plain vector cores.
    """

    group_id: int
    tiles: List[int]
    frame_size: int = 16
    num_frame_slots: int = 8
    frame_base: int = 0
    #: groups in this descriptor's program/job (what CSR_NGROUPS reports);
    #: None falls back to the fabric-wide registered-group count, which is
    #: only correct for the classic one-program-per-fabric flow.
    total_groups: Optional[int] = None

    # formation bookkeeping (reset per vconfig barrier)
    _arrived: set = field(default_factory=set, repr=False)

    @property
    def scalar(self) -> int:
        return self.tiles[0]

    @property
    def expander(self) -> int:
        return self.tiles[1]

    @property
    def lanes(self) -> List[int]:
        """The vector lanes (expander first)."""
        return self.tiles[1:]

    @property
    def num_lanes(self) -> int:
        return len(self.tiles) - 1

    def role_of(self, core_id: int) -> int:
        idx = self.tiles.index(core_id)
        if idx == 0:
            return ROLE_SCALAR
        if idx == 1:
            return ROLE_EXPANDER
        return ROLE_VECTOR

    def lane_index(self, core_id: int) -> int:
        """0-based lane id (expander is lane 0)."""
        return self.tiles.index(core_id) - 1

    def successor(self, core_id: int) -> int:
        """Next core on the inet path, or -1 at the tail."""
        idx = self.tiles.index(core_id)
        if idx + 1 < len(self.tiles):
            return self.tiles[idx + 1]
        return -1

    def hop_of(self, core_id: int) -> int:
        """Distance in inet hops from the scalar core (scalar = 0)."""
        return self.tiles.index(core_id)


def serpentine_order(width: int, height: int) -> List[int]:
    """Row-major serpentine walk: every consecutive pair is mesh-adjacent."""
    order = []
    for y in range(height):
        xs = range(width) if y % 2 == 0 else range(width - 1, -1, -1)
        for x in xs:
            order.append(y * width + x)
    return order


def mesh_adjacent(a: int, b: int, width: int) -> bool:
    """Are cores ``a`` and ``b`` neighbours on a ``width``-column mesh?"""
    ax, ay = a % width, a // width
    bx, by = b % width, b // width
    return abs(ax - bx) + abs(ay - by) == 1


@dataclass(frozen=True)
class PackingPlan:
    """Result of packing fixed-shape groups onto a mesh.

    Separates the two ways tiles end up idle: ``leftover_tiles`` is the
    serpentine tail too short for one more group (the non-rectangle-filling
    remainder, ``num_tiles % (lanes + 1)``), while ``capped_tiles`` are
    tiles a ``max_groups`` cap left unused even though they would fit.
    ``idle_tiles`` is their union, in mesh order.
    """

    width: int
    height: int
    lanes: int
    groups: Tuple[GroupDescriptor, ...]
    idle_tiles: Tuple[int, ...]
    leftover_tiles: Tuple[int, ...]
    capped_tiles: Tuple[int, ...]

    @property
    def tiles_per_group(self) -> int:
        return self.lanes + 1

    @property
    def num_tiles(self) -> int:
        return self.width * self.height

    @property
    def utilization(self) -> float:
        return 1.0 - len(self.idle_tiles) / self.num_tiles


def plan_packing(width: int, height: int, lanes: int,
                 max_groups: int = None) -> PackingPlan:
    """Pack as many (1 + lanes)-tile groups as fit along the serpentine.

    Mirrors the paper's Section 6.2 provisioning: V16 on 64 cores yields
    3 groups of 17 (80% utilization), V4 yields 12 groups of 5 (94%).
    Lane counts that do not fill the rectangle leave an explicit
    ``leftover_tiles`` tail; ``lanes + 1`` larger than the whole mesh
    yields zero groups and a plan that is all leftover.
    """
    if lanes < 1:
        raise ValueError(f'a vector group needs at least 1 lane, got {lanes}')
    order = serpentine_order(width, height)
    tiles_per_group = lanes + 1
    fit = len(order) // tiles_per_group
    ngroups = fit if max_groups is None else min(fit, max_groups)
    groups = tuple(
        GroupDescriptor(group_id=g,
                        tiles=order[g * tiles_per_group:
                                    (g + 1) * tiles_per_group],
                        total_groups=ngroups)
        for g in range(ngroups))
    leftover = set(order[fit * tiles_per_group:])
    used = {t for g in groups for t in g.tiles}
    idle = tuple(t for t in range(width * height) if t not in used)
    capped = tuple(t for t in idle if t not in leftover)
    return PackingPlan(width, height, lanes, groups, idle,
                       tuple(sorted(leftover)), capped)


def plan_groups(width: int, height: int, lanes: int,
                max_groups: int = None) -> Tuple[List[GroupDescriptor],
                                                 List[int]]:
    """Classic ``(groups, idle_tiles)`` view of :func:`plan_packing`."""
    plan = plan_packing(width, height, lanes, max_groups)
    return list(plan.groups), list(plan.idle_tiles)


def plan_groups_in(tiles: Sequence[int], lanes: int,
                   max_groups: int = None) -> Tuple[List[GroupDescriptor],
                                                    List[int]]:
    """Carve an explicit tile list into consecutive (1 + lanes) groups.

    ``tiles`` must already be path-ordered (e.g. a contiguous run of the
    serpentine, as handed out by the serving region allocator): every
    consecutive pair inside a group becomes an inet link.  Returns
    ``(groups, leftover_tiles)`` where the leftover is the tail too short
    for one more group.
    """
    tiles = list(tiles)
    tiles_per_group = lanes + 1
    ngroups = len(tiles) // tiles_per_group
    if max_groups is not None:
        ngroups = min(ngroups, max_groups)
    groups = []
    for g in range(ngroups):
        chunk = tiles[g * tiles_per_group:(g + 1) * tiles_per_group]
        groups.append(GroupDescriptor(group_id=g, tiles=chunk,
                                      total_groups=ngroups))
    used = {t for g in groups for t in g.tiles}
    leftover = [t for t in tiles if t not in used]
    return groups, leftover


def utilization(width: int, height: int, lanes: int) -> float:
    return plan_packing(width, height, lanes).utilization
