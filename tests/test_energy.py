"""Unit tests for the energy model (paper Section 5.2 accounting rules)."""

import pytest

from repro.energy import EnergyModel, EnergyParams, compute_energy
from repro.manycore import DEFAULT_CONFIG
from repro.manycore.stats import CoreStats, MemStats, RunStats


def stats_with(core_kwargs=None, mem_kwargs=None, hops=0):
    rs = RunStats()
    cs = CoreStats(**(core_kwargs or {}))
    rs.cores = {0: cs}
    for k, v in (mem_kwargs or {}).items():
        setattr(rs.mem, k, v)
    rs.noc_word_hops = hops
    return rs


class TestAccountingRules:
    def test_fetched_instruction_pays_frontend_and_icache(self):
        p = EnergyParams()
        rs = stats_with({'instrs': 10, 'icache_accesses': 10,
                         'n_int_alu': 10})
        e = compute_energy(rs, DEFAULT_CONFIG, p)
        assert e.frontend == pytest.approx(10 * p.frontend)
        assert e.icache == pytest.approx(10 * p.icache)
        assert e.inet == 0.0

    def test_vector_mode_swaps_fetch_for_inet(self):
        """Instructions executed but not fetched arrived over the inet."""
        p = EnergyParams()
        rs = stats_with({'instrs': 10, 'icache_accesses': 2,
                         'n_int_alu': 10})
        e = compute_energy(rs, DEFAULT_CONFIG, p)
        assert e.icache == pytest.approx(2 * p.icache)
        assert e.inet == pytest.approx(8 * p.inet_forward)

    def test_inet_hop_cheaper_than_icache_hit(self):
        """The paper's core claim about forwarding energy."""
        p = EnergyParams()
        assert p.inet_forward < 0.25 * (p.icache + p.frontend)

    def test_div_scales_with_cycles(self):
        p = EnergyParams()
        rs_div = stats_with({'instrs': 1, 'icache_accesses': 1, 'n_div': 1})
        rs_alu = stats_with({'instrs': 1, 'icache_accesses': 1,
                             'n_int_alu': 1})
        ediv = compute_energy(rs_div, DEFAULT_CONFIG, p)
        ealu = compute_energy(rs_alu, DEFAULT_CONFIG, p)
        assert ediv.alu > 10 * ealu.alu

    def test_simd_pays_per_lane(self):
        p = EnergyParams()
        rs = stats_with({'instrs': 1, 'icache_accesses': 1, 'n_simd': 1})
        e = compute_energy(rs, DEFAULT_CONFIG, p)
        assert e.alu >= p.simd_lane_alu * DEFAULT_CONFIG.simd_width

    def test_dram_excluded_from_on_chip_total(self):
        rs = stats_with(mem_kwargs={'dram_lines_read': 5})
        e = compute_energy(rs, DEFAULT_CONFIG)
        assert e.dram > 0
        assert e.on_chip_total == 0.0
        assert e.total == e.dram

    def test_llc_charged_per_word(self):
        """A w-wide vector load costs as much as w scalar loads."""
        p = EnergyParams()
        wide = stats_with(mem_kwargs={'llc_word_reads': 16,
                                      'llc_accesses': 1})
        narrow = stats_with(mem_kwargs={'llc_word_reads': 16,
                                        'llc_accesses': 16})
        ew = compute_energy(wide, DEFAULT_CONFIG, p)
        en = compute_energy(narrow, DEFAULT_CONFIG, p)
        # data movement identical; narrow pays more tag/control energy
        assert en.llc > ew.llc
        assert ew.llc >= 16 * p.llc_word

    def test_noc_hops_counted(self):
        p = EnergyParams()
        e = compute_energy(stats_with(hops=100), DEFAULT_CONFIG, p)
        assert e.noc == pytest.approx(100 * p.noc_word_hop)

    def test_breakdown_sums_to_total(self):
        rs = stats_with({'instrs': 7, 'icache_accesses': 5, 'n_fp': 3,
                         'n_mem': 2, 'spad_reads': 4},
                        {'llc_word_reads': 8, 'llc_accesses': 2,
                         'dram_lines_read': 1}, hops=9)
        e = compute_energy(rs, DEFAULT_CONFIG)
        d = e.as_dict()
        assert sum(d.values()) == pytest.approx(e.total)
        assert sum(v for k, v in d.items() if k != 'dram') == \
            pytest.approx(e.on_chip_total)

    def test_custom_params_respected(self):
        p = EnergyParams(icache=100.0)
        rs = stats_with({'instrs': 1, 'icache_accesses': 1, 'n_int_alu': 1})
        e = EnergyModel(p).compute(rs, DEFAULT_CONFIG)
        assert e.icache == pytest.approx(100.0)
