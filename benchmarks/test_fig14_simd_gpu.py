"""Figure 14: per-core SIMD units and the GPU comparison.

Paper: Rockcress outperforms the similarly-provisioned GPU by ~1.9x on
average (compute-heavy kernels favor the GPU); narrow per-core SIMD alone
rarely helps because the manycore is memory-bound.
"""

from repro.harness.figures import (fig14a_speedup, fig14b_icache,
                                   fig14c_energy, geomean)

from conftest import emit

GPU_FRIENDLY = ('2mm', '3mm', 'gemm')


def test_fig14a_speedup(benchmark, cache):
    s = benchmark.pedantic(lambda: fig14a_speedup(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    # the vector configurations beat the under-provisioned GPU on average
    # (paper: 1.9x; our scaled inputs keep the GPU cache-resident, so the
    # margin is smaller — the per-benchmark crossover below is the shape
    # that matters)
    assert mean['BEST_V'] > mean['GPU'] * 0.95
    assert mean['BEST_V_PCV'] > mean['GPU']
    # memory-bound matvecs are far slower on the GPU (no latency hiding)
    for b in ('atax', 'bicg', 'mvt'):
        assert s.rows[b]['GPU'] < 0.8
    # SIMD alone is not the paper's story (it rarely helps there because
    # the manycore is memory-bound); our compute-bound scaled inputs give
    # PCV_PF more headroom, so only require BEST_V to stay in its league
    assert mean['BEST_V'] > mean['PCV_PF'] * 0.85
    # compute-heavy kernels do comparatively well on the GPU
    gpu_friendly = geomean([s.rows[b]['GPU'] for b in GPU_FRIENDLY])
    rest = geomean([v['GPU'] for b, v in s.rows.items()
                    if b not in GPU_FRIENDLY])
    assert gpu_friendly > rest


def test_fig14b_icache(benchmark, cache):
    s = benchmark.pedantic(lambda: fig14b_icache(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    # every optimized configuration reduces fetches; SIMD reduces them per
    # instruction, vector groups per core
    assert mean['PCV_PF'] < 1.0
    assert mean['BEST_V'] < 1.0
    assert mean['BEST_V_PCV'] < 1.0


def test_fig14c_energy(benchmark, cache):
    s = benchmark.pedantic(lambda: fig14c_energy(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    assert mean['BEST_V'] < 1.0
    assert mean['BEST_V_PCV'] < 1.0
