"""Fast (test-scale, benchmark-subset) coverage of every figure function.

The benchmarks/ harness runs these at full scale with shape assertions;
here each figure function is exercised end-to-end on tiny inputs so plain
``pytest tests/`` covers the figure plumbing too.
"""

import pytest

from repro.harness import figures as F


@pytest.fixture(scope='module')
def cache():
    return F.ResultCache(scale='test')


SUBSET = ['bicg', 'gemm']


class TestFigureFunctionsSmall:
    def test_fig10_family(self, cache):
        for fn in (F.fig10a_speedup, F.fig10b_icache, F.fig10c_energy):
            s = fn(cache, benches=SUBSET)
            assert set(s.rows) == set(SUBSET)
            assert s.render()

    def test_fig11(self, cache):
        s = F.fig11_scalability(cache, benches=['gemm'])
        row = s.rows['gemm']
        assert row['NV_PF_1'] == 1.0
        assert row['NV_PF_64'] > row['NV_PF_1']

    def test_fig12_cpi(self, cache):
        t = F.fig12_cpi_by_cores(cache, benches=['bicg'])
        for cfg, comp in t['bicg'].items():
            assert comp['issued'] == 1.0
            assert all(v >= 0 for v in comp.values())
        assert F.render_cpi(t, 'x')

    def test_fig13_cpi(self, cache):
        t = F.fig13_cpi_bandwidth(cache, benches=['bicg'])
        assert set(t['bicg']) == {'B', '2X', 'V4'}

    def test_fig14_family(self, cache):
        s = F.fig14a_speedup(cache, benches=SUBSET)
        assert s.rows['bicg']['GPU'] > 0
        s = F.fig14b_icache(cache, benches=SUBSET)
        assert 0 < s.rows['gemm']['BEST_V_PCV']
        s = F.fig14c_energy(cache, benches=SUBSET)
        assert 0 < s.rows['gemm']['PCV_PF']

    def test_fig15_inet(self, cache):
        hops = F.fig15_inet_stalls(cache, 4, benches=['bicg'],
                                   kind='input')
        assert len(hops['bicg']) == 5  # scalar + 4 lanes
        assert hops['bicg'][0] == 0.0  # the scalar never pops the inet
        bp = F.fig15_inet_stalls(cache, 4, benches=['bicg'],
                                 kind='backpressure')
        assert all(v >= 0 for v in bp['bicg'])

    def test_fig15c(self, cache):
        s = F.fig15c_frame_stalls(cache, benches=SUBSET)
        for row in s.rows.values():
            assert 0 <= row['NV_PF'] <= 1 and 0 <= row['V4'] <= 1

    def test_fig16(self, cache):
        s = F.fig16_vector_lengths(cache, benches=SUBSET)
        for row in s.rows.values():
            assert row['V4'] == 1.0

    def test_fig17_family(self, cache):
        s = F.fig17a_miss_rate(cache, benches=SUBSET)
        for row in s.rows.values():
            assert 0 <= row['NV_PF'] <= 1
        s = F.fig17b_llc_capacity(cache, benches=['gemm'])
        assert s.rows['gemm']['NV_PF_32kB'] == 1.0
        s = F.fig17c_noc_width(cache, benches=['gemm'])
        assert s.rows['gemm']['NV_PF_NW1'] == 1.0

    def test_bfs(self, cache):
        s = F.bfs_irregular(cache)
        assert s.rows['bfs']['NV'] > 1.0
