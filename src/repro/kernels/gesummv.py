"""gesummv: y = alpha*A.x + beta*B.x — two fused matvecs per row."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_rowdot
from .vector_templates import emit_rowdot, emit_rowdot_reduce

ALPHA = 1.5
BETA = 1.2
MAX_LANES = 16


class Gesummv(Benchmark):
    name = 'gesummv'
    test_params = {'n': 16}
    bench_params = {'n': 64}

    def setup(self, fabric: Fabric, params) -> Workspace:
        n = params['n']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((n, n)))
        self.alloc_np(fabric, ws, 'B', g.random((n, n)))
        self.alloc_np(fabric, ws, 'x', g.random(n))
        self.alloc_zeros(fabric, ws, 'y', n)
        self.alloc_zeros(fabric, ws, 'pA', n * MAX_LANES)
        self.alloc_zeros(fabric, ws, 'pB', n * MAX_LANES)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        y = refs.gesummv(ws.inputs['A'], ws.inputs['B'], ws.inputs['x'],
                         ALPHA, BETA)
        return {'y': y}

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        n = params['n']
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: mimd_rowdot(
            a, nrows=n, ncols=n,
            mats=[(ws.base('A'), n), (ws.base('B'), n)],
            vec_base=ws.base('x'), out_base=ws.base('y'),
            coeffs=[ALPHA, BETA], cfg=fabric.cfg, prefetch=prefetch,
            pcv=pcv))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        n = params['n']
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        flen = self.matvec_flen(fabric, vp.lanes, vp.pcv, n)
        emit_rowdot(p, name='gesummv', nrows=n, ncols=n,
                    mats=[(ws.base('A'), n), (ws.base('B'), n)],
                    vec_base=ws.base('x'),
                    partials_bases=[ws.base('pA'), ws.base('pB')],
                    flen=flen, pcv=vp.pcv)
        emit_rowdot_reduce(p, nrows=n, lanes=vp.lanes,
                           partials_bases=[ws.base('pA'), ws.base('pB')],
                           coeffs=[ALPHA, BETA], out_base=ws.base('y'))
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        # three GROUP sections per frame: A chunk, B chunk, x chunk
        return 3 * self.flen_for(fabric, lanes, pcv)
