"""bfs: breadth-first search over a CSR digraph (paper Section 6.6).

The irregular counter-example: per-vertex degrees vary, so lockstep vector
execution must pad every vertex to the maximum degree and predicate away
the slack, while plain MIMD cores just loop each vertex's real edge list.
The paper measures the manycore (NV) 2.9x faster than either vector
configuration — the benchmark exists to show when *not* to form groups.

Level-synchronous vertex-scan formulation: depth[w] updates race benignly
(every writer stores the same ``level + 1``), and the level count is the
graph's eccentricity from the source, known from the reference run.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Assembler, Program, opcodes as op
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import _strided_tiles


class Bfs(Benchmark):
    name = 'bfs'
    test_params = {'v': 48, 'deg': 3}
    bench_params = {'v': 256, 'deg': 4}

    def setup(self, fabric: Fabric, params) -> Workspace:
        v, deg = params['v'], params['deg']
        row_ptr, col_idx = refs.synthetic_graph(v, deg)
        depth0 = [-1] * v
        depth0[0] = 0
        ws = Workspace()
        ws.bases['rp'] = fabric.alloc([float(x) for x in row_ptr])
        ws.bases['col'] = fabric.alloc([float(x) for x in col_idx])
        ws.bases['depth'] = fabric.alloc([float(x) for x in depth0])
        ws.meta['row_ptr'] = row_ptr
        ws.meta['col_idx'] = col_idx
        ws.meta['depths'] = refs.bfs_depths(row_ptr, col_idx)
        ws.meta['levels'] = max(ws.meta['depths']) + 1
        ws.meta['maxdeg'] = max(row_ptr[i + 1] - row_ptr[i]
                                for i in range(v))
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        return {'depth': np.array(ws.meta['depths'], dtype=float)}

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        v = params['v']
        rp, col, depth = ws.bases['rp'], ws.bases['col'], ws.bases['depth']
        mb = MimdKernelBuilder()

        def explore(a: Assembler):
            with _strided_tiles(a, v):
                skip = a.label()
                a.li('x5', depth)
                a.add('x5', 'x5', 'x3')
                a.lw('x6', 'x5', 0)
                a.bne('x6', 'x19', skip.name)   # depth[v] == level?
                a.li('x7', rp)
                a.add('x7', 'x7', 'x3')
                a.lw('x8', 'x7', 0)             # edge range [x8, x9)
                a.lw('x9', 'x7', 1)
                etop = a.label()
                edone = a.label()
                a.bind(etop)
                a.bge('x8', 'x9', edone.name)
                a.li('x10', col)
                a.add('x10', 'x10', 'x8')
                a.lw('x11', 'x10', 0)           # w
                a.li('x12', depth)
                a.add('x12', 'x12', 'x11')
                a.lw('x13', 'x12', 0)           # depth[w]
                visited = a.label()
                a.bge('x13', 'x0', visited.name)
                a.addi('x14', 'x19', 1)
                a.sw('x14', 'x12', 0)
                a.bind(visited)
                a.addi('x8', 'x8', 1)
                a.j(etop.name)
                a.bind(edone)
                a.bind(skip)

        with mb.loop(ws.meta['levels']):
            mb.add_kernel(explore)
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        v = params['v']
        rp, col, depth = ws.bases['rp'], ws.bases['col'], ws.bases['depth']
        maxdeg = ws.meta['maxdeg']
        b = self.make_vector_builder(fabric, vp, params)
        total_lanes = len(b.groups) * b.lanes
        vtrips = (v + total_lanes - 1) // total_lanes
        p = b.program()
        with p.loop(ws.meta['levels']):
            p.vector_phase(lambda a, g: a.vissue('.bfs_level'),
                           frame_size=4)

        def microthreads(a: Assembler):
            a.bind('.bfs_level')
            a.csrr('x29', op.CSR_TID)
            a.csrr('x5', op.CSR_GROUP_ID)
            a.li('x6', b.lanes)
            a.mul('x5', 'x5', 'x6')
            a.add('x3', 'x5', 'x29')            # vertex = global lane id
            for _ in range(vtrips):
                # active = (v in range) && (depth[v] == level)
                a.li('x31', v)
                a.slt('x4', 'x3', 'x31')        # in range
                a.mul('x27', 'x3', 'x4')        # clamp: vertex 0 when not
                a.li('x5', depth)
                a.add('x5', 'x5', 'x27')
                a.lw('x6', 'x5', 0)
                a.slt('x7', 'x6', 'x19')
                a.slt('x12', 'x19', 'x6')
                a.or_('x7', 'x7', 'x12')
                a.slti('x7', 'x7', 1)           # depth[v] == level
                a.and_('x4', 'x4', 'x7')
                a.li('x8', rp)
                a.add('x8', 'x8', 'x27')
                a.lw('x9', 'x8', 0)             # rs
                a.lw('x10', 'x8', 1)            # re
                # lockstep edge scan padded to the max degree
                for e in range(maxdeg):
                    a.addi('x11', 'x9', e)
                    a.slt('x12', 'x11', 'x10')  # e within this vertex?
                    a.and_('x12', 'x12', 'x4')
                    a.mul('x11', 'x11', 'x12')  # clamp edge index
                    a.li('x13', col)
                    a.add('x13', 'x13', 'x11')
                    a.lw('x14', 'x13', 0)       # w
                    a.li('x15', depth)
                    a.add('x15', 'x15', 'x14')
                    a.lw('x16', 'x15', 0)       # depth[w]
                    a.slt('x17', 'x16', 'x0')   # unvisited?
                    a.and_('x12', 'x12', 'x17')
                    a.addi('x26', 'x19', 1)
                    a.pred_neq('x12', 'x0')
                    a.sw('x26', 'x15', 0)
                    a.pred_eq('x0', 'x0')
                a.li('x7', total_lanes)
                a.add('x3', 'x3', 'x7')
            a.vend()

        return p.finish(microthreads)
