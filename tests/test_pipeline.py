"""Tile pipeline micro-behaviour: scoreboard, latencies, hazards, bubbles."""

import pytest

from repro.isa import Assembler, opcodes as op
from repro.manycore import Fabric, small_config
from tests.conftest import run_single_core


def cycles_for(body):
    _, stats = run_single_core(body)
    return stats.cycles


class TestLatencies:
    def _dep_chain(self, emit_op, n=10):
        """Cycles for a dependent chain of n ops (latency exposed)."""

        def body(a):
            a.li('f1', 1.0)
            a.li('f2', 1.0)
            for _ in range(n):
                emit_op(a)

        return cycles_for(body)

    def test_fp_add_longer_than_int_add(self):
        fp = self._dep_chain(lambda a: a.fadd('f1', 'f1', 'f2'))
        i = self._dep_chain(lambda a: a.add('x5', 'x5', 'x6'))
        assert fp > i
        # FP ALU latency is 3 (Table 1a): each dependent fadd adds ~3
        assert fp - i >= 10 * (3 - 1) - 2

    def test_div_is_slow(self):
        div = self._dep_chain(lambda a: a.div('x5', 'x5', 'x6'), n=5)
        add = self._dep_chain(lambda a: a.add('x5', 'x5', 'x6'), n=5)
        assert div > add + 5 * 15  # 20-cycle divider

    def test_independent_ops_pipeline(self):
        """Independent FP ops issue every cycle (OoO writeback)."""

        def dep(a):
            a.li('f1', 1.0)
            a.li('f2', 1.0)
            for _ in range(12):
                a.fmul('f1', 'f1', 'f2')   # dependent

        def indep(a):
            a.li('f1', 1.0)
            a.li('f2', 1.0)
            for i in range(12):
                a.fmul(f'f{3 + i % 8}', 'f1', 'f2')  # independent

        assert cycles_for(indep) < cycles_for(dep)

    def test_waw_hazard_stalls(self):
        """A write after a pending long write must wait (in-order state)."""

        def body(a):
            a.li('x5', 100)
            a.li('x6', 3)
            a.div('x7', 'x5', 'x6')   # x7 busy for ~20 cycles
            a.li('x7', 1)             # WAW on x7
            a.li('x9', 0)
            a.sw('x7', 'x9', 0)

        fabric, stats = run_single_core(body)
        assert fabric.memory[0] == 1
        assert stats.total('stall_scoreboard') > 10


class TestBranches:
    def test_taken_branch_has_bubble(self):
        def taken(a):
            for i in range(20):
                lab = a.label()
                a.j(lab.name) if False else None
                a.beq('x0', 'x0', f'.t{i}')
                a.bind(f'.t{i}')

        def not_taken(a):
            a.li('x5', 1)
            for i in range(20):
                a.beq('x5', 'x0', '.never')
            a.bind('.never')

        assert cycles_for(taken) > cycles_for(not_taken)

    def test_branch_stall_counted(self):
        def body(a):
            with a.for_count('x5', 50):
                a.nop()

        _, stats = run_single_core(body)
        assert stats.total('stall_branch') >= 50


class TestSpadTiming:
    def test_spad_load_use_latency(self):
        def through_spad(a):
            a.li('x5', 0)
            a.li('f1', 1.0)
            for _ in range(20):
                a.swsp('f1', 'x5', 0)
                a.lwsp('f1', 'x5', 0)   # dependent spad round trips

        def through_regs(a):
            a.li('f1', 1.0)
            for _ in range(40):
                a.mv('f2', 'f1')

        assert cycles_for(through_spad) > cycles_for(through_regs)


class TestStoreBehaviour:
    def test_stores_do_not_block(self):
        """Non-blocking stores: issuing many stores costs ~1 cycle each."""

        def body(a):
            a.li('x5', 0)
            a.li('x6', 7)
            for i in range(32):
                a.sw('x6', 'x5', i)

        c = cycles_for(body)
        # ~1 issue slot per store (plus cold I-cache fills); a blocking
        # store would pay ~60+ cycles each (> 2000 total)
        assert c < 250

    def test_all_stores_land(self):
        def body(a):
            a.li('x5', 0)
            a.li('x6', 7)
            for i in range(32):
                a.sw('x6', 'x5', i)

        fabric, _ = run_single_core(body)
        assert fabric.memory[:32] == [7] * 32


class TestICache:
    def test_miss_penalty_on_cold_code(self):
        """First pass through a long body misses; the loop then hits."""

        def body(a):
            with a.for_count('x5', 3):
                for _ in range(200):
                    a.nop()

        fabric, stats = run_single_core(body)
        core = fabric.tiles[0]
        assert core.icache.misses > 0
        # after warm-up each instruction is a hit: misses << accesses
        assert core.icache.misses < core.icache.accesses / 10

    def test_capacity_misses_with_tiny_cache(self):
        cfg = small_config(icache_capacity_bytes=128)  # 32 instructions
        fabric = Fabric(cfg)

        def body(a):
            with a.for_count('x5', 3):
                for _ in range(100):
                    a.nop()

        fabric2, _ = run_single_core(body, fabric)
        assert fabric.tiles[0].icache.misses > 10


class TestCsr:
    def test_coreid_and_ncores(self):
        fabric = Fabric(small_config())
        out = fabric.alloc(8)
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.csrr('x2', op.CSR_NCORES)
        a.csrr('x3', op.CSR_TID)
        a.li('x5', out)
        a.add('x5', 'x5', 'x3')
        a.sw('x2', 'x5', 0)
        a.barrier()
        a.halt()
        fabric.load_program(a.finish(), active_cores=[3, 7])
        fabric.run()
        # two active cores, tids 0 and 1, both report ncores=2
        assert fabric.read_array(out, 2) == [2, 2]

    def test_unknown_csr_raises(self):
        from repro.manycore import SimError

        def body(a):
            a.csrr('x5', 99)

        with pytest.raises(SimError):
            run_single_core(body)
