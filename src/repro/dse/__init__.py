"""Design-space exploration over the analytical fast-path.

`repro.dse` enumerates a fabric config space (group size, frame-counter
depth, LLC banks, NoC width, DRAM bandwidth), triages every point with
the calibrated closed-form model from :mod:`repro.model` — hundreds of
points per second, no simulation — extracts the Pareto frontier over
(cycles, energy, area), and re-simulates only the frontier through the
content-addressed :mod:`repro.jobs` farm.  See ``docs/dse.md``.
"""

from .driver import (DSE_KIND, DSE_SCHEMA_VERSION, DseError,
                     DseValidationError, OBJECTIVES, area_proxy,
                     build_dse_report, dse_path, frontier_specs,
                     load_dse_report, render_dse_report, run_dse,
                     save_dse_report, triage_space, validate_dse_report)
from .pareto import dominates, pareto_frontier
from .space import (AXES_BY_NAME, DEFAULT_AXES, SMALL_AXES, DesignPoint,
                    enumerate_space, space_size)

__all__ = [
    'DSE_KIND', 'DSE_SCHEMA_VERSION', 'DseError', 'DseValidationError',
    'OBJECTIVES', 'area_proxy', 'build_dse_report', 'dse_path',
    'frontier_specs', 'load_dse_report', 'render_dse_report', 'run_dse',
    'save_dse_report', 'triage_space', 'validate_dse_report',
    'dominates', 'pareto_frontier',
    'AXES_BY_NAME', 'DEFAULT_AXES', 'SMALL_AXES', 'DesignPoint',
    'enumerate_space', 'space_size',
]
