"""Wall-clock overhead budget for telemetry + observe (<5% bar).

The instrumented arm attaches both the Telemetry subsystem and an
ObservePlane with its MetricsRegistry, so the budget covers the full
always-on observability stack.

The workload is the quickstart kernel (examples/quickstart.py) scaled
up: the scalar core loops, issuing one group-wide vload and one
microthread per iteration, so every probe family fires continuously —
wide accesses, frame events, microthreads, NoC traversals, LLC queueing
and interval samples.

The budget is certified with the smaller of two noise-robust
estimators, each a consistent estimator of the true ratio that fails
under a different noise mode: **min-of-N over min-of-N** (robust to
symmetric jitter, fooled by slow CPU-speed drift because the two
minima can come from distant time windows) and the **median of
per-pair ratios** (each pair runs the two arms back to back in random
order, so drift and periodic cgroup throttling cancel within the
pair).  Under a real regression both estimators concentrate above the
budget, so the gate stays a reliable tripwire; timings use
``process_time`` (ignores preemption), and the trial count grows until
the budget is met or the cap is reached.  The timed trials run in a
**fresh subprocess** — the same isolation pyperf uses — because a
long-lived test process accumulates heap/allocator state that perturbs
sub-10ms measurements by more than the budget being certified.
"""

import gc
import json
import os
import random
import statistics
import subprocess
import sys
import time

from repro.isa import VL_GROUP, opcodes as op
from repro.telemetry import Telemetry
from tests.test_sim_vector import make_group_fabric, vector_program

LANES = 3
FRAME_SIZE = 4
NUM_SLOTS = 8
ITERS = 240  # scalar-loop iterations: ~60ms runs average over the
#              ~100ms cgroup-throttle quota windows seen on shared CI
#              machines, tightening per-pair ratios


def build_workload():
    fabric, tiles, handle = make_group_fabric(lanes=LANES,
                                              frame_size=FRAME_SIZE)
    # one cache line per iteration keeps every group vload line-aligned
    stride = fabric.cfg.line_words
    assert stride >= LANES * FRAME_SIZE
    data = [float(i % 7) for i in range(ITERS * stride)]
    src = fabric.alloc(data)
    assert src % stride == 0
    out = fabric.alloc(8)

    def scalar(a):
        a.li('x10', src)
        a.li('x11', 0)                    # rotating frame-slot offset
        a.li('x23', FRAME_SIZE * NUM_SLOTS)
        a.li('x20', 0)
        a.li('x21', ITERS)
        a.bind('qs_loop')
        a.vload('x11', 'x10', 0, FRAME_SIZE, VL_GROUP)
        a.vissue('sum_microthread')
        a.addi('x10', 'x10', stride)
        a.addi('x11', 'x11', FRAME_SIZE)  # next frame slot, with wrap
        a.blt('x11', 'x23', 'qs_nowrap')
        a.li('x11', 0)
        a.bind('qs_nowrap')
        a.addi('x20', 'x20', 1)
        a.blt('x20', 'x21', 'qs_loop')
        a.vissue('store_microthread')

    def mts(a):
        a.bind('sum_microthread')
        a.frame_start('x8')
        for i in range(FRAME_SIZE):
            a.lwsp('f1', 'x8', i)
            a.fadd('f5', 'f5', 'f1')
        a.remem()
        a.vend()
        a.bind('store_microthread')
        a.csrr('x5', op.CSR_TID)
        a.li('x7', out)
        a.add('x7', 'x7', 'x5')
        a.sw('f5', 'x7', 0)
        a.vend()

    fabric.load_program(vector_program(scalar, mts, tiles,
                                       frame_size=FRAME_SIZE))
    return fabric


def run_once(telemetry=None, observe=False):
    fabric = build_workload()
    if telemetry is not None:
        telemetry.attach(fabric)
    if observe:
        from repro.observe import ObservePlane
        ObservePlane(snapshot_interval=1000).attach(fabric)
    # collect, then keep the collector off inside the timed region
    # (pyperf-style): whether a ~700-object gen-0 threshold happens to
    # trip during a ~30ms run is aliasing noise larger than the budget
    # being certified, not a property of either arm
    gc.collect()
    gc.disable()
    try:
        t0 = time.process_time()
        stats = fabric.run()
        dt = time.process_time() - t0
    finally:
        gc.enable()
    return dt, stats.cycles


def measure_overhead():
    """Paired-trial overhead protocol; returns a result dict (JSON-safe)."""
    # warm up interpreter/caches so neither arm pays first-run costs
    run_once()
    run_once(Telemetry(sample_interval=1000), observe=True)
    rng = random.Random(0x51ab)
    pairs = []  # (base_seconds, telemetry_seconds) per back-to-back pair
    cycles_equal = True
    ratio = float('inf')
    for cap in (7, 15, 25, 40):  # keep adding trials while over budget
        while len(pairs) < cap:
            tel_first = rng.random() < 0.5
            if tel_first:
                tel_dt, tel_cycles = run_once(
                    Telemetry(sample_interval=1000), observe=True)
            base_dt, base_cycles = run_once()
            if not tel_first:
                tel_dt, tel_cycles = run_once(
                    Telemetry(sample_interval=1000), observe=True)
            pairs.append((base_dt, tel_dt))
            cycles_equal = cycles_equal and tel_cycles == base_cycles
        min_min = (min(t for _, t in pairs) / min(b for b, _ in pairs))
        med_pair = statistics.median(t / b for b, t in pairs)
        ratio = min(min_min, med_pair)
        if ratio < 1.05:
            break
    return {'base_ms': min(b for b, _ in pairs) * 1e3,
            'tel_ms': min(t for _, t in pairs) * 1e3,
            'min_min': min_min, 'median_pair': med_pair,
            'ratio': ratio, 'trials': len(pairs),
            'cycles_equal': cycles_equal}


def test_workload_exercises_every_probe():
    telemetry = Telemetry(sample_interval=1000)
    _, cycles = run_once(telemetry)
    assert cycles > 3000  # long enough for several 1k-cycle samples
    assert len(telemetry.sampler.samples) >= 3
    hists = telemetry.hists
    assert hists['vload_issue_to_last_word'].count == ITERS
    assert hists['frame_fill_to_start'].count > 0
    assert hists['llc_bank_queue'].count > 0
    assert hists['noc_traversal'].count > 0
    counts = telemetry.spans.counts()
    assert counts['microthread'] == ITERS + 1  # one per vissue (expander)
    assert counts['frame'] > 0
    assert counts['wide_access'] == ITERS


def test_workload_feeds_the_observe_registry():
    from repro.observe import ObservePlane
    fabric = build_workload()
    plane = ObservePlane(snapshot_interval=1000)
    plane.attach(fabric)
    fabric.run()
    snap = plane.registry.snapshot()
    wide = snap['mem_requests_total'].get('kind="wide"', 0)
    assert wide == ITERS
    assert snap['noc_words_total'] > 0
    assert snap['frame_words_total'] == ITERS * FRAME_SIZE * LANES
    assert any(v for v in snap['llc_bank_accesses_total'].values())
    assert plane.snapshots >= 3
    assert plane.link_heat.links  # NoC heatmap saw traffic


def test_overhead_under_five_percent():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env['PYTHONPATH'] = os.pathsep.join(
        [os.path.join(root, 'src'), root]
        + [p for p in env.get('PYTHONPATH', '').split(os.pathsep) if p])
    # up to three independent measurement processes: a machine that
    # switches performance modes mid-measurement can push a ~4% true
    # overhead past the gate, but a real regression fails every attempt
    attempts = []
    for _ in range(3):
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__)],
            capture_output=True, text=True, env=env, cwd=root, timeout=300)
        assert proc.returncode == 0, (
            f'overhead worker failed:\n{proc.stdout}\n{proc.stderr}')
        res = json.loads(proc.stdout)
        assert res['cycles_equal']  # telemetry never perturbs sim time
        attempts.append(res)
        if res['ratio'] < 1.05:
            break
    best = min(attempts, key=lambda r: r['ratio'])
    assert best['ratio'] < 1.05, (
        f"telemetry overhead {100 * (best['ratio'] - 1):.1f}% exceeds "
        f"the 5% budget in {len(attempts)} measurement processes "
        f"(best attempt: base {best['base_ms']:.1f}ms, telemetry "
        f"{best['tel_ms']:.1f}ms over {best['trials']} paired trials)")


if __name__ == '__main__':
    print(json.dumps(measure_overhead()))
