"""Parallel sweep execution: a farm of single-job worker processes.

The gem5 artifact this repo reproduces drove its sweeps as independent
jobs; we do the same.  Each job gets its own worker process (not a
long-lived pool worker), which buys three properties cheaply:

* **per-job timeout** — a runaway simulation is ``terminate()``d without
  poisoning other jobs;
* **crash recovery** — a worker that dies without reporting (OOM kill,
  segfault, ``SIGKILL``) is detected by its exit code and the job is
  retried or marked crashed, while the rest of the sweep proceeds;
* **determinism** — a worker runs exactly :func:`run_job`, the same code
  the serial path uses, so parallel cycle counts are bit-identical to
  serial ones (tested).

Results cross back over a one-way pipe as the lossless dict form from
:mod:`repro.jobs.serialize`; only the parent touches the
:class:`~repro.jobs.store.ResultStore`.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence

from .serialize import result_from_dict, result_to_dict
from .spec import JobSpec

# outcome statuses
DONE = 'done'          # simulated successfully this run
CACHED = 'cached'      # served from the persistent store, no worker launched
FAILED = 'failed'      # the job raised (deterministic; not retried)
TIMEOUT = 'timeout'    # exceeded the per-job timeout on every attempt
CRASHED = 'crashed'    # worker died without reporting on every attempt


def run_job(spec: JobSpec):
    """Execute one job in the current process; the worker entry point.

    This is *the* definition of what a job spec means — the serial
    figure/experiment path calls it too, which is what makes parallel
    and serial sweeps bit-identical.
    """
    from ..harness.runner import run_benchmark
    from ..kernels import registry
    bench = registry.make(spec.benchmark)
    params = bench.params_for('test' if spec.scale == 'test' else 'bench')
    params.update(spec.params_dict())
    return run_benchmark(
        bench, spec.config, params,
        base_machine=spec.machine_config(),
        verify=spec.verify,
        active_cores=list(spec.active_cores) if spec.active_cores else None,
        max_cycles=spec.max_cycles)


def _worker_entry(job_fn, spec, conn, encode=result_to_dict):
    """Run one job and ship the serialized result (or traceback) back."""
    try:
        result = job_fn(spec)
        conn.send(('ok', encode(result)))
    except BaseException:
        try:
            conn.send(('error', traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class JobOutcome:
    """Terminal state of one job after caching, retries and recovery."""

    spec: JobSpec
    key: str
    status: str
    result: Optional[object] = None  # RunResult when ok
    error: str = ''
    attempts: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (DONE, CACHED)

    @property
    def from_cache(self) -> bool:
        return self.status == CACHED


class SweepEngine:
    """Execute a set of job specs across a bounded worker farm.

    Parameters
    ----------
    jobs:
        Max concurrent worker processes (>= 1).
    timeout:
        Per-job wall-clock budget in seconds; ``None`` disables.
    retries:
        Extra attempts after a crash or timeout (raised exceptions are
        deterministic and are not retried unless ``retry_errors``).
    store:
        Optional :class:`~repro.jobs.store.ResultStore`; hits skip the
        worker launch entirely and fresh results are written back.
    use_cache:
        When False the store is write-only (``--no-cache``).
    job_fn:
        The callable a worker runs; tests substitute failure-injecting
        functions here.  Must accept a JobSpec and return a RunResult.
    progress:
        ``callback(outcome, done, total)`` fired as each job reaches a
        terminal state.
    encode / decode:
        The wire format a result takes across the worker pipe.  The
        defaults carry :class:`~repro.harness.runner.RunResult`s
        losslessly; other farms (``repro.fleet`` ships serving-report
        dicts) substitute their own pair.  ``decode`` must accept the
        encoded payload and return the outcome's ``result`` object.

    ``self.launched`` counts actual worker launches — the number tests
    assert on to prove cache hits and resumes do no simulation work.
    """

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 1, store=None, use_cache: bool = True,
                 job_fn: Callable = run_job, retry_errors: bool = False,
                 progress: Optional[Callable] = None,
                 mp_context: Optional[str] = None,
                 poll_interval: float = 0.02,
                 encode: Callable = result_to_dict,
                 decode: Callable = None):
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.store = store
        self.use_cache = use_cache
        self.job_fn = job_fn
        self.retry_errors = retry_errors
        self.progress = progress
        self.poll_interval = poll_interval
        if mp_context is None:
            mp_context = ('fork' if 'fork' in mp.get_all_start_methods()
                          else 'spawn')
        self.ctx = mp.get_context(mp_context)
        self.encode = encode
        self.decode = (decode if decode is not None
                       else lambda doc: result_from_dict(
                           doc, source='simulated'))
        self.launched = 0

    # ------------------------------------------------------------------ api
    def execute(self, specs: Sequence[JobSpec],
                manifest=None) -> List[JobOutcome]:
        """Run every (deduplicated) spec; returns outcomes in spec order.

        ``manifest`` (a :class:`~repro.jobs.manifest.SweepManifest`) is
        updated and saved after each terminal outcome, making the sweep
        resumable after an interrupt.
        """
        unique: List[JobSpec] = []
        seen = set()
        for s in specs:
            k = s.key()
            if k not in seen:
                seen.add(k)
                unique.append(s)

        self._outcomes: Dict[str, JobOutcome] = {}
        self._manifest = manifest
        self._total = len(unique)
        pending = deque()
        for s in unique:
            k = s.key()
            cached = (self.store.get(k)
                      if self.use_cache and self.store is not None else None)
            if cached is not None:
                self._finish(JobOutcome(s, k, CACHED, cached, attempts=0))
            else:
                pending.append((s, k, 1))

        active: Dict[object, dict] = {}  # recv conn -> launch info
        try:
            while pending or active:
                while pending and len(active) < self.jobs:
                    self._launch(pending.popleft(), active)
                ready = mp_connection.wait(list(active),
                                           timeout=self.poll_interval) \
                    if active else []
                now = time.monotonic()
                for conn in ready:
                    info = active.pop(conn)
                    try:
                        payload = conn.recv()
                    except (EOFError, OSError):
                        payload = None
                    conn.close()
                    info['proc'].join()
                    elapsed = now - info['started']
                    if payload is None:
                        self._retry_or_fail(
                            info, CRASHED, pending, elapsed,
                            f'worker exited without a result '
                            f'(exitcode {info["proc"].exitcode})')
                    elif payload[0] == 'ok':
                        result = self.decode(payload[1])
                        if self.store is not None:
                            self.store.put(info['key'], result)
                        self._finish(JobOutcome(
                            info['spec'], info['key'], DONE, result,
                            attempts=info['attempt'], elapsed=elapsed))
                    else:
                        self._retry_or_fail(info, FAILED, pending, elapsed,
                                            payload[1])
                for conn, info in list(active.items()):
                    elapsed = now - info['started']
                    if self.timeout is not None and elapsed > self.timeout:
                        active.pop(conn)
                        self._kill(info['proc'])
                        conn.close()
                        self._retry_or_fail(
                            info, TIMEOUT, pending, elapsed,
                            f'exceeded per-job timeout of {self.timeout}s')
                    elif not info['proc'].is_alive() and not conn.poll():
                        # died silently (e.g. SIGKILL); a sent-then-exited
                        # worker still has data in the pipe and is handled
                        # by the ready loop above.
                        active.pop(conn)
                        conn.close()
                        info['proc'].join()
                        self._retry_or_fail(
                            info, CRASHED, pending, elapsed,
                            f'worker killed '
                            f'(exitcode {info["proc"].exitcode})')
        finally:
            for info in active.values():
                self._kill(info['proc'])
        return [self._outcomes[s.key()] for s in unique]

    # ------------------------------------------------------------- internals
    def _launch(self, item, active) -> None:
        spec, key, attempt = item
        recv, send = self.ctx.Pipe(duplex=False)
        proc = self.ctx.Process(target=_worker_entry,
                                args=(self.job_fn, spec, send, self.encode),
                                daemon=True)
        proc.start()
        send.close()
        self.launched += 1
        active[recv] = {'proc': proc, 'spec': spec, 'key': key,
                        'attempt': attempt, 'started': time.monotonic()}

    @staticmethod
    def _kill(proc) -> None:
        try:
            proc.terminate()
            proc.join(0.5)
            if proc.is_alive():
                proc.kill()
                proc.join()
        except (OSError, ValueError):
            pass

    def _retry_or_fail(self, info, status, pending, elapsed, error) -> None:
        retryable = status in (CRASHED, TIMEOUT) or self.retry_errors
        if retryable and info['attempt'] <= self.retries:
            pending.append((info['spec'], info['key'], info['attempt'] + 1))
            return
        self._finish(JobOutcome(info['spec'], info['key'], status, None,
                                error=error, attempts=info['attempt'],
                                elapsed=elapsed))

    def _finish(self, outcome: JobOutcome) -> None:
        self._outcomes[outcome.key] = outcome
        if self._manifest is not None:
            self._manifest.record(outcome)
            self._manifest.save()
        if self.progress is not None:
            self.progress(outcome, len(self._outcomes), self._total)


def any_failed(outcomes: Sequence[JobOutcome]) -> bool:
    return any(not o.ok for o in outcomes)


def render_summary(outcomes: Sequence[JobOutcome], store=None) -> str:
    """Readable sweep wrap-up: totals plus one line per failed point.

    With ``store``, also reports how much simulation the cache saved
    and the store's on-disk footprint.
    """
    counts = {}
    for o in outcomes:
        counts[o.status] = counts.get(o.status, 0) + 1
    done = counts.get(DONE, 0)
    cached = counts.get(CACHED, 0)
    bad = sum(counts.get(s, 0) for s in (FAILED, TIMEOUT, CRASHED))
    lines = [f'sweep: {len(outcomes)} job(s) — {done} simulated, '
             f'{cached} cached, {bad} failed']
    for o in outcomes:
        if not o.ok:
            reason = o.error.strip().splitlines()[-1] if o.error else ''
            lines.append(f'  {o.status.upper():8s} {o.spec.label()} '
                         f'(attempts={o.attempts}): {reason}')
    if store is not None:
        saved = (f'cache served {cached} of {len(outcomes)} job(s)'
                 if outcomes else 'cache served 0 job(s)')
        lines.append(f'store: {store.root} — {len(store)} result(s), '
                     f'{_human_bytes(store.total_bytes())}; {saved}')
    return '\n'.join(lines)


def _human_bytes(n: int) -> str:
    for unit in ('B', 'KiB', 'MiB', 'GiB'):
        if n < 1024 or unit == 'GiB':
            return f'{n:.1f} {unit}' if unit != 'B' else f'{n} B'
        n /= 1024.0
    return f'{n} B'
