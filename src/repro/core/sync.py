"""Compiler-driven implicit synchronization bounds (paper Section 4.2).

The inet is a bounded queue, so any core in a vector group can trail any
other by at most a bounded number of dynamic instructions.  The paper derives

    n = (2m - 2) * q_inet + sum_i(buf_i) + ROB

for an m x m vector group, then sizes the scalar core's safe runahead:

    num_active_frames = ceil(n / instructions_per_frame)
    ahead_offset      = max_frames - (num_active_frames + q_inet)

The codegen layer uses :func:`safe_runahead` to pace ``vload``s so the frame
counter window (5 counters in Rockcress) is never overrun.
"""

from __future__ import annotations

import math


def instruction_delay_bound(group_tiles: int, inet_queue: int,
                            pipeline_buf_total: int, rob_entries: int) -> int:
    """Max dynamic-instruction separation between any two cores in a group.

    ``group_tiles`` is the total number of cores on the inet path (scalar +
    lanes); the longest forwarding path in the paper's m x m formulation is
    ``2m - 2`` hops, which for a linear path of ``t`` tiles is ``t - 1``
    hops.  We use the path length directly since our groups are laid out as
    serpentine chains.
    """
    hops = max(1, group_tiles - 1)
    return hops * inet_queue + pipeline_buf_total + rob_entries


def num_active_frames(delay_bound: int, instructions_per_frame: int) -> int:
    """Frames that may be simultaneously live given the delay bound."""
    if instructions_per_frame <= 0:
        raise ValueError('instructions_per_frame must be positive')
    return math.ceil(delay_bound / instructions_per_frame)


def ahead_offset(max_frames: int, active_frames: int, inet_queue: int) -> int:
    """How many frames the scalar core may run ahead (paper's formula)."""
    return max_frames - (active_frames + inet_queue)


def safe_runahead(group_tiles: int, instructions_per_frame: int,
                  max_frames: int = 5, inet_queue: int = 2,
                  pipeline_buf_total: int = 8, rob_entries: int = 8) -> int:
    """Conservative scalar runahead distance in frames (always >= 1).

    The paper's formula can go non-positive for short microthreads; real
    code then needs extra synchronization.  Our codegen clamps to the
    structurally safe bound ``max_frames - inet_queue - 1`` (the inet can
    hold ``inet_queue`` undelivered microthread launches and one microthread
    may be executing), and never below 1.
    """
    n = instruction_delay_bound(group_tiles, inet_queue,
                                pipeline_buf_total, rob_entries)
    active = num_active_frames(n, instructions_per_frame)
    ahead = ahead_offset(max_frames, active, inet_queue)
    structural_cap = max(1, max_frames - inet_queue - 1)
    if ahead < 1:
        ahead = structural_cap
    return min(ahead, structural_cap)
