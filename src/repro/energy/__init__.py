"""First-order dynamic energy model (paper Section 5.2)."""

from .model import (EnergyBreakdown, EnergyModel, EnergyParams,
                    compute_energy)

__all__ = ['EnergyModel', 'EnergyParams', 'EnergyBreakdown',
           'compute_energy']
