"""The curated host-performance benchmark suite (``repro bench run``).

A bench run answers "how fast is the *simulator* on this machine, right
now" with numbers stable enough to gate on:

* a fixed set of small deterministic workloads spanning the simulator's
  modes — MIMD, software-defined vector groups, and multi-tenant
  serving — so a change to any subsystem moves at least one case;
* every case runs ``repeats`` times; wall time is summarized as
  **median + IQR** (robust against scheduler noise on shared CI
  runners), and the simulated figures of merit (cycles, instructions)
  are asserted identical across repeats — the suite doubles as a
  determinism check;
* the artifact is a schema-checked ``BENCH_<label>.json`` carrying
  host info and :mod:`repro.jobs` provenance (the code-version salt,
  its hash, and the machine-config hash), so two files are only ever
  gated against each other when they describe comparable simulators.

The regression gate over two of these files lives in
:mod:`repro.perf.gate`; the host-time profiler that explains *why* a
case got slower lives in :mod:`repro.perf.profiler`.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

BENCH_SCHEMA_VERSION = 1
BENCH_KIND = 'repro-bench-report'

DEFAULT_REPEATS = 3
FAST_REPEATS = 1


# ---------------------------------------------------------------------- cases
@dataclass(frozen=True)
class BenchCase:
    """One curated workload; ``fast`` cases form the smoke subset."""

    name: str
    kind: str  # 'mimd' | 'vector' | 'serve'
    workload: Dict[str, object] = field(default_factory=dict)
    fast: bool = True


BENCH_SUITE: List[BenchCase] = [
    BenchCase('mimd-gemm', 'mimd',
              {'benchmark': 'gemm', 'config': 'NV_PF', 'scale': 'test'}),
    BenchCase('vector-gemm', 'vector',
              {'benchmark': 'gemm', 'config': 'V4_PCV', 'scale': 'test'}),
    BenchCase('vector-mvt-v16', 'vector',
              {'benchmark': 'mvt', 'config': 'V16', 'scale': 'test'},
              fast=False),
    BenchCase('vector-fdtd', 'vector',
              {'benchmark': 'fdtd-2d', 'config': 'V4', 'scale': 'test'},
              fast=False),
    BenchCase('serve-mixed', 'serve',
              {'seed': 8, 'requests': 6, 'scale': 'test'}),
]


def suite_cases(fast: bool = False,
                names: Optional[Sequence[str]] = None) -> List[BenchCase]:
    """Select suite cases; unknown names raise ``ValueError``."""
    cases = [c for c in BENCH_SUITE if not fast or c.fast]
    if names:
        by_name = {c.name: c for c in BENCH_SUITE}
        missing = [n for n in names if n not in by_name]
        if missing:
            raise ValueError(
                f'unknown bench case(s): {", ".join(missing)} '
                f'(known: {", ".join(sorted(by_name))})')
        cases = [by_name[n] for n in names]
    return cases


# ------------------------------------------------------------------ execution
def _run_case_once(case: BenchCase, profiler=None) -> Dict[str, int]:
    """Execute one case; returns its simulated figures of merit."""
    if case.kind in ('mimd', 'vector'):
        from ..harness import run_benchmark
        from ..kernels import registry
        w = case.workload
        bench = registry.make(w['benchmark'])
        params = bench.params_for(w['scale'])
        r = run_benchmark(bench, w['config'], params, profiler=profiler)
        return {'cycles': r.cycles, 'instrs': r.stats.total_instrs}
    if case.kind == 'serve':
        from ..manycore import Fabric
        from ..serve import FAILED, ServeScheduler, generate_trace
        w = case.workload
        requests = generate_trace(seed=w['seed'], n_requests=w['requests'],
                                  scale=w['scale'])
        fabric = Fabric()
        if profiler is not None:
            profiler.attach(fabric)
        result = ServeScheduler(fabric).run(requests)
        failed = [r for r in result.requests if r.state == FAILED]
        if failed:
            raise RuntimeError(f'bench serve case {case.name}: '
                               f'{len(failed)} request(s) failed')
        return {'cycles': result.makespan,
                'instrs': fabric.run_stats.total_instrs}
    raise ValueError(f'unknown bench case kind {case.kind!r}')


def peak_rss_kb() -> int:
    """Process peak resident set size in KiB (0 where unsupported).

    ``ru_maxrss`` is a lifetime high-water mark, so per-case values are
    monotone over a suite run; the per-case number still localizes which
    case first pushed the peak up.
    """
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == 'Darwin':  # bytes on macOS, KiB on Linux
        rss //= 1024
    return int(rss)


@dataclass(frozen=True, eq=False)
class _IsolatedRepeat:
    """One isolated repeat: a :mod:`repro.jobs` spec for a bench case."""

    case_name: str
    kind: str
    workload: Dict[str, object]
    repeat: int

    def key(self) -> str:
        return f'bench-iso-{self.case_name}-r{self.repeat}'

    def label(self) -> str:
        return f'{self.case_name}[r{self.repeat}]'


def _isolated_repeat_job(spec: _IsolatedRepeat) -> dict:
    """Worker entry: time one repeat inside a pristine interpreter."""
    case = BenchCase(spec.case_name, spec.kind, dict(spec.workload))
    t0 = perf_counter()
    sim = _run_case_once(case)
    return {'wall': perf_counter() - t0, 'sim': sim,
            'peak_rss_kb': peak_rss_kb()}


def _run_case_isolated(case: BenchCase, repeats: int,
                       timeout: Optional[float]) -> tuple:
    """Run each repeat in its own worker process, one at a time.

    Process isolation removes in-process cross-talk between repeats
    (allocator reuse, reference-cache warmth, GC debt from the previous
    repeat) at fork/exec cost; repeats stay sequential so they never
    contend for cores.  Child peak RSS replaces the parent's lifetime
    high-water mark, which makes the per-case RSS figure meaningful
    again instead of monotone over the suite.
    """
    from ..jobs.engine import DONE, SweepEngine
    specs = [_IsolatedRepeat(case.name, case.kind, dict(case.workload), i)
             for i in range(max(1, repeats))]
    eng = SweepEngine(jobs=1, retries=0, store=None, timeout=timeout,
                      job_fn=_isolated_repeat_job,
                      encode=lambda d: d, decode=lambda d: d)
    outcomes = eng.execute(specs)
    bad = [o for o in outcomes if o.status != DONE]
    if bad:
        raise RuntimeError(
            f'bench case {case.name}: {len(bad)} isolated repeat(s) '
            f'{bad[0].status}: {bad[0].error}')
    walls = [o.result['wall'] for o in outcomes]
    sims = [o.result['sim'] for o in outcomes]
    rss = max(o.result['peak_rss_kb'] for o in outcomes)
    return walls, sims, rss


def run_case(case: BenchCase, repeats: int = DEFAULT_REPEATS,
             profile: bool = False, deep: bool = False,
             isolate: bool = False,
             isolate_timeout: Optional[float] = None) -> dict:
    """Run one case ``repeats`` times; returns its report section.

    When ``profile`` is set, one *extra* profiled repeat runs after the
    timing repeats (the instrumented loop costs a few percent, so it is
    kept out of the wall-time statistics) and its component attribution
    is embedded under ``profile``.  ``isolate`` runs every timing repeat
    in its own worker process (see :func:`_run_case_isolated`).
    """
    if isolate:
        walls, sims, rss = _run_case_isolated(case, repeats,
                                              isolate_timeout)
    else:
        walls = []
        sims = []
        for _ in range(max(1, repeats)):
            t0 = perf_counter()
            sims.append(_run_case_once(case))
            walls.append(perf_counter() - t0)
        rss = peak_rss_kb()
    deterministic = all(s == sims[0] for s in sims)
    sim = sims[0]
    med = statistics.median(walls)
    if len(walls) >= 2:
        q = statistics.quantiles(walls, n=4, method='inclusive')
        iqr = q[2] - q[0]
    else:
        iqr = 0.0
    doc = {
        'name': case.name,
        'kind': case.kind,
        'workload': dict(case.workload),
        'repeats': len(walls),
        'wall_seconds': {
            'median': med,
            'iqr': iqr,
            'min': min(walls),
            'max': max(walls),
            'runs': walls,
        },
        'sim': {
            'cycles': sim['cycles'],
            'instrs': sim['instrs'],
            'cycles_per_host_second': sim['cycles'] / med if med else 0.0,
            'instrs_per_host_second': sim['instrs'] / med if med else 0.0,
        },
        'peak_rss_kb': rss,
        'deterministic': deterministic,
        'isolated': isolate,
    }
    if profile:
        from .profiler import HostProfiler
        prof = HostProfiler(deep=deep)
        _run_case_once(case, profiler=prof)
        doc['profile'] = prof.to_dict()
    return doc


def run_suite(fast: bool = False, repeats: Optional[int] = None,
              names: Optional[Sequence[str]] = None, label: str = 'local',
              profile: bool = False, deep: bool = False,
              isolate: bool = False,
              isolate_timeout: Optional[float] = None,
              progress: Optional[Callable] = None) -> dict:
    """Run the (selected) suite and build the bench report document."""
    cases = suite_cases(fast=fast, names=names)
    if repeats is None:
        repeats = FAST_REPEATS if fast else DEFAULT_REPEATS
    out = []
    for i, case in enumerate(cases):
        doc = run_case(case, repeats=repeats, profile=profile, deep=deep,
                       isolate=isolate, isolate_timeout=isolate_timeout)
        out.append(doc)
        if progress is not None:
            progress(doc, i + 1, len(cases))
    return build_bench_report(out, label=label, fast=fast, repeats=repeats)


# -------------------------------------------------------------------- report
_COUNTER = {'type': 'integer', 'minimum': 0}
_NUMBER = {'type': 'number'}
_NONNEG = {'type': 'number', 'minimum': 0}

CASE_SCHEMA = {
    'type': 'object',
    'required': ['name', 'kind', 'workload', 'repeats', 'wall_seconds',
                 'sim', 'peak_rss_kb', 'deterministic'],
    'properties': {
        'name': {'type': 'string'},
        'kind': {'type': 'string'},
        'workload': {'type': 'object'},
        'repeats': {'type': 'integer', 'minimum': 1},
        'wall_seconds': {
            'type': 'object',
            'required': ['median', 'iqr', 'min', 'max', 'runs'],
            'properties': {
                'median': _NONNEG, 'iqr': _NONNEG,
                'min': _NONNEG, 'max': _NONNEG,
                'runs': {'type': 'array', 'items': _NONNEG},
            },
        },
        'sim': {
            'type': 'object',
            'required': ['cycles', 'instrs', 'cycles_per_host_second',
                         'instrs_per_host_second'],
            'properties': {
                'cycles': _COUNTER,
                'instrs': _COUNTER,
                'cycles_per_host_second': _NONNEG,
                'instrs_per_host_second': _NONNEG,
            },
        },
        'peak_rss_kb': _COUNTER,
        'deterministic': {'type': 'boolean'},
        'isolated': {'type': 'boolean'},
        'profile': {
            'type': 'object',
            'required': ['total_seconds', 'components', 'residual_seconds',
                         'coverage'],
            'properties': {
                'total_seconds': _NONNEG,
                'components': {'type': 'object'},
                'residual_seconds': _NONNEG,
                'coverage': _NONNEG,
            },
        },
    },
}

BENCH_SCHEMA = {
    'type': 'object',
    'required': ['schema_version', 'kind', 'label', 'generated', 'host',
                 'provenance', 'suite', 'cases'],
    'properties': {
        'schema_version': {'type': 'integer',
                           'enum': [BENCH_SCHEMA_VERSION]},
        'kind': {'type': 'string', 'enum': [BENCH_KIND]},
        'label': {'type': 'string'},
        'generated': {
            'type': 'object',
            'required': ['git_sha', 'timestamp', 'python'],
            'properties': {
                'git_sha': {'type': 'string'},
                'timestamp': {'type': 'string'},
                'python': {'type': 'string'},
            },
        },
        'host': {
            'type': 'object',
            'required': ['platform', 'machine', 'python_impl'],
            'properties': {
                'platform': {'type': 'string'},
                'machine': {'type': 'string'},
                'python_impl': {'type': 'string'},
                'cpu_count': _COUNTER,
            },
        },
        'provenance': {
            'type': 'object',
            'required': ['code_version', 'code_version_hash',
                         'machine_hash'],
            'properties': {
                'code_version': {'type': 'integer'},
                'code_version_hash': {'type': 'string'},
                'machine_hash': {'type': 'string'},
            },
        },
        'suite': {
            'type': 'object',
            'required': ['fast', 'repeats'],
            'properties': {
                'fast': {'type': 'boolean'},
                'repeats': {'type': 'integer', 'minimum': 1},
            },
        },
        'cases': {'type': 'array', 'items': CASE_SCHEMA},
    },
}


class BenchValidationError(Exception):
    """The document does not conform to the bench-report schema."""


def validate_bench_report(doc: dict) -> None:
    from ..telemetry.report import check_schema
    errors = check_schema(doc, BENCH_SCHEMA)
    if errors:
        raise BenchValidationError('; '.join(errors[:20]))


def build_bench_report(cases: List[dict], label: str = 'local',
                       fast: bool = False,
                       repeats: int = DEFAULT_REPEATS) -> dict:
    from ..jobs.spec import CODE_VERSION, code_version_hash, machine_hash
    from ..manycore import DEFAULT_CONFIG
    from ..telemetry.report import _generated
    doc = {
        'schema_version': BENCH_SCHEMA_VERSION,
        'kind': BENCH_KIND,
        'label': label,
        'generated': _generated(),
        'host': {
            'platform': platform.platform(),
            'machine': platform.machine(),
            'python_impl': platform.python_implementation(),
            'cpu_count': os.cpu_count() or 0,
        },
        'provenance': {
            'code_version': CODE_VERSION,
            'code_version_hash': code_version_hash(),
            'machine_hash': machine_hash(DEFAULT_CONFIG),
        },
        'suite': {'fast': fast, 'repeats': repeats},
        'cases': cases,
    }
    validate_bench_report(doc)
    return doc


def bench_path(label: str, directory: str = '.') -> str:
    """Canonical artifact name: ``BENCH_<label>.json``."""
    safe = ''.join(c if c.isalnum() or c in '-_.' else '-' for c in label)
    return os.path.join(directory, f'BENCH_{safe}.json')


def save_bench_report(doc: dict, path: str) -> str:
    with open(path, 'w') as f:
        json.dump(doc, f, indent=1)
    return path


def load_bench_report(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    validate_bench_report(doc)
    return doc


# -------------------------------------------------------------------- render
def render_bench_report(doc: dict) -> str:
    prov = doc['provenance']
    lines = [f"bench {doc['label']}  (schema v{doc['schema_version']}, "
             f"git {doc['generated']['git_sha'][:12]}, "
             f"code-version {prov['code_version']} "
             f"[{prov['code_version_hash'][:8]}], "
             f"machine {prov['machine_hash'][:8]})",
             f"  host: {doc['host']['platform']} "
             f"({doc['host']['python_impl']} "
             f"{doc['generated']['python']})",
             f'  {"case":<16s} {"median":>9s} {"iqr":>8s} '
             f'{"cycles":>10s} {"cyc/s":>10s} {"RSS MiB":>8s}']
    for c in doc['cases']:
        w = c['wall_seconds']
        s = c['sim']
        det = '' if c['deterministic'] else '  NONDETERMINISTIC'
        lines.append(
            f'  {c["name"]:<16s} {w["median"]:>8.3f}s {w["iqr"]:>7.3f}s '
            f'{s["cycles"]:>10d} {s["cycles_per_host_second"]:>10.0f} '
            f'{c["peak_rss_kb"] / 1024:>8.1f}{det}')
        prof = c.get('profile')
        if prof:
            from .profiler import LOOP_COMPONENTS
            top = sorted(((k, v) for k, v in prof['components'].items()
                          if k in LOOP_COMPONENTS),
                         key=lambda kv: -kv[1])[:4]
            parts = ', '.join(f'{k} {v / (prof["total_seconds"] or 1):.0%}'
                              for k, v in top)
            lines.append(f'    profile: {prof["coverage"]:.1%} attributed '
                         f'({parts}; residual '
                         f'{prof["residual_seconds"]:.3f}s)')
    return '\n'.join(lines)
