"""repro — a reproduction of *Software-Defined Vector Processing on
Manycore Fabrics* (Rockcress, MICRO 2021).

Public API highlights:

* :class:`repro.manycore.Fabric` — the simulated machine
* :class:`repro.isa.Assembler` — write mini-ISA programs
* :mod:`repro.core` — the software-defined vector mechanisms
* :mod:`repro.kernels` — PolyBench/GPU kernels for every configuration
* :mod:`repro.harness` — Table 3 configurations and figure regeneration
"""

from .isa import Assembler, Program
from .manycore import DEFAULT_CONFIG, Fabric, MachineConfig, RunStats

__version__ = '0.1.0'

__all__ = ['Assembler', 'Program', 'Fabric', 'MachineConfig',
           'DEFAULT_CONFIG', 'RunStats', '__version__']
