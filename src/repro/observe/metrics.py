"""The metrics registry: named counters, gauges, and log2 histograms.

A :class:`MetricsRegistry` is the always-on spine of the serving
observability plane.  It is deliberately boring: metric *families* are
named once (``registry.counter('llc_bank_accesses_total')``) and labeled
children (``family.labels(bank=3)``) are plain Python objects whose hot
operation is one integer add — cheap enough that the plane keeps the
registry attached by default.  Nothing in here touches the simulator;
the :class:`~repro.observe.ObservePlane` feeds it at drain/snapshot
time, and schedulers feed it on (rare) request state changes.

Two export formats:

* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``), so a snapshot
  can be scraped or diffed with standard tooling;
* :meth:`MetricsRegistry.snapshot` — a flat JSON-safe dict, one entry
  per family, written as JSONL time-series lines by the plane's
  ``--metrics-out`` sink.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..telemetry.histogram import Log2Histogram

COUNTER = 'counter'
GAUGE = 'gauge'
HISTOGRAM = 'histogram'

LabelValues = Tuple[Tuple[str, object], ...]


def _label_key(labels: dict) -> LabelValues:
    return tuple(sorted(labels.items()))


def _label_str(key: LabelValues) -> str:
    return ','.join(f'{k}="{v}"' for k, v in key)


def _escape_label_value(v: object) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and line feed must be escaped inside the
    quoted value (in that order, so introduced backslashes survive)."""
    return (str(v).replace('\\', r'\\').replace('"', r'\"')
            .replace('\n', r'\n'))


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and line feed only (quotes are
    legal verbatim outside a quoted string)."""
    return text.replace('\\', r'\\').replace('\n', r'\n')


def _prom_label_str(key: LabelValues) -> str:
    """Exposition-format label rendering (escaped), as opposed to
    :func:`_label_str` which keys JSON snapshots and must stay stable."""
    return ','.join(f'{k}="{_escape_label_value(v)}"' for k, v in key)


class Counter:
    """A monotonically increasing count; ``inc`` is the hot operation."""

    __slots__ = ('value',)

    def __init__(self):
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (queue depth, occupancy, utilization)."""

    __slots__ = ('value',)

    def __init__(self):
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n


class MetricFamily:
    """One named metric with zero or more labeled children.

    The unlabeled child (``family.labels()`` with no kwargs) is created
    eagerly so ``family.inc()`` / ``family.set()`` work directly for
    scalar metrics.
    """

    def __init__(self, name: str, kind: str, help: str = '',
                 unit: str = ''):
        self.name = name
        self.kind = kind
        self.help = help
        self.unit = unit
        self.children: Dict[LabelValues, object] = {}
        self._default = self._child(())

    def _new_child(self):
        if self.kind == COUNTER:
            return Counter()
        if self.kind == GAUGE:
            return Gauge()
        return Log2Histogram(self.name, unit=self.unit or 'cycles')

    def _child(self, key: LabelValues):
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = self._new_child()
        return child

    def labels(self, **labels):
        """The child for this label set (created on first use)."""
        if not labels:
            return self._default
        return self._child(_label_key(labels))

    # scalar convenience (proxies to the unlabeled child)
    def inc(self, n=1) -> None:
        self._default.inc(n)

    def set(self, v) -> None:
        self._default.set(v)

    def dec(self, n=1) -> None:
        self._default.dec(n)

    def observe(self, v) -> None:
        self._default.record(v)

    # ---------------------------------------------------------------- export
    def _value_of(self, child):
        if self.kind == HISTOGRAM:
            return {'count': child.count, 'mean': child.mean,
                    'p50': child.percentile(50),
                    'p99': child.percentile(99),
                    'max': float(child.max) if child.max is not None
                    else 0.0}
        return child.value

    def snapshot_value(self):
        """JSON-safe value: scalar for unlabeled, dict for labeled."""
        labeled = {k: v for k, v in self.children.items() if k}
        default = self._value_of(self._default)
        if not labeled:
            return default
        out = {_label_str(k): self._value_of(c) for k, c in
               sorted(labeled.items())}
        if self.kind == HISTOGRAM or self._nonzero(default):
            out[''] = default
        return out

    @staticmethod
    def _nonzero(v) -> bool:
        if isinstance(v, dict):
            return any(MetricFamily._nonzero(x) for x in v.values())
        return bool(v)

    def expose(self) -> List[str]:
        """Prometheus text-exposition lines for this family."""
        lines = []
        if self.help:
            lines.append(f'# HELP {self.name} {_escape_help(self.help)}')
        lines.append(f'# TYPE {self.name} {self.kind}')
        for key, child in sorted(self.children.items()):
            suffix = '{%s}' % _prom_label_str(key) if key else ''
            if self.kind == HISTOGRAM:
                if not child.count:
                    continue
                base = key + (('le', '+Inf'),)
                cum = 0
                for lo, n in sorted(child.buckets().items()):
                    cum += n
                    bkey = key + (('le', str(lo)),)
                    lines.append(f'{self.name}_bucket'
                                 f'{{{_prom_label_str(bkey)}}} {cum}')
                lines.append(f'{self.name}_bucket'
                             f'{{{_prom_label_str(base)}}} {child.count}')
                lines.append(f'{self.name}_sum{suffix} {child.total}')
                lines.append(f'{self.name}_count{suffix} {child.count}')
            else:
                if key or self._nonzero(child.value) \
                        or len(self.children) == 1:
                    lines.append(f'{self.name}{suffix} {child.value}')
        return lines


class MetricsRegistry:
    """A namespace of metric families, cheap enough to stay attached."""

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------- definition
    def _family(self, name: str, kind: str, help: str,
                unit: str) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = MetricFamily(name, kind, help,
                                                      unit)
        elif fam.kind != kind:
            raise ValueError(f'metric {name!r} already registered as '
                             f'{fam.kind}, not {kind}')
        return fam

    def counter(self, name: str, help: str = '',
                unit: str = '') -> MetricFamily:
        return self._family(name, COUNTER, help, unit)

    def gauge(self, name: str, help: str = '',
              unit: str = '') -> MetricFamily:
        return self._family(name, GAUGE, help, unit)

    def histogram(self, name: str, help: str = '',
                  unit: str = 'cycles') -> MetricFamily:
        return self._family(name, HISTOGRAM, help, unit)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __iter__(self) -> Iterable[MetricFamily]:
        return iter(self._families.values())

    def __len__(self) -> int:
        return len(self._families)

    # ----------------------------------------------------------------- export
    def snapshot(self) -> dict:
        """Flat JSON-safe view of every family's current value."""
        return {name: fam.snapshot_value()
                for name, fam in sorted(self._families.items())}

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry."""
        lines: List[str] = []
        for _, fam in sorted(self._families.items()):
            lines.extend(fam.expose())
        return '\n'.join(lines) + '\n'
