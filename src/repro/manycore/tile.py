"""One manycore tile: an in-order core with I-cache, scratchpad, and inet.

The pipeline model follows the paper's CPU (8-stage, single-issue, in-order
issue, out-of-order writeback, in-order commit) at issue granularity: at
most one instruction issues per cycle, destination/source registers are
tracked with a scoreboard whose release times model functional-unit
latencies, and loads occupy one of two load-queue entries until their
response returns.  Taken branches cost a fixed bubble.

A tile operates in one of four roles (paper Figure 1/6):

* ``independent`` — ordinary MIMD execution, fetching from its I-cache;
* ``scalar``      — leads a vector group; fetches normally, plus issues
  ``vissue`` / ``vload`` / ``devec`` on the group's behalf;
* ``expander``    — fetches microthread instructions and forwards them on
  the inet; executes them as lane 0;
* ``vector``      — frontend and I-cache disabled; executes instructions
  popped from the inet and forwards them downstream.

Stall accounting uses *gap attribution*: when an instruction finally issues,
the idle gap since the core was last ready is charged to the most recent
blocking cause, producing the CPI stacks of Figures 12/13/15.
"""

from __future__ import annotations

from ..core.vgroup import (ROLE_EXPANDER, ROLE_INDEPENDENT, ROLE_SCALAR,
                           ROLE_VECTOR)
from ..core.inet import InetQueue, MSG_DEVEC, MSG_INST, MSG_LAUNCH
from ..core.wide_access import expand_vload
from ..isa import opcodes as op
from ..isa.instruction import Instr
from .icache import ICache
from .llc import KIND_LOAD, KIND_STORE, KIND_WIDE, MemRequest
from .scratchpad import Scratchpad
from .stats import CoreStats

INF = 1 << 60

# run states
RUN = 0
WAIT_BARRIER = 1
WAIT_VCONFIG = 2
HALTED = 3

# stall causes (map onto CoreStats fields)
_CAUSE_FIELD = {
    'frame': 'stall_frame',
    'inet_input': 'stall_inet_input',
    'backpressure': 'stall_backpressure',
    'scoreboard': 'stall_scoreboard',
    'loadq': 'stall_loadq',
    'branch': 'stall_branch',
    'other': 'stall_other',
}

#: Instructions that execute even when the predication flag is clear.
_PRED_EXEMPT = frozenset([op.PRED_EQ, op.PRED_NEQ, op.FRAME_START, op.REMEM,
                          op.VEND, op.NOP])


class SimError(Exception):
    """An architectural error detected during simulation."""


class Tile:
    """One core of the fabric."""

    def __init__(self, core_id: int, fabric, cfg):
        self.core_id = core_id
        self.fabric = fabric
        self.cfg = cfg
        self.stats = CoreStats()
        self.icache = ICache(cfg.icache_capacity_bytes, cfg.icache_ways,
                             cfg.cache_line_bytes, self.stats)
        self.spad = Scratchpad(cfg.spad_words, self.stats)
        self.inet_in = InetQueue(cfg.inet_queue_entries,
                                 cfg.router_hop_latency)

        self.program = None
        self.pc = 0
        self.regs = [0] * 64
        self.vregs = [[0.0] * cfg.simd_width for _ in range(8)]
        self._busy = [0] * 64  # scoreboard: cycle the register frees
        self._busy_load = [False] * 64  # true if busy due to pending load
        self._vbusy = [0] * 8
        self.lq_count = 0

        self.mode = ROLE_INDEPENDENT
        self.state = RUN
        self.halted = False
        self.group = None
        self.successor = None  # next Tile on the inet path
        self.lane_idx = -1
        self.pred = True

        # expander microthread fetch state
        self.in_mt = False
        self.mt_pc = 0

        # frontend state
        self.fetch_stall_until = 0
        self._fetch_pc = -1

        # scheduling / accounting
        self.next_wake = 0
        # wake-heap bookkeeping (see Fabric._run_loop): id of this
        # tile's latest heap entry, its position in the active list,
        # and the rebuild epoch that position belongs to
        self._wake_entry = 0
        self._order = 0
        self._wake_epoch = -1
        self._ready_at = 0
        self._stall_cause = 'other'
        self.tid = 0
        self.ncores_csr = 1
        self.group_id_csr = 0
        self.ngroups_csr = 0
        self.job = None  # owning FabricJob; None in the classic flow

    # ------------------------------------------------------------------ wiring
    def reset_for_run(self, program, entry_pc: int, tid: int, ncores: int):
        self.program = program
        self.pc = entry_pc
        self.tid = tid
        self.ncores_csr = ncores
        self.next_wake = 0
        self._ready_at = 0
        self.state = RUN
        self.halted = False
        self.mode = ROLE_INDEPENDENT
        self._fetch_pc = -1
        self.job = None

    def reset_for_job(self, program, entry_pc: int, tid: int, ncores: int,
                      job, now: int) -> None:
        """Hand this tile to a new job on a live fabric.

        Unlike :meth:`reset_for_run` (fresh fabric, cycle 0) this scrubs
        every piece of architectural and microarchitectural state a prior
        tenant may have left — registers, scoreboard, load queue, inet
        queue, frame config, I-cache — so the new job's behaviour (and its
        numeric output) cannot depend on what ran here before.  The tile
        wakes at ``now + 1``: simulated time never moves backwards.
        """
        self.program = program
        self.pc = entry_pc
        self.tid = tid
        self.ncores_csr = ncores
        self.job = job
        self.regs = [0] * 64
        self.vregs = [[0.0] * self.cfg.simd_width for _ in range(8)]
        self._busy = [0] * 64
        self._busy_load = [False] * 64
        self._vbusy = [0] * 8
        self.lq_count = 0
        self.mode = ROLE_INDEPENDENT
        self.state = RUN
        self.halted = False
        self.group = None
        self.successor = None
        self.lane_idx = -1
        self.pred = True
        self.in_mt = False
        self.mt_pc = 0
        self.fetch_stall_until = 0
        self._fetch_pc = -1
        self.next_wake = now + 1
        self._ready_at = now + 1
        self._stall_cause = 'other'
        self.group_id_csr = 0
        self.ngroups_csr = 0
        self.inet_in.clear()
        self.spad.reset_frames()
        self.icache.flush()

    def wake(self, cycle: int) -> None:
        if cycle < self.next_wake:
            self.next_wake = cycle

    def push_inet(self, kind: str, payload, now: int) -> None:
        """Called by the upstream tile; wakes this tile when data lands."""
        self.inet_in.push(now, kind, payload)
        self.fabric.wake_tile(self, now + self.inet_in.hop_latency)

    # -------------------------------------------------------------- accounting
    def _stall(self, cause: str, wake: int) -> int:
        self._stall_cause = cause
        return wake

    def _commit_issue(self, inst: Instr, now: int) -> None:
        gap = now - self._ready_at
        if gap > 0:
            st = self.stats
            field = _CAUSE_FIELD[self._stall_cause]
            setattr(st, field, getattr(st, field) + gap)
        self._ready_at = now + 1
        self.stats.instrs += 1
        self._classify(inst.op)
        if self.fabric.trace is not None:
            self.fabric.trace.record(self.core_id, now, inst, self.mode)

    def _charge_gap(self, now: int, cause: str) -> None:
        """Attribute idle time without an instruction issue (mode changes)."""
        gap = now - self._ready_at
        if gap > 0:
            st = self.stats
            field = _CAUSE_FIELD[cause]
            setattr(st, field, getattr(st, field) + gap)
        self._ready_at = now + 1

    def _classify(self, o: int) -> None:
        st = self.stats
        if o in (op.LW, op.SW, op.LWSP, op.SWSP, op.SWREM, op.VLOAD):
            st.n_mem += 1
        elif o == op.MUL:
            st.n_mul += 1
        elif o in (op.DIV, op.REM, op.FDIV, op.FSQRT):
            st.n_div += 1
        elif o in (op.FADD, op.FSUB, op.FMUL, op.FMA, op.FMIN, op.FMAX,
                   op.FABS, op.FNEG, op.FLT, op.FLE, op.FEQ, op.FCVT_WS,
                   op.FCVT_SW):
            st.n_fp += 1
        elif op.is_simd(o):
            st.n_simd += 1
        elif op.is_control(o):
            st.n_control += 1
        else:
            st.n_int_alu += 1

    # ------------------------------------------------------------------ stepping
    def step(self, now: int) -> int:
        """Advance this tile at cycle ``now``; returns the next wake cycle."""
        if self.state != RUN:
            return INF
        m = self.mode
        if m == ROLE_VECTOR:
            return self._step_vector(now)
        if m == ROLE_EXPANDER:
            return self._step_expander(now)
        return self._step_front(now)

    # -- frontend modes (independent / scalar) ---------------------------------
    def _step_front(self, now: int) -> int:
        if self.fetch_stall_until > now:
            return self.fetch_stall_until
        prog = self.program
        if self.pc >= len(prog.instrs):
            raise SimError(f'core {self.core_id} fell off the program end')
        inst = prog.instrs[self.pc]
        if self._fetch_pc != self.pc:
            pen = self.icache.fetch(self.pc)
            self._fetch_pc = self.pc
            if pen:
                self.fetch_stall_until = now + pen
                return self._stall('other', self.fetch_stall_until)
        wake = self._check_operands(inst, now)
        if wake is not None:
            return wake
        o = inst.op
        # structural checks that must precede issue
        if o == op.LW:
            if self.lq_count >= self.cfg.load_queue_entries:
                return self._stall('loadq', INF)
        elif o == op.FRAME_START:
            if not self._frame_ready():
                return self._stall('frame', INF)
        elif o in (op.VISSUE, op.DEVEC):
            succ = self.successor
            if succ is None:
                raise SimError(f'{op.name(o)} outside a vector group '
                               f'(core {self.core_id})')
            if not succ.inet_in.can_accept():
                return self._stall('backpressure', now + 1)
        self._commit_issue(inst, now)
        self._execute_front(inst, now)
        return max(now + 1, self.fetch_stall_until)

    # -- expander ---------------------------------------------------------------
    def _step_expander(self, now: int) -> int:
        q = self.inet_in
        if not self.in_mt:
            msg = q.peek(now)
            if msg is None:
                nr = q.next_ready_cycle()
                return self._stall('inet_input', nr if nr is not None else INF)
            kind, payload = msg
            if kind == MSG_DEVEC:
                return self._handle_devec(payload, now)
            if kind == MSG_LAUNCH:
                q.pop(now)
                self.in_mt = True
                self.mt_pc = payload
                self.stats.microthreads += 1
                self._charge_gap(now, 'inet_input')
                self._fetch_pc = -1
                tel = self.fabric.telemetry
                if tel is not None:
                    tel.on_mt_launch((self.core_id, now, payload))
                return now + 1
            raise SimError(f'expander received unexpected inet message '
                           f'{kind!r}')
        if self.fetch_stall_until > now:
            return self.fetch_stall_until
        prog = self.program
        inst = prog.instrs[self.mt_pc]
        if self._fetch_pc != self.mt_pc:
            pen = self.icache.fetch(self.mt_pc)
            self._fetch_pc = self.mt_pc
            if pen:
                self.fetch_stall_until = now + pen
                return self._stall('other', self.fetch_stall_until)
        o = inst.op
        forward = (self.successor is not None and not op.is_control(o)
                   and o != op.VEND)
        if forward and not self.successor.inet_in.can_accept():
            return self._stall('backpressure', now + 1)
        skip = not self.pred and o not in _PRED_EXEMPT and not op.is_control(o)
        if not skip:
            if o == op.FRAME_START and not self._frame_ready():
                return self._stall('frame', INF)
            wake = self._check_operands(inst, now)
            if wake is not None:
                return wake
        self._commit_issue(inst, now)
        if forward:
            self.successor.push_inet(MSG_INST, inst, now)
            self.stats.inet_forwards += 1
        if o == op.VEND:
            self.in_mt = False
            tel = self.fabric.telemetry
            if tel is not None:
                tel.on_mt_end((self.core_id, now))
            return now + 1
        if op.is_control(o):
            self._execute_control_mt(inst, now)
        else:
            if not skip:
                self._execute_common(inst, now)
            self.mt_pc += 1
        return max(now + 1, self.fetch_stall_until)

    def _execute_control_mt(self, inst: Instr, now: int) -> None:
        """Branches/jumps inside a microthread (expander only)."""
        o = inst.op
        if o in (op.J, op.JAL):
            if o == op.JAL:
                self.regs[inst.rd] = self.mt_pc + 1
            self.mt_pc = inst.imm
            bubble = True
        elif o == op.JR:
            self.mt_pc = int(self.regs[inst.rs1])
            bubble = True
        else:
            taken, target = self._branch_outcome(inst)
            self.mt_pc = target if taken else self.mt_pc + 1
            # the expander pauses fetch on *every* branch until it resolves,
            # to avoid forwarding wrong-path instructions (paper Section 3.2)
            bubble = taken or self.cfg.expander_pause_on_branch
        if bubble:
            self.fetch_stall_until = now + self.cfg.branch_bubble
            self._stall_cause = 'branch'

    # -- vector lane --------------------------------------------------------------
    def _step_vector(self, now: int) -> int:
        q = self.inet_in
        msg = q.peek(now)
        if msg is None:
            nr = q.next_ready_cycle()
            return self._stall('inet_input', nr if nr is not None else INF)
        kind, payload = msg
        if kind == MSG_DEVEC:
            return self._handle_devec(payload, now)
        if kind != MSG_INST:
            raise SimError(f'vector core {self.core_id} received {kind!r}')
        inst: Instr = payload
        succ = self.successor
        if succ is not None and not succ.inet_in.can_accept():
            return self._stall('backpressure', now + 1)
        skip = not self.pred and inst.op not in _PRED_EXEMPT
        if inst.op == op.FRAME_START and not self._frame_ready():
            return self._stall('frame', INF)
        if not skip:
            wake = self._check_operands(inst, now)
            if wake is not None:
                return wake
        q.pop(now)
        if succ is not None:
            succ.push_inet(MSG_INST, inst, now)
            self.stats.inet_forwards += 1
        self._commit_issue(inst, now)
        if not skip:
            self._execute_common(inst, now)
        return now + 1

    def _handle_devec(self, resume_pc: int, now: int) -> int:
        succ = self.successor
        if succ is not None:
            if not succ.inet_in.can_accept():
                return self._stall('backpressure', now + 1)
            succ.push_inet(MSG_DEVEC, resume_pc, now)
        self.inet_in.pop(now)
        self._charge_gap(now, 'inet_input')
        self._leave_group(resume_pc)
        return now + 1

    def _leave_group(self, resume_pc: int) -> None:
        self.mode = ROLE_INDEPENDENT
        self.group = None
        self.successor = None
        self.lane_idx = -1
        self.pred = True
        self.in_mt = False
        self.pc = resume_pc
        self._fetch_pc = -1

    def _frame_ready(self) -> bool:
        fq = self.spad.frames
        if fq is None:
            raise SimError(f'frame_start with no frame config '
                           f'(core {self.core_id})')
        return fq.head_ready()

    # ---------------------------------------------------------------- scoreboard
    def _check_operands(self, inst: Instr, now: int):
        """None if all operands ready; else a wake hint (stall recorded)."""
        busy = self._busy
        worst = 0
        is_load = False
        for r in inst.reads:
            b = busy[r]
            if b > now and b > worst:
                worst = b
                is_load = self._busy_load[r]
        for w in inst.writes:
            b = busy[w]
            if b > now and b > worst:
                worst = b
                is_load = self._busy_load[w]
        if inst.vreads or inst.vwrites:
            vbusy = self._vbusy
            for r in inst.vreads:
                if vbusy[r] > worst:
                    worst = vbusy[r]
            for w in inst.vwrites:
                if vbusy[w] > worst:
                    worst = vbusy[w]
        if worst <= now:
            return None
        cause = 'frame' if is_load else 'scoreboard'
        return self._stall(cause, worst if worst < INF else INF)

    def _writeback(self, reg: int, value, at: int) -> None:
        if reg == 0:
            return
        self.regs[reg] = value
        self._busy[reg] = at

    # ---------------------------------------------------------------- execution
    def _execute_front(self, inst: Instr, now: int) -> None:
        """Execute in a frontend mode (independent/scalar); advances self.pc."""
        o = inst.op
        if op.is_control(o):
            taken, target = self._branch_outcome(inst)
            if o == op.J:
                self.pc = inst.imm
            elif o == op.JAL:
                self._writeback(inst.rd, self.pc + 1, now + 1)
                self.pc = inst.imm
            elif o == op.JR:
                self.pc = int(self.regs[inst.rs1])
            elif taken:
                self.pc = target
                self.fetch_stall_until = now + self.cfg.branch_bubble
                self._stall_cause = 'branch'
            else:
                self.pc += 1
                return
            self.fetch_stall_until = now + self.cfg.branch_bubble
            self._stall_cause = 'branch'
            return
        if o == op.HALT:
            self.pc += 1
            self.halted = True
            self.state = HALTED
            self.fabric.on_halt(self, now)
            return
        if o == op.BARRIER:
            self.pc += 1
            self.fabric.barrier_arrive(self, now)
            return
        if o == op.VCONFIG:
            self.pc += 1
            handle = int(self.regs[inst.rs1])
            self.fabric.vconfig_arrive(self, handle, now)
            return
        if o == op.VISSUE:
            self.successor.push_inet(MSG_LAUNCH, inst.imm, now)
            self.stats.inet_forwards += 1
            self.pc += 1
            return
        if o == op.DEVEC:
            self.successor.push_inet(MSG_DEVEC, inst.imm, now)
            self.stats.inet_forwards += 1
            self.mode = ROLE_INDEPENDENT
            self.group = None
            self.successor = None
            self.pc += 1
            return
        self._execute_common(inst, now)
        self.pc += 1

    def _branch_outcome(self, inst: Instr):
        o = inst.op
        if o == op.BEQ:
            return self.regs[inst.rs1] == self.regs[inst.rs2], inst.imm
        if o == op.BNE:
            return self.regs[inst.rs1] != self.regs[inst.rs2], inst.imm
        if o == op.BLT:
            return self.regs[inst.rs1] < self.regs[inst.rs2], inst.imm
        if o == op.BGE:
            return self.regs[inst.rs1] >= self.regs[inst.rs2], inst.imm
        return False, inst.imm

    def _execute_common(self, inst: Instr, now: int) -> None:
        """Non-control instructions, shared by every mode."""
        o = inst.op
        regs = self.regs
        lat = op.LATENCY.get(o, 1)
        wb = now + lat

        # -- integer --
        if o == op.ADD:
            self._writeback(inst.rd, regs[inst.rs1] + regs[inst.rs2], wb)
        elif o == op.SUB:
            self._writeback(inst.rd, regs[inst.rs1] - regs[inst.rs2], wb)
        elif o == op.MUL:
            self._writeback(inst.rd, regs[inst.rs1] * regs[inst.rs2], wb)
        elif o == op.DIV:
            a, b = regs[inst.rs1], regs[inst.rs2]
            self._writeback(inst.rd, int(a / b) if b else -1, wb)
        elif o == op.REM:
            a, b = int(regs[inst.rs1]), int(regs[inst.rs2])
            self._writeback(inst.rd, a - int(a / b) * b if b else a, wb)
        elif o == op.AND:
            self._writeback(inst.rd, int(regs[inst.rs1]) & int(regs[inst.rs2]), wb)
        elif o == op.OR:
            self._writeback(inst.rd, int(regs[inst.rs1]) | int(regs[inst.rs2]), wb)
        elif o == op.XOR:
            self._writeback(inst.rd, int(regs[inst.rs1]) ^ int(regs[inst.rs2]), wb)
        elif o == op.SLL:
            self._writeback(inst.rd, int(regs[inst.rs1]) << int(regs[inst.rs2]), wb)
        elif o == op.SRL:
            self._writeback(inst.rd, int(regs[inst.rs1]) >> int(regs[inst.rs2]), wb)
        elif o == op.SLT:
            self._writeback(inst.rd, int(regs[inst.rs1] < regs[inst.rs2]), wb)
        elif o == op.ADDI:
            self._writeback(inst.rd, regs[inst.rs1] + inst.imm, wb)
        elif o == op.ANDI:
            self._writeback(inst.rd, int(regs[inst.rs1]) & inst.imm, wb)
        elif o == op.ORI:
            self._writeback(inst.rd, int(regs[inst.rs1]) | inst.imm, wb)
        elif o == op.XORI:
            self._writeback(inst.rd, int(regs[inst.rs1]) ^ inst.imm, wb)
        elif o == op.SLLI:
            self._writeback(inst.rd, int(regs[inst.rs1]) << inst.imm, wb)
        elif o == op.SRLI:
            self._writeback(inst.rd, int(regs[inst.rs1]) >> inst.imm, wb)
        elif o == op.SLTI:
            self._writeback(inst.rd, int(regs[inst.rs1] < inst.imm), wb)
        elif o == op.LI:
            self._writeback(inst.rd, inst.imm, wb)
        elif o == op.MV:
            self._writeback(inst.rd, regs[inst.rs1], wb)

        # -- floating point --
        elif o == op.FADD:
            self._writeback(inst.rd, regs[inst.rs1] + regs[inst.rs2], wb)
        elif o == op.FSUB:
            self._writeback(inst.rd, regs[inst.rs1] - regs[inst.rs2], wb)
        elif o == op.FMUL:
            self._writeback(inst.rd, regs[inst.rs1] * regs[inst.rs2], wb)
        elif o == op.FDIV:
            self._writeback(inst.rd, regs[inst.rs1] / regs[inst.rs2], wb)
        elif o == op.FSQRT:
            self._writeback(inst.rd, regs[inst.rs1] ** 0.5, wb)
        elif o == op.FMIN:
            self._writeback(inst.rd, min(regs[inst.rs1], regs[inst.rs2]), wb)
        elif o == op.FMAX:
            self._writeback(inst.rd, max(regs[inst.rs1], regs[inst.rs2]), wb)
        elif o == op.FMA:
            self._writeback(
                inst.rd, regs[inst.rd] + regs[inst.rs1] * regs[inst.rs2], wb)
        elif o == op.FABS:
            self._writeback(inst.rd, abs(regs[inst.rs1]), wb)
        elif o == op.FNEG:
            self._writeback(inst.rd, -regs[inst.rs1], wb)
        elif o == op.FLT:
            self._writeback(inst.rd, int(regs[inst.rs1] < regs[inst.rs2]), wb)
        elif o == op.FLE:
            self._writeback(inst.rd, int(regs[inst.rs1] <= regs[inst.rs2]), wb)
        elif o == op.FEQ:
            self._writeback(inst.rd, int(regs[inst.rs1] == regs[inst.rs2]), wb)
        elif o == op.FCVT_WS:
            self._writeback(inst.rd, int(regs[inst.rs1]), wb)
        elif o == op.FCVT_SW:
            self._writeback(inst.rd, float(regs[inst.rs1]), wb)

        # -- memory --
        elif o == op.LW:
            self._issue_load(inst, now)
        elif o == op.SW:
            addr = int(regs[inst.rs1]) + inst.imm
            self.fabric.send_store(self.core_id, addr, regs[inst.rs2], now)
        elif o == op.LWSP:
            off = int(regs[inst.rs1]) + inst.imm
            value = self.spad.read(off)
            self._writeback(inst.rd, value, now + self.cfg.spad_hit_latency)
        elif o == op.SWSP:
            off = int(regs[inst.rs1]) + inst.imm
            self.spad.write(off, regs[inst.rs2])
        elif o == op.SWREM:
            dest = int(regs[inst.rs2])
            off = int(regs[inst.rd]) + inst.imm
            self.fabric.send_remote_store(self.core_id, dest, off,
                                          regs[inst.rs1], now)

        # -- SDV --
        elif o == op.VLOAD:
            self._issue_vload(inst, now)
        elif o == op.FRAME_START:
            fq = self.spad.frames
            if fq is None:
                raise SimError(f'frame_start with no frame config '
                               f'(core {self.core_id})')
            tel = self.fabric.telemetry
            if tel is not None:
                tel.on_frame_start((self.core_id, fq.head, now))
            self._writeback(inst.rd, fq.head_offset(), wb)
        elif o == op.REMEM:
            fq = self.spad.frames
            tel = self.fabric.telemetry
            if tel is not None:
                tel.on_frame_free((self.core_id, fq.head, 0, now))
            fq.free_head()
            self.stats.frames_consumed += 1
        elif o == op.PRED_EQ:
            self.pred = regs[inst.rs1] == regs[inst.rs2]
        elif o == op.PRED_NEQ:
            self.pred = regs[inst.rs1] != regs[inst.rs2]
        elif o == op.VEND:
            pass  # meaningful only on the expander (handled there)

        # -- system --
        elif o == op.CSRW:
            self._csr_write(inst.imm, regs[inst.rs1])
        elif o == op.CSRR:
            self._writeback(inst.rd, self._csr_read(inst.imm), wb)
        elif o == op.NOP:
            pass
        elif o == op.PRINT:
            print(f'[core {self.core_id} @ {now}] '
                  f'r{inst.rs1} = {regs[inst.rs1]}')

        # -- per-core SIMD --
        elif o == op.VL4:
            base = int(regs[inst.rs1]) + inst.imm
            w = self.cfg.simd_width
            self.vregs[inst.rd] = [self.spad.read(base + i) for i in range(w)]
            self._vbusy[inst.rd] = now + self.cfg.spad_hit_latency
        elif o == op.VS4:
            base = int(regs[inst.rs1]) + inst.imm
            for i, v in enumerate(self.vregs[inst.rd]):
                self.spad.write(base + i, v)
        elif o == op.VADD4:
            a, b = self.vregs[inst.rs1], self.vregs[inst.rs2]
            self.vregs[inst.rd] = [x + y for x, y in zip(a, b)]
            self._vbusy[inst.rd] = wb
        elif o == op.VSUB4:
            a, b = self.vregs[inst.rs1], self.vregs[inst.rs2]
            self.vregs[inst.rd] = [x - y for x, y in zip(a, b)]
            self._vbusy[inst.rd] = wb
        elif o == op.VMUL4:
            a, b = self.vregs[inst.rs1], self.vregs[inst.rs2]
            self.vregs[inst.rd] = [x * y for x, y in zip(a, b)]
            self._vbusy[inst.rd] = wb
        elif o == op.VFMA4:
            a, b = self.vregs[inst.rs1], self.vregs[inst.rs2]
            d = self.vregs[inst.rd]
            self.vregs[inst.rd] = [acc + x * y for acc, x, y in zip(d, a, b)]
            self._vbusy[inst.rd] = wb
        elif o == op.VBCAST:
            self.vregs[inst.rd] = [regs[inst.rs1]] * self.cfg.simd_width
            self._vbusy[inst.rd] = wb
        elif o == op.VREDSUM4:
            self._writeback(inst.rd, sum(self.vregs[inst.rs1]), wb)
        else:
            raise SimError(f'cannot execute {op.name(o)} here '
                           f'(core {self.core_id}, mode {self.mode})')

    # ------------------------------------------------------------------ memory
    def _issue_load(self, inst: Instr, now: int) -> None:
        addr = int(self.regs[inst.rs1]) + inst.imm
        rd = inst.rd
        self.lq_count += 1
        if rd != 0:
            self._busy[rd] = INF
            self._busy_load[rd] = True

        def on_data(value, at, tile=self, reg=rd):
            tile.lq_count -= 1
            if reg != 0:
                tile.regs[reg] = value
                tile._busy[reg] = at
                tile._busy_load[reg] = False
            tile.fabric.wake_tile(tile, at)

        req = MemRequest(KIND_LOAD, addr, 1, self.core_id, on_data=on_data)
        self.fabric.send_to_bank(req, now)

    def _issue_vload(self, inst: Instr, now: int) -> None:
        core_off, width, variant, part, _ = inst.ex
        addr = int(self.regs[inst.rs1])
        spad_off = int(self.regs[inst.rs2])
        lanes = self.group.lanes if self.group is not None else []
        expansion = expand_vload(addr, spad_off, core_off, width, variant,
                                 part, lanes, self.core_id,
                                 self.cfg.line_words)
        self.stats.vloads_issued += 1
        job = self.job
        if job is not None and job.rtrace is not None:
            job.rtrace.wide_issued += 1
        if expansion is None:
            return
        start, chunks = expansion
        nwords = sum(c[1] for c in chunks)
        req = MemRequest(KIND_WIDE, start, nwords, self.core_id,
                         chunks=chunks, is_frame=True)
        if self.fabric.telemetry is not None:
            req.t_issue = now
        self.fabric.send_to_bank(req, now)

    # ------------------------------------------------------------------- CSRs
    def _csr_write(self, csr: int, value) -> None:
        if csr == op.CSR_FRAME_CFG:
            v = int(value)
            frame_size = v & 0xFFF
            slots = (v >> 12) & 0xFFF
            fq = self.spad.configure_frames(frame_size, slots,
                                            self.cfg.frame_counters)
            if self.fabric.telemetry is not None:
                self.fabric.telemetry.watch_frames(self.core_id, fq)
        elif csr == op.CSR_VCONFIG:
            pass  # modeled via the VCONFIG instruction
        else:
            raise SimError(f'write to unknown CSR {csr}')

    def _csr_read(self, csr: int):
        if csr == op.CSR_TID:
            return self.lane_idx if self.lane_idx >= 0 else self.tid
        if csr == op.CSR_GROUP_SIZE:
            return self.group.num_lanes if self.group else 1
        if csr == op.CSR_COREID:
            return self.core_id
        if csr == op.CSR_NCORES:
            return self.ncores_csr
        if csr == op.CSR_GROUP_ID:
            return self.group_id_csr
        if csr == op.CSR_NGROUPS:
            return self.ngroups_csr
        raise SimError(f'read of unknown CSR {csr}')

    def __repr__(self):
        from ..core.vgroup import ROLE_NAMES
        return (f'<Tile {self.core_id} {ROLE_NAMES[self.mode]} pc={self.pc} '
                f'state={self.state}>')

    # ------------------------------------------------------------- diagnostics
    def blocked_instruction(self) -> str:
        """The instruction this tile is stuck on, best-effort by role."""
        from ..core.vgroup import ROLE_EXPANDER as _EXP, ROLE_VECTOR as _VEC
        if self.state == WAIT_BARRIER:
            return 'barrier'
        if self.state == WAIT_VCONFIG:
            return f'vconfig (group {self.group.group_id})' \
                if self.group else 'vconfig'
        if self.mode == _VEC or (self.mode == _EXP and not self.in_mt):
            msg = self.inet_in.peek(1 << 62)
            if msg is None:
                return '<inet empty>'
            kind, payload = msg
            return f'{kind} {payload!r}'
        prog, pc = self.program, (self.mt_pc if self.in_mt else self.pc)
        if prog is None or not 0 <= pc < len(prog.instrs):
            return f'<pc {pc} out of range>'
        return f'pc={pc} {prog.instrs[pc]!r}'

    def describe_wait_state(self) -> str:
        """One dump line for DeadlockError diagnostics."""
        from ..core.vgroup import ROLE_NAMES
        parts = [f'core {self.core_id} [{ROLE_NAMES[self.mode]}]',
                 f'stall={self._stall_cause}',
                 f'blocked-on: {self.blocked_instruction()}']
        fq = self.spad.frames
        if fq is not None:
            parts.append(f'frames: head={fq.head} '
                         f'open={fq.open_frames()}/{fq.num_counters} '
                         f'counters={fq.counters}')
        else:
            parts.append('frames: unconfigured')
        parts.append(f'inet-depth={len(self.inet_in)}/'
                     f'{self.inet_in.capacity}')
        parts.append(f'lq={self.lq_count}')
        if self.job is not None:
            parts.append(f'job={self.job.job_id}')
        return '  '.join(parts)
