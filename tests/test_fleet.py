"""Fleet: router invariants, shard-crash bit-identity, autoscaler logic.

The process-spawning end-to-end runs are kept small (matvec n=16, a
handful of requests) so the suite stays fast; the autoscaler and report
invariants are unit-tested without any workers.
"""

import json

import pytest

from repro.fleet import (ACTIVE, DEAD, RETIRED, AutoscalePolicy, Autoscaler,
                         FleetConfig, FleetInvariantError, FleetRouter,
                         ShardBatch, build_fleet_report, check_conservation,
                         output_digest, validate_fleet_report)
from repro.serve import DONE, KernelRequest


def _trace(n=10, spacing=3000, kernel='mvt', size=16):
    return [KernelRequest(req_id=i, kernel=kernel, params={'n': size},
                          lanes=4, groups=1, arrival=i * spacing)
            for i in range(n)]


def _run(trace, **cfg_kwargs):
    cfg = FleetConfig(**{'shards': 2, 'workers': 2,
                         'epoch_cycles': 20_000, **cfg_kwargs})
    return FleetRouter(cfg).run(iter(trace))


class TestFleetEndToEnd:
    def test_clean_run_completes_conserves_and_reports(self):
        result = _run(_trace(8))
        assert len(result.entries) == 8
        assert all(e.state == DONE for e in result.entries)
        assert all(e.digest for e in result.entries)
        # global latency decomposes: router wait is folded into the
        # queue phase, so each record's breakdown sums to its latency
        doc = build_fleet_report(result, pattern='test', seed=0)
        validate_fleet_report(doc)
        check_conservation(doc)
        s = doc['summary']
        assert s['completed'] == 8 and s['rejected'] == 0
        assert s['total_instrs'] > 0
        assert doc['fleet']['crashes'] == 0

    def test_shard_crash_rerouted_and_bit_identical(self):
        trace = _trace(8)
        clean = _run(trace)
        crashed = _run(trace, crashes=((0, 0),))
        assert crashed.crashes == 1
        assert crashed.rerouted > 0
        assert any(sh.state == DEAD for sh in crashed.shards)
        # the fleet floor was restored by a replacement shard
        assert any(ev['action'] == 'replace' for ev in crashed.events)
        assert all(e.state == DONE for e in crashed.entries)
        # re-executed requests produce byte-identical outputs: the
        # serving plane's isolated-run equivalence makes results
        # independent of which shard (and batch mix) ran them
        ref = {e.req.req_id: e.digest for e in clean.entries}
        got = {e.req.req_id: e.digest for e in crashed.entries}
        assert got == ref
        doc = build_fleet_report(crashed)
        validate_fleet_report(doc)
        check_conservation(doc)

    def test_admission_control_rejects_and_still_conserves(self):
        # every request arrives at cycle 0 against a queue cap of 2
        trace = _trace(6, spacing=0)
        result = _run(trace, max_queue=2, shard_queue_cap=1)
        rejected = [e for e in result.entries if e.state == 'rejected']
        assert result.rejected_admission == len(rejected) > 0
        assert all('admission control' in e.record['error']
                   for e in rejected)
        doc = build_fleet_report(result)
        validate_fleet_report(doc)
        check_conservation(doc)  # submitted == completed + rejected + ...
        assert doc['summary']['rejected'] == result.rejected_admission


class TestAutoscaler:
    def _policy(self, **kw):
        return AutoscalePolicy(**{'min_shards': 1, 'max_shards': 4,
                                  'latency_p99_up': 100.0,
                                  'latency_p99_down': 50.0,
                                  'util_down': 0.5, 'window_epochs': 3,
                                  'up_consecutive': 1,
                                  'down_consecutive': 2,
                                  'cooldown_epochs': 2, **kw})

    def test_scales_up_on_p99_breach_then_cools_down(self):
        a = Autoscaler(self._policy())
        a.observe_completion(0, 500)
        assert a.decide(0, fleet_size=1) == 'up'
        # cooldown swallows the next boundaries even though p99 still
        # breaches — no flapping
        a.observe_completion(1, 500)
        assert a.decide(1, fleet_size=2) is None
        assert a.decide(2, fleet_size=2) is None
        a.observe_completion(3, 500)
        assert a.decide(3, fleet_size=2) == 'up'
        assert [e['action'] for e in a.events] == ['up', 'up']

    def test_never_scales_past_max(self):
        a = Autoscaler(self._policy(cooldown_epochs=0))
        for epoch in range(4):
            a.observe_completion(epoch, 500)
            a.decide(epoch, fleet_size=4)
        assert all(e['action'] != 'up' or e['shards_after'] <= 4
                   for e in a.events)
        a.observe_completion(9, 500)
        assert a.decide(9, fleet_size=4) is None

    def test_burst_latencies_age_out_of_the_window(self):
        # burst pain at epoch 0 must stop driving decisions once the
        # time window has moved past it
        a = Autoscaler(self._policy(cooldown_epochs=0))
        a.observe_completion(0, 10_000)
        assert a.latency_p99 == 10_000
        a.decide(10, fleet_size=2)
        assert a.latency_p99 == 0.0

    def test_scale_down_needs_quiet_window_and_streak(self):
        a = Autoscaler(self._policy(cooldown_epochs=0))
        a.observe_completion(0, 10)
        a.observe_utilization(0, 0.1)
        assert a.decide(0, fleet_size=2) is None  # streak 1 of 2
        a.observe_completion(1, 10)
        a.observe_utilization(1, 0.1)
        assert a.decide(1, fleet_size=2) == 'down'

    def test_no_drain_before_first_completion(self):
        # an empty window reads p99 0 / util 0, but a cold fleet whose
        # first batches are still in flight must not be drained
        a = Autoscaler(self._policy(cooldown_epochs=0,
                                    down_consecutive=1))
        for epoch in range(5):
            assert a.decide(epoch, fleet_size=2) is None
        a.observe_completion(5, 10)
        a.observe_utilization(5, 0.0)
        assert a.decide(5, fleet_size=2) == 'down'

    def test_never_below_min_shards(self):
        a = Autoscaler(self._policy(cooldown_epochs=0,
                                    down_consecutive=1))
        a.observe_completion(0, 10)
        a.observe_utilization(0, 0.0)
        assert a.decide(0, fleet_size=1) is None

    def test_policy_rejects_unknown_keys_and_bad_band(self):
        with pytest.raises(ValueError, match='unknown autoscale key'):
            AutoscalePolicy.from_dict({'latency_p99_upp': 1})
        with pytest.raises(ValueError, match='hysteresis band'):
            AutoscalePolicy(latency_p99_up=10.0, latency_p99_down=20.0)

    def test_policy_roundtrips_through_file(self, tmp_path):
        path = tmp_path / 'pol.json'
        path.write_text(json.dumps({'max_shards': 6,
                                    'latency_p99_up': 70_000}))
        pol = AutoscalePolicy.load(str(path))
        assert pol.max_shards == 6
        assert pol.latency_p99_up == 70_000


class TestFleetReportInvariants:
    def test_conservation_violation_raises(self):
        result = _run(_trace(4))
        doc = build_fleet_report(result)
        doc['summary']['completed'] -= 1
        with pytest.raises(FleetInvariantError, match='conservation'):
            check_conservation(doc)

    def test_breakdown_violation_raises(self):
        result = _run(_trace(4))
        doc = build_fleet_report(result)
        rec = next(r for r in doc['requests'] if r['state'] == 'done')
        rec['breakdown']['queue'] += 1
        with pytest.raises(FleetInvariantError, match='breakdown'):
            check_conservation(doc)


class TestShardBatch:
    def _batch(self, **kw):
        reqs = ({'req_id': 0, 'kernel': 'mvt', 'params': {'n': 16},
                 'lanes': 4, 'groups': 1, 'priority': 0, 'arrival': 0,
                 'timeout': None},)
        return ShardBatch(**{'shard_id': 0, 'epoch': 0,
                             'requests': reqs, **kw})

    def test_key_is_content_addressed(self):
        assert self._batch().key() == self._batch().key()
        assert self._batch().key() != self._batch(shard_id=1).key()
        assert self._batch().key() != self._batch(crash=True).key()

    def test_output_digest_is_order_insensitive(self):
        import numpy as np
        a = {'x': np.arange(4.0), 'y': np.ones(3)}
        b = {'y': np.ones(3), 'x': np.arange(4.0)}
        assert output_digest(a) == output_digest(b)
        b['x'] = b['x'] + 1e-12
        assert output_digest(a) != output_digest(b)
