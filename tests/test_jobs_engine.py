"""Sweep engine: failure injection, retries, resume, salt invalidation.

Worker failure modes are injected through the engine's ``job_fn`` hook
with fast fake results, so these tests exercise the farm machinery
(pipes, timeouts, SIGKILL recovery, manifests) without simulating.
"""

import os
import signal
import time

import pytest

from repro.harness.runner import RunResult
from repro.jobs import (CACHED, CRASHED, DONE, FAILED, TIMEOUT, JobSpec,
                        ResultStore, SweepEngine, SweepManifest, any_failed,
                        build_sweep_report, render_summary)
from repro.jobs import spec as spec_mod
from repro.manycore.stats import CoreStats, MemStats, RunStats


def _fake(spec):
    stats = RunStats(cycles=7, cores={0: CoreStats(cycles=7, instrs=3)},
                     mem=MemStats(llc_accesses=1))
    return RunResult(spec.benchmark, spec.config, 7, stats,
                     params=spec.params_dict() or None)


def _flaky(spec):
    if spec.benchmark == 'bad':
        raise RuntimeError('injected failure')
    return _fake(spec)


def _slow(spec):
    if spec.benchmark == 'slow':
        time.sleep(60)
    return _fake(spec)


def _suicidal(spec):
    if spec.benchmark == 'doomed':
        os.kill(os.getpid(), signal.SIGKILL)
    return _fake(spec)


def _kill_until_count(spec):
    """Die on every attempt until the attempt-counter file reaches its
    budget; the counter lives on disk (path via env) because each
    attempt runs in a fresh worker process."""
    if spec.benchmark == 'doomed':
        path = os.environ['REPRO_TEST_KILL_COUNTER']
        budget = int(os.environ['REPRO_TEST_KILL_BUDGET'])
        try:
            with open(path) as f:
                attempts = int(f.read() or 0)
        except FileNotFoundError:
            attempts = 0
        with open(path, 'w') as f:
            f.write(str(attempts + 1))
        if attempts < budget:
            os.kill(os.getpid(), signal.SIGKILL)
    return _fake(spec)


# names never hit the registry: the fake job_fns don't look benchmarks up
SPECS = [JobSpec.make(b, 'NV') for b in ('alpha', 'beta', 'gamma')]


class TestFailureInjection:
    def test_raising_worker_marks_failed_and_sweep_completes(self):
        specs = SPECS + [JobSpec.make('bad', 'NV')]
        engine = SweepEngine(jobs=2, job_fn=_flaky)
        outcomes = engine.execute(specs)
        by_bench = {o.spec.benchmark: o for o in outcomes}
        assert by_bench['bad'].status == FAILED
        assert 'injected failure' in by_bench['bad'].error
        # deterministic errors are not retried
        assert by_bench['bad'].attempts == 1
        for b in ('alpha', 'beta', 'gamma'):
            assert by_bench[b].status == DONE
            assert by_bench[b].result.cycles == 7
        assert any_failed(outcomes)
        summary = render_summary(outcomes)
        assert '3 simulated' in summary and '1 failed' in summary
        assert 'injected failure' in summary

    def test_timeout_kills_retries_then_fails(self):
        specs = SPECS + [JobSpec.make('slow', 'NV')]
        engine = SweepEngine(jobs=2, timeout=0.4, retries=1, job_fn=_slow)
        outcomes = engine.execute(specs)
        by_bench = {o.spec.benchmark: o for o in outcomes}
        assert by_bench['slow'].status == TIMEOUT
        assert by_bench['slow'].attempts == 2  # first try + one retry
        assert 'timeout' in by_bench['slow'].error
        assert all(by_bench[b].status == DONE
                   for b in ('alpha', 'beta', 'gamma'))
        assert any_failed(outcomes)

    def test_killed_worker_recovered_and_marked_crashed(self):
        specs = SPECS + [JobSpec.make('doomed', 'NV')]
        engine = SweepEngine(jobs=2, retries=1, job_fn=_suicidal)
        outcomes = engine.execute(specs)
        by_bench = {o.spec.benchmark: o for o in outcomes}
        assert by_bench['doomed'].status == CRASHED
        assert by_bench['doomed'].attempts == 2
        assert 'killed' in by_bench['doomed'].error \
            or 'exited' in by_bench['doomed'].error
        assert all(by_bench[b].status == DONE
                   for b in ('alpha', 'beta', 'gamma'))
        summary = render_summary(outcomes)
        assert 'CRASHED' in summary

    def test_repeated_kills_recovered_within_retry_budget(
            self, tmp_path, monkeypatch):
        # SIGKILLed on attempts 1 and 2, succeeds on attempt 3
        monkeypatch.setenv('REPRO_TEST_KILL_COUNTER',
                           str(tmp_path / 'kills'))
        monkeypatch.setenv('REPRO_TEST_KILL_BUDGET', '2')
        specs = SPECS + [JobSpec.make('doomed', 'NV')]
        engine = SweepEngine(jobs=2, retries=2, job_fn=_kill_until_count)
        outcomes = engine.execute(specs)
        by_bench = {o.spec.benchmark: o for o in outcomes}
        assert by_bench['doomed'].status == DONE
        assert by_bench['doomed'].attempts == 3
        assert by_bench['doomed'].result.cycles == 7
        assert all(by_bench[b].status == DONE
                   for b in ('alpha', 'beta', 'gamma'))
        assert not any_failed(outcomes)

    def test_repeated_kills_exhaust_retries_and_mark_crashed(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv('REPRO_TEST_KILL_COUNTER',
                           str(tmp_path / 'kills'))
        monkeypatch.setenv('REPRO_TEST_KILL_BUDGET', '99')
        engine = SweepEngine(jobs=1, retries=2, job_fn=_kill_until_count)
        outcomes = engine.execute([JobSpec.make('doomed', 'NV')])
        assert outcomes[0].status == CRASHED
        assert outcomes[0].attempts == 3

    def test_sweep_report_records_failures(self):
        engine = SweepEngine(jobs=2, job_fn=_flaky)
        outcomes = engine.execute([JobSpec.make('bad', 'NV')] + SPECS)
        doc = build_sweep_report(outcomes, name='inject',
                                 launched=engine.launched)
        assert doc['total'] == 4
        assert doc['by_status'] == {'failed': 1, 'done': 3}
        failed = [j for j in doc['jobs'] if j['status'] == 'failed']
        assert failed[0]['benchmark'] == 'bad'
        assert 'injected failure' in failed[0]['error']


class TestDedupAndProgress:
    def test_duplicate_specs_run_once(self):
        engine = SweepEngine(jobs=2, job_fn=_fake)
        outcomes = engine.execute([SPECS[0], SPECS[0], SPECS[1]])
        assert len(outcomes) == 2
        assert engine.launched == 2

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        engine = SweepEngine(jobs=2, job_fn=_fake,
                             progress=lambda o, d, t: seen.append((d, t)))
        engine.execute(SPECS)
        assert sorted(seen) == [(1, 3), (2, 3), (3, 3)]


class TestStoreIntegration:
    def test_hits_skip_worker_launch(self, tmp_path):
        store = ResultStore(tmp_path)
        first = SweepEngine(jobs=2, store=store, job_fn=_fake)
        outs = first.execute(SPECS)
        assert first.launched == 3
        assert all(o.status == DONE for o in outs)
        second = SweepEngine(jobs=2, store=store, job_fn=_fake)
        outs = second.execute(SPECS)
        assert second.launched == 0
        assert all(o.status == CACHED and o.from_cache for o in outs)
        assert all(o.result.cycles == 7 for o in outs)

    def test_no_cache_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepEngine(jobs=2, store=store, job_fn=_fake).execute(SPECS)
        engine = SweepEngine(jobs=2, store=store, use_cache=False,
                             job_fn=_fake)
        outs = engine.execute(SPECS)
        assert engine.launched == 3
        assert all(o.status == DONE for o in outs)

    def test_salt_bump_invalidates_store(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        SweepEngine(jobs=2, store=store, job_fn=_fake).execute(SPECS)
        monkeypatch.setattr(spec_mod, 'CODE_VERSION',
                            spec_mod.CODE_VERSION + 1)
        engine = SweepEngine(jobs=2, store=store, job_fn=_fake)
        outs = engine.execute(SPECS)
        assert engine.launched == 3  # nothing served from the stale cache
        assert all(o.status == DONE for o in outs)


class TestManifestResume:
    def test_interrupted_sweep_resumes_missing_points_only(self, tmp_path):
        mpath = tmp_path / 'manifest.json'
        manifest = SweepManifest('t', specs=SPECS, path=mpath)
        manifest.save()
        # "interrupt": only the first two points ever execute
        engine = SweepEngine(jobs=1, job_fn=_fake)
        engine.execute(SPECS[:2], manifest=manifest)
        assert engine.launched == 2

        resumed = SweepManifest.load(mpath)
        pending = resumed.pending()
        assert [s.benchmark for s in pending] == ['gamma']
        engine2 = SweepEngine(jobs=1, job_fn=_fake)
        outs = engine2.execute(pending, manifest=resumed)
        assert engine2.launched == 1  # job-launch count: only the gap ran
        assert outs[0].status == DONE
        assert SweepManifest.load(mpath).pending() == []

    def test_failed_points_are_pending_again_on_resume(self, tmp_path):
        mpath = tmp_path / 'manifest.json'
        specs = SPECS + [JobSpec.make('bad', 'NV')]
        manifest = SweepManifest('t', specs=specs, path=mpath)
        SweepEngine(jobs=2, job_fn=_flaky).execute(specs, manifest=manifest)
        pending = SweepManifest.load(mpath).pending()
        assert [s.benchmark for s in pending] == ['bad']

    def test_salt_bump_resets_manifest_entries(self, tmp_path, monkeypatch):
        mpath = tmp_path / 'manifest.json'
        manifest = SweepManifest('t', specs=SPECS, path=mpath)
        SweepEngine(jobs=2, job_fn=_fake).execute(SPECS, manifest=manifest)
        assert SweepManifest.load(mpath).pending() == []
        monkeypatch.setattr(spec_mod, 'CODE_VERSION',
                            spec_mod.CODE_VERSION + 1)
        reloaded = SweepManifest.load(mpath)
        assert len(reloaded.pending()) == 3  # old keys unaddressable


class TestSweepSummary:
    def test_store_footprint_in_summary(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = SweepEngine(jobs=2, job_fn=_fake, store=store)
        outcomes = engine.execute(SPECS)
        assert store.total_bytes() > 0
        summary = render_summary(outcomes, store=store)
        assert '3 simulated, 0 cached, 0 failed' in summary
        assert 'cache served 0 of 3 job(s)' in summary
        assert f'{len(store)} result(s)' in summary
        # second run: everything cached, bytes unchanged
        engine2 = SweepEngine(jobs=2, job_fn=_fake, store=store)
        outcomes2 = engine2.execute(SPECS)
        assert engine2.launched == 0
        summary2 = render_summary(outcomes2, store=store)
        assert '0 simulated, 3 cached, 0 failed' in summary2
        assert 'cache served 3 of 3 job(s)' in summary2

    def test_total_bytes_empty_store(self, tmp_path):
        assert ResultStore(tmp_path / 'fresh').total_bytes() == 0
