"""Turn figure generators into sweep manifests without simulating.

Every ``fig*`` function consumes a :class:`~repro.harness.figures.
ResultCache` point by point.  The set of points a figure touches is
data-independent (branches depend only on the benchmark list, scale and
configuration tables, never on simulated values), so running the figure
against a :class:`PlanningCache` — which records each requested point and
returns a cheap stub — enumerates the exact job set the real run needs.

The sweep engine then executes that set in parallel into the store, and
the figure re-runs against a store-backed cache with zero simulations.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Optional, Sequence

from ..energy.model import EnergyBreakdown
from ..harness.runner import RunResult
from ..manycore.config import DEFAULT_CONFIG
from ..manycore.stats import CoreStats, MemStats, RunStats
from .spec import JobSpec


def _stub_result(bench: str, config: str, machine) -> RunResult:
    """A placeholder with every field the figure reducers touch positive."""
    m = machine if machine is not None else DEFAULT_CONFIG
    stats = RunStats(
        cycles=1,
        cores={i: CoreStats(cycles=1, instrs=1, icache_accesses=1)
               for i in range(m.num_cores)},
        mem=MemStats(llc_accesses=1),
        noc_word_hops=1)
    return RunResult(bench, config, 1, stats,
                     energy=EnergyBreakdown(pipeline=1.0),
                     params={}, machine=m)


class PlanningCache:
    """Duck-types ResultCache.run; records specs, simulates nothing."""

    def __init__(self, scale: str = 'bench', verify: bool = True):
        self.scale = scale
        self.verify = verify
        self.specs: Dict[str, JobSpec] = {}  # key -> spec, insertion order

    def run(self, bench_name: str, config_name: str, machine=None,
            active_cores=None, params_override=None) -> RunResult:
        spec = JobSpec.make(bench_name, config_name, scale=self.scale,
                            verify=self.verify,
                            params_override=params_override,
                            machine=machine, active_cores=active_cores)
        self.specs.setdefault(spec.key(), spec)
        return _stub_result(bench_name, config_name, machine)


def plan_figures(names: Sequence[str], scale: str = 'bench',
                 benches: Optional[Sequence[str]] = None,
                 verify: bool = True) -> List[JobSpec]:
    """Enumerate every job the named figures need, in first-use order.

    ``benches`` restricts the benchmark set for figure functions that
    take one (all but ``bfs``); ``None`` means each figure's default.
    """
    from ..harness import figures as F
    cache = PlanningCache(scale=scale, verify=verify)
    for name in names:
        try:
            fn = getattr(F, F.FIGURES[name])
        except KeyError:
            raise ValueError(f'unknown figure {name!r} '
                             f'(valid: {", ".join(sorted(F.FIGURES))})')
        kwargs = {}
        if benches is not None and \
                'benches' in inspect.signature(fn).parameters:
            kwargs['benches'] = list(benches)
        fn(cache, **kwargs)
    return list(cache.specs.values())
