"""Instruction and register-name definitions for the mini-ISA.

Registers
---------
One flat architectural file of 64 registers per core:

* ``x0``–``x31`` — integer registers, index 0–31.  ``x0`` is hardwired zero.
* ``f0``–``f31`` — floating-point registers, index 32–63.

SIMD (PCV) registers are a separate small file ``v0``–``v7``, each holding
``simd_width`` lanes.

The assembler accepts register *names* (strings); instructions store plain
integer indices so that the simulator's hot path never touches strings.
"""

from __future__ import annotations

from . import opcodes as op

NUM_REGS = 64
NUM_VREGS = 8

X0 = 0


def xreg(n: int) -> int:
    """Index of integer register ``xN``."""
    if not 0 <= n < 32:
        raise ValueError(f'no such integer register x{n}')
    return n


def freg(n: int) -> int:
    """Index of floating-point register ``fN``."""
    if not 0 <= n < 32:
        raise ValueError(f'no such fp register f{n}')
    return 32 + n


def parse_reg(name) -> int:
    """Convert a register name ('x5', 'f2', 'v3') or raw index to an index."""
    if isinstance(name, int):
        return name
    if name.startswith('x'):
        return xreg(int(name[1:]))
    if name.startswith('f'):
        return freg(int(name[1:]))
    if name.startswith('v'):
        n = int(name[1:])
        if not 0 <= n < NUM_VREGS:
            raise ValueError(f'no such SIMD register {name}')
        return n
    raise ValueError(f'unknown register {name!r}')


def reg_name(idx: int) -> str:
    return f'x{idx}' if idx < 32 else f'f{idx - 32}'


# vload variants (paper Section 2.3.2) ---------------------------------------
VL_SINGLE = 0  # all words of the line segment go to one vector core
VL_GROUP = 1  # consecutive chunks scatter across the vector group
VL_SELF = 2  # all data returns to the requesting core's own scratchpad

# vload alignment parts for the unaligned-pair scheme
VL_ALIGNED = 0
VL_PREFIX = 1  # first instruction of an unaligned pair (suffix of line A)
VL_SUFFIX = 2  # second instruction (prefix of line B)

VARIANT_NAMES = {VL_SINGLE: 'single', VL_GROUP: 'group', VL_SELF: 'self'}


class Instr:
    """A decoded instruction.

    Fields mirror a generic three-operand RISC encoding; ``ex`` carries the
    extended operand tuple used by ``vload``:
    ``(core_off, width, variant, part, spad_off_is_reg)``.
    """

    __slots__ = ('op', 'rd', 'rs1', 'rs2', 'imm', 'ex',
                 'reads', 'writes', 'vreads', 'vwrites')

    def __init__(self, opcode: int, rd: int = 0, rs1: int = 0, rs2: int = 0,
                 imm=0, ex=None):
        self.op = opcode
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.ex = ex

    def __repr__(self):
        return f'<{disasm(self)}>'

    def is_control(self) -> bool:
        return op.is_control(self.op)


def disasm(inst: Instr) -> str:
    """Render one instruction as assembly-ish text (for debugging/tests)."""
    o = inst.op
    n = op.name(o)
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2
    r = reg_name
    if o in (op.LI,):
        return f'{n} {r(rd)}, {inst.imm}'
    if o in (op.MV, op.FABS, op.FNEG, op.FCVT_WS, op.FCVT_SW):
        return f'{n} {r(rd)}, {r(rs1)}'
    if o in (op.ADDI, op.ANDI, op.ORI, op.XORI, op.SLLI, op.SRLI, op.SLTI):
        return f'{n} {r(rd)}, {r(rs1)}, {inst.imm}'
    if o in (op.LW, op.LWSP):
        return f'{n} {r(rd)}, {inst.imm}({r(rs1)})'
    if o in (op.SW, op.SWSP):
        return f'{n} {r(rs2)}, {inst.imm}({r(rs1)})'
    if o == op.SWREM:
        return f'{n} {r(rs1)} -> core[{r(rs2)}].spad[{r(rd)}+{inst.imm}]'
    if op.is_branch(o):
        return f'{n} {r(rs1)}, {r(rs2)}, @{inst.imm}'
    if o == op.J:
        return f'{n} @{inst.imm}'
    if o == op.JAL:
        return f'{n} {r(rd)}, @{inst.imm}'
    if o == op.JR:
        return f'{n} {r(rs1)}'
    if o == op.VISSUE:
        return f'{n} @{inst.imm}'
    if o == op.VLOAD:
        core_off, width, variant, part, _ = inst.ex
        return (f'{n} spad[{r(rs2)}], mem[{r(rs1)}], off={core_off}, '
                f'w={width}, {VARIANT_NAMES[variant]}')
    if o == op.FRAME_START:
        return f'{n} {r(rd)}'
    if o in (op.CSRW,):
        return f'{n} csr{inst.imm}, {r(rs1)}'
    if o in (op.CSRR,):
        return f'{n} {r(rd)}, csr{inst.imm}'
    if o in (op.PRED_EQ, op.PRED_NEQ):
        return f'{n} {r(rs1)}, {r(rs2)}'
    if o in (op.VL4,):
        return f'{n} v{rd}, {inst.imm}({r(rs1)})'
    if o in (op.VS4,):
        return f'{n} v{rd}, {inst.imm}({r(rs1)})'
    if o in (op.VADD4, op.VSUB4, op.VMUL4, op.VFMA4):
        return f'{n} v{rd}, v{rs1}, v{rs2}'
    if o == op.VBCAST:
        return f'{n} v{rd}, {r(rs1)}'
    if o == op.VREDSUM4:
        return f'{n} {r(rd)}, v{rs1}'
    if o == op.FMA:
        return f'{n} {r(rd)}, {r(rs1)}, {r(rs2)}'
    return f'{n} {r(rd)}, {r(rs1)}, {r(rs2)}'
