"""Unit tests: FlightRecorder ring + post-mortem artifacts."""

import json

import pytest

from repro.flight import (FlightRecorder, build_postmortem,
                          load_postmortem, postmortem_path,
                          render_postmortem, save_postmortem,
                          validate_postmortem)
from repro.telemetry import ReportValidationError


class TestFlightRecorder:
    def test_events_ordered_with_sequence_numbers(self):
        rec = FlightRecorder(capacity=8)
        rec.record('admit', 100, req_id=1)
        rec.record('dispatch', 200, shard=0)
        events = rec.events()
        assert [e['kind'] for e in events] == ['admit', 'dispatch']
        assert [e['seq'] for e in events] == [0, 1]
        assert events[0]['req_id'] == 1 and events[0]['t'] == 100
        assert all(e['source'] == 'router' for e in events)

    def test_ring_is_bounded_and_counts_drops(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record('admit', i, req_id=i)
        assert len(rec) == 4
        assert rec.seq == 10
        assert rec.dropped == 6
        # the ring keeps the *last* N events — black-box semantics
        assert [e['req_id'] for e in rec.events()] == [6, 7, 8, 9]

    def test_kind_filter_and_unknown_kind_rejected(self):
        rec = FlightRecorder(capacity=8)
        rec.record('admit', 1)
        rec.record('crash', 2, shard=1)
        rec.record('admit', 3)
        assert len(rec.events('admit')) == 2
        assert len(rec.events('crash')) == 1
        with pytest.raises(ValueError):
            rec.record('not-a-kind', 4)

    def test_ingest_restamps_and_keeps_origin(self):
        rec = FlightRecorder(capacity=8, source='router')
        rec.record('dispatch', 10, shard=0)
        rec.ingest([{'seq': 0, 'kind': 'launch', 't': 15,
                     'source': 'shard0', 'req_id': 3}])
        ev = rec.events('launch')[0]
        assert ev['seq'] == 1  # restamped into the router's order
        assert ev['source'] == 'router'
        assert ev['origin'] == 'shard0'
        assert ev['t'] == 15

    def test_metric_snapshot_ring(self):
        rec = FlightRecorder(capacity=4, snapshot_capacity=2)
        for t in (100, 200, 300):
            rec.record_snapshot(t, {'queue_depth': t // 100})
        snaps = rec.snapshots()
        assert [s['t'] for s in snaps] == [200, 300]


def _recorder_with_story():
    rec = FlightRecorder(capacity=16)
    rec.record('admit', 0, req_id=0)
    rec.record('dispatch', 100, shard=1)
    rec.record('crash', 200, shard=1, epoch=2)
    rec.record('reroute', 200, req_id=0, from_shard=1)
    rec.record('replace', 200, shards_after=2)
    rec.record_snapshot(150, {'fleet_queue_depth': 3})
    return rec


class TestPostmortem:
    def test_build_validates_and_roundtrips(self, tmp_path):
        rec = _recorder_with_story()
        inflight = [{'trace_id': 't0', 'span_id': 't0/x1',
                     'name': 'shard1.exec', 'kind': 'shard_exec',
                     'track': 'shard:1', 'start': 100, 'end': None}]
        doc = build_postmortem(rec, 'unit', 'crash',
                               'shard 1 died', 200, inflight=inflight)
        path = postmortem_path('unit', 'crash', str(tmp_path))
        assert path.endswith('POSTMORTEM_unit-crash.json')
        save_postmortem(doc, path)
        loaded = load_postmortem(path)
        assert loaded['reason']['trigger'] == 'crash'
        assert [e['kind'] for e in loaded['events']] == [
            'admit', 'dispatch', 'crash', 'reroute', 'replace']
        assert loaded['metric_snapshots'][0]['t'] == 150
        assert loaded['inflight'][0]['span_id'] == 't0/x1'
        assert loaded['provenance']['code_version_hash']

    def test_unknown_trigger_rejected(self):
        with pytest.raises(ValueError):
            build_postmortem(_recorder_with_story(), 'unit', 'sunspots',
                             'detail', 0)

    def test_validation_rejects_malformed(self, tmp_path):
        doc = build_postmortem(_recorder_with_story(), 'unit',
                               'deadlock', 'wedged', 300)
        bad = dict(doc)
        bad.pop('events')
        with pytest.raises(ReportValidationError):
            validate_postmortem(bad)
        bad = json.loads(json.dumps(doc))
        bad['reason']['trigger'] = 'nope'
        with pytest.raises(ReportValidationError):
            validate_postmortem(bad)
        with pytest.raises(ReportValidationError):
            validate_postmortem({'kind': 'other'})

    def test_render_mentions_the_story(self):
        doc = build_postmortem(_recorder_with_story(), 'unit', 'crash',
                               'shard 1 died', 200)
        text = render_postmortem(doc)
        assert 'trigger:   crash @ cycle 200' in text
        assert 'shard 1 died' in text
        for kind in ('admit', 'dispatch', 'crash', 'reroute', 'replace'):
            assert kind in text
