"""SLO tracking: threshold policies evaluated against serving summaries.

A policy is a JSON object mapping summary metrics to thresholds::

    {
      "latency_p99":      {"warn": 40000, "fail": 80000},
      "queue_wait_mean":  {"warn": 5000},
      "rejected":         {"fail": 0},
      "tile_utilization": {"warn": 0.2, "kind": "min"}
    }

``kind`` is ``max`` (default: the metric must stay *at or below* the
threshold) or ``min`` (must stay at or above — utilization,
throughput).  Evaluation yields one row per rule plus an overall
``pass`` / ``warn`` / ``fail`` status; the serving report embeds the
result as a schema-checked ``slo`` section, and the CLI exits non-zero
on ``fail`` so CI can gate on it.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

PASS = 'pass'
WARN = 'warn'
FAIL = 'fail'

#: summary metrics a policy may reference (all produced by
#: :func:`repro.serve.report.build_serve_report`)
KNOWN_METRICS = ('latency_mean', 'latency_p50', 'latency_p95',
                 'latency_p99', 'queue_wait_mean', 'peak_queue_depth',
                 'rejected', 'failed', 'timed_out',
                 'throughput_per_mcycle', 'tile_utilization')

SLO_SECTION_SCHEMA = {
    'type': 'object',
    'required': ['status', 'rules'],
    'properties': {
        'status': {'type': 'string', 'enum': [PASS, WARN, FAIL]},
        'rules': {
            'type': 'array',
            'items': {
                'type': 'object',
                'required': ['metric', 'value', 'status'],
                'properties': {
                    'metric': {'type': 'string'},
                    'value': {'type': 'number'},
                    'kind': {'type': 'string', 'enum': ['max', 'min']},
                    'warn': {'type': 'number'},
                    'fail': {'type': 'number'},
                    'status': {'type': 'string',
                               'enum': [PASS, WARN, FAIL]},
                },
            },
        },
    },
}


class SloPolicy:
    """A named set of threshold rules over serving-summary metrics."""

    def __init__(self, rules: Dict[str, dict], name: str = 'slo'):
        self.name = name
        self.rules = {}
        for metric, rule in rules.items():
            if metric not in KNOWN_METRICS:
                raise ValueError(
                    f'unknown SLO metric {metric!r}; choose from '
                    f'{", ".join(KNOWN_METRICS)}')
            kind = rule.get('kind', 'max')
            if kind not in ('max', 'min'):
                raise ValueError(f'{metric}: kind must be max or min, '
                                 f'not {kind!r}')
            if 'warn' not in rule and 'fail' not in rule:
                raise ValueError(f'{metric}: rule needs a warn or fail '
                                 f'threshold')
            self.rules[metric] = {'kind': kind,
                                  'warn': rule.get('warn'),
                                  'fail': rule.get('fail')}

    @classmethod
    def load(cls, path: str) -> 'SloPolicy':
        with open(path) as f:
            doc = json.load(f)
        return cls(doc, name=path)

    def evaluate(self, summary: dict) -> dict:
        """Evaluate every rule against a serving-report summary."""
        rows = []
        worst = PASS
        order = {PASS: 0, WARN: 1, FAIL: 2}
        for metric, rule in sorted(self.rules.items()):
            value = float(summary.get(metric, 0.0))
            status = _judge(value, rule)
            if order[status] > order[worst]:
                worst = status
            row = {'metric': metric, 'value': value,
                   'kind': rule['kind'], 'status': status}
            if rule['warn'] is not None:
                row['warn'] = float(rule['warn'])
            if rule['fail'] is not None:
                row['fail'] = float(rule['fail'])
            rows.append(row)
        return {'status': worst, 'rules': rows}


def _judge(value: float, rule: dict) -> str:
    if rule['kind'] == 'min':
        if rule['fail'] is not None and value < rule['fail']:
            return FAIL
        if rule['warn'] is not None and value < rule['warn']:
            return WARN
        return PASS
    if rule['fail'] is not None and value > rule['fail']:
        return FAIL
    if rule['warn'] is not None and value > rule['warn']:
        return WARN
    return PASS


def evaluate_slo(policy: Optional[SloPolicy], summary: dict) \
        -> Optional[dict]:
    return policy.evaluate(summary) if policy is not None else None


def render_slo(slo: dict) -> str:
    lines = [f'SLO: {slo["status"].upper()}']
    for r in slo['rules']:
        op = '>=' if r.get('kind') == 'min' else '<='
        bounds = []
        if 'warn' in r:
            bounds.append(f'warn {op} {r["warn"]:g}')
        if 'fail' in r:
            bounds.append(f'fail {op} {r["fail"]:g}')
        lines.append(f'  [{r["status"]:4}] {r["metric"]:24} '
                     f'{r["value"]:g}  ({", ".join(bounds)})')
    return '\n'.join(lines)
