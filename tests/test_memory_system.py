"""Unit tests: NoC geometry, LLC banks, DRAM bandwidth model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.manycore.config import MachineConfig, small_config
from repro.manycore.dram import Dram
from repro.manycore.fabric import Fabric
from repro.manycore.llc import KIND_LOAD, KIND_STORE, KIND_WIDE, MemRequest
from repro.manycore.noc import (NocModel, bank_coords, hops_core_to_bank,
                                hops_core_to_core, tile_coords)
from repro.manycore.stats import MemStats


class TestNocGeometry:
    def test_tile_coords_row_major(self):
        assert tile_coords(0, 8) == (0, 0)
        assert tile_coords(7, 8) == (7, 0)
        assert tile_coords(8, 8) == (0, 1)
        assert tile_coords(63, 8) == (7, 7)

    def test_banks_split_top_and_bottom(self):
        tops = [bank_coords(b, 16, 8, 8) for b in range(8)]
        bots = [bank_coords(b, 16, 8, 8) for b in range(8, 16)]
        assert all(y == -1 for _, y in tops)
        assert all(y == 8 for _, y in bots)
        assert [x for x, _ in tops] == list(range(8))

    def test_hop_symmetry_between_cores(self):
        for a in (0, 13, 63):
            for b in (5, 42):
                assert hops_core_to_core(a, b, 8) == \
                    hops_core_to_core(b, a, 8)

    @given(st.integers(0, 63), st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_bank_hops_positive_and_bounded(self, core, bank):
        h = hops_core_to_bank(core, bank, 16, 8, 8)
        assert 1 <= h <= 8 + 8  # diameter bound

    def test_noc_model_precomputes(self):
        noc = NocModel(8, 8, 16)
        assert noc.bank_delay(0, 0) == noc.bank_hops(0, 0) + 1
        assert noc.core_delay(0, 63) == 14 + 1


class TestDram:
    def test_latency_floor(self):
        stats = MemStats()
        fabric = Fabric(small_config())
        d = Dram(60, 4.0, 16, stats)
        done = []
        d.read_line(0, fabric, lambda now: done.append(now))
        t = d.read_line(0, fabric, lambda now: done.append(now))
        assert t >= 60

    def test_bandwidth_serializes_lines(self):
        stats = MemStats()
        fabric = Fabric(small_config())
        d = Dram(60, 4.0, 16, stats)
        times = [d.read_line(0, fabric, lambda now: None)
                 for _ in range(10)]
        # each 16-word line occupies 4 cycles of channel time
        assert times[-1] - times[0] >= 9 * 4 - 1
        assert stats.dram_lines_read == 10

    def test_writeback_consumes_bandwidth_only(self):
        stats = MemStats()
        fabric = Fabric(small_config())
        d = Dram(60, 4.0, 16, stats)
        d.write_line(0)
        t = d.read_line(0, fabric, lambda now: None)
        assert t >= 60 + 4  # the read queues behind the write transfer
        assert stats.dram_lines_written == 1


class TestLLCBank:
    def _fabric(self, **over):
        return Fabric(small_config(**over))

    def test_hit_after_miss(self):
        fabric = self._fabric()
        fabric.alloc([1.0] * 64)
        bank = fabric.banks[0]
        got = []
        req = MemRequest(KIND_LOAD, 0, 1, 0,
                         on_data=lambda v, at: got.append((v, at)))
        bank.access(req, 0)
        fabric._drain()
        assert fabric.run_stats.mem.llc_misses == 1
        req2 = MemRequest(KIND_LOAD, 1, 1, 0,
                          on_data=lambda v, at: got.append((v, at)))
        bank.access(req2, fabric.cycle)
        fabric._drain()
        assert fabric.run_stats.mem.llc_misses == 1  # second was a hit
        assert got[1][1] - got[0][1] < 60  # no DRAM on the hit

    def test_store_marks_dirty_and_writes_memory(self):
        fabric = self._fabric()
        base = fabric.alloc([0.0] * 16)
        bank_id = (base // fabric.cfg.line_words) % fabric.cfg.llc_banks
        bank = fabric.banks[bank_id]
        req = MemRequest(KIND_STORE, base + 3, 1, 0, value=42.0)
        bank.access(req, 0)
        fabric._drain()
        assert fabric.memory[base + 3] == 42.0
        assert (base + 3) // fabric.cfg.line_words in bank._dirty

    def test_eviction_writes_back_dirty_line(self):
        fabric = self._fabric(llc_capacity_bytes=4 * 64, llc_banks=1,
                              llc_ways=2)
        fabric.alloc([0.0] * (16 * 16))
        bank = fabric.banks[0]
        bank.access(MemRequest(KIND_STORE, 0, 1, 0, value=1.0), 0)
        fabric._drain()
        # touch enough distinct lines to evict line 0
        for i in range(1, 6):
            bank.access(MemRequest(KIND_LOAD, i * 16, 1, 0,
                                   on_data=lambda v, at: None),
                        fabric.cycle)
            fabric._drain()
        assert fabric.run_stats.mem.dram_lines_written >= 1

    def test_wide_response_serializes_packets(self):
        fabric = self._fabric()
        base = fabric.alloc([float(i) for i in range(16)])
        bank_id = (base // 16) % fabric.cfg.llc_banks
        bank = fabric.banks[bank_id]
        # 16 words to one core at noc width 4 -> 4 packets
        chunks = [(base, 16, 0, 0)]
        req = MemRequest(KIND_WIDE, base, 16, 0, chunks=chunks,
                         is_frame=False)
        before = fabric.run_stats.mem.response_packets
        bank.access(req, 0)
        fabric._drain()
        assert fabric.run_stats.mem.response_packets - before == 4
        assert fabric.tiles[0].spad.data[:16] == [float(i)
                                                  for i in range(16)]

    def test_ideal_ports_skip_serialization(self):
        real = self._fabric()
        ideal = self._fabric(ideal_llc_ports=True)
        for fabric in (real, ideal):
            base = fabric.alloc([0.0] * 16)
            chunks = [(base, 16, 0, 0)]
            bank = fabric.banks[(base // 16) % fabric.cfg.llc_banks]
            bank.access(MemRequest(KIND_WIDE, base, 16, 0, chunks=chunks),
                        0)
            fabric._drain()
        assert ideal.cycle <= real.cycle

    def test_mshr_merges_requests_to_same_line(self):
        fabric = self._fabric()
        base = fabric.alloc([0.0] * 16)
        bank = fabric.banks[(base // 16) % fabric.cfg.llc_banks]
        got = []
        for i in range(4):
            bank.access(MemRequest(KIND_LOAD, base + i, 1, 0,
                                   on_data=lambda v, at: got.append(at)),
                        0)
        fabric._drain()
        assert len(got) == 4
        assert fabric.run_stats.mem.dram_lines_read == 1  # one fill


class TestConfig:
    def test_line_words(self):
        assert MachineConfig().line_words == 16
        assert MachineConfig(cache_line_bytes=256).line_words == 64

    def test_scaled_returns_copy(self):
        base = MachineConfig()
        two = base.scaled(dram_bandwidth_words_per_cycle=8.0)
        assert base.dram_bandwidth_words_per_cycle == 4.0
        assert two.dram_bandwidth_words_per_cycle == 8.0

    def test_llc_sets_positive(self):
        for kb in (16, 32, 256):
            cfg = MachineConfig(llc_capacity_bytes=kb * 1024)
            assert cfg.llc_sets_per_bank >= 1
