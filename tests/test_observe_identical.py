"""The observability plane is side-effect-free (bit-identical runs).

Acceptance: a serve run with the plane attached produces bit-identical
per-request cycle counts and kernel outputs to an unobserved run, and
attach/detach round-trips leave the fabric unobserved.
"""

import numpy as np

from repro.kernels import registry
from repro.kernels.base import VectorParams
from repro.manycore import Fabric
from repro.observe import MetricsRegistry, ObservePlane
from repro.serve import KernelRequest, ServeScheduler, request_outputs


def _requests():
    def req(i, kernel, arrival, groups=1, **kw):
        params = registry.make(kernel).params_for('test')
        return KernelRequest(req_id=i, kernel=kernel, params=params,
                             lanes=4, groups=groups, arrival=arrival, **kw)
    return [req(0, 'mvt', arrival=0, groups=2),
            req(1, 'gesummv', arrival=0),
            req(2, 'atax', arrival=50, groups=2),
            req(3, 'gesummv', arrival=120, priority=1)]


def _serve(plane=None):
    fabric = Fabric()
    if plane is not None:
        plane.attach(fabric)
    result = ServeScheduler(fabric).run(_requests())
    outputs = {r.req_id: request_outputs(fabric, r)
               for r in result.requests}
    return fabric, result, outputs


def _fingerprint(result):
    return [(r.req_id, r.state, r.launched_at, r.finished_at,
             r.latency, r.service_cycles, r.instrs,
             tuple(sorted((cid, cs.instrs, cs.stall_total())
                          for cid, cs in r.stats.cores.items())))
            for r in result.requests] + [result.makespan]


def test_serve_bit_identical_with_plane_attached():
    _, base, base_out = _serve()
    plane = ObservePlane(snapshot_interval=1500)
    _, observed, obs_out = _serve(plane)
    assert _fingerprint(base) == _fingerprint(observed)
    for rid in base_out:
        assert base_out[rid].keys() == obs_out[rid].keys()
        for name in base_out[rid]:
            assert np.array_equal(base_out[rid][name], obs_out[rid][name])
    # and the plane actually observed the run
    assert plane.snapshots > 0
    snap = plane.registry.snapshot()
    assert snap['noc_words_total'] > 0
    assert snap['serve_requests_total']


def test_classic_run_bit_identical_with_plane_attached():
    def run(observe):
        fabric = Fabric()
        if observe:
            ObservePlane(snapshot_interval=500).attach(fabric)
        bench = registry.make('gemm')
        params = bench.params_for('test')
        ws = bench.setup(fabric, params)
        prog = bench.build_vector(fabric, ws, params,
                                  VectorParams(lanes=4, max_groups=2))
        fabric.load_program(prog)
        stats = fabric.run()
        bench.verify(fabric, ws, params)
        return (stats.cycles, stats.total_instrs, stats.noc_word_hops,
                stats.mem.llc_accesses, stats.mem.llc_misses,
                tuple(sorted((cid, cs.instrs, cs.stall_total())
                             for cid, cs in stats.cores.items())))
    assert run(False) == run(True)


def test_attach_detach_roundtrip():
    fabric = Fabric()
    registry_ = MetricsRegistry()
    plane = ObservePlane(registry=registry_, snapshot_interval=0)
    plane.attach(fabric)
    assert fabric.observe is plane
    assert plane.registry is registry_
    plane.detach(fabric)
    assert fabric.observe is None
    # detaching a foreign plane is a no-op on the installed one
    other = ObservePlane()
    other.attach(fabric)
    plane.detach(fabric)
    assert fabric.observe is other
