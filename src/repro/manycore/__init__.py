"""The baseline tiled manycore substrate (paper Section 3.1)."""

from .config import DEFAULT_CONFIG, MachineConfig, small_config
from .fabric import (DeadlockError, Fabric, FabricJob, JOB_DONE,
                     JOB_DRAINING, JOB_KILLED, JOB_RUNNING,
                     SimulationTimeout)
from .stats import CoreStats, MemStats, RunStats
from .tile import SimError, Tile
from .trace import TraceEntry, Tracer

__all__ = ['Fabric', 'FabricJob', 'MachineConfig', 'DEFAULT_CONFIG',
           'small_config', 'RunStats', 'CoreStats', 'MemStats', 'Tile',
           'SimError', 'DeadlockError', 'SimulationTimeout', 'Tracer',
           'TraceEntry', 'JOB_RUNNING', 'JOB_DRAINING', 'JOB_DONE',
           'JOB_KILLED']
