"""Log2-bucketed latency histograms.

Latencies in a cycle-level simulator span five orders of magnitude (a
scratchpad hit is 2 cycles, a DRAM-bound vload hundreds), so linear
buckets are useless and exact reservoirs are too expensive for a probe
that fires on every memory request.  A :class:`Log2Histogram` keeps one
counter per power-of-two bucket: ``record()`` is two integer ops and an
increment, and the lossy part (within-bucket position) is bounded to a
factor of two, which is plenty for the queueing/latency distributions
the telemetry reports care about (gem5's distribution stats make the
same trade).

Bucket ``0`` holds values ``<= 0`` (e.g. zero queueing delay); bucket
``i >= 1`` holds values in ``[2**(i-1), 2**i)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

_MAX_BUCKETS = 64  # covers any latency a 2**60-cycle-capped sim can produce


class Log2Histogram:
    """Fixed-cost histogram over non-negative latencies."""

    __slots__ = ('name', 'unit', 'count', 'total', 'min', 'max', '_buckets')

    def __init__(self, name: str, unit: str = 'cycles'):
        self.name = name
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: List[int] = [0] * _MAX_BUCKETS

    # ------------------------------------------------------------------ record
    def record(self, value) -> None:
        """Record one observation (clamped to bucket 0 when ``<= 0``)."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        idx = int(value).bit_length() if value > 0 else 0
        self._buckets[idx] += 1

    # ----------------------------------------------------------------- queries
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> Dict[int, int]:
        """Non-empty buckets as ``{lower_bound: count}``."""
        out = {}
        for i, c in enumerate(self._buckets):
            if c:
                out[0 if i == 0 else 1 << (i - 1)] = c
        return out

    def percentile(self, p: float) -> float:
        """Upper-bound estimate of the ``p``-th percentile (0..100)."""
        if not self.count:
            return 0.0
        target = self.count * p / 100.0
        seen = 0
        for i, c in enumerate(self._buckets):
            seen += c
            if seen >= target:
                upper = 0 if i == 0 else (1 << i) - 1
                return float(min(upper, self.max))
        return float(self.max)

    # ------------------------------------------------------------------- merge
    def merge(self, other: 'Log2Histogram') -> 'Log2Histogram':
        """Fold ``other`` into this histogram (for sweep aggregation)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for i, c in enumerate(other._buckets):
            self._buckets[i] += c
        return self

    # --------------------------------------------------------------- serialize
    def to_dict(self) -> dict:
        return {
            'name': self.name,
            'unit': self.unit,
            'count': self.count,
            'min': float(self.min) if self.min is not None else 0.0,
            'max': float(self.max) if self.max is not None else 0.0,
            'mean': self.mean,
            'p50': self.percentile(50),
            'p99': self.percentile(99),
            'buckets': {str(k): v for k, v in self.buckets().items()},
        }

    @classmethod
    def from_dict(cls, doc: dict) -> 'Log2Histogram':
        h = cls(doc['name'], doc.get('unit', 'cycles'))
        h.count = doc['count']
        h.total = doc['mean'] * doc['count']
        h.min = doc['min'] if doc['count'] else None
        h.max = doc['max'] if doc['count'] else None
        for lo, c in doc.get('buckets', {}).items():
            lo = int(lo)
            idx = 0 if lo == 0 else lo.bit_length()
            h._buckets[idx] += c
        return h

    def render(self, width: int = 40) -> str:
        """ASCII rendering for terminal reports."""
        lines = [f'{self.name} ({self.unit}): n={self.count} '
                 f'mean={self.mean:.1f} p50={self.percentile(50):.0f} '
                 f'p99={self.percentile(99):.0f} '
                 f'max={self.max if self.max is not None else 0:.0f}']
        bk = self.buckets()
        if bk:
            peak = max(bk.values())
            for lo, c in bk.items():
                bar = '#' * max(1, round(width * c / peak))
                lines.append(f'  {lo:>10d}+ {c:>8d} {bar}')
        return '\n'.join(lines)

    def __repr__(self):
        return (f'Log2Histogram({self.name!r}, n={self.count}, '
                f'mean={self.mean:.1f})')


def merge_histograms(hists: Iterable[Log2Histogram]) -> Log2Histogram:
    """Merge several histograms (of the same probe) into a fresh one."""
    out: Optional[Log2Histogram] = None
    for h in hists:
        if out is None:
            out = Log2Histogram(h.name, h.unit)
        out.merge(h)
    if out is None:
        raise ValueError('merge_histograms needs at least one histogram')
    return out
