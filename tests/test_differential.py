"""Differential testing: random programs vs a direct Python evaluation.

Hypothesis generates random straight-line arithmetic programs; the
simulator's architectural result must match a simple Python interpretation
of the same instructions.  This guards the ALU semantics, the scoreboard
(results must not depend on latencies), and writeback ordering.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Assembler, opcodes as op
from repro.manycore import Fabric, small_config

# (mnemonic, arity, reference lambda)
INT_OPS = [
    ('add', 2, lambda a, b: a + b),
    ('sub', 2, lambda a, b: a - b),
    ('mul', 2, lambda a, b: a * b),
    ('and_', 2, lambda a, b: a & b),
    ('or_', 2, lambda a, b: a | b),
    ('xor', 2, lambda a, b: a ^ b),
    ('slt', 2, lambda a, b: int(a < b)),
]

FP_OPS = [
    ('fadd', 2, lambda a, b: a + b),
    ('fsub', 2, lambda a, b: a - b),
    ('fmul', 2, lambda a, b: a * b),
    ('fmin', 2, lambda a, b: min(a, b)),
    ('fmax', 2, lambda a, b: max(a, b)),
]


@st.composite
def int_programs(draw):
    """A random straight-line integer program over x5..x12."""
    regs = [f'x{i}' for i in range(5, 13)]
    init = {r: draw(st.integers(-100, 100)) for r in regs}
    ops = draw(st.lists(
        st.tuples(st.sampled_from(INT_OPS), st.sampled_from(regs),
                  st.sampled_from(regs), st.sampled_from(regs)),
        min_size=1, max_size=25))
    return init, ops


@st.composite
def fp_programs(draw):
    regs = [f'f{i}' for i in range(1, 9)]
    finite = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
    init = {r: draw(finite) for r in regs}
    ops = draw(st.lists(
        st.tuples(st.sampled_from(FP_OPS), st.sampled_from(regs),
                  st.sampled_from(regs), st.sampled_from(regs)),
        min_size=1, max_size=25))
    return init, ops


def run_program(init, ops, out_regs):
    fabric = Fabric(small_config())
    out = fabric.alloc(len(out_regs))
    a = Assembler()
    a.csrr('x1', op.CSR_COREID)
    a.beq('x1', 'x0', 'main')
    a.halt()
    a.bind('main')
    for reg, val in init.items():
        a.li(reg, val)
    for (name, _, _), rd, rs1, rs2 in ops:
        getattr(a, name)(rd, rs1, rs2)
    a.li('x30', out)
    for i, reg in enumerate(out_regs):
        a.sw(reg, 'x30', i)
    a.halt()
    fabric.load_program(a.finish())
    fabric.run()
    return fabric.read_array(out, len(out_regs))


def reference(init, ops):
    env = dict(init)
    for (name, _, fn), rd, rs1, rs2 in ops:
        env[rd] = fn(env[rs1], env[rs2])
    return env


class TestDifferential:
    @given(int_programs())
    @settings(max_examples=40, deadline=None)
    def test_integer_programs_match_python(self, prog):
        init, ops = prog
        regs = sorted(init)
        got = run_program(init, ops, regs)
        env = reference(init, ops)
        assert got == [env[r] for r in regs]

    @given(fp_programs())
    @settings(max_examples=40, deadline=None)
    def test_fp_programs_match_python(self, prog):
        init, ops = prog
        regs = sorted(init)
        got = run_program(init, ops, regs)
        env = reference(init, ops)
        for g, r in zip(got, (env[r] for r in regs)):
            assert g == pytest.approx(r, rel=1e-12, abs=1e-12)

    @given(st.integers(-1000, 1000), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_div_rem_identity(self, a_val, b_val):
        """C-style truncating division: a == b*(a/b) + a%b."""
        init = {'x5': a_val, 'x6': b_val}
        ops = [(('div', 2, None), 'x7', 'x5', 'x6'),
               (('rem', 2, None), 'x8', 'x5', 'x6')]
        fabric = Fabric(small_config())
        out = fabric.alloc(2)
        asm = Assembler()
        asm.csrr('x1', op.CSR_COREID)
        asm.beq('x1', 'x0', 'main')
        asm.halt()
        asm.bind('main')
        asm.li('x5', a_val)
        asm.li('x6', b_val)
        asm.div('x7', 'x5', 'x6')
        asm.rem('x8', 'x5', 'x6')
        asm.li('x30', out)
        asm.sw('x7', 'x30', 0)
        asm.sw('x8', 'x30', 1)
        asm.halt()
        fabric.load_program(asm.finish())
        fabric.run()
        q, r = fabric.read_array(out, 2)
        assert b_val * q + r == a_val
        assert abs(r) < b_val
        assert q == int(a_val / b_val)

    @given(st.lists(st.floats(-100, 100, allow_nan=False,
                              allow_infinity=False),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_memory_roundtrip_preserves_values(self, values):
        """Store-then-load through the LLC returns exactly what went in."""
        fabric = Fabric(small_config())
        src = fabric.alloc(values)
        dst = fabric.alloc(len(values))
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.beq('x1', 'x0', 'main')
        a.halt()
        a.bind('main')
        a.li('x5', src)
        a.li('x6', dst)
        with a.for_count('x7', len(values)):
            a.lw('f1', 'x5', 0)
            a.sw('f1', 'x6', 0)
            a.addi('x5', 'x5', 1)
            a.addi('x6', 'x6', 1)
        a.halt()
        fabric.load_program(a.finish())
        fabric.run()
        assert fabric.read_array(dst, len(values)) == values
