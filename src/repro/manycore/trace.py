"""Instruction tracing for debugging kernels on the fabric.

Attach a :class:`Tracer` to a fabric before ``run()`` to record every
issued instruction (optionally filtered by core or cycle window), then
render the interleaved trace:

>>> fabric = Fabric(small_config())          # doctest: +SKIP
>>> tracer = Tracer(cores=[0, 1], limit=200)  # doctest: +SKIP
>>> tracer.attach(fabric)                     # doctest: +SKIP
>>> fabric.run()                              # doctest: +SKIP
>>> print(tracer.render())                    # doctest: +SKIP

Tracing costs one predicate per issued instruction when attached and
nothing when not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.vgroup import ROLE_NAMES
from ..isa.instruction import Instr, disasm


@dataclass
class TraceEntry:
    cycle: int
    core: int
    mode: int
    text: str

    def __str__(self):
        role = ROLE_NAMES.get(self.mode, '?')[0].upper()
        return f'{self.cycle:8d} c{self.core:02d}[{role}] {self.text}'


class Tracer:
    """Collects issued instructions from selected cores."""

    def __init__(self, cores: Optional[Sequence[int]] = None,
                 start: int = 0, stop: int = 1 << 60,
                 limit: int = 100_000):
        self.cores = set(cores) if cores is not None else None
        self.start = start
        self.stop = stop
        self.limit = limit
        self.entries: List[TraceEntry] = []
        self.dropped = 0   # hit the entry limit
        self.filtered = 0  # failed the core/cycle filters

    def attach(self, fabric) -> 'Tracer':
        fabric.trace = self
        return self

    def record(self, core: int, cycle: int, inst: Instr,
               mode: int) -> None:
        if self.cores is not None and core not in self.cores:
            self.filtered += 1
            return
        if not self.start <= cycle < self.stop:
            self.filtered += 1
            return
        if len(self.entries) >= self.limit:
            self.dropped += 1
            return
        self.entries.append(TraceEntry(cycle, core, mode, disasm(inst)))

    def render(self, last: Optional[int] = None) -> str:
        entries = self.entries[-last:] if last else self.entries
        lines = [str(e) for e in entries]
        if self.dropped:
            lines.append(f'... {self.dropped} entries dropped (limit '
                         f'{self.limit})')
        if self.filtered:
            lines.append(f'... {self.filtered} entries filtered '
                         f'(core/cycle filters)')
        return '\n'.join(lines)

    def per_core(self, core: int) -> List[TraceEntry]:
        return [e for e in self.entries if e.core == core]

    def __len__(self):
        return len(self.entries)
