"""End-to-end sweep acceptance: parallel == serial, replay is free.

These run real (test-scale) simulations through the worker farm and
assert the two load-bearing properties of the subsystem:

* a sweep executed with ``--jobs 4`` produces **bit-identical** cycle
  counts (and full statistics) to the serial path;
* an immediately repeated sweep is served entirely from the on-disk
  store — zero worker launches, zero simulations.
"""

import json

import pytest

from repro.harness import figures as F
from repro.jobs import (JobSpec, PlanningCache, ResultStore, SweepEngine,
                        plan_figures, run_job)

POINTS = [JobSpec.make(b, c, scale='test')
          for b in ('bicg', 'gemm')
          for c in ('NV', 'NV_PF', 'V4')]


class TestParallelBitIdentical:
    @pytest.fixture(scope='class')
    def serial(self):
        return {s.key(): run_job(s) for s in POINTS}

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path_factory,
                                                 serial):
        store = ResultStore(tmp_path_factory.mktemp('store'))
        engine = SweepEngine(jobs=4, store=store)
        outcomes = engine.execute(POINTS)
        assert engine.launched == len(POINTS)
        for o in outcomes:
            assert o.ok, o.error
            ref = serial[o.key]
            assert o.result.cycles == ref.cycles
            assert o.result.stats.cores == ref.stats.cores
            assert o.result.stats.mem == ref.stats.mem
            assert o.result.stats.noc_word_hops == ref.stats.noc_word_hops
            assert o.result.energy == ref.energy

        # immediate re-run: everything from the store, nothing launched
        again = SweepEngine(jobs=4, store=store)
        outcomes2 = again.execute(POINTS)
        assert again.launched == 0
        assert all(o.from_cache for o in outcomes2)
        for o in outcomes2:
            assert o.result.cycles == serial[o.key].cycles


class TestPlanner:
    def test_plan_enumerates_exact_point_set(self):
        specs = plan_figures(['fig10a'], scale='test', benches=['bicg'])
        labels = {(s.benchmark, s.config) for s in specs}
        # NV baseline, NV_PF, and the BEST_V members (no LL at test scale)
        assert labels == {('bicg', 'NV'), ('bicg', 'NV_PF'),
                          ('bicg', 'V4'), ('bicg', 'V16')}
        assert all(s.scale == 'test' for s in specs)

    def test_plan_covers_machine_and_core_sweeps(self):
        specs = plan_figures(['fig11'], scale='test', benches=['gemm'])
        core_sets = {s.active_cores for s in specs}
        assert (0,) in core_sets  # single-core baseline
        assert any(s.active_cores and len(s.active_cores) == 64
                   for s in specs)

    def test_planning_simulates_nothing(self):
        cache = PlanningCache(scale='test')
        F.fig10a_speedup(cache, benches=['bicg'])
        assert len(cache.specs) == 4  # recorded, none executed

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match='unknown figure'):
            plan_figures(['fig99'], scale='test')


class TestFigureSweepEndToEnd:
    """Farm a figure's points, then regenerate it with zero simulations."""

    def test_parallel_figure_equals_serial_figure(self, tmp_path):
        serial_series = F.fig10a_speedup(F.ResultCache(scale='test'),
                                         benches=['bicg'])

        store = ResultStore(tmp_path / 'store')
        specs = plan_figures(['fig10a'], scale='test', benches=['bicg'])
        engine = SweepEngine(jobs=4, store=store)
        outcomes = engine.execute(specs)
        assert all(o.ok for o in outcomes)

        cache = F.ResultCache(scale='test', store=store)
        parallel_series = F.fig10a_speedup(cache, benches=['bicg'])
        assert cache.simulations == 0  # everything came from the store
        assert parallel_series.rows == serial_series.rows

    def test_experiment_jobs_matches_serial(self, tmp_path):
        from repro.harness.experiments import run_experiment
        spec = {'name': 'p', 'benchmarks': ['bicg'],
                'configs': ['NV', 'V4'], 'scale': 'test',
                'metrics': ['cycles', 'speedup']}
        serial = run_experiment(dict(spec))
        parallel = run_experiment(dict(spec), jobs=2,
                                  store=ResultStore(tmp_path / 's'))
        for metric in ('cycles', 'speedup'):
            assert parallel.tables[metric].rows == \
                serial.tables[metric].rows


class TestSweepCli:
    def _run(self, *argv):
        from repro.__main__ import main
        return main(list(argv))

    def test_sweep_then_cached_rerun(self, tmp_path, capsys):
        store = str(tmp_path / 'store')
        manifest = str(tmp_path / 'manifest.json')
        report1 = str(tmp_path / 'r1.json')
        report2 = str(tmp_path / 'r2.json')
        args = ['sweep', 'bfs', '--scale', 'test', '--jobs', '2',
                '--store', store, '--manifest', manifest]
        assert self._run(*args, '--report', report1, '--render') == 0
        out = capsys.readouterr().out
        assert 'bfs' in out
        doc = json.load(open(report1))
        assert doc['kind'] == 'repro-sweep-report'
        assert doc['launched'] == doc['total'] == 3
        assert doc['by_status'] == {'done': 3}

        # second pass: 100% cache hits, zero workers launched
        assert self._run(*args, '--report', report2) == 0
        doc = json.load(open(report2))
        assert doc['launched'] == 0
        assert doc['by_status'] == {'cached': 3}

        # --resume with a complete manifest has nothing to do
        assert self._run(*args, '--resume') == 0
        assert 'pending' in capsys.readouterr().out

    def test_figure_jobs_flag(self, tmp_path, capsys):
        assert self._run('figure', 'bfs', '--scale', 'test', '--jobs', '2',
                         '--store', str(tmp_path / 's')) == 0
        assert 'bfs' in capsys.readouterr().out

    def test_resume_without_manifest_errors(self, tmp_path, capsys):
        assert self._run('sweep', 'bfs', '--scale', 'test',
                         '--store', str(tmp_path / 's'),
                         '--manifest', str(tmp_path / 'nope.json'),
                         '--resume') == 2
        assert 'cannot resume' in capsys.readouterr().err
