"""`repro dse` exit-code contracts and artifact flow (see docs/cli.md).

* 0 — success / gate passed
* 1 — invalid input (unknown kernel, non-vector config, bad artifact),
      infeasible point, or a failed ground-truth job
* 2 — calibration error gate (`--max-mape`) exceeded
"""

import json

import pytest

from repro.__main__ import main


class TestPredict:
    def test_predict_is_zero(self, capsys):
        assert main(['dse', 'predict', 'gemm', 'V4']) == 0
        out = capsys.readouterr().out
        assert 'predicted cycles' in out

    def test_unknown_benchmark_is_one(self, capsys):
        assert main(['dse', 'predict', 'nope', 'V4']) == 1
        capsys.readouterr()

    def test_non_vector_config_is_one(self, capsys):
        assert main(['dse', 'predict', 'gemm', 'NV']) == 1
        capsys.readouterr()

    def test_infeasible_point_is_one(self, capsys):
        assert main(['dse', 'predict', 'gemm', 'V4',
                     '--frame-counters', '3']) == 1
        capsys.readouterr()


@pytest.fixture(scope='module')
def calib(tmp_path_factory):
    """One real (tiny) calibration produced through the CLI itself."""
    d = tmp_path_factory.mktemp('dse')
    out = d / 'CALIB_t.json'
    code = main(['dse', 'calibrate', '--kernels', 'gemm',
                 '--configs', 'V4', '--depths', '4,5', '--banks', '4',
                 '--store', str(d / 'store'), '--label', 't',
                 '--out', str(out)])
    assert code == 0
    return d, out


class TestCalibrate:
    def test_artifact_is_schema_valid(self, calib, capsys):
        _, out = calib
        doc = json.load(open(out))
        assert doc['kind'] == 'repro-calib-report'
        assert main(['dse', 'report', str(out)]) == 0
        capsys.readouterr()

    def test_cached_rerun_meets_gate(self, calib, capsys):
        # same store: every ground-truth job is a cache hit, and the
        # tiny suite fits itself well inside any sane error gate
        d, out = calib
        assert main(['dse', 'calibrate', '--kernels', 'gemm',
                     '--configs', 'V4', '--depths', '4,5',
                     '--banks', '4', '--store', str(d / 'store'),
                     '--label', 't', '--out', str(out),
                     '--max-mape', '20']) == 0
        assert 'cached' in capsys.readouterr().out

    def test_impossible_gate_is_two(self, calib, capsys):
        d, out = calib
        assert main(['dse', 'calibrate', '--kernels', 'gemm',
                     '--configs', 'V4', '--depths', '4,5',
                     '--banks', '4', '--store', str(d / 'store'),
                     '--label', 't', '--out', str(out),
                     '--max-mape', '-1']) == 2
        capsys.readouterr()

    def test_non_vector_config_is_one(self, tmp_path, capsys):
        assert main(['dse', 'calibrate', '--kernels', 'gemm',
                     '--configs', 'NV',
                     '--store', str(tmp_path / 's')]) == 1
        capsys.readouterr()


class TestExplore:
    def test_triage_only_and_report(self, calib, tmp_path, capsys):
        _, calib_out = calib
        out = tmp_path / 'DSE_t.json'
        assert main(['dse', 'explore', 'gemm', '--calib', str(calib_out),
                     '--space', 'small', '--no-simulate',
                     '--label', 't', '--out', str(out)]) == 0
        doc = json.load(open(out))
        assert doc['kind'] == 'repro-dse-report'
        assert doc['calibration']['calibrated'] is True
        assert main(['dse', 'report', str(out)]) == 0
        capsys.readouterr()

    def test_unknown_benchmark_is_one(self, tmp_path, capsys):
        assert main(['dse', 'explore', 'nope', '--space', 'small',
                     '--no-simulate',
                     '--out', str(tmp_path / 'x.json')]) == 1
        capsys.readouterr()

    def test_invalid_calibration_is_one(self, tmp_path, capsys):
        bad = tmp_path / 'bad.json'
        bad.write_text('{"kind": "wrong"}')
        assert main(['dse', 'explore', 'gemm', '--calib', str(bad),
                     '--space', 'small', '--no-simulate',
                     '--out', str(tmp_path / 'x.json')]) == 1
        capsys.readouterr()


class TestReport:
    def test_unreadable_or_unknown_kind_is_one(self, tmp_path, capsys):
        bad = tmp_path / 'bad.json'
        bad.write_text('not json')
        assert main(['dse', 'report', str(bad)]) == 1
        other = tmp_path / 'other.json'
        other.write_text('{"kind": "something-else"}')
        assert main(['dse', 'report', str(other)]) == 1
        capsys.readouterr()
