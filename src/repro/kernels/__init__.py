"""PolyBench/GPU kernels and the kernel code-generation layer."""

from .base import Benchmark, VectorParams, Workspace
from .codegen import (MimdKernelBuilder, VectorKernelBuilder, VectorProgram,
                      pack_frame_cfg)

__all__ = ['Benchmark', 'VectorParams', 'Workspace', 'MimdKernelBuilder',
           'VectorKernelBuilder', 'VectorProgram', 'pack_frame_cfg']
