"""Experiment harness: Table 3 configurations, runner, and figure printers."""

from .configs import CONFIGS, META_CONFIGS, Config, MetaConfig, get
from .runner import RunResult, run_benchmark

__all__ = ['CONFIGS', 'META_CONFIGS', 'Config', 'MetaConfig', 'get',
           'RunResult', 'run_benchmark']
