"""The manycore fabric: tiles + NoC + LLC banks + DRAM + the event loop.

Simulation is cycle-stepped but event-assisted: tiles report the next cycle
at which they can make progress, memory completions are scheduled on an
event heap, and the clock jumps straight to the earliest interesting time.
This keeps pure-Python simulation fast through long memory stalls while
preserving cycle-granular interleaving where it matters.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

from ..core.vgroup import (GroupDescriptor, ROLE_EXPANDER, ROLE_SCALAR,
                           ROLE_VECTOR)
from ..isa.assembler import Program
from .config import DEFAULT_CONFIG, MachineConfig
from .dram import Dram
from .llc import KIND_STORE, KIND_WIDE, LLCBank, MemRequest
from .noc import NocModel
from .stats import RunStats
from .tile import INF, RUN, Tile, WAIT_BARRIER

_MAX_DEFAULT = 200_000_000


class DeadlockError(Exception):
    """No tile can make progress and no events are pending."""


class SimulationTimeout(Exception):
    """The run exceeded its cycle budget."""


class Fabric:
    """A W x H tiled machine with shared LLC banks and DRAM."""

    def __init__(self, cfg: MachineConfig = DEFAULT_CONFIG):
        self.cfg = cfg
        self.run_stats = RunStats()
        self.noc = NocModel(cfg.mesh_width, cfg.mesh_height, cfg.llc_banks,
                            cfg.router_hop_latency)
        self.dram = Dram(cfg.dram_latency,
                         cfg.dram_bandwidth_words_per_cycle,
                         cfg.line_words, self.run_stats.mem)
        self.banks = [LLCBank(b, self, cfg, self.run_stats.mem)
                      for b in range(cfg.llc_banks)]
        self.tiles = [Tile(i, self, cfg) for i in range(cfg.num_cores)]
        self.run_stats.cores = {t.core_id: t.stats for t in self.tiles}

        self.memory: List = []
        self._alloc_ptr = 0
        self.cycle = 0
        self._heap: list = []
        self._seq = 0
        self.group_descs: Dict[int, GroupDescriptor] = {}
        self.num_groups = 0
        self._active: List[Tile] = []
        self._halted_dirty = False
        self.trace = None  # optional Tracer (see manycore.trace)
        self.telemetry = None  # optional Telemetry (see repro.telemetry)

    # ------------------------------------------------------------- memory setup
    def alloc(self, data_or_size, fill=0.0) -> int:
        """Allocate a line-aligned global array; returns its word address.

        Line 0 is reserved as a guard so that one-word-shifted (unaligned)
        stencil loads never index below zero.
        """
        lw = self.cfg.line_words
        base = ((max(len(self.memory), lw) + lw - 1) // lw) * lw
        if isinstance(data_or_size, int):
            values = [fill] * data_or_size
        else:
            values = [float(v) for v in data_or_size]
        self.memory.extend([0.0] * (base - len(self.memory)))
        self.memory.extend(values)
        # pad to a line boundary plus one trailing guard line, so shifted
        # (unaligned) loads one word past an array stay in bounds
        pad = (lw - len(self.memory) % lw) % lw + lw
        self.memory.extend([0.0] * pad)
        return base

    def read_array(self, base: int, n: int) -> List:
        return self.memory[base:base + n]

    # ------------------------------------------------------------- group setup
    def register_group(self, desc: GroupDescriptor) -> int:
        """Register a vector-group descriptor; returns its vconfig handle."""
        handle = len(self.group_descs)
        self.group_descs[handle] = desc
        self.num_groups = len(self.group_descs)
        return handle

    # ----------------------------------------------------------------- events
    def post(self, time: int, fn) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def wake_tile(self, tile: Tile, time: int) -> None:
        t = max(time, self.cycle)
        if t < tile.next_wake:
            tile.next_wake = t

    def count_hops(self, word_hops: int) -> None:
        self.run_stats.noc_word_hops += word_hops

    # ------------------------------------------------------------ memory traffic
    def send_to_bank(self, req: MemRequest, now: int) -> None:
        bank_id = (req.addr // self.cfg.line_words) % self.cfg.llc_banks
        hops = self.noc.bank_hops(req.core, bank_id)
        self.count_hops(hops)
        delay = self.noc.bank_delay(req.core, bank_id)
        # wide requests are covered by the drain-time NoC derivation
        # from the wide-access record (see Telemetry._drain_events)
        if self.telemetry is not None and req.kind != KIND_WIDE:
            self.telemetry.on_noc_traversal(delay)
        self.banks[bank_id].access(req, now + delay)

    def send_store(self, core: int, addr: int, value, now: int) -> None:
        req = MemRequest(KIND_STORE, addr, 1, core, value=value)
        self.send_to_bank(req, now)

    def send_remote_store(self, src: int, dest: int, offset: int, value,
                          now: int) -> None:
        delay = self.noc.core_delay(src, dest)
        self.count_hops(delay - 1)
        self.post(now + delay,
                  lambda at, d=dest, o=offset, v=value:
                  self.spad_deliver(d, o, [v], False))

    def spad_deliver(self, core: int, offset: int, values: Sequence,
                     is_frame: bool) -> None:
        tile = self.tiles[core]
        tile.spad.deliver(offset, values, is_frame)
        if is_frame and self.telemetry is not None:
            self.telemetry.on_frame_words(
                (core, offset, len(values), self.cycle))
        self.wake_tile(tile, self.cycle)

    # --------------------------------------------------------------- formation
    def vconfig_arrive(self, tile: Tile, handle: int, now: int) -> None:
        desc = self.group_descs.get(handle)
        if desc is None:
            raise DeadlockError(f'vconfig with unknown handle {handle}')
        if tile.core_id not in desc.tiles:
            raise DeadlockError(
                f'core {tile.core_id} ran vconfig for group '
                f'{desc.group_id} it does not belong to')
        from .tile import WAIT_VCONFIG
        tile.state = WAIT_VCONFIG
        desc._arrived.add(tile.core_id)
        if len(desc._arrived) == len(desc.tiles):
            desc._arrived.clear()
            self._form_group(desc, now)

    def _form_group(self, desc: GroupDescriptor, now: int) -> None:
        for i, cid in enumerate(desc.tiles):
            t = self.tiles[cid]
            t.group = desc
            if i == 0:
                t.mode = ROLE_SCALAR
                t.lane_idx = -1
            elif i == 1:
                t.mode = ROLE_EXPANDER
                t.lane_idx = 0
            else:
                t.mode = ROLE_VECTOR
                t.lane_idx = i - 1
            nxt = desc.successor(cid)
            t.successor = self.tiles[nxt] if nxt != -1 else None
            t.group_id_csr = desc.group_id
            t.ngroups_csr = self.num_groups
            t.state = RUN
            t.in_mt = False
            t.pred = True
            t._ready_at = now + 1
            self.wake_tile(t, now + 1)

    # ----------------------------------------------------------------- barrier
    def barrier_arrive(self, tile: Tile, now: int) -> None:
        tile.state = WAIT_BARRIER
        self._check_barrier(now)

    def on_halt(self, tile: Tile, now: int) -> None:
        self._halted_dirty = True
        tile.next_wake = INF
        self._check_barrier(now)

    def _check_barrier(self, now: int) -> None:
        waiting = [t for t in self._active if not t.halted]
        if not waiting:
            return
        if not all(t.state == WAIT_BARRIER for t in waiting):
            return
        # The barrier is also a memory fence: in-flight non-blocking stores
        # and fills must land before dependent kernels start (the paper's
        # kernels are separated by a global barrier, Section 6.1).
        if self._heap:
            recheck = max(t for t, _, _ in self._heap) + 1
            self.post(recheck, self._check_barrier)
            return
        for t in waiting:
            t.state = RUN
            t._ready_at = now + 1
            self.wake_tile(t, now + 1)

    # --------------------------------------------------------------------- run
    def load_program(self, program: Program,
                     active_cores: Optional[Sequence[int]] = None) -> None:
        if active_cores is None:
            active_cores = range(self.cfg.num_cores)
        active = list(active_cores)
        ranks = {cid: i for i, cid in enumerate(active)}
        self._active = []
        for t in self.tiles:
            if t.core_id in ranks:
                t.reset_for_run(program, 0, ranks[t.core_id], len(active))
                self._active.append(t)
            else:
                t.halted = True
                t.next_wake = INF

    def run(self, max_cycles: int = _MAX_DEFAULT) -> RunStats:
        tel = self.telemetry
        sampler = None
        next_sample = INF
        if tel is not None:
            tel.attach(self)  # idempotent; binds the sampler's baselines
            sampler = tel.sampler
            if sampler is not None:
                next_sample = sampler.next_due
        heap = self._heap
        active = [t for t in self._active if not t.halted]
        while active:
            now = min(t.next_wake for t in active)
            if heap and heap[0][0] < now:
                now = heap[0][0]
            if now >= INF:
                if heap:
                    now = heap[0][0]
                else:
                    self._deadlock()
            if now > max_cycles:
                raise SimulationTimeout(
                    f'exceeded {max_cycles} cycles at cycle {self.cycle}')
            self.cycle = now
            if now >= next_sample:
                sampler.take(now)
                next_sample = sampler.next_due
            while heap and heap[0][0] <= now:
                _, _, fn = heapq.heappop(heap)
                fn(now)
            for t in active:
                if t.next_wake <= now and not t.halted:
                    nw = t.step(now)
                    t.next_wake = nw if nw > now else now + 1
            if self._halted_dirty:
                active = [t for t in active if not t.halted]
                self._halted_dirty = False
        self._drain()
        self.run_stats.cycles = self.cycle
        for t in self.tiles:
            # a core issuing at the final cycle index C occupies cycle
            # slot C, so the per-core elapsed count is C+1 slots; this
            # keeps cycles == instrs + stall_total() + idle() exact
            # (the headline run_stats.cycles keeps the last-index form)
            t.stats.cycles = self.cycle + 1
        if tel is not None:
            tel.finalize(self.cycle)
        return self.run_stats

    def _drain(self) -> None:
        """Flush in-flight memory events so final memory state is visible."""
        heap = self._heap
        while heap:
            time, _, fn = heapq.heappop(heap)
            self.cycle = max(self.cycle, time)
            fn(self.cycle)

    def _deadlock(self) -> None:
        lines = ['deadlock: no runnable tile and no pending events']
        for t in self._active:
            if not t.halted:
                lines.append(f'  {t!r} stall={t._stall_cause} '
                             f'inet={len(t.inet_in)} lq={t.lq_count}')
        raise DeadlockError('\n'.join(lines))
