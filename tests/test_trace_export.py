"""Structural validation of the Perfetto (Chrome trace-event) export."""

import json

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import Tracer, small_config
from repro.telemetry import Telemetry, to_chrome_trace, write_chrome_trace


def traced_gemm():
    bench = registry.make('gemm')
    params = bench.params_for('test')
    tel = Telemetry(sample_interval=100)
    tracer = Tracer()
    r = run_benchmark(bench, 'V4', params, base_machine=small_config(),
                      telemetry=tel, tracer=tracer)
    return r, tel, tracer


class TestChromeTrace:
    def setup_method(self):
        self.result, self.tel, self.tracer = traced_gemm()
        self.doc = to_chrome_trace(tracer=self.tracer, telemetry=self.tel)
        self.events = self.doc['traceEvents']

    def test_document_shape(self):
        assert isinstance(self.events, list) and self.events
        assert self.doc['displayTimeUnit'] == 'ms'
        for e in self.events:
            assert 'ph' in e and 'pid' in e
            if e['ph'] in ('X', 'b', 'e', 'C'):
                assert e['ts'] >= 0

    def test_per_core_tracks_with_role_annotations(self):
        names = [e['args']['name'] for e in self.events
                 if e['ph'] == 'M' and e['name'] == 'thread_name']
        joined = ' '.join(names)
        # a V4 run shows the whole group structure in the track names
        assert '[scalar]' in joined
        assert '[expander]' in joined
        assert '[vector]' in joined
        # tracks are per-core and stably sorted
        tids = [e['tid'] for e in self.events
                if e['ph'] == 'M' and e['name'] == 'thread_sort_index']
        assert tids == sorted(tids)

    def test_microthread_complete_events(self):
        mts = [e for e in self.events
               if e['ph'] == 'X' and e.get('cat') == 'microthread']
        assert len(mts) == self.result.stats.total('microthreads')
        for e in mts:
            assert e['dur'] >= 1
            assert 'mt_pc' in e['args']

    def test_frame_async_events_pair_up(self):
        begins = [e for e in self.events
                  if e['ph'] == 'b' and e.get('cat') == 'frame']
        ends = [e for e in self.events
                if e['ph'] == 'e' and e.get('cat') == 'frame']
        assert begins
        assert len(begins) == len(ends)
        end_by_id = {e['id']: e for e in ends}
        for b in begins:
            assert b['id'] in end_by_id
            assert end_by_id[b['id']]['ts'] > b['ts']

    def test_wide_access_async_events(self):
        wides = [e for e in self.events
                 if e['ph'] == 'b' and e.get('cat') == 'wide_access']
        assert len(wides) == self.result.stats.mem.wide_requests
        assert all('per_core_words' in e['args'] for e in wides)

    def test_instruction_events(self):
        instrs = [e for e in self.events
                  if e['ph'] == 'X' and e.get('cat') == 'instr']
        assert len(instrs) == len(self.tracer.entries)
        assert all(e['dur'] == 1 for e in instrs)
        roles = {e['args']['role'] for e in instrs}
        assert 'scalar' in roles and 'vector' in roles

    def test_counter_tracks_from_samples(self):
        counters = [e for e in self.events if e['ph'] == 'C']
        names = {e['name'] for e in counters}
        assert {'cpi_stack', 'llc_occupancy', 'dram_backlog'} <= names
        stacks = [e for e in counters if e['name'] == 'cpi_stack']
        assert sum(e['args']['issued'] for e in stacks) == \
            self.result.stats.total_instrs

    def test_json_serializable_and_loadable(self, tmp_path):
        path = tmp_path / 'trace.json'
        doc = write_chrome_trace(str(path), tracer=self.tracer,
                                 telemetry=self.tel)
        with open(path) as f:
            back = json.load(f)
        assert back == doc
        assert len(back['traceEvents']) == len(self.events)


class TestPartialSources:
    def test_telemetry_only(self):
        _, tel, _ = traced_gemm()
        doc = to_chrome_trace(telemetry=tel)
        phases = {e['ph'] for e in doc['traceEvents']}
        assert 'X' in phases and 'b' in phases and 'C' in phases

    def test_tracer_only(self):
        _, _, tracer = traced_gemm()
        doc = to_chrome_trace(tracer=tracer)
        assert any(e['ph'] == 'X' for e in doc['traceEvents'])

    def test_empty_sources(self):
        doc = to_chrome_trace()
        # just the process-name metadata record
        assert all(e['ph'] == 'M' for e in doc['traceEvents'])
