"""2mm: two chained matrix multiplies (tmp = A.B ; E = tmp.C)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_matmul_like
from .vector_templates import MatTerm, emit_matmul_like


class Mm2(Benchmark):
    name = '2mm'
    test_params = {'ni': 8, 'nj': 16, 'nk': 8, 'nl': 16}
    bench_params = {'ni': 32, 'nj': 32, 'nk': 16, 'nl': 32}

    def setup(self, fabric: Fabric, params) -> Workspace:
        ni, nj, nk, nl = (params[k] for k in ('ni', 'nj', 'nk', 'nl'))
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((ni, nk)))
        self.alloc_np(fabric, ws, 'B', g.random((nk, nj)))
        self.alloc_np(fabric, ws, 'C', g.random((nj, nl)))
        self.alloc_zeros(fabric, ws, 'tmp', ni * nj)
        self.alloc_zeros(fabric, ws, 'E', ni * nl)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        tmp, e = refs.mm2(ws.inputs['A'], ws.inputs['B'], ws.inputs['C'])
        return {'tmp': tmp, 'E': e}

    def _stages(self, ws, params):
        ni, nj, nk, nl = (params[k] for k in ('ni', 'nj', 'nk', 'nl'))
        return [
            dict(ni=ni, nj=nj, nk=nk,
                 terms=[MatTerm(ws.base('A'), nk, ws.base('B'), nj)],
                 out_base=ws.base('tmp'), out_stride=nj),
            dict(ni=ni, nj=nl, nk=nj,
                 terms=[MatTerm(ws.base('tmp'), nj, ws.base('C'), nl)],
                 out_base=ws.base('E'), out_stride=nl),
        ]

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        mb = MimdKernelBuilder()
        for st in self._stages(ws, params):
            mb.add_kernel(lambda a, st=st: mimd_matmul_like(
                a, **st, cfg=fabric.cfg, prefetch=prefetch, pcv=pcv,
                kb=min(4, st['nk'])))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        for i, st in enumerate(self._stages(ws, params)):
            flen, pcv = self.fitted_flen(fabric, vp.lanes, vp.pcv,
                                         st['nj'], ni=st['ni'])
            emit_matmul_like(p, name=f'mm2_{i}', **st, kb=min(4, st['nk']),
                             flen=flen, pcv=pcv)
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        flen = self.flen_for(fabric, lanes, pcv)
        return 4 * flen + 4
