"""First-fit region allocator over the mesh serpentine.

Vector groups need mesh-adjacent tile runs (the inet is a static
neighbour network), and any contiguous run of the serpentine walk is
mesh-adjacent — so the allocator's universe is the serpentine order of
:func:`repro.core.vgroup.serpentine_order`, and a *region* is a
contiguous interval of serpentine positions.  This turns rectangular
carving into one-dimensional first-fit with exact fragmentation
accounting: a request can be blocked either because the fabric is
genuinely full or because the free tiles exist but no run is long
enough (external fragmentation), and the two are counted separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.vgroup import serpentine_order


@dataclass(frozen=True)
class Region:
    """A leased run of the serpentine: ``positions`` are serpentine
    indices, ``core_ids`` the tile ids in path (adjacency) order."""

    start: int
    length: int
    core_ids: Tuple[int, ...]

    @property
    def end(self) -> int:
        return self.start + self.length


@dataclass
class AllocStats:
    """Cumulative allocator accounting for the serving report."""

    allocs: int = 0
    frees: int = 0
    #: alloc attempts that failed although enough tiles were free in
    #: total — the external-fragmentation signature
    frag_failures: int = 0
    #: alloc attempts that failed with genuinely too few free tiles
    capacity_failures: int = 0
    peak_tiles_busy: int = 0


class RegionAllocator:
    """First-fit contiguous carving of a ``width x height`` mesh."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.order = serpentine_order(width, height)
        self.num_tiles = width * height
        # free intervals as (start, length), sorted by start, coalesced
        self._free: List[Tuple[int, int]] = [(0, self.num_tiles)]
        self.stats = AllocStats()

    # ------------------------------------------------------------- accounting
    @property
    def free_tiles(self) -> int:
        return sum(n for _, n in self._free)

    @property
    def busy_tiles(self) -> int:
        return self.num_tiles - self.free_tiles

    @property
    def largest_free_run(self) -> int:
        return max((n for _, n in self._free), default=0)

    def fragmentation(self) -> float:
        """1 - largest_run / free_total; 0 when free space is one run."""
        free = self.free_tiles
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_run / free

    # ------------------------------------------------------------- allocation
    def alloc(self, n: int) -> Optional[Region]:
        """Lease the first free run of at least ``n`` tiles, or None."""
        if n <= 0:
            raise ValueError(f'cannot allocate {n} tiles')
        for i, (start, length) in enumerate(self._free):
            if length >= n:
                if length == n:
                    del self._free[i]
                else:
                    self._free[i] = (start + n, length - n)
                self.stats.allocs += 1
                busy = self.busy_tiles
                if busy > self.stats.peak_tiles_busy:
                    self.stats.peak_tiles_busy = busy
                cores = tuple(self.order[start:start + n])
                return Region(start, n, cores)
        if self.free_tiles >= n:
            self.stats.frag_failures += 1
        else:
            self.stats.capacity_failures += 1
        return None

    def free(self, region: Region) -> None:
        """Return a leased region; adjacent free intervals coalesce."""
        start, length = region.start, region.length
        for s, n in self._free:
            if start < s + n and s < start + length:
                raise ValueError(f'double free of serpentine run '
                                 f'[{start}, {start + length})')
        self._free.append((start, length))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for s, n in self._free:
            if merged and merged[-1][0] + merged[-1][1] == s:
                merged[-1] = (merged[-1][0], merged[-1][1] + n)
            else:
                merged.append((s, n))
        self._free = merged
        self.stats.frees += 1

    def snapshot(self) -> dict:
        """Point-in-time view for reports and debugging."""
        return {'free_tiles': self.free_tiles,
                'busy_tiles': self.busy_tiles,
                'largest_free_run': self.largest_free_run,
                'fragmentation': self.fragmentation(),
                'free_runs': [list(iv) for iv in self._free]}
