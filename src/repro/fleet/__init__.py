"""repro.fleet — a sharded fleet of fabrics behind one front door.

One fabric serves one tenant mix well (``repro.serve``); production
scale means *many* fabrics.  This package runs N fabric **shards** in
parallel worker processes (the :class:`~repro.jobs.SweepEngine` farm,
with dicts on the wire) behind:

* a **router** (:class:`FleetRouter`) — admission control,
  join-shortest-queue routing with job-key affinity, two-level
  backpressure, and epoch-quantized hand-off so every request's global
  latency decomposes exactly into router wait + in-shard phases;
* an **autoscaler** (:class:`Autoscaler`) — grows and shrinks the
  fleet from p99 latency and tile utilization with hysteresis, and
  drains shards gracefully on scale-down (in-flight work always
  finishes);
* **fault tolerance** — a crashed shard's requests are re-routed and
  re-executed bit-identically (sha256 output digests, backed by the
  serving plane's isolated-run equivalence guarantee);
* a schema-checked cross-shard **fleet report** with enforced request-
  and breakdown-conservation invariants, driven by realistic open-loop
  traffic from :func:`repro.serve.open_loop_trace`.

See docs/fleet.md and the ``repro fleet`` CLI.
"""

from .autoscaler import AutoscalePolicy, Autoscaler
from .report import (FLEET_REPORT_KIND, FLEET_REPORT_SCHEMA,
                     FleetInvariantError, build_fleet_report,
                     check_conservation, load_fleet_report,
                     render_fleet_report, validate_fleet_report)
from .router import FleetConfig, FleetEntry, FleetResult, FleetRouter
from .shard import (ACTIVE, DEAD, DRAINING, RETIRED, ShardBatch,
                    ShardPool, output_digest, run_shard_batch)

__all__ = [
    'AutoscalePolicy', 'Autoscaler',
    'FLEET_REPORT_KIND', 'FLEET_REPORT_SCHEMA', 'FleetInvariantError',
    'build_fleet_report', 'check_conservation', 'load_fleet_report',
    'render_fleet_report', 'validate_fleet_report',
    'FleetConfig', 'FleetEntry', 'FleetResult', 'FleetRouter',
    'ACTIVE', 'DEAD', 'DRAINING', 'RETIRED', 'ShardBatch', 'ShardPool',
    'output_digest', 'run_shard_batch',
]
