"""Numpy reference implementations of the PolyBench/GPU kernels (+ bfs).

These define the *semantics* each simulated kernel must reproduce; every
benchmark's correctness test compares simulator memory against these, the
way the paper checks against serial versions (Section 6.1).

Conventions follow PolyBench/GPU: matrices are row-major, convolution
coefficients are the suite's constants.  Deviations (documented in
DESIGN.md) are: 3dconv uses a full 27-tap stencil built from the 2D
coefficient set, and input data comes from a seeded RNG instead of the
suite's index-based initializers.
"""

from __future__ import annotations

import hashlib

import numpy as np

# PolyBench/GPU 2D convolution coefficients
C2D = np.array([[+0.2, -0.3, +0.4],
                [+0.5, +0.6, +0.7],
                [-0.8, -0.9, +0.1]])

# plane weights for our 27-tap 3D variant
PLANE3D = np.array([0.5, 1.0, 0.25])


def rng(name: str) -> np.random.Generator:
    """Deterministic per-benchmark input generator.

    Seeded from a *stable* digest of the benchmark name — Python's
    ``hash(str)`` is randomized per interpreter, which would make input
    data (and thus every fleet output digest and stored result) differ
    between invocations of the same command.
    """
    seed = int.from_bytes(hashlib.sha256(name.encode()).digest()[:4],
                          'little')
    return np.random.default_rng(seed)


def conv2d(a: np.ndarray) -> np.ndarray:
    n, m = a.shape
    out = np.zeros_like(a)
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            out[1:n - 1, 1:m - 1] += (C2D[di + 1, dj + 1] *
                                      a[1 + di:n - 1 + di,
                                        1 + dj:m - 1 + dj])
    return out


def conv3d(a: np.ndarray) -> np.ndarray:
    p, n, m = a.shape
    out = np.zeros_like(a)
    for dk in (-1, 0, 1):
        w = PLANE3D[dk + 1]
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                out[1:p - 1, 1:n - 1, 1:m - 1] += (
                    w * C2D[di + 1, dj + 1] *
                    a[1 + dk:p - 1 + dk, 1 + di:n - 1 + di,
                      1 + dj:m - 1 + dj])
    return out


def mm2(a, b, c):
    """2mm: tmp = A.B ; out = tmp.C"""
    tmp = a @ b
    return tmp, tmp @ c


def mm3(a, b, c, d):
    """3mm: E = A.B ; F = C.D ; G = E.F"""
    e = a @ b
    f = c @ d
    return e, f, e @ f


def atax(a, x):
    tmp = a @ x
    return tmp, a.T @ tmp


def bicg(a, r, p):
    return a.T @ r, a @ p


def correlation(data: np.ndarray):
    m, n = data.shape
    mean = data.mean(axis=0)
    std = data.std(axis=0)
    std = np.where(std <= 0.1, 1.0, std)
    d = (data - mean) / (np.sqrt(float(m)) * std)
    corr = d.T @ d
    np.fill_diagonal(corr, 1.0)
    return corr


def covariance(data: np.ndarray):
    mean = data.mean(axis=0)
    d = data - mean
    return d.T @ d


def fdtd2d(ex, ey, hz, fict, tmax: int):
    ex, ey, hz = ex.copy(), ey.copy(), hz.copy()
    n, m = hz.shape
    for t in range(tmax):
        ey[0, :] = fict[t]
        ey[1:, :] -= 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] -= 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:n - 1, :m - 1] -= 0.7 * (ex[:n - 1, 1:m] - ex[:n - 1, :m - 1] +
                                     ey[1:n, :m - 1] - ey[:n - 1, :m - 1])
    return ex, ey, hz


def gemm(a, b, c, alpha=1.5, beta=1.2):
    return alpha * (a @ b) + beta * c


def gesummv(a, b, x, alpha=1.5, beta=1.2):
    return alpha * (a @ x) + beta * (b @ x)


def gramschmidt(a: np.ndarray):
    """Classic Gram-Schmidt; returns (Q, R, A') with A' fully orthogonalized."""
    a = a.copy()
    m, n = a.shape
    q = np.zeros_like(a)
    r = np.zeros((n, n))
    for k in range(n):
        nrm = float(np.sqrt(np.sum(a[:, k] * a[:, k])))
        r[k, k] = nrm
        q[:, k] = a[:, k] / nrm
        for j in range(k + 1, n):
            r[k, j] = float(q[:, k] @ a[:, j])
            a[:, j] -= q[:, k] * r[k, j]
    return q, r, a


def mvt(a, x1, x2, y1, y2):
    return x1 + a @ y1, x2 + a.T @ y2


def syrk(a, c, alpha=1.5, beta=1.2):
    return beta * c + alpha * (a @ a.T)


def syr2k(a, b, c, alpha=1.5, beta=1.2):
    return beta * c + alpha * (a @ b.T + b @ a.T)


# ------------------------------------------------------------------------- bfs
def synthetic_graph(num_vertices: int, avg_degree: int = 4, seed: int = 7):
    """A deterministic sparse digraph in CSR form, connected from vertex 0.

    Returns ``(row_ptr, col_idx)`` as int lists.  A ring backbone guarantees
    reachability; random extra edges create the irregular degree spread that
    makes bfs hostile to lockstep execution.
    """
    g = np.random.default_rng(seed)
    adj = [set() for _ in range(num_vertices)]
    for v in range(num_vertices):
        adj[v].add((v + 1) % num_vertices)
        extra = int(g.integers(0, max(1, 2 * avg_degree - 1)))
        for _ in range(extra):
            w = int(g.integers(0, num_vertices))
            if w != v:
                adj[v].add(w)
    row_ptr = [0]
    col_idx = []
    for v in range(num_vertices):
        col_idx.extend(sorted(adj[v]))
        row_ptr.append(len(col_idx))
    return row_ptr, col_idx


def bfs_depths(row_ptr, col_idx, source: int = 0):
    n = len(row_ptr) - 1
    depth = [-1] * n
    depth[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        nxt = []
        for v in frontier:
            for e in range(row_ptr[v], row_ptr[v + 1]):
                w = col_idx[e]
                if depth[w] < 0:
                    depth[w] = level + 1
                    nxt.append(w)
        frontier = nxt
        level += 1
    return depth
