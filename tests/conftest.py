"""Shared test fixtures and helpers."""

import pytest

from repro.isa import Assembler, opcodes as op
from repro.manycore import Fabric, small_config


def pack_frame_cfg(frame_size: int, num_slots: int) -> int:
    """Pack frame configuration as the FRAME_CFG CSR expects it."""
    return frame_size | (num_slots << 12)


@pytest.fixture
def small_fabric():
    """A 4x4 fabric with small caches, fresh per test."""
    return Fabric(small_config())


def run_single_core(asm_body, fabric=None, max_cycles=2_000_000):
    """Assemble a program where core 0 runs ``asm_body`` and others halt.

    ``asm_body`` receives the assembler positioned after the dispatch code.
    Returns ``(fabric, stats)``.
    """
    if fabric is None:
        fabric = Fabric(small_config())
    if not fabric.memory:
        fabric.alloc(64)  # scratch region at address 0 for simple tests
    a = Assembler()
    a.csrr('x1', op.CSR_COREID)
    a.beq('x1', 'x0', 'main')
    a.halt()
    a.bind('main')
    asm_body(a)
    a.halt()
    prog = a.finish()
    fabric.load_program(prog)
    stats = fabric.run(max_cycles=max_cycles)
    return fabric, stats
