"""Run benchmarks under configurations and collect results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..kernels.base import Benchmark, VectorParams
from ..manycore import Fabric, MachineConfig, RunStats
from .configs import Config, MetaConfig, get


@dataclass
class RunResult:
    """Everything one simulation produced."""

    benchmark: str
    config: str
    cycles: int
    stats: RunStats
    energy: Optional[object] = None  # EnergyBreakdown, filled by harness

    @property
    def icache_accesses(self) -> int:
        return self.stats.total_icache_accesses

    @property
    def instrs(self) -> int:
        return self.stats.total_instrs


def run_benchmark(bench: Benchmark, config, params: Dict[str, int],
                  base_machine: Optional[MachineConfig] = None,
                  verify: bool = True,
                  active_cores: Optional[Sequence[int]] = None,
                  max_cycles: int = 200_000_000) -> RunResult:
    """Simulate one (benchmark, configuration) pair and verify the output.

    ``config`` may be a name, a :class:`Config`, or a :class:`MetaConfig`
    (in which case members run and the fastest result is returned, renamed).
    """
    if isinstance(config, str):
        config = get(config)
    if isinstance(config, MetaConfig):
        best = None
        errors = []
        for member in config.members:
            try:
                r = run_benchmark(bench, member, params, base_machine,
                                  verify, active_cores, max_cycles)
            except ValueError as exc:  # member infeasible on this machine
                errors.append(f'{member}: {exc}')
                continue
            if best is None or r.cycles < best.cycles:
                best = r
        if best is None:
            raise ValueError(f'no member of {config.name} is runnable: '
                             + '; '.join(errors))
        return RunResult(best.benchmark, config.name, best.cycles,
                         best.stats, best.energy)

    machine = config.machine(base_machine)
    fabric = Fabric(machine)
    ws = bench.setup(fabric, params)
    if config.kind == 'mimd':
        prog = bench.build_mimd(fabric, ws, params,
                                prefetch=config.prefetch, pcv=config.pcv)
        fabric.load_program(prog, active_cores=active_cores)
        stats = fabric.run(max_cycles=max_cycles)
    elif config.kind == 'vector':
        vp = VectorParams(lanes=config.lanes, pcv=config.pcv)
        prog = bench.build_vector(fabric, ws, params, vp)
        fabric.load_program(prog, active_cores=active_cores)
        stats = fabric.run(max_cycles=max_cycles)
    elif config.kind == 'gpu':
        from ..gpu import run_gpu_benchmark
        return run_gpu_benchmark(bench, params, verify=verify)
    else:
        raise ValueError(f'unknown config kind {config.kind!r}')
    if verify:
        bench.verify(fabric, ws, params)
    from ..energy import compute_energy
    energy = compute_energy(stats, machine)
    return RunResult(bench.name, config.name, stats.cycles, stats, energy)
