"""First-order analytical performance model of the SDV fabric.

`repro.model` maps ``(kernel, config)`` to predicted cycles (and energy)
in closed form — no simulation in the loop — so design-space exploration
can triage hundreds of configurations per second and reserve the
discrete simulator for the points that matter (see :mod:`repro.dse`).

Structure:

* :mod:`~repro.model.workload` — per-kernel operation counts derived
  from the same template geometry the code generator uses (tiles,
  frames, scalar-stream and microthread instruction counts, response
  packets, memory footprint).
* :mod:`~repro.model.analytic` — turns a workload into a feature
  vector (compute critical path, frame-fill latency over the
  frame-counter depth, LLC bank serialization, DRAM bandwidth roof,
  MIMD phases, per-phase launch/barrier overhead) and dots it with
  per-kernel coefficients.
* :mod:`~repro.model.calibrate` — fits those coefficients against
  discrete-simulator ground truth gathered via :mod:`repro.jobs`
  sweeps and emits a schema-checked ``CALIB_*.json`` artifact.
"""

from .analytic import (AnalyticModel, FEATURES, ModelError,
                       UnsupportedConfigError, InfeasiblePointError,
                       Prediction, compute_features)
from .calibrate import (CALIB_KIND, CALIB_SCHEMA_VERSION, calib_path,
                        calibration_specs, fit_coefficients, run_calibration,
                        build_calib_report, validate_calib_report,
                        save_calib_report, load_calib_report,
                        render_calib_report, DEFAULT_KERNELS)
from .workload import MODELED_KERNELS, build_workload, Workload

__all__ = [
    'AnalyticModel', 'FEATURES', 'ModelError', 'UnsupportedConfigError',
    'InfeasiblePointError', 'Prediction', 'compute_features',
    'CALIB_KIND', 'CALIB_SCHEMA_VERSION', 'calib_path', 'calibration_specs',
    'fit_coefficients', 'run_calibration', 'build_calib_report',
    'validate_calib_report', 'save_calib_report', 'load_calib_report',
    'render_calib_report', 'DEFAULT_KERNELS',
    'MODELED_KERNELS', 'build_workload', 'Workload',
]
