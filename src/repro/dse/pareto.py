"""Pareto-frontier extraction over minimization objectives.

Plain O(n^2) dominance filtering: the spaces we triage are hundreds of
points, objective vectors are length 3, and a stable deterministic
answer matters more than asymptotics here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and better
    somewhere (all objectives minimized)."""
    if len(a) != len(b):
        raise ValueError(f'objective vectors differ in length: '
                         f'{len(a)} vs {len(b)}')
    no_worse = all(x <= y for x, y in zip(a, b))
    better = any(x < y for x, y in zip(a, b))
    return no_worse and better


def pareto_frontier(objectives: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, in input order.

    Duplicate objective vectors are all kept (none dominates another),
    so the frontier is stable under reordering of equal points.
    """
    n = len(objectives)
    keep: List[int] = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if j != i and dominates(objectives[j], objectives[i]):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return keep
