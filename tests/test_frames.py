"""Unit + property tests for the DAE frame queue (paper Section 3.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.frames import FrameQueue, FrameWindowOverflow


def fill_frame(fq, seq):
    off = fq.slot_offset(seq)
    for i in range(fq.frame_size):
        fq.word_arrived(off + i)


class TestFrameQueueBasics:
    def test_initial_state(self):
        fq = FrameQueue(base=0, frame_size=4, num_slots=8)
        assert fq.head == 0
        assert not fq.head_ready()
        assert fq.open_frames() == 0

    def test_fill_and_ready(self):
        fq = FrameQueue(0, 4, 8)
        fill_frame(fq, 0)
        assert fq.head_ready()
        assert fq.head_offset() == 0

    def test_partial_fill_not_ready(self):
        fq = FrameQueue(0, 4, 8)
        fq.word_arrived(0)
        fq.word_arrived(1)
        assert not fq.head_ready()

    def test_out_of_order_within_frame(self):
        fq = FrameQueue(0, 4, 8)
        for off in [3, 0, 2, 1]:
            fq.word_arrived(off)
        assert fq.head_ready()

    def test_free_head_advances(self):
        fq = FrameQueue(0, 4, 8)
        fill_frame(fq, 0)
        fq.free_head()
        assert fq.head == 1
        assert fq.head_offset() == 4

    def test_free_unready_head_raises(self):
        fq = FrameQueue(0, 4, 8)
        with pytest.raises(FrameWindowOverflow, match='remem'):
            fq.free_head()

    def test_counter_shift_on_free(self):
        fq = FrameQueue(0, 4, 8, num_counters=5)
        fill_frame(fq, 0)
        fq.word_arrived(fq.slot_offset(1))  # one word of frame 1
        fq.free_head()
        assert fq.counters[0] == 1
        assert fq.counters[-1] == 0

    def test_interleaved_arrival_across_frames(self):
        fq = FrameQueue(0, 2, 8)
        fq.word_arrived(fq.slot_offset(1))  # frame 1 first
        fq.word_arrived(fq.slot_offset(0))
        fq.word_arrived(fq.slot_offset(0) + 1)
        assert fq.head_ready()
        fq.free_head()
        fq.word_arrived(fq.slot_offset(1) + 1)
        assert fq.head_ready()

    def test_window_overflow_detected(self):
        fq = FrameQueue(0, 2, 8, num_counters=3)
        # frame 3 is outside the 3-frame window [0, 3)
        with pytest.raises(FrameWindowOverflow):
            fq.word_arrived(fq.slot_offset(3))

    def test_overfill_detected(self):
        fq = FrameQueue(0, 2, 8)
        fill_frame(fq, 0)
        with pytest.raises(FrameWindowOverflow, match='more than'):
            fq.word_arrived(0)

    def test_wraparound_slots(self):
        fq = FrameQueue(0, 4, 5, num_counters=5)
        for seq in range(12):
            fill_frame(fq, seq)
            assert fq.head_ready()
            assert fq.head_offset() == (seq % 5) * 4
            fq.free_head()
        assert fq.frames_freed == 12

    def test_base_offset_respected(self):
        fq = FrameQueue(base=100, frame_size=4, num_slots=8)
        assert fq.slot_offset(0) == 100
        assert fq.slot_offset(1) == 104
        fq.word_arrived(100)
        assert fq.counters[0] == 1

    def test_offset_outside_region_rejected(self):
        fq = FrameQueue(0, 4, 8)
        with pytest.raises(ValueError):
            fq.word_arrived(32)

    def test_too_few_slots_rejected(self):
        with pytest.raises(ValueError, match='slots'):
            FrameQueue(0, 4, 3, num_counters=5)

    def test_zero_frame_size_rejected(self):
        with pytest.raises(ValueError):
            FrameQueue(0, 0, 8)


class TestFrameQueueProperties:
    @given(frame_size=st.integers(1, 16), num_slots=st.integers(5, 12),
           nframes=st.integers(1, 40), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_in_order_consumption_any_arrival_order(self, frame_size,
                                                    num_slots, nframes, data):
        """Frames are consumed in creation order no matter how words arrive
        within the window."""
        fq = FrameQueue(0, frame_size, num_slots, num_counters=5)
        outstanding = []  # words not yet delivered, per open frame
        next_frame = 0
        freed = 0
        while freed < nframes:
            can_open = (next_frame < nframes and
                        next_frame - fq.head < fq.num_counters)
            choices = []
            if can_open:
                choices.append('open')
            if outstanding:
                choices.append('deliver')
            action = data.draw(st.sampled_from(choices))
            if action == 'open':
                words = [fq.slot_offset(next_frame) + i
                         for i in range(frame_size)]
                outstanding.append(words)
                next_frame += 1
            else:
                fi = data.draw(st.integers(0, len(outstanding) - 1))
                words = outstanding[fi]
                wi = data.draw(st.integers(0, len(words) - 1))
                fq.word_arrived(words.pop(wi))
                if not words:
                    outstanding.remove(words)
            while fq.head_ready() and (not outstanding or
                                       fq.head < fq.head + 1):
                # consume head frames as they complete, in order
                expected_offset = (freed % num_slots) * frame_size
                assert fq.head_offset() == expected_offset
                fq.free_head()
                freed += 1
                if freed >= nframes:
                    break

    @given(st.integers(1, 8), st.integers(5, 10))
    @settings(max_examples=30, deadline=None)
    def test_total_words_conserved(self, frame_size, num_slots):
        fq = FrameQueue(0, frame_size, num_slots)
        for seq in range(7):
            fill_frame(fq, seq)
            fq.free_head()
        assert fq.total_words == 7 * frame_size
