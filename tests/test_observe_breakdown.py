"""Per-request causal tracing: exact breakdown conservation.

Acceptance: for every completed request, the sum of attributed phases
plus the ``unattributed`` residual equals the end-to-end latency, the
schema-checked report carries the breakdown, and the SLO section
evaluates against the summary.
"""

import json

import pytest

from repro.kernels import registry
from repro.manycore import Fabric
from repro.observe import (BREAKDOWN_PHASES, ObservePlane, SloPolicy,
                           breakdown_total)
from repro.serve import (DONE, KernelRequest, ServeScheduler,
                         build_serve_report, generate_trace,
                         render_serve_report, validate_serve_report)


@pytest.fixture(scope='module')
def served():
    """One observed serving run with queueing pressure (not cheap)."""
    requests = generate_trace(seed=8, n_requests=6, scale='test',
                              mean_interarrival=500)
    fabric = Fabric()
    plane = ObservePlane(snapshot_interval=2000)
    plane.attach(fabric)
    result = ServeScheduler(fabric).run(requests)
    return fabric, plane, result


class TestBreakdownConservation:
    def test_every_completed_request_conserves_cycles(self, served):
        _, _, result = served
        completed = [r for r in result.requests if r.state == DONE]
        assert completed, 'fixture produced no completed requests'
        for r in completed:
            b = r.breakdown
            assert b is not None
            assert set(b) == set(BREAKDOWN_PHASES)
            assert all(v >= 0 for v in b.values()), (r.req_id, b)
            assert breakdown_total(b) == r.latency, (r.req_id, b)
            assert b['queue'] == r.queue_wait

    def test_rtrace_counters_populated(self, served):
        _, _, result = served
        for r in result.requests:
            if r.state != DONE:
                continue
            rt = r._rtrace
            assert rt is not None and rt.req_id == r.req_id
            assert rt.formations >= 1  # the group formed at least once
            assert rt.wide_issued > 0 or rt.llc_accesses > 0
            assert rt.lead_wait_from is None  # no dangling episode
            d = rt.to_dict()
            assert d['req_id'] == r.req_id

    def test_report_carries_breakdowns_and_totals(self, served):
        _, plane, result = served
        policy = SloPolicy({'latency_p99': {'warn': 1, 'fail': 10 ** 9},
                            'rejected': {'fail': 0},
                            'tile_utilization': {'warn': 0.01,
                                                 'kind': 'min'}})
        doc = build_serve_report(result, seed=8, slo=policy,
                                 observe=plane)
        validate_serve_report(doc)
        for rec in doc['requests']:
            if rec['state'] == DONE:
                b = rec['breakdown']
                assert sum(b[p] for p in BREAKDOWN_PHASES) == \
                    rec['latency']
        totals = doc['summary']['breakdown_totals']
        assert set(totals) == set(BREAKDOWN_PHASES)
        assert 'unattributed' in totals  # residual surfaced, not dropped
        assert sum(totals.values()) == sum(
            rec['latency'] for rec in doc['requests']
            if 'breakdown' in rec)
        assert doc['slo']['status'] in ('pass', 'warn', 'fail')
        assert doc['observability']['snapshots'] == plane.snapshots
        text = render_serve_report(doc)
        assert 'cycle attribution' in text and 'SLO' in text

    def test_summary_has_p99_and_utilization(self, served):
        _, plane, result = served
        doc = build_serve_report(result, observe=plane)
        s = doc['summary']
        assert s['latency_p99'] >= s['latency_p95'] >= s['latency_p50']
        assert 0.0 < s['tile_utilization'] <= 1.0


def test_killed_request_still_conserves():
    params = registry.make('gesummv').params_for('test')
    req = KernelRequest(req_id=0, kernel='gesummv', params=params,
                        lanes=4, groups=1, arrival=0, timeout=300)
    fabric = Fabric()
    result = ServeScheduler(fabric).run([req])
    r = result.requests[0]
    assert r.state == 'timed-out'
    assert r.breakdown is not None
    assert breakdown_total(r.breakdown) == r.latency


def test_unattributed_residual_in_runstats():
    from repro.manycore.stats import CoreStats, RunStats
    rs = RunStats()
    rs.cores[0] = CoreStats(cycles=100, instrs=40, stall_frame=10)
    rs.cores[1] = CoreStats(cycles=100, instrs=90)
    assert rs.unattributed() == 60
    assert 'unattributed cycles: 60' in rs.summary()
    merged = RunStats.merge([rs, rs])
    assert merged.unattributed() == 120


def test_cli_slo_exit_codes(tmp_path, capsys):
    from repro.__main__ import main
    slo_fail = tmp_path / 'fail.json'
    slo_fail.write_text(json.dumps({'latency_p99': {'fail': 10}}))
    slo_pass = tmp_path / 'pass.json'
    slo_pass.write_text(json.dumps({'latency_p99': {'fail': 10 ** 9}}))
    metrics = tmp_path / 'm.jsonl'
    base = ['serve', '--seed', '8', '--requests', '3', '--scale', 'test']
    assert main(base + ['--slo', str(slo_pass),
                        '--metrics-out', str(metrics)]) == 0
    capsys.readouterr()
    lines = [json.loads(ln) for ln in
             metrics.read_text().splitlines()]
    assert lines and 'metrics' in lines[0]
    assert lines[-1].get('final') and 'heatmaps' in lines[-1]
    assert main(base + ['--slo', str(slo_fail)]) == 2
    capsys.readouterr()
    bad = tmp_path / 'bad.json'
    bad.write_text('{"no_such_metric": {"fail": 1}}')
    assert main(base + ['--slo', str(bad)]) == 2
    capsys.readouterr()
