"""syr2k: symmetric rank-2K update, C = beta*C + alpha*(A.B^T + B.A^T).

Two product terms per output element; both transposes are materialized by
a MIMD pre-kernel (paper's transpose memory optimization).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_matmul_like, mimd_transpose
from .vector_templates import MatTerm, emit_matmul_like

ALPHA = 1.5
BETA = 1.2


class Syr2k(Benchmark):
    name = 'syr2k'
    test_params = {'n': 16, 'm': 8}
    bench_params = {'n': 64, 'm': 12}  # n % 64 == 0 for long lines

    def setup(self, fabric: Fabric, params) -> Workspace:
        n, m = params['n'], params['m']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((n, m)))
        self.alloc_np(fabric, ws, 'B', g.random((n, m)))
        self.alloc_np(fabric, ws, 'C', g.random((n, n)))
        self.alloc_zeros(fabric, ws, 'AT', m * n)
        self.alloc_zeros(fabric, ws, 'BT', m * n)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        c = refs.syr2k(ws.inputs['A'], ws.inputs['B'], ws.inputs['C'],
                       ALPHA, BETA)
        return {'C': c}

    def _main(self, ws, params):
        n, m = params['n'], params['m']
        return dict(ni=n, nj=n, nk=m,
                    terms=[MatTerm(ws.base('A'), m, ws.base('BT'), n),
                           MatTerm(ws.base('B'), m, ws.base('AT'), n)],
                    out_base=ws.base('C'), out_stride=n,
                    alpha=ALPHA, beta=BETA)

    def _transposes(self, ws, params):
        n, m = params['n'], params['m']
        return [dict(src=ws.base('A'), dst=ws.base('AT'), n=n, m=m),
                dict(src=ws.base('B'), dst=ws.base('BT'), n=n, m=m)]

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        mb = MimdKernelBuilder()
        for tr in self._transposes(ws, params):
            mb.add_kernel(lambda a, tr=tr: mimd_transpose(a, **tr))
        st = self._main(ws, params)
        mb.add_kernel(lambda a: mimd_matmul_like(
            a, **st, cfg=fabric.cfg, prefetch=prefetch, pcv=pcv,
            kb=min(4, st['nk'])))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        for tr in self._transposes(ws, params):
            p.mimd_phase(lambda a, tr=tr: mimd_transpose(a, **tr))
        st = self._main(ws, params)
        flen, pcv = self.fitted_flen(fabric, vp.lanes, vp.pcv, st['nj'],
                                     ni=st['ni'])
        emit_matmul_like(p, name='syr2k', **st, kb=min(4, st['nk']),
                         flen=flen, pcv=pcv)
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        # two terms: 2*(kb*flen) group words + 2*kb broadcast words
        return 2 * 4 * self.flen_for(fabric, lanes, pcv) + 2 * 4
