"""Unit tests: span model, flight journal, continuity, merged trace."""

import json

import pytest

from repro.flight import (JournalError, check_continuity,
                          make_span, merged_chrome_trace, read_journal,
                          render_tree, shard_track, write_journal)
from repro.flight.merge import PID_ROUTER, PID_SHARD_BASE


def _rerouted_trace(tid='0000002a-00000001'):
    """The canonical crash-reroute story: queue -> exec (crashed) ->
    reroute wait -> exec on the replacement shard, phases inside."""
    spans = [
        make_span(tid, f'{tid}/root', 'request', 'request', 'router',
                  0, 900, attrs={'req_id': 1, 'kernel': 'mvt',
                                 'rerouted': True}),
        make_span(tid, f'{tid}/q1', 'router.queue', 'router_queue',
                  'router', 0, 100, parent_id=f'{tid}/root'),
        make_span(tid, f'{tid}/x1', 'shard1.exec', 'shard_exec',
                  shard_track(1), 100, 400, parent_id=f'{tid}/root',
                  attrs={'crashed': True}),
        make_span(tid, f'{tid}/q2', 'router.requeue', 'reroute_wait',
                  'router', 400, 500, parent_id=f'{tid}/root'),
        make_span(tid, f'{tid}/x2', 'shard0.exec', 'shard_exec',
                  shard_track(0), 500, 900, parent_id=f'{tid}/root'),
        make_span(tid, f'{tid}/x2.p0', 'queue', 'phase', shard_track(0),
                  500, 600, parent_id=f'{tid}/x2'),
        make_span(tid, f'{tid}/x2.p1', 'execute', 'phase',
                  shard_track(0), 600, 900, parent_id=f'{tid}/x2'),
    ]
    return tid, spans


class TestSpans:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_span('t', 't/x', 'n', 'not-a-kind', 'router', 0)

    def test_open_span_has_null_end(self):
        s = make_span('t', 't/x', 'n', 'shard_exec', shard_track(2), 10)
        assert s['end'] is None
        assert s['track'] == 'shard:2'


class TestJournal:
    def test_roundtrip(self, tmp_path):
        tid, spans = _rerouted_trace()
        anomalies = [{'t': 450, 'signal': 'queue_depth', 'value': 9.0,
                      'mean': 1.0, 'std': 0.5, 'z': 16.0}]
        path = str(tmp_path / 'FLIGHT_t.jsonl')
        header = write_journal(path, spans, anomalies, label='t')
        assert header['kind'] == 'repro-flight-journal'
        assert header['provenance']['code_version_hash']
        got_header, got_spans, got_anoms = read_journal(path)
        assert got_header['label'] == 't'
        assert got_spans == spans
        assert got_anoms == anomalies

    def test_rejects_missing_header(self, tmp_path):
        path = str(tmp_path / 'bad.jsonl')
        with open(path, 'w') as f:
            f.write(json.dumps({'type': 'span'}) + '\n')
        with pytest.raises(JournalError, match='header'):
            read_journal(path)

    def test_rejects_wrong_schema_version(self, tmp_path):
        path = str(tmp_path / 'bad.jsonl')
        with open(path, 'w') as f:
            f.write(json.dumps({'type': 'header',
                                'kind': 'repro-flight-journal',
                                'schema_version': 99}) + '\n')
        with pytest.raises(JournalError, match='schema_version'):
            read_journal(path)

    def test_rejects_malformed_span_and_unknown_type(self, tmp_path):
        tid, spans = _rerouted_trace()
        path = str(tmp_path / 'bad.jsonl')
        write_journal(path, spans[:1])
        with open(path, 'a') as f:
            f.write(json.dumps({'type': 'span', 'trace_id': 't'}) + '\n')
        with pytest.raises(JournalError, match='missing'):
            read_journal(path)
        write_journal(path, spans[:1])
        with open(path, 'a') as f:
            f.write(json.dumps({'type': 'mystery'}) + '\n')
        with pytest.raises(JournalError, match='unknown record type'):
            read_journal(path)

    def test_rejects_non_json_and_empty(self, tmp_path):
        path = str(tmp_path / 'bad.jsonl')
        with open(path, 'w') as f:
            f.write('not json\n')
        with pytest.raises(JournalError, match='not JSON'):
            read_journal(path)
        with open(path, 'w') as f:
            f.write('')
        with pytest.raises(JournalError, match='empty'):
            read_journal(path)


class TestContinuity:
    def test_rerouted_trace_is_one_continuous_trace(self):
        tid, spans = _rerouted_trace()
        verdicts = check_continuity(spans)
        v = verdicts[tid]
        assert v['continuous']
        assert v['gaps'] == []
        # the acceptance-criterion shape: router plus both shards
        assert v['tracks'] == ['router', 'shard:0', 'shard:1']

    def test_gap_detected(self):
        tid, spans = _rerouted_trace()
        spans = [s for s in spans if s['span_id'] != f'{tid}/q2']
        v = check_continuity(spans)[tid]
        assert not v['continuous']
        assert v['gaps'] == [(400, 500)]

    def test_tail_gap_detected(self):
        tid, spans = _rerouted_trace()
        spans = [s for s in spans if s['span_id'] != f'{tid}/x2']
        v = check_continuity(spans)[tid]
        assert not v['continuous']
        assert (500, 900) in v['gaps']  # coverage stops at q2's end

    def test_open_root_and_missing_root_flagged(self):
        tid, spans = _rerouted_trace()
        open_root = [dict(spans[0], end=None)] + spans[1:]
        assert check_continuity(open_root)[tid]['error'] == \
            'open root span'
        no_root = spans[1:]
        assert 'root span' in check_continuity(no_root)[tid]['error']

    def test_phases_do_not_mask_exec_gaps(self):
        # phase leaves cover 500..900, but removing the exec span that
        # owns them must still read as a gap — phases are excluded from
        # the top-level tiling
        tid, spans = _rerouted_trace()
        spans = [s for s in spans if s['span_id'] != f'{tid}/x2']
        assert not check_continuity(spans)[tid]['continuous']


class TestMergedTrace:
    def test_process_layout_and_async_pairing(self):
        tid, spans = _rerouted_trace()
        doc = merged_chrome_trace(spans, label='t')
        events = doc['traceEvents']
        names = {e['args']['name']: e['pid'] for e in events
                 if e['ph'] == 'M' and e['name'] == 'process_name'}
        assert names['fleet router'] == PID_ROUTER
        assert names['shard 0'] == PID_SHARD_BASE
        assert names['shard 1'] == PID_SHARD_BASE + 1
        begins = [e for e in events if e['ph'] == 'b']
        ends = [e for e in events if e['ph'] == 'e']
        assert len(begins) == len(ends) == 5  # root, q1, x1, q2, x2
        assert all(e['id'] == tid for e in begins)
        # exec fragments land in their shard's process group
        exec_pids = {e['pid'] for e in begins
                     if e['args']['span_kind'] == 'shard_exec'}
        assert exec_pids == {PID_SHARD_BASE, PID_SHARD_BASE + 1}
        # phases are complete events nested in the exec window
        phases = [e for e in events if e.get('cat') == 'phase']
        assert [p['name'] for p in phases] == ['queue', 'execute']
        assert all(p['ph'] == 'X' for p in phases)

    def test_anomalies_annotate_the_trace(self):
        tid, spans = _rerouted_trace()
        doc = merged_chrome_trace(
            spans, [{'t': 450, 'signal': 'latency_p99', 'z': 5.0}])
        marks = [e for e in doc['traceEvents'] if e['ph'] == 'i']
        assert len(marks) == 1
        assert marks[0]['name'] == 'anomaly:latency_p99'
        assert marks[0]['ts'] == 450
        assert marks[0]['args']['z'] == 5.0

    def test_document_form(self):
        _, spans = _rerouted_trace()
        doc = merged_chrome_trace(spans)
        assert doc['displayTimeUnit'] == 'ms'
        assert doc['otherData']['producer'] == 'repro.flight'
        json.dumps(doc)  # must be serializable as-is


class TestRenderTree:
    def test_tree_nests_by_parent(self):
        tid, spans = _rerouted_trace()
        text = render_tree(spans, tid)
        lines = text.splitlines()
        assert lines[0] == f'trace {tid}:'
        root_depth = len(lines[1]) - len(lines[1].lstrip())
        q_line = next(l for l in lines if 'router.queue' in l)
        p_line = next(l for l in lines if 'execute' in l
                      and '[phase]' in l)
        assert (len(q_line) - len(q_line.lstrip())) > root_depth
        assert (len(p_line) - len(p_line.lstrip())) > \
            (len(q_line) - len(q_line.lstrip()))

    def test_unknown_trace(self):
        assert 'no spans' in render_tree([], 'nope')
