"""The benchmark configuration registry (paper Table 3).

==============  =====  =====  ======  ====  =====
config          group  SIMD   wide    DAE   long
name            size   words  access        lines
==============  =====  =====  ======  ====  =====
NV              1      1
NV_PF           1      1      x
PCV_PF          1      4      x
V4              4      1      x       x
V16             16     1      x       x
V4_PCV          4      4      x       x
V16_PCV         16     4      x       x
V4_LL_PCV       4      4      x       x     x
V16_LL          16     1      x       x     x
V16_LL_PCV      16     4      x       x     x
BEST_V          4/16   1      x       x     ?
BEST_V_PCV      4/16   4      x       x     ?
GPU             --     16
==============  =====  =====  ======  ====  =====

``BEST_V``/``BEST_V_PCV`` are meta-configurations: the harness runs the
member configurations and keeps the fastest, as the paper does
(Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..manycore import DEFAULT_CONFIG, MachineConfig

#: cache line used by the long-lines (LL) experiments.  The paper uses
#: 1024 B; our scaled inputs use 256 B to keep chunk spans smaller than
#: the (scaled) rows.  See EXPERIMENTS.md.
LONG_LINE_BYTES = 256


@dataclass(frozen=True)
class Config:
    """One runnable configuration."""

    name: str
    kind: str  # 'mimd' | 'vector' | 'gpu'
    prefetch: bool = False
    pcv: bool = False
    lanes: int = 0
    long_lines: bool = False

    def machine(self, base: Optional[MachineConfig] = None) -> MachineConfig:
        cfg = base or DEFAULT_CONFIG
        if self.long_lines:
            cfg = cfg.scaled(cache_line_bytes=LONG_LINE_BYTES)
        return cfg


@dataclass(frozen=True)
class MetaConfig:
    """Pick the fastest among member configurations (BEST_V style)."""

    name: str
    members: Tuple[str, ...]


NV = Config('NV', 'mimd')
NV_PF = Config('NV_PF', 'mimd', prefetch=True)
PCV_PF = Config('PCV_PF', 'mimd', prefetch=True, pcv=True)
V4 = Config('V4', 'vector', lanes=4)
V16 = Config('V16', 'vector', lanes=16)
V4_PCV = Config('V4_PCV', 'vector', lanes=4, pcv=True)
V16_PCV = Config('V16_PCV', 'vector', lanes=16, pcv=True)
V4_LL = Config('V4_LL', 'vector', lanes=4, long_lines=True)
V4_LL_PCV = Config('V4_LL_PCV', 'vector', lanes=4, pcv=True,
                   long_lines=True)
V16_LL = Config('V16_LL', 'vector', lanes=16, long_lines=True)
V16_LL_PCV = Config('V16_LL_PCV', 'vector', lanes=16, pcv=True,
                    long_lines=True)
GPU = Config('GPU', 'gpu')

BEST_V = MetaConfig('BEST_V', ('V4', 'V16'))
BEST_V_LL = MetaConfig('BEST_V_LL', ('V4', 'V16', 'V16_LL'))
BEST_V_PCV = MetaConfig('BEST_V_PCV', ('V4_PCV', 'V16_PCV'))

CONFIGS = {c.name: c for c in [NV, NV_PF, PCV_PF, V4, V16, V4_PCV,
                               V16_PCV, V4_LL, V4_LL_PCV, V16_LL,
                               V16_LL_PCV, GPU]}
META_CONFIGS = {m.name: m for m in [BEST_V, BEST_V_LL, BEST_V_PCV]}


def get(name: str):
    if name in CONFIGS:
        return CONFIGS[name]
    if name in META_CONFIGS:
        return META_CONFIGS[name]
    raise KeyError(f'unknown configuration {name!r}')
