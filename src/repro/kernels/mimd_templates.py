"""MIMD kernel templates: the NV / NV_PF / PCV_PF configurations.

These mirror :mod:`repro.kernels.vector_templates` for independent-mode
execution (paper Table 3):

* **NV** — plain word loads through the 2-entry load queue (loads are
  interleaved in pairs so the baseline exploits what MLP the queue allows).
* **NV_PF** — the competitive baseline: SELF ``vload``s prefetch full cache
  lines into the core's own frame queue, approximating Celerity's
  non-blocking loads (paper Section 6.2).
* **PCV** — adds the per-core 4-wide SIMD unit to the PF variants.

All templates expect ``x1 = tid`` / ``x2 = ncores`` (as emitted by
``MimdKernelBuilder`` or ``VectorProgram.mimd_phase``) and partition work by
flattened strided tiles.  Register budget: x3..x17 template-internal,
f1..f7 scratch, f8..f23 accumulators, f24..f27 constants.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..isa import Assembler, VL_SELF, opcodes as op
from .codegen import SelfDaeStream, pack_frame_cfg
from .vector_templates import (MatTerm, StencilSection, emit_fconst,
                               emit_fp_zero)


def _strided_tiles(a: Assembler, total: int, counter: str = 'x3'):
    """for t in range(tid, total, ncores)."""
    from contextlib import contextmanager

    @contextmanager
    def _loop():
        a.mv(counter, 'x1')
        top = a.label()
        end = a.label()
        a.bind(top)
        a.li('x31', total)
        a.bge(counter, 'x31', end.name)
        yield
        a.add(counter, counter, 'x2')
        a.j(top.name)
        a.bind(end)

    return _loop()


def _emit_tile_coords(a: Assembler, njc: int, t_reg: str = 'x3',
                      i_reg: str = 'x4', jc_reg: str = 'x5') -> None:
    """i = t // njc ; jc_idx = t % njc."""
    a.li('x31', njc)
    a.div(i_reg, t_reg, 'x31')
    a.rem(jc_reg, t_reg, 'x31')


def _setup_consts(a: Assembler, alpha: float, beta: float) -> None:
    if alpha != 1.0:
        emit_fconst(a, 'f24', alpha)
    if beta and beta != 1.0:
        emit_fconst(a, 'f25', beta)


def _combine_and_store(a: Assembler, cw: int, out_addr: str, alpha: float,
                       beta: float, acc0: int = 8) -> None:
    """out[f] = alpha*acc[f] + beta*old[f] for f in [0, cw)."""
    for f in range(cw):
        if alpha != 1.0:
            a.fmul(f'f{acc0 + f}', f'f{acc0 + f}', 'f24')
        if beta:
            a.lw('f1', out_addr, f)
            if beta != 1.0:
                a.fmul('f1', 'f1', 'f25')
            a.fadd(f'f{acc0 + f}', f'f{acc0 + f}', 'f1')
        a.sw(f'f{acc0 + f}', out_addr, f)


# ------------------------------------------------------------------- transpose
def mimd_transpose(a: Assembler, *, src: int, dst: int, n: int,
                   m: int) -> None:
    """dst[j][i] = src[i][j] for an n x m source (the paper's "Transpose"
    memory optimization, run as a MIMD pre-kernel)."""
    with _strided_tiles(a, n):
        # x3 = source row i
        a.li('x4', m)
        a.mul('x4', 'x4', 'x3')
        a.li('x5', src)
        a.add('x4', 'x4', 'x5')      # &src[i][0]
        a.li('x6', dst)
        a.add('x6', 'x6', 'x3')      # &dst[0][i]
        with a.for_range('x7', 0, m):
            a.lw('f1', 'x4', 0)
            a.sw('f1', 'x6', 0)
            a.addi('x4', 'x4', 1)
            a.addi('x6', 'x6', n)


# ------------------------------------------------------------------ matmul-like
def mimd_matmul_like(a: Assembler, *, ni: int, nj: int, nk: int,
                     terms: Sequence[MatTerm], out_base: int,
                     out_stride: int, alpha: float = 1.0, beta: float = 0.0,
                     cfg=None, prefetch: bool = False, pcv: bool = False,
                     kb: int = 4) -> None:
    """out[i][j] = alpha*sum_k sum_t bcast_t[i][k]*group_t[k][j] + beta*old.

    Each core owns strided (i, column-chunk) tiles; chunk width is one
    cache line.  ``prefetch`` selects the NV_PF frame pipeline; ``pcv``
    additionally uses the 4-wide SIMD unit for the inner products.
    """
    cw = cfg.line_words
    sw = cfg.simd_width
    if nj % cw or nk % kb:
        raise ValueError(f'matmul: nj={nj} %% {cw} or nk={nk} %% {kb} != 0')
    njc = nj // cw
    total = ni * njc
    nterms = len(terms)
    g_sec = kb * cw
    b_sec = nterms * g_sec
    _setup_consts(a, alpha, beta)

    stream = None
    if prefetch:
        frame_words = nterms * (g_sec + kb)
        slots = max(cfg.frame_counters, cfg.spad_words // (2 * frame_words))
        slots = min(slots, 8)
        stream = SelfDaeStream(frame_words, slots, cfg.frame_counters - 2)
        stream.emit_config(a)

    with _strided_tiles(a, total):
        _emit_tile_coords(a, njc)
        # x6+t = group stream addr; x10+t = bcast stream addr
        a.li('x30', cw)
        a.mul('x30', 'x30', 'x5')
        for t, term in enumerate(terms):
            a.li(f'x{6 + t}', term.group_base)
            a.add(f'x{6 + t}', f'x{6 + t}', 'x30')
            a.li(f'x{10 + t}', term.bcast_base)
            if term.bcast_stride:
                a.li('x31', term.bcast_stride)
                a.mul('x31', 'x31', 'x4')
                a.add(f'x{10 + t}', f'x{10 + t}', 'x31')
        if pcv:
            for v in range(cw // sw):
                a.vbcast(f'v{v}', 'x0')  # zero accumulators
        else:
            emit_fp_zero(a, 'f1')
            for f in range(cw):
                a.mv(f'f{8 + f}', 'f1')

        if not prefetch:
            # NV: word loads, paired for what MLP the load queue allows
            with a.for_count('x14', nk):
                for t, term in enumerate(terms):
                    a.lw('f2', f'x{10 + t}', 0)
                    for f in range(0, cw, 2):
                        a.lw('f3', f'x{6 + t}', f)
                        a.lw('f4', f'x{6 + t}', f + 1)
                        a.fma(f'f{8 + f}', 'f2', 'f3')
                        a.fma(f'f{8 + f + 1}', 'f2', 'f4')
                    a.addi(f'x{10 + t}', f'x{10 + t}', 1)
                    a.li('x31', term.group_stride)
                    a.add(f'x{6 + t}', f'x{6 + t}', 'x31')
        else:
            def emit_loads(a):
                for t, term in enumerate(terms):
                    for k in range(kb):
                        a.addi('x24', 'x22', t * g_sec + k * cw)
                        a.vload('x24', f'x{6 + t}', 0, cw, VL_SELF)
                        a.addi(f'x{6 + t}', f'x{6 + t}',
                               term.group_stride)
                    a.addi('x24', 'x22', b_sec + t * kb)
                    a.vload('x24', f'x{10 + t}', 0, kb, VL_SELF)

            def emit_advance(a):
                for t in range(nterms):
                    a.addi(f'x{10 + t}', f'x{10 + t}', kb)

            def emit_consume(a):
                a.frame_start('x28')
                for kk in range(kb):
                    for t in range(nterms):
                        a.lwsp('f2', 'x28', b_sec + t * kb + kk)
                        if pcv:
                            a.vbcast('v7', 'f2')
                            for v in range(cw // sw):
                                a.addi('x30', 'x28',
                                       t * g_sec + kk * cw + v * sw)
                                a.vl4('v6', 'x30', 0)
                                a.vfma4(f'v{v}', 'v7', 'v6')
                        else:
                            # two-deep load rotation hides spad latency
                            base_off = t * g_sec + kk * cw
                            a.lwsp('f3', 'x28', base_off)
                            for f in range(cw):
                                if f + 1 < cw:
                                    a.lwsp(f'f{3 + (f + 1) % 2}', 'x28',
                                           base_off + f + 1)
                                a.fma(f'f{8 + f}', 'f2',
                                      f'f{3 + f % 2}')
                a.remem()

            from .codegen import self_dae_loop
            self_dae_loop(a, stream, nk // kb, emit_loads, emit_advance,
                          emit_consume)

        # fini: write the tile back
        a.li('x15', out_stride)
        a.mul('x15', 'x15', 'x4')
        a.li('x31', cw)
        a.mul('x31', 'x31', 'x5')
        a.add('x15', 'x15', 'x31')
        a.li('x31', out_base)
        a.add('x15', 'x15', 'x31')
        if pcv:
            # spill SIMD accumulators through the scratchpad
            spill = stream.frame_size * stream.num_slots if stream else 0
            for v in range(cw // sw):
                a.li('x30', spill + v * sw)
                a.vs4(f'v{v}', 'x30', 0)
            for f in range(cw):
                a.li('x30', spill + f)
                a.lwsp(f'f{8 + f}', 'x30', 0)
        _combine_and_store(a, cw, 'x15', alpha, beta)


# ---------------------------------------------------------------------- rowdot
def mimd_rowdot(a: Assembler, *, nrows: int, ncols: int,
                mats: Sequence[tuple], vec_base: int, out_base: int,
                coeffs: Sequence[float], accumulate: bool = False,
                cfg=None, prefetch: bool = False, pcv: bool = False) -> None:
    """out[r] (+)= sum_t coeff_t * dot(mat_t[r][:], vec) — matvec kernels."""
    cw = cfg.line_words
    sw = cfg.simd_width
    if ncols % cw:
        raise ValueError(f'rowdot: ncols={ncols} not a multiple of {cw}')
    nterms = len(mats)
    for t, c in enumerate(coeffs):
        if c != 1.0:
            emit_fconst(a, f'f{24 + t}', c)

    stream = None
    if prefetch:
        frame_words = (nterms + 1) * cw
        slots = max(cfg.frame_counters, cfg.spad_words // (2 * frame_words))
        slots = min(slots, 8)
        stream = SelfDaeStream(frame_words, slots, cfg.frame_counters - 2)
        stream.emit_config(a)

    with _strided_tiles(a, nrows):
        # x4+t = matrix row address; x9 = vec address
        for t, (base, stride) in enumerate(mats):
            a.li('x31', stride)
            a.mul('x31', 'x31', 'x3')
            a.li(f'x{4 + t}', base)
            a.add(f'x{4 + t}', f'x{4 + t}', 'x31')
        a.li('x9', vec_base)
        for t in range(nterms):
            if prefetch and not pcv:
                for j in range(4):
                    emit_fp_zero(a, f'f{8 + t * 4 + j}')
            else:
                emit_fp_zero(a, f'f{8 + t}')

        if not prefetch:
            with a.for_count('x14', ncols // 2):
                a.lw('f1', 'x9', 0)
                a.lw('f2', 'x9', 1)
                for t in range(nterms):
                    a.lw('f3', f'x{4 + t}', 0)
                    a.lw('f4', f'x{4 + t}', 1)
                    a.fma(f'f{8 + t}', 'f1', 'f3')
                    a.fma(f'f{8 + t}', 'f2', 'f4')
                    a.addi(f'x{4 + t}', f'x{4 + t}', 2)
                a.addi('x9', 'x9', 2)
        else:
            def emit_loads(a):
                for t in range(nterms):
                    if t:
                        a.addi('x24', 'x22', t * cw)
                        off = 'x24'
                    else:
                        off = 'x22'
                    a.vload(off, f'x{4 + t}', 0, cw, VL_SELF)
                a.addi('x24', 'x22', nterms * cw)
                a.vload('x24', 'x9', 0, cw, VL_SELF)

            def emit_advance(a):
                for t in range(nterms):
                    a.addi(f'x{4 + t}', f'x{4 + t}', cw)
                a.addi('x9', 'x9', cw)

            def emit_consume(a):
                a.frame_start('x28')
                if pcv:
                    for i, v0 in enumerate(range(0, cw, sw)):
                        a.addi('x30', 'x28', nterms * cw + v0)
                        a.vl4('v7', 'x30', 0)
                        for t in range(nterms):
                            a.addi('x30', 'x28', t * cw + v0)
                            a.vl4('v6', 'x30', 0)
                            a.vfma4(f'v{t * 2 + i % 2}', 'v7', 'v6')
                else:
                    # rotate accumulators (4 per term) and loads (2-deep)
                    a.lwsp('f1', 'x28', nterms * cw)
                    for f in range(cw):
                        if f + 1 < cw:
                            a.lwsp(f'f{1 + (f + 1) % 2}', 'x28',
                                   nterms * cw + f + 1)
                        vec = f'f{1 + f % 2}'
                        for t in range(nterms):
                            a.lwsp(f'f{4 + t}', 'x28', t * cw + f)
                            a.fma(f'f{8 + t * 4 + f % 4}', vec,
                                  f'f{4 + t}')
                a.remem()

            if pcv:
                for t in range(2 * nterms):
                    a.vbcast(f'v{t}', 'x0')
            from .codegen import self_dae_loop
            self_dae_loop(a, stream, ncols // cw, emit_loads, emit_advance,
                          emit_consume)
            if pcv:
                for t in range(nterms):
                    a.vadd4(f'v{t * 2}', f'v{t * 2}', f'v{t * 2 + 1}')
                    a.vredsum4(f'f{8 + t}', f'v{t * 2}')
            else:
                for t in range(nterms):
                    for j in range(1, 4):
                        a.fadd(f'f{8 + t * 4}', f'f{8 + t * 4}',
                               f'f{8 + t * 4 + j}')
                    if t:
                        a.mv(f'f{8 + t}', f'f{8 + t * 4}')

        # combine terms and store out[r]
        emit_fp_zero(a, 'f20')
        for t, c in enumerate(coeffs):
            if c != 1.0:
                a.fmul(f'f{8 + t}', f'f{8 + t}', f'f{24 + t}')
            a.fadd('f20', 'f20', f'f{8 + t}')
        a.li('x15', out_base)
        a.add('x15', 'x15', 'x3')
        if accumulate:
            a.lw('f2', 'x15', 0)
            a.fadd('f20', 'f20', 'f2')
        a.sw('f20', 'x15', 0)


# --------------------------------------------------------------------- stencil
def mimd_stencil_rows(a: Assembler, *, n_out_rows: int, row0: int,
                      ncols: int, sections: Sequence[StencilSection],
                      coeffs: Sequence[float], out_base: int,
                      out_stride: int, jlo: int, jhi: int,
                      out_coeff_old: Optional[float] = None,
                      row_valid=None, cfg=None,
                      prefetch: bool = False, pcv: bool = False) -> None:
    """Row stencil on independent cores (see emit_stencil_rows)."""
    cw = cfg.line_words
    if prefetch:
        # shrink the chunk when many sections would blow the frame budget
        nsec_frame = len(sections) + (1 if out_coeff_old is not None else 0)
        while cw > 1 and nsec_frame * cw * cfg.frame_counters > \
                cfg.spad_words:
            cw //= 2
    if ncols % cw:
        raise ValueError(f'stencil: ncols={ncols} not a multiple of {cw}')
    njc = ncols // cw
    total = n_out_rows * njc
    nsec = len(sections)
    old_sec = nsec * cw
    consts = []
    for c in list(coeffs) + ([out_coeff_old] if out_coeff_old not in
                             (None, 1.0) else []):
        if c not in consts:
            consts.append(c)
    inline_consts = len(consts) > 12
    creg = {} if inline_consts else {c: f'f{8 + i}' for i, c in
                                     enumerate(consts)}
    for c, reg in creg.items():
        emit_fconst(a, reg, c)

    def coef_reg(c):
        if inline_consts:
            emit_fconst(a, 'f6', c)
            return 'f6'
        return creg[c]

    stream = None
    if prefetch:
        frame_words = old_sec + (cw if out_coeff_old is not None else 0)
        slots = max(cfg.frame_counters, cfg.spad_words // (2 * frame_words))
        slots = min(slots, 8)
        stream = SelfDaeStream(frame_words, slots, cfg.frame_counters - 2)
        stream.emit_config(a)

    # one address root per distinct source array: root = base +
    # (row0 + x4)*stride + j0; each tap is root + (di*stride + dj), a
    # compile-time immediate
    roots = []
    for sec in sections:
        if (sec.base, sec.stride) not in roots:
            roots.append((sec.base, sec.stride))
    if len(roots) > 8:
        raise ValueError('too many distinct stencil source arrays')
    root_reg = {bs: f'x{7 + i}' for i, bs in enumerate(roots)}

    def tap_addr(sec):
        return (root_reg[(sec.base, sec.stride)],
                sec.di * sec.stride + sec.dj)

    with _strided_tiles(a, total):
        _emit_tile_coords(a, njc)  # x4 = row offset, x5 = jc index
        a.li('x6', cw)
        a.mul('x6', 'x6', 'x5')  # j0 of this chunk
        for (base, stride), reg in root_reg.items():
            a.li('x31', stride)
            a.mul('x31', 'x31', 'x4')
            a.add('x31', 'x31', 'x6')
            a.li(reg, base + row0 * stride)
            a.add(reg, reg, 'x31')
        # x16 = output address
        a.li('x16', out_stride)
        a.mul('x16', 'x16', 'x4')
        a.add('x16', 'x16', 'x6')
        a.li('x31', out_base + row0 * out_stride)
        a.add('x16', 'x16', 'x31')
        if row_valid is not None:
            mod, rlo, rhi = row_valid
            a.addi('x30', 'x4', row0)
            a.li('x31', mod)
            a.rem('x30', 'x30', 'x31')
            a.slti('x26', 'x30', rlo)
            a.li('x31', rhi - 1)
            a.slt('x27', 'x31', 'x30')
            a.or_('x26', 'x26', 'x27')

        if prefetch:
            from ..isa import VL_PREFIX, VL_SUFFIX
            for s, sec in enumerate(sections):
                a.addi('x24', 'x22', s * cw)
                reg, off = tap_addr(sec)
                a.addi('x25', reg, off)
                if sec.dj != 0:
                    a.vload('x24', 'x25', 0, cw, VL_SELF, VL_PREFIX)
                    a.vload('x24', 'x25', 0, cw, VL_SELF, VL_SUFFIX)
                else:
                    a.vload('x24', 'x25', 0, cw, VL_SELF)
            if out_coeff_old is not None:
                a.addi('x24', 'x22', old_sec)
                a.vload('x24', 'x16', 0, cw, VL_SELF)
            a.frame_start('x28')

        for f in range(cw):
            emit_fp_zero(a, 'f20')
            if prefetch:
                nacc = min(3, nsec)
                for j in range(1, nacc):
                    emit_fp_zero(a, f'f{20 + j}')
                a.lwsp('f4', 'x28', f)
                for s, c in enumerate(coeffs):
                    if s + 1 < nsec:
                        a.lwsp(f'f{4 + (s + 1) % 2}', 'x28',
                               (s + 1) * cw + f)
                    a.fma(f'f{20 + s % nacc}', f'f{4 + s % 2}',
                          coef_reg(c))
                for j in range(1, nacc):
                    a.fadd('f20', 'f20', f'f{20 + j}')
                if out_coeff_old is not None:
                    a.lwsp('f2', 'x28', old_sec + f)
                    if out_coeff_old != 1.0:
                        a.fmul('f2', 'f2', coef_reg(out_coeff_old))
                    a.fadd('f20', 'f20', 'f2')
            else:
                for s0 in range(0, nsec, 2):
                    r0, o0 = tap_addr(sections[s0])
                    a.lw('f1', r0, o0 + f)
                    if s0 + 1 < nsec:
                        r1, o1 = tap_addr(sections[s0 + 1])
                        a.lw('f2', r1, o1 + f)
                    a.fma('f20', 'f1', coef_reg(coeffs[s0]))
                    if s0 + 1 < nsec:
                        a.fma('f20', 'f2', coef_reg(coeffs[s0 + 1]))
                if out_coeff_old is not None:
                    a.lw('f2', 'x16', f)
                    if out_coeff_old != 1.0:
                        a.fmul('f2', 'f2', coef_reg(out_coeff_old))
                    a.fadd('f20', 'f20', 'f2')
            # skip boundary columns with a branch (MIMD mode may
            # diverge); emit only the checks this kernel needs
            skip = a.label()
            if row_valid is not None:
                a.bne('x26', 'x0', skip.name)
            if jlo > 0 or jhi < ncols:
                a.addi('x30', 'x6', f)
            if jlo > 0:
                a.slti('x17', 'x30', jlo)
                a.bne('x17', 'x0', skip.name)
            if jhi < ncols:
                a.li('x31', jhi)
                a.bge('x30', 'x31', skip.name)
            a.sw('f20', 'x16', f)
            a.bind(skip)
        if prefetch:
            a.remem()
            stream.emit_advance_slot(a)
