"""bicg: s = A^T r ; q = A p (the BiCG kernel's two matvecs)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_matmul_like, mimd_rowdot
from .vector_templates import (MatTerm, emit_matmul_like, emit_rowdot,
                               emit_rowdot_reduce)

MAX_LANES = 16


class Bicg(Benchmark):
    name = 'bicg'
    test_params = {'n': 16}
    bench_params = {'n': 64}

    def setup(self, fabric: Fabric, params) -> Workspace:
        n = params['n']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((n, n)))
        self.alloc_np(fabric, ws, 'r', g.random(n))
        self.alloc_np(fabric, ws, 'p', g.random(n))
        self.alloc_zeros(fabric, ws, 's', n)
        self.alloc_zeros(fabric, ws, 'q', n)
        self.alloc_zeros(fabric, ws, 'pq', n * MAX_LANES)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        s, q = refs.bicg(ws.inputs['A'], ws.inputs['r'], ws.inputs['p'])
        return {'s': s, 'q': q}

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        n = params['n']
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: mimd_matmul_like(
            a, ni=1, nj=n, nk=n,
            terms=[MatTerm(ws.base('r'), 0, ws.base('A'), n)],
            out_base=ws.base('s'), out_stride=n, cfg=fabric.cfg,
            prefetch=prefetch, pcv=pcv, kb=min(4, n)))
        mb.add_kernel(lambda a: mimd_rowdot(
            a, nrows=n, ncols=n, mats=[(ws.base('A'), n)],
            vec_base=ws.base('p'), out_base=ws.base('q'), coeffs=[1.0],
            cfg=fabric.cfg, prefetch=prefetch, pcv=pcv))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        n = params['n']
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        flen = self.matvec_flen(fabric, vp.lanes, vp.pcv, n)
        mflen, mpcv = self.fitted_flen(fabric, vp.lanes, vp.pcv, n, ni=1)
        emit_matmul_like(p, name='bicg_s', ni=1, nj=n, nk=n,
                         terms=[MatTerm(ws.base('r'), 0, ws.base('A'), n)],
                         out_base=ws.base('s'), out_stride=n,
                         kb=min(4, n), flen=mflen, pcv=mpcv)
        emit_rowdot(p, name='bicg_q', nrows=n, ncols=n,
                    mats=[(ws.base('A'), n)], vec_base=ws.base('p'),
                    partials_bases=[ws.base('pq')], flen=flen, pcv=vp.pcv)
        emit_rowdot_reduce(p, nrows=n, lanes=vp.lanes,
                           partials_bases=[ws.base('pq')], coeffs=[1.0],
                           out_base=ws.base('q'))
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        return 4 * self.flen_for(fabric, lanes, pcv) + 4
