#!/usr/bin/env python3
"""Quickstart: form a software-defined vector group and run a DAE kernel.

This walks the core abstractions end to end on a 4x4 fabric:

1. build a machine and allocate global memory,
2. describe a vector group (1 scalar core + 3 lanes),
3. write the scalar stream: a wide GROUP vload feeding a frame, and a
   ``vissue``d microthread that consumes it,
4. run, and read the result back.

Run:  python examples/quickstart.py
"""

from repro.core import GroupDescriptor
from repro.isa import Assembler, VL_GROUP, opcodes as op
from repro.kernels.codegen import pack_frame_cfg
from repro.manycore import Fabric, small_config

LANES = 3
FRAME_SIZE = 4


def main():
    fabric = Fabric(small_config())

    # input: 3 lanes x 4 words; output: one sum per lane
    data = [float(i + 1) for i in range(LANES * FRAME_SIZE)]
    src = fabric.alloc(data)
    out = fabric.alloc(8)

    # a vector group over tiles 0..3: tile 0 leads, tiles 1-3 are lanes
    group = GroupDescriptor(0, tiles=[0, 1, 2, 3])
    handle = fabric.register_group(group)

    a = Assembler()
    a.csrr('x1', op.CSR_COREID)
    a.li('x2', LANES)
    a.bge('x1', 'x2', 'not_member')       # tiles 4..15 idle
    a.beq('x1', 'x0', 'scalar_core')

    # --- vector lanes: configure frames, then enter vector mode ---------
    a.li('x3', pack_frame_cfg(FRAME_SIZE, 8))
    a.csrw(op.CSR_FRAME_CFG, 'x3')
    a.li('x4', handle)
    a.vconfig('x4')
    a.halt()  # never reached: devec redirects lanes to 'resume'

    a.bind('not_member')
    a.li('x2', LANES + 1)
    a.blt('x1', 'x2', 'lane3')            # tile 3 is also a lane
    a.halt()
    a.bind('lane3')
    a.li('x3', pack_frame_cfg(FRAME_SIZE, 8))
    a.csrw(op.CSR_FRAME_CFG, 'x3')
    a.li('x4', handle)
    a.vconfig('x4')
    a.halt()

    # --- scalar core: run ahead, issue the wide load, launch the lanes --
    a.bind('scalar_core')
    a.li('x4', handle)
    a.vconfig('x4')
    a.li('x10', src)                      # memory address
    a.li('x11', 0)                        # frame-slot offset in the spads
    a.vload('x11', 'x10', 0, FRAME_SIZE, VL_GROUP)
    a.vissue('sum_microthread')
    a.devec('resume')
    a.j('resume')

    a.bind('resume')
    a.barrier()
    a.halt()

    # --- the microthread every lane executes in lockstep ----------------
    a.bind('sum_microthread')
    a.frame_start('x8')                   # blocks until the frame is full
    a.li('f5', 0.0)
    for i in range(FRAME_SIZE):
        a.lwsp('f1', 'x8', i)
        a.fadd('f5', 'f5', 'f1')
    a.remem()                             # free the frame
    a.csrr('x5', op.CSR_TID)
    a.li('x7', out)
    a.add('x7', 'x7', 'x5')
    a.sw('f5', 'x7', 0)                   # out[lane] = sum
    a.vend()

    program = a.finish()
    fabric.load_program(program)
    stats = fabric.run()

    sums = fabric.read_array(out, LANES)
    print('per-lane sums:', sums)
    expected = [sum(data[i * FRAME_SIZE:(i + 1) * FRAME_SIZE])
                for i in range(LANES)]
    assert sums == expected, (sums, expected)
    print(f'cycles: {stats.cycles}')
    print(f'instructions: {stats.total_instrs}')
    print(f'i-cache accesses: {stats.total_icache_accesses} '
          f'(lanes received the rest over the inet)')
    print('OK')


if __name__ == '__main__':
    main()
