"""Feature extraction and the calibrated linear cycle model.

Predicted cycles are a non-negative linear combination of six features
computed in closed form from the workload description (see
``docs/dse.md`` for the equations):

``phase``
    Number of kernel phases — carries group formation, ``vconfig``
    dispatch, ``devec`` and the global barrier between phases.
``comp``
    Per-group compute critical path: for each vector phase, the slower
    of the scalar DAE stream and the lockstep microthread stream,
    summed over the tiles one group owns.
``fill``
    Exposed frame-fill latency: response packets per frame (plus NoC
    round trip) divided by the frame-counter depth — deeper frame
    pipelines hide more of the fill behind compute.
``llcser``
    LLC serialization roof: total response packets plus store words,
    spread over the banks' single-ported response/request paths.
``dram``
    DRAM bandwidth roof: unique footprint words over the pin bandwidth.
``mimd``
    SPMD phases (reductions, transposes): per-core instruction count
    plus exposed memory latency under the 2-entry load queue.

The per-kernel coefficients come from :mod:`repro.model.calibrate`;
uncalibrated predictions use rough priors and are clearly marked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..energy.model import EnergyParams
from ..manycore.config import DEFAULT_CONFIG, MachineConfig
from .workload import (MimdPhase, VectorPhase, Workload, WorkloadError,
                       build_workload)

#: Feature names, in coefficient-vector order.
FEATURES: Tuple[str, ...] = ('phase', 'comp', 'fill', 'llcser', 'dram',
                             'mimd')

#: Rough priors for uncalibrated predictions.
DEFAULT_COEFFS: Dict[str, float] = {
    'phase': 80.0, 'comp': 1.3, 'fill': 1.0, 'llcser': 1.0,
    'dram': 1.0, 'mimd': 1.5,
}


class ModelError(ValueError):
    """Base class for analytical-model failures."""


class UnsupportedConfigError(ModelError):
    """The config kind (mimd/gpu/meta) is outside the model's scope."""


class InfeasiblePointError(ModelError):
    """The design point cannot be code-generated (and so not simulated)."""


def _resolve_config(config_name: str):
    from ..harness.configs import CONFIGS
    cfg = CONFIGS.get(config_name)
    if cfg is None:
        raise UnsupportedConfigError(
            f'unknown or meta config {config_name!r}: the analytical '
            f'model covers concrete vector configs only')
    if cfg.kind != 'vector':
        raise UnsupportedConfigError(
            f'config {config_name!r} is {cfg.kind}; the analytical model '
            f'covers vector configs only')
    return cfg


def _check_feasible(wl: Workload, machine: MachineConfig) -> None:
    """Reject points the code generator would reject, for the same reasons."""
    if machine.frame_counters - machine.inet_queue_entries - 1 < 1:
        raise InfeasiblePointError(
            f'{machine.frame_counters} frame counters cannot pace a '
            f'{machine.inet_queue_entries}-entry inet queue')
    ngroups = machine.num_cores // (wl.lanes + 1)
    if ngroups < 1:
        raise InfeasiblePointError(
            f'no {wl.lanes}-lane group fits a '
            f'{machine.mesh_width}x{machine.mesh_height} mesh')
    for p in wl.vector_phases:
        if p.frame_words * machine.frame_counters > machine.spad_words:
            raise InfeasiblePointError(
                f'phase {p.name}: {p.frame_words}-word frames overflow '
                f'the scratchpad at depth {machine.frame_counters}')


@dataclass
class Prediction:
    """One analytical evaluation of (kernel, config, machine)."""

    benchmark: str
    config: str
    cycles: float
    energy_pj: float           # first-order on-chip energy estimate
    tiles_used: int            # cores occupied by the group plan
    features: Dict[str, float]
    calibrated: bool


def compute_features(wl: Workload, machine: MachineConfig) -> Dict[str, float]:
    """The closed-form feature vector for one workload on one machine."""
    _check_feasible(wl, machine)
    lanes = wl.lanes
    ngroups = machine.num_cores // (lanes + 1)
    ncores = machine.num_cores
    banks = machine.llc_banks
    depth = machine.frame_counters
    # mean NoC round trip: request + response over ~half the mesh span
    hops = (machine.mesh_width + machine.mesh_height) / 2.0
    round_trip = 2 * hops * machine.router_hop_latency \
        + machine.llc_hit_latency
    feats = {k: 0.0 for k in FEATURES}
    feats['phase'] = float(wl.n_phases)
    for p in wl.phases:
        if isinstance(p, VectorPhase):
            tiles_pg = _ceil(p.tiles, ngroups)
            frames_pg = tiles_pg * p.frames_per_tile
            scalar = (frames_pg * p.scalar_per_frame
                      + tiles_pg * p.scalar_per_tile)
            mt = (frames_pg * p.mt_per_frame + tiles_pg * p.mt_per_tile)
            feats['comp'] += max(scalar, mt)
            feats['fill'] += frames_pg * \
                (p.packets_per_frame + round_trip) / depth
            total_frames = p.tiles * p.frames_per_tile
            feats['llcser'] += (total_frames * p.packets_per_frame
                                + p.tiles * (p.store_words_per_tile
                                             + p.load_words_per_tile)) / banks
        else:
            per_core = _ceil(p.items, ncores)
            mem = (p.loads_per_item + p.stores_per_item) * round_trip \
                / max(1, machine.load_queue_entries)
            feats['mimd'] += per_core * (p.instrs_per_item + mem)
    feats['dram'] = wl.footprint_words \
        / max(0.25, machine.dram_bandwidth_words_per_cycle)
    if wl.repeat > 1:
        for k in ('comp', 'fill', 'llcser', 'mimd'):
            feats[k] *= wl.repeat
    return feats


def _ceil(a: int, b: int) -> int:
    return -(-a // b)


def estimate_energy_pj(wl: Workload, machine: MachineConfig,
                       params: EnergyParams = EnergyParams()) -> float:
    """First-order on-chip energy from workload counts (repro.energy pJ).

    Mirrors the accounting rules of :mod:`repro.energy.model`: lanes in
    vector mode skip fetch/I-cache energy (instructions arrive over the
    inet), frame staging pays scratchpad writes+reads, and a w-wide
    vector load costs the LLC w words.
    """
    lanes = wl.lanes
    e = 0.0
    for p in wl.phases:
        if isinstance(p, VectorPhase):
            frames = p.tiles * p.frames_per_tile
            scalar_instrs = (frames * p.scalar_per_frame
                             + p.tiles * p.scalar_per_tile)
            mt_instrs = lanes * (frames * p.mt_per_frame
                                 + p.tiles * p.mt_per_tile)
            flops = lanes * frames * p.flops_per_frame
            frame_words = frames * p.frame_words * lanes
            stores = p.tiles * p.store_words_per_tile
            e += scalar_instrs * (params.frontend + params.icache
                                  + params.pipeline_base + params.int_alu)
            e += mt_instrs * (params.inet_forward + params.pipeline_base)
            e += flops * params.fp
            e += frame_words * (2 * params.spad_word + params.llc_word)
            e += stores * (params.llc_word + params.mem_unit)
            hops = (machine.mesh_width + machine.mesh_height) / 2.0
            e += (frame_words + stores) * hops * params.noc_word_hop
        else:
            instrs = p.items * p.instrs_per_item
            words = p.items * (p.loads_per_item + p.stores_per_item)
            e += instrs * (params.frontend + params.icache
                           + params.pipeline_base + params.int_alu)
            e += words * (params.llc_word + params.mem_unit)
    return e * wl.repeat   # pJ; DRAM is off-chip and excluded, as in Fig 10c


class AnalyticModel:
    """Per-kernel calibrated linear model over the closed-form features."""

    def __init__(self, coefficients: Optional[Dict[str, Dict[str, float]]]
                 = None,
                 energy_scale: Optional[Dict[str, float]] = None,
                 calibrated: bool = False, label: str = 'uncalibrated'):
        self.coefficients = coefficients or {}
        self.energy_scale = energy_scale or {}
        self.calibrated = calibrated
        self.label = label

    @classmethod
    def default(cls) -> 'AnalyticModel':
        return cls()

    @classmethod
    def from_calibration(cls, doc: dict) -> 'AnalyticModel':
        """Build from a validated ``CALIB_*.json`` document."""
        from .calibrate import validate_calib_report
        validate_calib_report(doc)
        return cls(coefficients=doc['coefficients'],
                   energy_scale=doc.get('energy_scale', {}),
                   calibrated=True, label=doc.get('label', 'calibrated'))

    def coeffs_for(self, bench_name: str) -> Dict[str, float]:
        return self.coefficients.get(bench_name, DEFAULT_COEFFS)

    def predict(self, bench_name: str, config_name: str,
                scale: str = 'test',
                machine: Optional[MachineConfig] = None,
                params_override: Optional[Dict[str, int]] = None,
                ) -> Prediction:
        """Predicted cycles/energy for one point — no simulation.

        Raises :class:`UnsupportedConfigError` for non-vector configs and
        :class:`InfeasiblePointError` for points the code generator would
        reject (callers treat those as holes in the design space).
        """
        cfg = _resolve_config(config_name)
        base = machine if machine is not None else DEFAULT_CONFIG
        eff_machine = cfg.machine(base)
        from ..kernels import registry
        bench = registry.make(bench_name)
        params = bench.params_for('test' if scale == 'test' else 'bench')
        if params_override:
            params.update(params_override)
        try:
            wl = build_workload(bench_name, params, eff_machine,
                                cfg.lanes, cfg.pcv)
        except WorkloadError as e:
            raise InfeasiblePointError(str(e))
        feats = compute_features(wl, eff_machine)
        coeffs = self.coeffs_for(bench_name)
        cycles = sum(coeffs.get(k, 0.0) * feats[k] for k in FEATURES)
        energy = estimate_energy_pj(wl, eff_machine) \
            * self.energy_scale.get(bench_name, 1.0)
        ngroups = eff_machine.num_cores // (cfg.lanes + 1)
        tiles_used = ngroups * (cfg.lanes + 1)
        calibrated = self.calibrated and bench_name in self.coefficients
        return Prediction(benchmark=bench_name, config=config_name,
                          cycles=float(cycles), energy_pj=float(energy),
                          tiles_used=tiles_used, features=feats,
                          calibrated=calibrated)
