"""Multi-tenant kernel scheduler: admission queue + dispatcher.

The scheduler drives one live :class:`~repro.manycore.Fabric` through
:meth:`~repro.manycore.Fabric.run_serve`:

* **admission** — request arrivals are fabric events; an arriving request
  either enters the priority queue or is rejected outright when its group
  shape can never fit the mesh.  The queue is the backpressure mechanism:
  an over-subscribed trace *waits*, it does not fail.
* **dispatch** — on every admission and every completion the queue is
  scanned in (priority, arrival, id) order and each request whose region
  first-fit-allocates is launched: its program is built against the
  allocated tiles (:class:`~repro.kernels.base.VectorParams` ``tiles``),
  and the group forms mid-simulation through the ordinary ``vconfig``
  path.  Requests that do not fit yet stay queued (smaller later requests
  may backfill around a blocked large one).
* **reclamation** — a job's ``on_complete`` fires only after its tiles
  halted *and* its in-flight memory operations drained, so freed regions
  are immediately reusable.
* **timeouts / wedges** — per-request timeouts are cancellable fabric
  events that kill the job (or drop the queued request); a wedged group
  with no timeout is caught by the fabric's stall handler, killed, and
  reported with its wait-state dump while unrelated groups keep running.

Dispatch itself is free in simulated time (programs are built host-side);
launched tiles begin executing on the next cycle.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.vgroup import plan_groups_in
from ..kernels import registry
from ..kernels.base import VectorParams
from ..manycore import Fabric, RunStats
from ..manycore.fabric import JOB_DONE, FabricJob
from ..observe import RequestTrace, build_breakdown
from .allocator import Region, RegionAllocator
from .request import (DONE, FAILED, KernelRequest, QUEUED, REJECTED,
                      RUNNING, TIMED_OUT)

_MAX_DEFAULT = 200_000_000


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    requests: List[KernelRequest]
    makespan: int
    fabric_stats: RunStats
    alloc_stats: object  # AllocStats
    peak_queue_depth: int
    peak_concurrent_jobs: int
    merged_stats: Optional[RunStats] = None  # RunStats.merge over requests
    num_tiles: int = 0  # mesh size, for tile-utilization SLOs

    def by_state(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for r in self.requests:
            counts[r.state] = counts.get(r.state, 0) + 1
        return counts

    @property
    def completed(self) -> List[KernelRequest]:
        return [r for r in self.requests if r.state == DONE]


class ServeScheduler:
    """Schedules a stream of kernel requests onto one live fabric."""

    def __init__(self, fabric: Fabric, verify: bool = True):
        self.fabric = fabric
        self.verify = verify
        cfg = fabric.cfg
        self.allocator = RegionAllocator(cfg.mesh_width, cfg.mesh_height)
        self.queue: List[KernelRequest] = []
        self.running: Dict[int, Tuple[KernelRequest, Region, FabricJob]] = {}
        self.finished: List[KernelRequest] = []
        self.peak_queue_depth = 0
        self.peak_concurrent_jobs = 0
        self._spans: Dict[int, dict] = {}  # job_id -> open serve span
        fabric._stall_handler = self._on_stall

    # -------------------------------------------------------------- admission
    def _admit(self, req: KernelRequest, now: int) -> None:
        if req.tiles_needed > self.allocator.num_tiles:
            req.state = REJECTED
            req.finished_at = now
            req.error = (f'needs {req.tiles_needed} tiles, mesh has '
                         f'{self.allocator.num_tiles}')
            self.finished.append(req)
            self._notify(req, now)
            return
        if req.timeout is not None:
            req._timeout_token = self.fabric.post(
                now + req.timeout,
                lambda at, r=req: self._on_timeout(r, at))
        self.queue.append(req)
        if len(self.queue) > self.peak_queue_depth:
            self.peak_queue_depth = len(self.queue)
        self._notify(req, now)
        self._dispatch(now)

    def _notify(self, req: KernelRequest, now: int) -> None:
        """Tell the observability plane about a state change (rare)."""
        obs = self.fabric.observe
        if obs is not None:
            obs.on_request_state(req, now, scheduler=self)

    # --------------------------------------------------------------- dispatch
    def _dispatch(self, now: int) -> None:
        self.queue = [r for r in self.queue if r.state == QUEUED]
        self.queue.sort(key=lambda r: (-r.priority, r.arrival, r.req_id))
        still_waiting: List[KernelRequest] = []
        for req in self.queue:
            region = self.allocator.alloc(req.tiles_needed)
            if region is None:
                still_waiting.append(req)
                continue
            self._launch(req, region, now)
        self.queue = still_waiting

    def _launch(self, req: KernelRequest, region: Region, now: int) -> None:
        fabric = self.fabric
        bench = registry.make(req.kernel)
        ws = bench.setup(fabric, req.params)
        vp = VectorParams(lanes=req.lanes, max_groups=req.groups,
                          tiles=region.core_ids)
        prog = bench.build_vector(fabric, ws, req.params, vp)
        job = fabric.launch_job(f'req{req.req_id}:{req.kernel}', prog,
                                region.core_ids,
                                on_complete=self._on_complete)
        # request id + causal trace ride the job into wide-access issue,
        # LLC queue entries, frame fills, and group formation
        job.rid = req.req_id
        job.rtrace = req._rtrace = RequestTrace(req.req_id)
        req.state = RUNNING
        req.launched_at = now
        req._bench = bench
        req._ws = ws
        req._stats0 = {t.core_id: copy.copy(t.stats) for t in job.tiles}
        self._notify(req, now)
        self.running[job.job_id] = (req, region, job)
        if len(self.running) > self.peak_concurrent_jobs:
            self.peak_concurrent_jobs = len(self.running)
        groups, _ = plan_groups_in(region.core_ids, req.lanes, req.groups)
        span = {'request': req.req_id, 'job': job.job_id,
                'kernel': req.kernel, 'trace_id': req.trace_id,
                'start': now, 'end': None,
                'cores': {cid: g.group_id for g in groups
                          for cid in g.tiles}}
        self._spans[job.job_id] = span
        fabric.serve_spans.append(span)

    # ------------------------------------------------------------- completion
    def _on_complete(self, job: FabricJob, now: int) -> None:
        req, region, _ = self.running.pop(job.job_id)
        span = self._spans.pop(job.job_id, None)
        if span is not None:
            span['end'] = now
        if req._timeout_token is not None:
            self.fabric.cancel(req._timeout_token)
            req._timeout_token = None
        req.finished_at = now
        req.stats = self._request_stats(req, job, now)
        req.instrs = req.stats.total_instrs
        if job.state == JOB_DONE:
            req.state = DONE
            if self.verify:
                try:
                    req._bench.verify(self.fabric, req._ws, req.params)
                except AssertionError as exc:
                    req.state = FAILED
                    req.error = f'output mismatch: {exc}'
        else:  # killed
            req.state = (TIMED_OUT if req._kill_reason == 'timeout'
                         else FAILED)
            if req.error is None:
                req.error = req._kill_reason or 'killed'
        req.breakdown = build_breakdown(req)
        self.finished.append(req)
        self._notify(req, now)
        self.allocator.free(region)
        self._dispatch(now)

    def _request_stats(self, req: KernelRequest, job: FabricJob,
                       now: int) -> RunStats:
        """Per-request counter deltas, shaped as a RunStats so several
        requests aggregate with :meth:`RunStats.merge`."""
        import dataclasses
        from ..manycore.stats import CoreStats
        out = RunStats()
        out.cycles = now - (req.launched_at or 0)
        names = [f.name for f in dataclasses.fields(CoreStats)]
        for t in job.tiles:
            base = req._stats0[t.core_id]
            delta = CoreStats()
            for name in names:
                setattr(delta, name,
                        getattr(t.stats, name) - getattr(base, name))
            delta.cycles = out.cycles
            out.cores[t.core_id] = delta
        return out

    # ------------------------------------------------------ timeouts / wedges
    def _on_timeout(self, req: KernelRequest, now: int) -> None:
        if req.state == QUEUED:
            req.state = TIMED_OUT
            req.finished_at = now
            req.error = (f'timed out after {req.timeout} cycles '
                         f'in the admission queue')
            self.finished.append(req)
            self._notify(req, now)
            return
        if req.state == RUNNING:
            req._kill_reason = 'timeout'
            req.error = f'timed out after {req.timeout} cycles'
            for _, (r, _, job) in list(self.running.items()):
                if r is req:
                    self.fabric.kill_job(job, now)
                    break

    def _on_stall(self, now: int) -> bool:
        """Fabric stall handler: free wedged jobs instead of aborting.

        When no tile can progress and no events are pending, every
        running job is wedged (a job waiting on memory would imply a
        pending event); kill them all, attach their wait-state dumps,
        and let queued requests take the freed tiles.
        """
        if not self.running:
            return False
        for job_id in list(self.running):
            req, _, job = self.running[job_id]
            req._kill_reason = 'deadlock'
            req.error = self.fabric.wait_state_dump(job.tiles)
            self.fabric.kill_job(job, now)
        return True

    # -------------------------------------------------------------------- run
    def run(self, requests: List[KernelRequest],
            max_cycles: int = _MAX_DEFAULT) -> ServeResult:
        """Replay a request trace to completion and collect the result."""
        fabric = self.fabric
        for req in sorted(requests, key=lambda r: (r.arrival, r.req_id)):
            fabric.post(req.arrival,
                        lambda now, r=req: self._admit(r, now))
        fabric_stats = fabric.run_serve(max_cycles)
        for req in requests:  # should be unreachable; never lose a request
            if req.state in (QUEUED, RUNNING):
                req.state = FAILED
                req.error = req.error or 'stranded at end of serving run'
                req.finished_at = fabric.cycle
                self.finished.append(req)
        ordered = sorted(requests, key=lambda r: r.req_id)
        with_stats = [r.stats for r in ordered if r.stats is not None]
        merged = RunStats.merge(with_stats) if with_stats else None
        return ServeResult(requests=ordered, makespan=fabric.cycle,
                           fabric_stats=fabric_stats,
                           alloc_stats=self.allocator.stats,
                           peak_queue_depth=self.peak_queue_depth,
                           peak_concurrent_jobs=self.peak_concurrent_jobs,
                           merged_stats=merged,
                           num_tiles=fabric.cfg.num_cores)


def serve_trace(requests: List[KernelRequest],
                fabric: Optional[Fabric] = None,
                verify: bool = True,
                max_cycles: int = _MAX_DEFAULT) -> ServeResult:
    """Convenience wrapper: serve ``requests`` on a (fresh) fabric."""
    if fabric is None:
        fabric = Fabric()
    return ServeScheduler(fabric, verify=verify).run(requests, max_cycles)
