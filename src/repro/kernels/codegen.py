"""Kernel code generation: the role of the paper's compiler (Section 4).

The paper compiles C with GCC and splits scalar / microthread code with an
assembly post-pass.  Here, benchmarks are written against two builders that
encapsulate the same structure:

* :class:`MimdKernelBuilder` — SPMD programs for the NV / NV_PF / PCV
  configurations.  Each active core partitions work by its thread id.
* :class:`VectorKernelBuilder` — software-defined vector programs.  It plans
  the vector groups, emits the dispatch preamble (every core finds its role
  and runs ``vconfig``), generates one specialized scalar stream per group
  (with group constants baked in), and appends the shared microthreads.

The builders also own the **DAE pacing discipline** of Section 4.2: the
scalar stream is emitted as ``prologue(ahead) -> steady loop -> epilogue``
so that at most ``safe_runahead`` frames are ever in flight, which the
scratchpad's frame-counter window then never overflows.

Register conventions (documented so benchmarks compose safely):

=========  =======================================================
register   use
=========  =======================================================
x1..x19    free for benchmark scalar code
x20, x21   builder loop counters
x22        rotating frame-slot offset (scalar DAE streams)
x23        frame region size (wrap bound)
x24..x27   builder scratch / vload offset staging
x28        microthread frame pointer (``frame_start`` destination)
x29        microthread cached lane id
x30, x31   scratch (x31 is used by ``Assembler.for_range``)
f0..f31    free for benchmark code
=========  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.sync import instruction_delay_bound, safe_runahead
from ..core.vgroup import GroupDescriptor, plan_groups, plan_groups_in
from ..isa import Assembler, Program, VL_GROUP, VL_PREFIX, VL_SELF, \
    VL_SINGLE, VL_SUFFIX, opcodes as op


def pack_frame_cfg(frame_size: int, num_slots: int) -> int:
    """Pack (frame_size, num_slots) for the FRAME_CFG CSR."""
    if not 0 < frame_size < 4096 or not 0 < num_slots < 4096:
        raise ValueError('frame_size/num_slots out of CSR field range')
    return frame_size | (num_slots << 12)


# --------------------------------------------------------------------------- MIMD
class MimdKernelBuilder:
    """SPMD skeleton: every active core runs each kernel, then barriers.

    Kernels read the core's rank from ``x1`` (thread id) and the active
    core count from ``x2``; a global barrier separates consecutive kernels
    (as in the paper's evaluation).  ``loop(n)`` wraps enclosed kernels in
    a run-time repetition whose index lives in ``x19`` (e.g. fdtd-2d's time
    loop).
    """

    def __init__(self):
        self.asm = Assembler()
        a = self.asm
        a.csrr('x1', op.CSR_TID)
        a.csrr('x2', op.CSR_NCORES)
        a.li('x19', 0)
        self._in_loop = False

    def add_kernel(self, body: Callable[[Assembler], None]) -> None:
        body(self.asm)
        self.asm.barrier()

    def loop(self, n_iters: int):
        """Repeat the enclosed kernels ``n_iters`` times (index in x19)."""
        from contextlib import contextmanager

        @contextmanager
        def _loop():
            if self._in_loop:
                raise ValueError('kernel loops do not nest')
            self._in_loop = True
            a = self.asm
            a.li('x19', 0)
            top = a.label()
            a.bind(top)
            yield
            a.addi('x19', 'x19', 1)
            a.li('x18', n_iters)
            a.blt('x19', 'x18', top.name)
            self._in_loop = False

        return _loop()

    def build(self) -> Program:
        self.asm.halt()
        return self.asm.finish()


# -------------------------------------------------------------------- NV_PF DAE
@dataclass
class SelfDaeStream:
    """Per-core DAE prefetch stream for the NV_PF / PCV_PF configurations.

    An independent core uses SELF vloads to prefetch line-sized frames into
    its own scratchpad, running ``ahead`` frames in front of consumption —
    the paper's "non-blocking wide loads for MLP" baseline.
    """

    frame_size: int
    num_slots: int
    ahead: int

    def emit_config(self, a: Assembler) -> None:
        a.li('x30', pack_frame_cfg(self.frame_size, self.num_slots))
        a.csrw(op.CSR_FRAME_CFG, 'x30')
        a.li('x22', 0)
        a.li('x23', self.frame_size * self.num_slots)

    def emit_vload_self(self, a: Assembler, addr_reg: str, width: int,
                        within: int = 0, unaligned: bool = False) -> None:
        """Prefetch ``width`` words at ``addr_reg`` into the current slot."""
        if within:
            a.addi('x24', 'x22', within)
            off = 'x24'
        else:
            off = 'x22'
        if unaligned:
            a.vload(off, addr_reg, 0, width, VL_SELF, VL_PREFIX)
            a.vload(off, addr_reg, 0, width, VL_SELF, VL_SUFFIX)
        else:
            a.vload(off, addr_reg, 0, width, VL_SELF)

    def emit_advance_slot(self, a: Assembler) -> None:
        lab = a.label()
        a.addi('x22', 'x22', self.frame_size)
        a.blt('x22', 'x23', lab.name)
        a.li('x22', 0)
        a.bind(lab)


def self_dae_loop(a: Assembler, stream: SelfDaeStream, n_iters: int,
                  emit_loads: Callable[[Assembler], None],
                  emit_advance: Callable[[Assembler], None],
                  emit_consume: Callable[[Assembler], None]) -> None:
    """Software-pipelined prefetch loop on an independent core.

    ``emit_loads`` issues the SELF vloads for one frame at the current
    addresses; ``emit_advance`` bumps the address registers; ``emit_consume``
    does ``frame_start`` / compute / ``remem`` for one frame.  ``n_iters``
    is a compile-time trip count.
    """
    ahead = min(stream.ahead, n_iters)
    for _ in range(ahead):  # prologue: fill the pipeline
        emit_loads(a)
        stream.emit_advance_slot(a)
        emit_advance(a)
    steady = n_iters - ahead
    if steady > 0:
        with a.for_count('x20', steady):
            emit_loads(a)
            stream.emit_advance_slot(a)
            emit_advance(a)
            emit_consume(a)
    for _ in range(ahead):  # epilogue: drain
        emit_consume(a)


# ------------------------------------------------------------------- vector SDV
@dataclass
class GroupCtx:
    """Per-group context handed to the scalar-stream generator."""

    group_id: int
    num_groups: int
    lanes: int
    frame_size: int
    num_slots: int
    ahead: int
    desc: GroupDescriptor


class VectorKernelBuilder:
    """Build an SPMD program with software-defined vector groups.

    Parameters
    ----------
    fabric:
        The target fabric; group descriptors are registered with it.
    lanes:
        Vector length (lanes per group, excluding the scalar core).
    frame_size, num_slots:
        DAE frame configuration applied on every lane.
    max_groups:
        Optionally cap the number of groups (else pack the whole mesh).
    mt_body_instrs:
        Estimated microthread length, used for the Section 4.2 runahead
        bound.
    tiles:
        Optional explicit, path-ordered tile region to carve groups from
        (the serving allocator's region) instead of planning over the whole
        mesh.  Group ids and the NGROUPS CSR are scoped to this region.
    """

    def __init__(self, fabric, lanes: int, frame_size: int,
                 num_slots: int = None, max_groups: int = None,
                 mt_body_instrs: int = 16,
                 tiles: Optional[Sequence[int]] = None):
        cfg = fabric.cfg
        self.fabric = fabric
        self.lanes = lanes
        self.frame_size = frame_size
        self.num_slots = num_slots
        self.set_frame_size(frame_size, num_slots)
        if tiles is not None:
            self.groups, self.idle = plan_groups_in(tiles, lanes,
                                                    max_groups)
        else:
            self.groups, self.idle = plan_groups(
                cfg.mesh_width, cfg.mesh_height, lanes, max_groups)
        if not self.groups:
            where = f'{len(tiles)}-tile region' if tiles is not None \
                else 'mesh'
            raise ValueError(f'no {lanes}-lane group fits the {where}')
        self.handles = {}
        for g in self.groups:
            g.frame_size = frame_size
            g.num_frame_slots = num_slots
            self.handles[g.group_id] = fabric.register_group(g)
        # Static DAE pacing needs room in the frame-counter window for the
        # runahead distance plus every microthread launch the inet can
        # buffer (paper Section 4.2).  A queue deeper than the window
        # cannot be paced by vissue backpressure alone.
        if cfg.frame_counters - cfg.inet_queue_entries - 1 < 1:
            raise ValueError(
                f'inet queue of {cfg.inet_queue_entries} cannot be '
                f'statically paced with {cfg.frame_counters} frame '
                f'counters (need inet_queue <= frame_counters - 2)')
        self.ahead = safe_runahead(lanes + 1, mt_body_instrs,
                                   max_frames=cfg.frame_counters,
                                   inet_queue=cfg.inet_queue_entries,
                                   pipeline_buf_total=cfg.pipeline_buf_total,
                                   rob_entries=cfg.rob_entries)
        self.sync_bound = instruction_delay_bound(
            lanes + 1, cfg.inet_queue_entries, cfg.pipeline_buf_total,
            cfg.rob_entries)

    def set_frame_size(self, frame_size: int,
                       num_slots: Optional[int] = None) -> None:
        """Reconfigure the frame geometry for the next vector phase.

        Each kernel configures its frame size via the FRAME_CFG CSR before
        forming its vector group (paper Section 2.3.1); phases with
        different per-microthread data footprints therefore use different
        frame sizes within one program.
        """
        cfg = self.fabric.cfg
        if num_slots is None:
            num_slots = max(cfg.frame_counters,
                            min(8, cfg.spad_words // (2 * frame_size)))
        if frame_size * num_slots > cfg.spad_words:
            raise ValueError('frame region exceeds scratchpad capacity')
        if num_slots < cfg.frame_counters:
            raise ValueError('fewer frame slots than hardware counters')
        self.frame_size = frame_size
        self.num_slots = num_slots

    # -- program skeleton ------------------------------------------------------
    def program(self) -> 'VectorProgram':
        """Start a phase-structured program (see :class:`VectorProgram`)."""
        return VectorProgram(self)

    def build(self, scalar_stream: Callable[[Assembler, GroupCtx], None],
              microthreads: Callable[[Assembler], None],
              post_mimd: Optional[Callable[[Assembler], None]] = None,
              ) -> Program:
        """Assemble a single-phase program (convenience wrapper).

        ``scalar_stream(a, g)`` emits one group's scalar code (between
        ``vconfig`` and ``devec``).  ``microthreads(a)`` emits the shared,
        labeled microthread bodies.  ``post_mimd(a)``, if given, runs on
        every core after the groups disband and a global barrier — used
        for cross-lane reductions (partial-sum combining).
        """
        p = self.program()
        p.vector_phase(scalar_stream)
        if post_mimd is not None:
            p.mimd_phase(post_mimd)
        return p.finish(microthreads)

    # -- scalar-side DAE helpers ---------------------------------------------
    def emit_vload_at(self, a: Assembler, off_reg: str, addr_reg: str,
                      width: int, variant: int = VL_GROUP, core_off: int = 0,
                      unaligned: bool = False) -> None:
        """Issue a wide load with an explicit scratchpad-offset register."""
        if unaligned:
            a.vload(off_reg, addr_reg, core_off, width, variant, VL_PREFIX)
            a.vload(off_reg, addr_reg, core_off, width, variant, VL_SUFFIX)
        else:
            a.vload(off_reg, addr_reg, core_off, width, variant)

    def emit_vload(self, a: Assembler, addr_reg: str, width: int,
                   variant: int = VL_GROUP, core_off: int = 0,
                   within: int = 0, unaligned: bool = False) -> None:
        """Issue a wide load into the current frame slot (+``within``)."""
        if within:
            a.addi('x24', 'x22', within)
            off = 'x24'
        else:
            off = 'x22'
        if unaligned:
            a.vload(off, addr_reg, core_off, width, variant, VL_PREFIX)
            a.vload(off, addr_reg, core_off, width, variant, VL_SUFFIX)
        else:
            a.vload(off, addr_reg, core_off, width, variant)

    def emit_advance_slot(self, a: Assembler) -> None:
        lab = a.label()
        a.addi('x22', 'x22', self.frame_size)
        a.blt('x22', 'x23', lab.name)
        a.li('x22', 0)
        a.bind(lab)

    def dae_loop(self, a: Assembler, n_iters: int,
                 emit_loads: Callable[[Assembler], None],
                 emit_advance: Callable[[Assembler], None],
                 body_label: str,
                 counter: str = 'x20') -> None:
        """Software-pipelined scalar stream: loads run ``ahead`` frames in
        front of the ``vissue``d bodies (paper Figure 3)."""
        ahead = min(self.ahead, n_iters)
        for _ in range(ahead):
            emit_loads(a)
            self.emit_advance_slot(a)
            emit_advance(a)
        steady = n_iters - ahead
        if steady > 0:
            with a.for_count(counter, steady):
                a.vissue(body_label)
                emit_loads(a)
                self.emit_advance_slot(a)
                emit_advance(a)
        for _ in range(ahead):
            a.vissue(body_label)

    def emit_sync_pad(self, a: Assembler) -> None:
        """Pad a microthread with the Section 4.2 instruction-count barrier.

        After these nops, every lane in the group is guaranteed to have
        executed any instruction that preceded the pad (plus a small margin
        for remote-store flight time across the mesh).
        """
        margin = self.lanes + 4
        for _ in range(self.sync_bound + margin):
            a.nop()


class VectorProgram:
    """A phase-structured SPMD program over software-defined vector groups.

    The paper's applications form vector groups at the start of each kernel,
    disband them at the end, and synchronize with a global barrier between
    kernels (Section 6.1).  A *phase* here is exactly one such kernel:

    * :meth:`vector_phase` — every group forms, runs its scalar stream
      (which ``vissue``s microthreads), disbands, and all cores barrier.
      Tiles that belong to no group skip straight to the barrier.
    * :meth:`mimd_phase` — all cores run an SPMD body (used for cross-lane
      reductions, boundary fix-ups, transposes), then barrier.
    * :meth:`loop` — a run-time repetition of the enclosed phases (e.g.
      fdtd-2d's time loop); the iteration index lives in ``x19``.

    Lane registers persist across phases (devec does not clear state), so
    microthreads may carry accumulators from one phase to the next if the
    kernel requires it.
    """

    def __init__(self, builder: VectorKernelBuilder):
        self.b = builder
        self.asm = Assembler()
        self._phase_n = 0
        self._loop_depth = 0
        self._mt_emitters: List[Callable[[Assembler], None]] = []
        self._dispatch_tables: List[tuple] = []  # (base, {core: Label})
        self.asm.li('x19', 0)  # loop index register (see loop())

    def add_microthreads(self, emitter: Callable[[Assembler], None]) -> None:
        """Register microthread bodies to be appended after the main code."""
        self._mt_emitters.append(emitter)

    def vector_phase(self, scalar_stream: Callable[[Assembler, GroupCtx],
                                                   None],
                     frame_size: Optional[int] = None) -> None:
        a = self.asm
        b = self.b
        if frame_size is not None:
            b.set_frame_size(frame_size)
        n = self._phase_n
        self._phase_n += 1
        resume = f'.resume_{n}'
        # Dispatch through a per-core entry table in global memory — the
        # software analogue of each core deriving its role from the vconfig
        # bitmask in O(1), instead of a long compare chain.
        table = b.fabric.alloc(b.fabric.cfg.num_cores)
        entries = {}
        for g in b.groups:
            for i, t in enumerate(g.tiles):
                kind = 'scalar' if i == 0 else 'lane'
                entries[t] = a.label(f'.{kind}_{n}_g{g.group_id}_{i}')
        self._dispatch_tables.append((table, dict(entries),
                                      a.label(resume)))
        a.csrr('x1', op.CSR_COREID)
        a.li('x30', table)
        a.add('x30', 'x30', 'x1')
        a.lw('x30', 'x30', 0)
        a.jr('x30')  # idle tiles land on the resume barrier

        for g in b.groups:
            handle = b.handles[g.group_id]
            for i in range(1, len(g.tiles)):
                a.bind(f'.lane_{n}_g{g.group_id}_{i}')
                a.li('x30', pack_frame_cfg(b.frame_size, b.num_slots))
                a.csrw(op.CSR_FRAME_CFG, 'x30')
                a.li('x30', handle)
                a.vconfig('x30')
                a.halt()  # unreachable: devec redirects to the resume label
            a.bind(f'.scalar_{n}_g{g.group_id}_0')
            a.li('x30', handle)
            a.vconfig('x30')
            a.li('x22', 0)
            a.li('x23', b.frame_size * b.num_slots)
            ctx = GroupCtx(g.group_id, len(b.groups), b.lanes,
                           b.frame_size, b.num_slots, b.ahead, g)
            scalar_stream(a, ctx)
            a.devec(resume)
            a.j(resume)

        a.bind(resume)
        a.barrier()

    def mimd_phase(self, body: Callable[[Assembler], None]) -> None:
        """All cores run ``body`` SPMD-style (tid in x1, ncores in x2)."""
        a = self.asm
        a.csrr('x1', op.CSR_TID)
        a.csrr('x2', op.CSR_NCORES)
        body(a)
        a.barrier()

    def loop(self, n_iters: int):
        """Repeat the enclosed phases ``n_iters`` times (index in x19)."""
        from contextlib import contextmanager

        @contextmanager
        def _loop():
            if self._loop_depth:
                raise ValueError('phase loops do not nest')
            self._loop_depth += 1
            a = self.asm
            a.li('x19', 0)
            top = a.label()
            a.bind(top)
            yield
            a.addi('x19', 'x19', 1)
            a.li('x18', n_iters)
            a.blt('x19', 'x18', top.name)
            self._loop_depth -= 1

        return _loop()

    def finish(self,
               microthreads: Optional[Callable[[Assembler], None]] = None,
               ) -> Program:
        a = self.asm
        a.halt()
        if microthreads is not None:
            microthreads(a)
        for emitter in self._mt_emitters:
            emitter(a)
        program = a.finish()
        # patch the dispatch tables now that label PCs are resolved
        memory = self.b.fabric.memory
        for base, entries, resume in self._dispatch_tables:
            for cid in range(self.b.fabric.cfg.num_cores):
                lab = entries.get(cid, resume)
                memory[base + cid] = lab.pc
        return program


# ------------------------------------------------------------------- misc utils
def emit_fp_zero(a: Assembler, freg: str) -> None:
    """Zero a floating-point register."""
    a.li(freg, 0)
    a.fcvt_sw(freg, freg)


def emit_load_const_addr(a: Assembler, reg: str, base: int,
                         offset: int = 0) -> None:
    a.li(reg, base + offset)
