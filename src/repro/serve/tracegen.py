"""Deterministic seeded request-trace generation.

The generator is the serving counterpart of the figure sweeps: a seed
fully determines the kernels, shapes, priorities, and arrival process,
so a trace can be named in CI ("seed 3, 6 requests") and replayed
bit-identically anywhere.  Arrivals follow a geometric interarrival
process (the discrete analogue of Poisson arrivals); shapes are drawn
from the configured (lanes, groups) menu.
"""

from __future__ import annotations

import json
import random
from typing import List, Optional, Sequence, Tuple

from ..kernels import registry
from .request import KernelRequest

#: default kernel menu: heterogeneous, small at test scale, and all
#: verifiable against their numpy references
DEFAULT_KERNELS = ('mvt', 'gesummv', 'atax')

#: default group-shape menu: (lanes, groups)
DEFAULT_SHAPES = ((4, 1), (4, 2), (4, 3))


def generate_trace(seed: int, n_requests: int,
                   kernels: Sequence[str] = DEFAULT_KERNELS,
                   shapes: Sequence[Tuple[int, int]] = DEFAULT_SHAPES,
                   scale: str = 'test',
                   mean_interarrival: int = 2000,
                   priorities: Sequence[int] = (0, 1, 2),
                   timeout: Optional[int] = None) -> List[KernelRequest]:
    """Build a deterministic request trace from a seed."""
    rng = random.Random(seed)
    requests = []
    arrival = 0
    for i in range(n_requests):
        kernel = rng.choice(list(kernels))
        lanes, groups = rng.choice(list(shapes))
        params = registry.make(kernel).params_for(scale)
        requests.append(KernelRequest(
            req_id=i, kernel=kernel, params=params, lanes=lanes,
            groups=groups, priority=rng.choice(list(priorities)),
            arrival=arrival, timeout=timeout))
        # geometric interarrival with the requested mean, never zero so
        # admission order is stable under queue sorting
        arrival += 1 + int(rng.expovariate(1.0 / max(1, mean_interarrival)))
    return requests


def save_trace(path: str, requests: List[KernelRequest]) -> None:
    with open(path, 'w') as f:
        json.dump({'kind': 'repro-serve-trace',
                   'requests': [r.to_dict() for r in requests]}, f, indent=1)


def load_trace(path: str) -> List[KernelRequest]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get('kind') != 'repro-serve-trace':
        raise ValueError(f'{path} is not a serve trace file')
    return [KernelRequest.from_dict(d) for d in doc['requests']]
