"""Mid-simulation group re-formation on overlapping tiles.

One fabric, no reset between requests: a group forms, runs a kernel,
disbands (devec + halt), and a *different-shaped* group forms on
overlapping tiles and runs a different kernel.  Both outputs must match
their numpy references.
"""

import numpy as np

from repro.kernels import registry
from repro.manycore import Fabric
from repro.serve import DONE, KernelRequest, ServeScheduler, request_outputs


def _req(i, kernel, lanes, groups, arrival):
    params = registry.make(kernel).params_for('test')
    return KernelRequest(req_id=i, kernel=kernel, params=params,
                         lanes=lanes, groups=groups, arrival=arrival)


class TestGroupReformation:
    def test_reformed_group_shape_on_overlapping_tiles(self):
        # 2 groups of V4 (10 tiles), then — after they disband — 1 group
        # of V8 (9 tiles) reusing the same serpentine run
        requests = [_req(0, 'mvt', lanes=4, groups=2, arrival=0),
                    _req(1, 'atax', lanes=8, groups=1, arrival=1)]
        fabric = Fabric()
        scheduler = ServeScheduler(fabric)

        # make the overlap forced, not incidental: leave no second slot
        # by shrinking the allocator to exactly one group's worth of tiles
        scheduler.allocator._free = [(0, 10)]
        scheduler.allocator.num_tiles = 10

        result = scheduler.run(requests)
        by_id = {r.req_id: r for r in result.requests}
        assert by_id[0].state == DONE and by_id[1].state == DONE
        # the second request waited for the first region to be reclaimed
        assert by_id[1].launched_at >= by_id[0].finished_at

        # the two jobs really overlapped in tiles, with different shapes
        spans = {s['request']: s for s in fabric.serve_spans}
        cores0, cores1 = spans[0]['cores'], spans[1]['cores']
        overlap = set(cores0) & set(cores1)
        assert overlap, 'regions must share tiles'
        assert len(set(cores0.values())) == 2   # two V4 groups
        assert len(set(cores1.values())) == 1   # one V8 group

        # both kernels computed their numpy reference on the shared state
        for rid, kernel in ((0, 'mvt'), (1, 'atax')):
            req = by_id[rid]
            got = request_outputs(fabric, req)
            bench = registry.make(kernel)
            want = bench.expected(req._ws, req.params)
            for name, arr in want.items():
                np.testing.assert_allclose(
                    got[name], np.asarray(arr, dtype=float).ravel(),
                    rtol=1e-6, atol=1e-6,
                    err_msg=f'request {rid} array {name!r}')

    def test_three_way_reshaping_on_one_region(self):
        """V4x1 -> V8x1 -> V4x2 on the same tiles, sequentially."""
        requests = [_req(0, 'gesummv', lanes=4, groups=1, arrival=0),
                    _req(1, 'mvt', lanes=8, groups=1, arrival=1),
                    _req(2, 'atax', lanes=4, groups=2, arrival=2)]
        fabric = Fabric()
        scheduler = ServeScheduler(fabric)
        scheduler.allocator._free = [(0, 10)]
        scheduler.allocator.num_tiles = 10
        result = scheduler.run(requests)
        assert all(r.state == DONE for r in result.requests)
        launches = [r.launched_at for r in result.requests]
        assert launches == sorted(launches)
        spans = {s['request']: s for s in fabric.serve_spans}
        assert set(spans[0]['cores']) & set(spans[1]['cores'])
        assert set(spans[1]['cores']) & set(spans[2]['cores'])
