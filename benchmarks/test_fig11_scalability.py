"""Figure 11: NV_PF scaling from 1 to 64 cores.

Paper: 2mm/3mm/gemm scale near-linearly; most benchmarks go sub-linear
past 16 cores as DRAM bandwidth saturates.
"""

from repro.harness.figures import fig11_scalability

from conftest import emit

COMPUTE_BOUND = ('2mm', '3mm', 'gemm')


def test_fig11_scaling(benchmark, cache):
    s = benchmark.pedantic(lambda: fig11_scalability(cache),
                           rounds=1, iterations=1)
    emit(s)
    for b, row in s.rows.items():
        # more cores never hurt in this regime
        assert row['NV_PF_4'] > row['NV_PF_1'] * 1.5
        assert row['NV_PF_64'] >= row['NV_PF_16'] * 0.8
    # the compute-bound trio keeps scaling; the suite mean goes sublinear
    for b in COMPUTE_BOUND:
        assert s.rows[b]['NV_PF_64'] > 20
    mean = s.mean_row()
    assert mean['NV_PF_64'] < 64 * 0.8
