"""Reusable vector-kernel templates for the PolyBench benchmarks.

Three templates cover nearly the whole suite (mirroring the "algorithm
opt" column of the paper's Table 2):

* :func:`emit_matmul_like` — "tiled outer-product" kernels: gemm, 2mm, 3mm,
  syrk, syr2k, corr, covar, and transposed matvecs (atax's second kernel,
  bicg's first, mvt's second).  Lanes own FLEN output columns; the scalar
  core streams rows of the *group* operand with GROUP vloads and broadcasts
  the shared operand with per-lane SINGLE vloads.
* :func:`emit_rowdot` — matvec dot products: atax, bicg, mvt, gesummv.  All
  lanes cooperate on one output row using only GROUP loads (the paper's
  preferred division for these kernels, Section 2.3.2); per-row partial
  sums are combined by :func:`emit_rowdot_reduce` in a MIMD phase.
* :func:`emit_stencil_rows` — row stencils: 2dconv, fdtd-2d and (layered)
  3dconv.  Each needed ``(input row, column shift)`` pair becomes a frame
  section loaded with a GROUP vload — unaligned pairs (paper Section 2.3.2)
  when the shift is nonzero — and boundary output columns are masked with
  predication.

Every template emits both the scalar stream and the matching microthreads.
Work division across groups is a flattened strided partition; lanes mirror
the scalar core's tile-walk incrementally so they can compute their own
output addresses (the paper keeps equivalent per-microthread state, e.g.
``vec_i`` in Figure 8).

Floating-point constants are materialized once into dedicated registers
(f8-f15) by each template's ``init`` microthread; f1-f7 are scratch, f20+
hold accumulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..isa import Assembler, VL_GROUP, VL_SINGLE, opcodes as op
from .codegen import GroupCtx, VectorKernelBuilder, VectorProgram, \
    emit_fp_zero


def emit_fconst(a: Assembler, freg: str, value: float,
                scratch: str = 'f7') -> None:
    """Materialize a float constant.

    Modeled as a single constant-pool load (one instruction); the simulator
    carries the exact double so results match the numpy references bit-wise.
    """
    a.li(freg, float(value))


@dataclass(frozen=True)
class MatTerm:
    """One product term ``bcast[i][k] * group[k][j]`` of a matmul-like sum.

    ``bcast_stride`` is the row stride of the broadcast operand (0 when it
    is a vector indexed by k only); ``group_stride`` is the row stride of
    the group operand (indexed ``[k][j]``).
    """

    bcast_base: int
    bcast_stride: int
    group_base: int
    group_stride: int


def _advance_tile(a: Assembler, jc_reg: str, i_reg: str, step: int,
                  njc: int,
                  on_row_advance: Callable[[Assembler], None]) -> None:
    """jc_idx += step; while jc_idx >= njc: jc_idx -= njc; i += 1."""
    a.addi(jc_reg, jc_reg, step)
    top = a.label()
    done = a.label()
    a.bind(top)
    a.li('x31', njc)
    a.blt(jc_reg, 'x31', done.name)
    a.addi(jc_reg, jc_reg, -njc)
    a.addi(i_reg, i_reg, 1)
    on_row_advance(a)
    a.j(top.name)
    a.bind(done)


def _emit_group_span(b: VectorKernelBuilder, a: Assembler, addr_reg: str,
                     flen: int, within: int, unaligned: bool = False) -> None:
    """GROUP-load a full w = flen*lanes span, splitting at line boundaries.

    A single GROUP vload is limited to one cache line (paper Section 2.3.2),
    so spans wider than a line become several vloads at stepped core
    offsets.
    """
    line = b.fabric.cfg.line_words
    lanes = b.lanes
    w = flen * lanes
    lanes_per_load = max(1, min(lanes, line // flen))
    for c in range(0, lanes, lanes_per_load):
        words_before = c * flen
        if words_before:
            a.li('x30', words_before)
            a.add('x30', addr_reg, 'x30')
            addr = 'x30'
        else:
            addr = addr_reg
        if within:
            a.addi('x24', 'x22', within)
            off = 'x24'
        else:
            off = 'x22'
        b.emit_vload_at(a, off, addr, flen, VL_GROUP, core_off=c,
                        unaligned=unaligned)


def emit_matmul_like(p: VectorProgram, *, name: str, ni: int, nj: int,
                     nk: int, terms: Sequence[MatTerm], out_base: int,
                     out_stride: int, alpha: float = 1.0, beta: float = 0.0,
                     kb: int = 4, flen: Optional[int] = None,
                     pcv: bool = False) -> None:
    """Emit one matmul-like vector phase plus its microthreads.

    Computes, for ``i in [0, ni)`` and ``j in [0, nj)``:

        out[i][j] = alpha * sum_k sum_t bcast_t[i][k] * group_t[k][j]
                    + beta * out_old[i][j]

    ``flen`` (output columns per lane) defaults to one cache line spread
    over the group.  ``nj`` must be a multiple of ``flen * lanes`` and
    ``nk`` a multiple of ``kb``.
    """
    b = p.b
    lanes = b.lanes
    sw = b.fabric.cfg.simd_width
    if flen is None:
        flen = sw if pcv else max(1, b.fabric.cfg.line_words // lanes)
    if pcv and flen % sw:
        raise ValueError(f'{name}: pcv needs flen multiple of {sw}')
    w = flen * lanes
    if nj % w or nk % kb:
        raise ValueError(f'{name}: nj={nj} %% {w} or nk={nk} %% {kb} != 0')
    njc = nj // w
    nterms = len(terms)
    g_section = kb * flen          # per-term group words per lane
    b_section = nterms * g_section  # start of the broadcast section
    frame_words = nterms * g_section + nterms * kb
    frames_per_tile = nk // kb
    total_tiles = ni * njc
    ngroups = len(b.groups)

    # ------------------------------------------------------------ scalar side
    def scalar_stream(a: Assembler, g: GroupCtx):
        ntiles = (total_tiles - g.group_id + ngroups - 1) // ngroups
        if ntiles <= 0:
            return
        a.vissue(f'.{name}_init')
        # x9 = jc_idx, x10 = i; x5+t = bcast row base; x7+t = group stream
        # address; x12+t = bcast stream address (both walk k inside a tile).
        a.li('x9', g.group_id % njc)
        a.li('x10', g.group_id // njc)
        for t, term in enumerate(terms):
            a.li(f'x{5 + t}', term.bcast_base)
            if term.bcast_stride:
                a.li('x30', term.bcast_stride)
                a.mul('x30', 'x30', 'x10')
                a.add(f'x{5 + t}', f'x{5 + t}', 'x30')

        def tile_body(a):
            a.vissue(f'.{name}_tile')
            a.li('x30', w)
            a.mul('x30', 'x30', 'x9')
            for t, term in enumerate(terms):
                a.li(f'x{7 + t}', term.group_base)
                a.add(f'x{7 + t}', f'x{7 + t}', 'x30')
                a.mv(f'x{12 + t}', f'x{5 + t}')

            def emit_loads(a):
                for t, term in enumerate(terms):
                    for k in range(kb):
                        _emit_group_span(b, a, f'x{7 + t}', flen,
                                         t * g_section + k * flen)
                        a.addi(f'x{7 + t}', f'x{7 + t}',
                               term.group_stride)
                for t in range(nterms):
                    a.addi('x24', 'x22', b_section + t * kb)
                    for lane in range(lanes):
                        a.vload('x24', f'x{12 + t}', lane, kb, VL_SINGLE)

            def emit_advance(a):
                for t in range(nterms):
                    a.addi(f'x{12 + t}', f'x{12 + t}', kb)

            b.dae_loop(a, frames_per_tile, emit_loads, emit_advance,
                       f'.{name}_body')
            a.vissue(f'.{name}_fini')

        def on_row_advance(a):
            for t, term in enumerate(terms):
                if term.bcast_stride:
                    a.addi(f'x{5 + t}', f'x{5 + t}', term.bcast_stride)

        if ntiles > 1:
            with a.for_count('x21', ntiles - 1):
                tile_body(a)
                _advance_tile(a, 'x9', 'x10', ngroups, njc, on_row_advance)
        tile_body(a)

    p.vector_phase(scalar_stream, frame_size=frame_words)

    # ----------------------------------------------------------- microthreads
    def microthreads(a: Assembler):
        def on_pre(a):
            a.li('x31', ngroups * w)
            a.add('x13', 'x13', 'x31')

        def on_wrap(a):
            a.li('x31', out_stride - njc * w)
            a.add('x13', 'x13', 'x31')

        a.bind(f'.{name}_init')
        a.csrr('x29', op.CSR_TID)
        a.csrr('x9', op.CSR_GROUP_ID)
        a.li('x11', njc)
        a.div('x10', 'x9', 'x11')   # i
        a.rem('x9', 'x9', 'x11')    # jc_idx
        # x13 = &out[i][jc_idx*w + tid*flen], maintained incrementally
        a.li('x13', out_stride)
        a.mul('x13', 'x13', 'x10')
        a.li('x31', w)
        a.mul('x31', 'x31', 'x9')
        a.add('x13', 'x13', 'x31')
        a.li('x31', flen)
        a.mul('x31', 'x31', 'x29')
        a.add('x13', 'x13', 'x31')
        a.li('x31', out_base)
        a.add('x13', 'x13', 'x31')
        if alpha != 1.0:
            emit_fconst(a, 'f8', alpha)
        if beta and beta != 1.0:
            emit_fconst(a, 'f9', beta)
        a.vend()

        # Rotating accumulators break the FMA RAW chain when few output
        # words live per lane (the dependent-FMA latency is 3 cycles);
        # two-deep load rotation hides the 2-cycle scratchpad latency.
        # This is ordinary -O3-style scheduling, matching the paper's
        # compiled kernels.
        ka = 1 if pcv else max(1, 4 // flen)
        nv = flen // sw if pcv else 0
        kav = 2 if (pcv and nv == 1) else 1

        def acc(f):
            return f'f{20 + f * ka}'

        a.bind(f'.{name}_tile')
        if pcv:
            for v in range(nv * kav):
                a.vbcast(f'v{v}', 'x0')
        else:
            for f in range(flen * ka):
                emit_fp_zero(a, f'f{20 + f}')
        a.vend()

        a.bind(f'.{name}_body')
        a.frame_start('x28')
        for kk in range(kb):
            for t in range(nterms):
                a.lwsp('f1', 'x28', b_section + t * kb + kk)
                if pcv:
                    a.vbcast('v7', 'f1')
                    for v in range(nv):
                        a.addi('x30', 'x28',
                               t * g_section + kk * flen + v * sw)
                        a.vl4('v6', 'x30', 0)
                        vacc = v * kav + (kk % kav)
                        a.vfma4(f'v{vacc}', 'v7', 'v6')
                else:
                    base_off = t * g_section + kk * flen
                    a.lwsp('f2', 'x28', base_off)
                    for f in range(flen):
                        if f + 1 < flen:
                            a.lwsp(f'f{2 + (f + 1) % 2}', 'x28',
                                   base_off + f + 1)
                        dest = f'f{20 + f * ka + kk % ka}'
                        a.fma(dest, 'f1', f'f{2 + f % 2}')
        a.remem()
        a.vend()

        a.bind(f'.{name}_fini')
        if ka > 1:
            for f in range(flen):
                for j in range(1, ka):
                    a.fadd(acc(f), acc(f), f'f{20 + f * ka + j}')
        if pcv and kav > 1:
            for v in range(nv):
                a.vadd4(f'v{v * kav}', f'v{v * kav}', f'v{v * kav + 1}')
        spill = b.fabric.cfg.spad_words - 2 * flen
        if pcv:
            # spill the SIMD accumulators through the scratchpad top
            for v in range(nv):
                a.li('x30', spill + v * sw)
                a.vs4(f'v{v * kav}', 'x30', 0)

        def acc_in(f, dest):
            """Fetch accumulator f into a register (spad when spilled)."""
            if pcv:
                a.li('x30', spill + f)
                a.lwsp(dest, 'x30', 0)
                return dest
            return acc(f)

        for f in range(flen):
            areg = acc_in(f, 'f3')
            if alpha != 1.0:
                a.fmul(areg, areg, 'f8')
            if beta:
                a.lw('f1', 'x13', f)
                if beta != 1.0:
                    a.fmul('f2', 'f1', 'f9')
                else:
                    a.mv('f2', 'f1')
                a.fadd(areg, areg, 'f2')
            a.sw(areg, 'x13', f)
        on_pre(a)
        _advance_tile(a, 'x9', 'x10', ngroups, njc, on_wrap)
        a.vend()

    p.add_microthreads(microthreads)


def emit_rowdot(p: VectorProgram, *, name: str, nrows: int, ncols: int,
                mats: Sequence[Tuple[int, int]], vec_base: int,
                partials_bases: Sequence[int],
                flen: Optional[int] = None, pcv: bool = False) -> None:
    """Emit a matvec phase: for each row r, lanes cooperatively compute
    per-term partial dot products ``sum_j mat_t[r][j] * vec[j]`` and store
    them to ``partials_t[r*lanes + tid]``.

    ``mats`` is a list of ``(base, row_stride)``.  Combine the partials with
    :func:`emit_rowdot_reduce` in a following MIMD phase.
    """
    b = p.b
    lanes = b.lanes
    sw = b.fabric.cfg.simd_width
    if flen is None:
        flen = sw if pcv else max(1, b.fabric.cfg.line_words // lanes)
    if pcv and flen % sw:
        # spans too narrow for a SIMD word degrade to scalar bodies (wide
        # groups on short rows; the paper finds SIMD-in-groups negligible)
        pcv = False
    w = flen * lanes
    if ncols % w:
        raise ValueError(f'{name}: ncols={ncols} not a multiple of {w}')
    nterms = len(mats)
    frame_words = (nterms + 1) * flen
    frames_per_row = ncols // w
    ngroups = len(b.groups)

    def scalar_stream(a: Assembler, g: GroupCtx):
        my_rows = list(range(g.group_id, nrows, ngroups))
        if not my_rows:
            return
        a.vissue(f'.{name}_init')
        for t, (base, stride) in enumerate(mats):
            a.li(f'x{5 + t}', base + my_rows[0] * stride)

        def row_body(a):
            a.vissue(f'.{name}_row')
            a.li('x9', vec_base)
            for t in range(nterms):
                a.mv(f'x{12 + t}', f'x{5 + t}')

            def emit_loads(a):
                for t in range(nterms):
                    _emit_group_span(b, a, f'x{12 + t}', flen, t * flen)
                _emit_group_span(b, a, 'x9', flen, nterms * flen)

            def emit_advance(a):
                for t in range(nterms):
                    a.addi(f'x{12 + t}', f'x{12 + t}', w)
                a.addi('x9', 'x9', w)

            b.dae_loop(a, frames_per_row, emit_loads, emit_advance,
                       f'.{name}_body')
            a.vissue(f'.{name}_fini')
            for t, (base, stride) in enumerate(mats):
                a.li('x31', stride * ngroups)
                a.add(f'x{5 + t}', f'x{5 + t}', 'x31')

        if len(my_rows) > 1:
            with a.for_count('x21', len(my_rows) - 1):
                row_body(a)
        row_body(a)

    p.vector_phase(scalar_stream, frame_size=frame_words)

    def microthreads(a: Assembler):
        a.bind(f'.{name}_init')
        a.csrr('x29', op.CSR_TID)
        a.csrr('x10', op.CSR_GROUP_ID)  # current row
        a.vend()

        # per-term accumulators rotate over 4 registers to break the
        # dependent-FMA chain (3-cycle latency); loads rotate two-deep to
        # hide the scratchpad latency — ordinary -O3-style scheduling.
        ka = 4

        a.bind(f'.{name}_row')
        if pcv:
            for t in range(2 * nterms):
                a.vbcast(f'v{t}', 'x0')
        else:
            for t in range(nterms * ka):
                emit_fp_zero(a, f'f{20 + t}')
        a.vend()

        a.bind(f'.{name}_body')
        a.frame_start('x28')
        if pcv:
            for i, v0 in enumerate(range(0, flen, sw)):
                a.addi('x30', 'x28', nterms * flen + v0)
                a.vl4('v7', 'x30', 0)
                for t in range(nterms):
                    a.addi('x30', 'x28', t * flen + v0)
                    a.vl4('v6', 'x30', 0)
                    a.vfma4(f'v{t * 2 + i % 2}', 'v7', 'v6')
        else:
            a.lwsp('f1', 'x28', nterms * flen)
            for f in range(flen):
                if f + 1 < flen:
                    a.lwsp(f'f{1 + (f + 1) % 2}', 'x28',
                           nterms * flen + f + 1)
                vec = f'f{1 + f % 2}'
                for t in range(nterms):
                    a.lwsp(f'f{4 + t}', 'x28', t * flen + f)
                    a.fma(f'f{20 + t * ka + f % ka}', vec, f'f{4 + t}')
        a.remem()
        a.vend()

        a.bind(f'.{name}_fini')
        if pcv:
            for t in range(nterms):
                a.vadd4(f'v{t * 2}', f'v{t * 2}', f'v{t * 2 + 1}')
                a.vredsum4(f'f{20 + t}', f'v{t * 2}')
        else:
            for t in range(nterms):
                for j in range(1, ka):
                    a.fadd(f'f{20 + t * ka}', f'f{20 + t * ka}',
                           f'f{20 + t * ka + j}')
                if t and ka > 1:
                    a.mv(f'f{20 + t}', f'f{20 + t * ka}')
        a.li('x13', lanes)
        a.mul('x13', 'x13', 'x10')
        a.add('x13', 'x13', 'x29')
        for t, base in enumerate(partials_bases):
            a.li('x31', base)
            a.add('x31', 'x31', 'x13')
            a.sw(f'f{20 + t}', 'x31', 0)
        a.addi('x10', 'x10', ngroups)
        a.vend()

    p.add_microthreads(microthreads)


def _strided_rows(a: Assembler, nrows: int, counter: str = 'x3'):
    """for r in range(tid, nrows, ncores) — x1/x2 hold tid/ncores."""
    from contextlib import contextmanager

    @contextmanager
    def _loop():
        a.mv(counter, 'x1')
        top = a.label()
        end = a.label()
        a.bind(top)
        a.li('x31', nrows)
        a.bge(counter, 'x31', end.name)
        yield
        a.add(counter, counter, 'x2')
        a.j(top.name)
        a.bind(end)

    return _loop()


def emit_rowdot_reduce(p: VectorProgram, *, nrows: int, lanes: int,
                       partials_bases: Sequence[int],
                       coeffs: Sequence[float], out_base: int,
                       accumulate: bool = False) -> None:
    """MIMD phase: ``out[r] (+)= sum_t coeff_t * sum_l partials_t[r*L+l]``."""

    def body(a: Assembler):
        for t, c in enumerate(coeffs):
            if c != 1.0:
                emit_fconst(a, f'f{8 + t}', c)
        with _strided_rows(a, nrows):
            a.li('x5', lanes)
            a.mul('x5', 'x5', 'x3')
            emit_fp_zero(a, 'f20')
            for t, base in enumerate(partials_bases):
                a.li('x6', base)
                a.add('x6', 'x6', 'x5')
                emit_fp_zero(a, 'f21')
                for lane in range(lanes):
                    a.lw('f1', 'x6', lane)
                    a.fadd('f21', 'f21', 'f1')
                if coeffs[t] != 1.0:
                    a.fmul('f21', 'f21', f'f{8 + t}')
                a.fadd('f20', 'f20', 'f21')
            a.li('x7', out_base)
            a.add('x7', 'x7', 'x3')
            if accumulate:
                a.lw('f2', 'x7', 0)
                a.fadd('f20', 'f20', 'f2')
            a.sw('f20', 'x7', 0)

    p.mimd_phase(body)


@dataclass(frozen=True)
class StencilSection:
    """One frame section: ``array[(i + di)*stride + j + dj]`` row chunks."""

    base: int
    stride: int
    di: int
    dj: int


def emit_stencil_rows(p: VectorProgram, *, name: str, n_out_rows: int,
                      row0: int, ncols: int,
                      sections: Sequence[StencilSection],
                      coeffs: Sequence[float], out_base: int,
                      out_stride: int, jlo: int, jhi: int,
                      out_coeff_old: Optional[float] = None,
                      row_valid: Optional[Tuple[int, int, int]] = None,
                      flen: Optional[int] = None) -> None:
    """Emit a row-stencil phase.

    For output rows ``i in [row0, row0 + n_out_rows)`` and columns
    ``j in [jlo, jhi)``:

        out[i][j] = sum_s coeffs[s] * sections[s][(i+di)*stride + j + dj]
                    (+ out_coeff_old * out_old[i][j] when given)

    Every section is GROUP-loaded into the frame; sections with ``dj != 0``
    use the unaligned instruction pair.  Output columns outside
    ``[jlo, jhi)`` are masked with predication; the halo words a shifted
    load pulls from adjacent rows only feed those masked columns.
    """
    b = p.b
    lanes = b.lanes
    if flen is None:
        flen = max(1, b.fabric.cfg.line_words // lanes)
    # shrink the per-lane span until the frame fits the counter window's
    # scratchpad budget (tap-heavy stencils like 3dconv need this)
    cfg = b.fabric.cfg
    nsec_frame = len(sections) + (1 if out_coeff_old is not None else 0)
    while flen > 1 and             nsec_frame * flen * cfg.frame_counters > cfg.spad_words:
        flen //= 2
    w = flen * lanes
    if ncols % w:
        raise ValueError(f'{name}: ncols={ncols} not a multiple of {w}')
    nsec = len(sections)
    old_section = nsec * flen
    frame_words = old_section + (flen if out_coeff_old is not None else 0)
    njc = ncols // w
    total_tiles = n_out_rows * njc
    ngroups = len(b.groups)

    # distinct constants -> registers f8..f15 (deduplicated); kernels with
    # more than 8 distinct coefficients (e.g. 3dconv) materialize them
    # inline (one li per tap) instead
    consts = []
    for c in coeffs:
        if c not in consts:
            consts.append(c)
    if out_coeff_old is not None and out_coeff_old not in (1.0,):
        if out_coeff_old not in consts:
            consts.append(out_coeff_old)
    inline_consts = len(consts) > 8
    if inline_consts:
        creg = {}
    else:
        creg = {c: f'f{8 + i}' for i, c in enumerate(consts)}

    def coef_reg(a, c):
        if inline_consts:
            emit_fconst(a, 'f6', c)
            return 'f6'
        return creg[c]

    def scalar_stream(a: Assembler, g: GroupCtx):
        ntiles = (total_tiles - g.group_id + ngroups - 1) // ngroups
        if ntiles <= 0:
            return
        a.vissue(f'.{name}_init')
        a.li('x9', g.group_id % njc)    # jc index
        a.li('x10', g.group_id // njc)  # output-row offset

        def tile_body(a):
            a.li('x26', w)
            a.mul('x26', 'x26', 'x9')   # jc word offset
            for s, sec in enumerate(sections):
                a.li('x31', sec.stride)
                a.mul('x31', 'x31', 'x10')
                a.add('x31', 'x31', 'x26')
                a.li('x25', sec.base + (row0 + sec.di) * sec.stride + sec.dj)
                a.add('x25', 'x25', 'x31')
                _emit_group_span(b, a, 'x25', flen, s * flen,
                                 unaligned=(sec.dj != 0))
            if out_coeff_old is not None:
                a.li('x31', out_stride)
                a.mul('x31', 'x31', 'x10')
                a.add('x31', 'x31', 'x26')
                a.li('x25', out_base + row0 * out_stride)
                a.add('x25', 'x25', 'x31')
                _emit_group_span(b, a, 'x25', flen, old_section)
            b.emit_advance_slot(a)
            a.vissue(f'.{name}_body')

        with a.for_count('x21', ntiles):
            tile_body(a)
            _advance_tile(a, 'x9', 'x10', ngroups, njc, lambda a: None)

    p.vector_phase(scalar_stream, frame_size=frame_words)

    def microthreads(a: Assembler):
        # Lane-side addressing is fully incremental: the init microthread
        # pays the divides once, then every tile advance adjusts the output
        # pointer (x14), the column base (x13) and the row-validity phase
        # (x15) with adds only — the paper's microthreads keep the same
        # style of persistent per-lane state (Figure 8's vec_i).
        def on_pre(a):
            a.li('x31', ngroups * w)
            a.add('x13', 'x13', 'x31')
            a.add('x14', 'x14', 'x31')

        def on_wrap(a):
            a.li('x31', njc * w)
            a.sub('x13', 'x13', 'x31')
            a.li('x31', out_stride - njc * w)
            a.add('x14', 'x14', 'x31')
            if row_valid is not None:
                mod = row_valid[0]
                a.addi('x15', 'x15', 1)
                wrap = a.label()
                a.li('x31', mod)
                a.blt('x15', 'x31', wrap.name)
                a.li('x15', 0)
                a.bind(wrap)

        a.bind(f'.{name}_init')
        a.csrr('x29', op.CSR_TID)
        a.csrr('x9', op.CSR_GROUP_ID)
        a.li('x11', njc)
        a.div('x10', 'x9', 'x11')
        a.rem('x9', 'x9', 'x11')
        # x13 = lane's first output column j0 = jc*w + tid*flen
        a.li('x13', w)
        a.mul('x13', 'x13', 'x9')
        a.li('x31', flen)
        a.mul('x31', 'x31', 'x29')
        a.add('x13', 'x13', 'x31')
        # x14 = &out[row0 + x10][j0]
        a.li('x14', out_stride)
        a.mul('x14', 'x14', 'x10')
        a.add('x14', 'x14', 'x13')
        a.li('x31', out_base + row0 * out_stride)
        a.add('x14', 'x14', 'x31')
        if row_valid is not None:
            # x15 = (row0 + x10) % mod, maintained incrementally
            mod = row_valid[0]
            a.addi('x15', 'x10', row0)
            a.li('x31', mod)
            a.rem('x15', 'x15', 'x31')
        if not inline_consts:
            for c, reg in creg.items():
                emit_fconst(a, reg, c)
        a.vend()

        a.bind(f'.{name}_body')
        a.frame_start('x28')
        if row_valid is not None:
            # x26 = 1 when the flattened row index is a boundary row
            mod, rlo, rhi = row_valid
            a.slti('x26', 'x15', rlo)
            a.li('x31', rhi - 1)
            a.slt('x4', 'x31', 'x15')
            a.or_('x26', 'x26', 'x4')
        nacc = min(3, len(coeffs))
        for f in range(flen):
            for j in range(nacc):
                emit_fp_zero(a, f'f{20 + j}')
            # taps rotate over up to 3 accumulators and 2 load registers
            a.lwsp('f4', 'x28', f)
            for s, c in enumerate(coeffs):
                if s + 1 < len(coeffs):
                    a.lwsp(f'f{4 + (s + 1) % 2}', 'x28',
                           (s + 1) * flen + f)
                a.fma(f'f{20 + s % nacc}', f'f{4 + s % 2}',
                      coef_reg(a, c))
            for j in range(1, nacc):
                a.fadd('f20', 'f20', f'f{20 + j}')
            if out_coeff_old is not None:
                a.lwsp('f2', 'x28', old_section + f)
                if out_coeff_old != 1.0:
                    a.fmul('f2', 'f2', coef_reg(a, out_coeff_old))
                a.fadd('f20', 'f20', 'f2')
            # mask boundary columns, emitting only the checks this
            # kernel actually needs (full-width kernels skip them all)
            need_lo = jlo > 0
            need_hi = jhi < ncols
            need_row = row_valid is not None
            if not (need_lo or need_hi or need_row):
                a.sw('f20', 'x14', f)
            else:
                have_flag = False
                if need_lo or need_hi:
                    a.addi('x30', 'x13', f)
                if need_lo:
                    a.slti('x3', 'x30', jlo)
                    have_flag = True
                if need_hi:
                    a.li('x31', jhi - 1)
                    a.slt('x4', 'x31', 'x30')
                    if have_flag:
                        a.or_('x3', 'x3', 'x4')
                    else:
                        a.mv('x3', 'x4')
                    have_flag = True
                if need_row:
                    if have_flag:
                        a.or_('x3', 'x3', 'x26')
                    else:
                        a.mv('x3', 'x26')
                a.pred_eq('x3', 'x0')
                a.sw('f20', 'x14', f)
                a.pred_eq('x0', 'x0')
        a.remem()
        on_pre(a)
        _advance_tile(a, 'x9', 'x10', ngroups, njc, on_wrap)
        a.vend()

    p.add_microthreads(microthreads)
