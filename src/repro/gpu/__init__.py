"""The GPU (APU) comparator model, paper Section 5.3."""

from __future__ import annotations

from typing import Dict

from .config import DEFAULT_GPU, GpuConfig
from .machine import GpuError, GpuMachine, GpuMemSystem, Wavefront


def run_gpu_benchmark(bench, params: Dict[str, int], verify: bool = True,
                      cfg: GpuConfig = DEFAULT_GPU):
    """Run one benchmark on the GPU model; returns a harness RunResult."""
    from ..harness.runner import RunResult
    from ..manycore.stats import RunStats
    from .kernels import build_launches

    gm = GpuMachine(cfg)
    ws = bench.setup(gm, params)
    launches = build_launches(bench.name, ws, params, cfg)
    for program, entry in launches:
        gm.launch(program, entry)
    if verify:
        bench.verify(gm, ws, params)
    stats = RunStats()
    stats.cycles = gm.cycle
    return RunResult(bench.name, 'GPU', gm.cycle, stats)


__all__ = ['GpuMachine', 'GpuConfig', 'DEFAULT_GPU', 'GpuError',
           'GpuMemSystem', 'Wavefront', 'run_gpu_benchmark']
