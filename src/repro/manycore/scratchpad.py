"""Per-tile scratchpad with optional DAE frame-queue region.

The scratchpad is explicitly managed software memory (no coherence).  When a
core configures frames (via the frame-config CSR), the low region becomes
the circular frame buffer of :class:`repro.core.frames.FrameQueue`; the rest
stays available for programmer data and the stack.  Words arriving from the
memory system with the frame flag set bump the arrival counters.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.frames import FrameQueue


class ScratchpadError(Exception):
    """Out-of-bounds or misconfigured scratchpad access."""


class Scratchpad:
    """Word-addressed local memory with frame bookkeeping."""

    def __init__(self, words: int, stats):
        self.words = words
        self.data = [0.0] * words
        self.stats = stats
        self.frames: Optional[FrameQueue] = None

    def configure_frames(self, frame_size: int, num_slots: int,
                         num_counters: int, base: int = 0) -> FrameQueue:
        region = frame_size * num_slots
        if base + region > self.words:
            raise ScratchpadError(
                f'frame region of {region} words exceeds scratchpad '
                f'({self.words} words)')
        self.frames = FrameQueue(base, frame_size, num_slots, num_counters)
        return self.frames

    def reset_frames(self) -> None:
        self.frames = None

    def read(self, offset: int):
        if not 0 <= offset < self.words:
            raise ScratchpadError(f'spad read at {offset} out of bounds')
        self.stats.spad_reads += 1
        return self.data[offset]

    def write(self, offset: int, value) -> None:
        if not 0 <= offset < self.words:
            raise ScratchpadError(f'spad write at {offset} out of bounds')
        self.stats.spad_writes += 1
        self.data[offset] = value

    def deliver(self, offset: int, values: Sequence, is_frame: bool) -> None:
        """A response packet (or remote store) lands in the scratchpad."""
        end = offset + len(values)
        if not (0 <= offset and end <= self.words):
            raise ScratchpadError(
                f'memory response [{offset}, {end}) out of bounds')
        self.data[offset:end] = list(values)
        self.stats.spad_writes += len(values)
        if is_frame:
            if self.frames is None:
                raise ScratchpadError('frame data arrived with no frame '
                                      'queue configured')
            for off in range(offset, end):
                self.frames.word_arrived(off)
