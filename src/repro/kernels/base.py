"""Benchmark framework: each PolyBench kernel implements this interface.

A :class:`Benchmark` knows how to

* allocate and initialize its arrays on a fabric (``setup``),
* compute expected outputs with numpy (``expected``),
* build programs for each configuration family (``build_mimd`` /
  ``build_vector``), and
* verify fabric memory after a run (``verify``).

The harness (:mod:`repro.harness`) pairs benchmarks with the Table 3
configuration registry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

#: flattened reference outputs keyed by (benchmark, params, workspace
#: fingerprint); repeated verifies of the same workload (bench repeats,
#: sweeps, per-request serve checks) skip the numpy recompute
_EXPECTED_CACHE: 'OrderedDict[tuple, Dict[str, np.ndarray]]' = OrderedDict()
_EXPECTED_CACHE_CAP = 64
_expected_cache_hits = 0


def expected_cache_hits() -> int:
    """Number of reference recomputes avoided (for tests/diagnostics)."""
    return _expected_cache_hits


def clear_expected_cache() -> None:
    global _expected_cache_hits
    _EXPECTED_CACHE.clear()
    _expected_cache_hits = 0


def _workspace_fingerprint(name: str, ws: 'Workspace',
                           params: Dict[str, int]) -> str:
    """Digest of everything ``expected`` may read: params, inputs, meta."""
    h = hashlib.sha256()
    h.update(name.encode())
    h.update(repr(sorted(params.items())).encode())
    for k in sorted(ws.inputs):
        a = ws.inputs[k]
        h.update(k.encode())
        h.update(str(a.shape).encode())
        h.update(np.ascontiguousarray(a).tobytes())
    for k in sorted(ws.meta):
        v = ws.meta[k]
        h.update(k.encode())
        if isinstance(v, np.ndarray):
            h.update(str(v.shape).encode())
            h.update(np.ascontiguousarray(v).tobytes())
        else:
            h.update(repr(v).encode())
    return h.hexdigest()

from ..isa import Program
from ..manycore import Fabric
from .codegen import MimdKernelBuilder, VectorKernelBuilder


@dataclass
class VectorParams:
    """Vector-configuration knobs (Table 3 columns)."""

    lanes: int = 4
    pcv: bool = False
    max_groups: Optional[int] = None
    #: explicit path-ordered tile region to build groups on (serve mode);
    #: None plans over the whole mesh as the figures do
    tiles: Optional[Sequence[int]] = None

    @property
    def name(self) -> str:
        return f'V{self.lanes}' + ('_PCV' if self.pcv else '')


@dataclass
class Workspace:
    """Arrays a benchmark allocated on a fabric."""

    bases: Dict[str, int] = field(default_factory=dict)
    inputs: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def base(self, name: str) -> int:
        return self.bases[name]


class Benchmark:
    """Abstract base for one PolyBench/GPU application."""

    name: str = '?'
    #: sizes used by the pytest correctness tests (small) and benches
    test_params: Dict[str, int] = {}
    bench_params: Dict[str, int] = {}

    # -- data -----------------------------------------------------------------
    def setup(self, fabric: Fabric, params: Dict[str, int]) -> Workspace:
        raise NotImplementedError

    def expected(self, ws: Workspace,
                 params: Dict[str, int]) -> Dict[str, np.ndarray]:
        """Map array name -> expected final contents (flattened order)."""
        raise NotImplementedError

    # -- programs ---------------------------------------------------------------
    def build_mimd(self, fabric: Fabric, ws: Workspace,
                   params: Dict[str, int], *, prefetch: bool,
                   pcv: bool = False) -> Program:
        raise NotImplementedError

    def build_vector(self, fabric: Fabric, ws: Workspace,
                     params: Dict[str, int], vp: VectorParams) -> Program:
        raise NotImplementedError

    # -- verification -----------------------------------------------------------
    def verify(self, fabric: Fabric, ws: Workspace,
               params: Dict[str, int], rtol: float = 1e-6,
               atol: float = 1e-6) -> None:
        for name, flat in self.expected_flat(ws, params).items():
            got = np.array(fabric.read_array(ws.base(name), flat.size),
                           dtype=float)
            np.testing.assert_allclose(
                got, flat, rtol=rtol, atol=atol,
                err_msg=f'{self.name}: array {name!r} mismatch')

    def expected_flat(self, ws: Workspace,
                      params: Dict[str, int]) -> Dict[str, np.ndarray]:
        """Flattened :meth:`expected` outputs, memoized per workload.

        The cache key digests the benchmark name, params, and the whole
        workspace (inputs *and* meta — BFS reads its golden depths off
        ``ws.meta``), so two workspaces that could diverge never share
        an entry.  Entries are read-only by convention; callers must
        not mutate the returned arrays.
        """
        global _expected_cache_hits
        # the function's code object is part of the key, so replacing
        # ``expected`` (tests monkey-patch it) can never hit stale
        # entries computed by the previous implementation
        code = getattr(self.expected, '__code__', None)
        key = (code, _workspace_fingerprint(self.name, ws, params))
        hit = _EXPECTED_CACHE.get(key)
        if hit is not None:
            _expected_cache_hits += 1
            _EXPECTED_CACHE.move_to_end(key)
            return hit
        flats = {name: np.asarray(want, dtype=float).ravel()
                 for name, want in self.expected(ws, params).items()}
        _EXPECTED_CACHE[key] = flats
        while len(_EXPECTED_CACHE) > _EXPECTED_CACHE_CAP:
            _EXPECTED_CACHE.popitem(last=False)
        return flats

    # -- helpers ----------------------------------------------------------------
    def alloc_np(self, fabric: Fabric, ws: Workspace, name: str,
                 data: np.ndarray) -> int:
        base = fabric.alloc(np.asarray(data, dtype=float).ravel().tolist())
        ws.bases[name] = base
        ws.inputs[name] = np.asarray(data, dtype=float).copy()
        return base

    def alloc_zeros(self, fabric: Fabric, ws: Workspace, name: str,
                    n: int) -> int:
        base = fabric.alloc(n)
        ws.bases[name] = base
        return base

    def params_for(self, which: str) -> Dict[str, int]:
        return dict(self.test_params if which == 'test'
                    else self.bench_params)

    def mt_body_estimate(self, params: Dict[str, int],
                         lanes: int) -> int:
        """Microthread length estimate for the runahead bound."""
        return 24

    def frame_size_for(self, fabric: Fabric, lanes: int,
                       pcv: bool) -> int:
        """Frame words needed per lane; benchmarks override as needed."""
        line = fabric.cfg.line_words
        flen = self.flen_for(fabric, lanes, pcv)
        kb = 4
        return max(2 * kb * flen + 2 * kb, (2 + 1) * flen)

    def flen_for(self, fabric: Fabric, lanes: int, pcv: bool) -> int:
        """Output words per lane.

        Defaults to spreading one cache line across the group.  Caps: the
        scalar accumulator file limits non-SIMD kernels to 8 words, the
        SIMD register file (8 x 4 lanes) limits PCV kernels to 16.
        """
        per_lane = max(1, fabric.cfg.line_words // lanes)
        if pcv:
            return max(fabric.cfg.simd_width, min(per_lane, 16))
        # FLEN is a software choice, not a line-size artifact: wider
        # per-lane frames (several line-loads per row chunk) amortize the
        # broadcast element and the per-frame bookkeeping.  The scalar
        # accumulator file caps it at 8.
        return min(8, max(per_lane, 8))

    def fitted_flen(self, fabric: Fabric, lanes: int, pcv: bool,
                    ncols: int, ni: int = None, cap: int = None):
        """Shrink the per-lane span until it divides the row width.

        Returns ``(flen, use_pcv)``: when the fitted span drops below the
        SIMD width, the kernel falls back to scalar lane bodies — for wide
        groups on narrow matrices, per-core SIMD composed inside vector
        groups simply does not fit (the paper finds it has negligible
        impact anyway, Section 6.6).
        """
        f = self.flen_for(fabric, lanes, pcv)
        if cap is not None and not pcv:
            f = min(f, cap)
        while f > 1 and ncols % (f * lanes):
            f //= 2
        if ncols % (f * lanes):
            raise ValueError(f'{self.name}: width {ncols} incompatible '
                             f'with {lanes} lanes')
        if ni is not None and not pcv:
            # trade span width for tile parallelism: wider lanes mean
            # fewer tiles, and starving groups costs more than per-frame
            # bookkeeping saves
            ngroups = max(1, fabric.cfg.num_cores // (lanes + 1))

            def candidates():
                c = f
                while c >= 1:
                    if ncols % (c * lanes) == 0:
                        yield c
                    c //= 2

            def tiles(c):
                return ni * (ncols // (c * lanes))

            chosen = None
            for c in candidates():
                if tiles(c) >= 2 * ngroups:
                    chosen = c
                    break
            if chosen is None:
                for c in candidates():
                    if 3 * tiles(c) >= 2 * ngroups:
                        chosen = c
                        break
            f = chosen if chosen is not None else 1
        use_pcv = pcv and f % fabric.cfg.simd_width == 0
        return f, use_pcv

    def matvec_flen(self, fabric: Fabric, lanes: int, pcv: bool,
                    ncols: int) -> int:
        """Frame length per lane for matvec kernels.

        Matvec frames carry several line-loads per lane (>= 4 words) so
        frame bookkeeping amortizes even at 16 lanes; shrink only when the
        row length cannot accommodate the span.
        """
        f = max(16, self.flen_for(fabric, lanes, pcv))
        while f > 1 and ncols % (f * lanes):
            f //= 2
        if ncols % (f * lanes):
            raise ValueError(f'{self.name}: ncols={ncols} incompatible '
                             f'with {lanes} lanes')
        return f

    def make_vector_builder(self, fabric: Fabric, vp: VectorParams,
                            params: Dict[str, int]) -> VectorKernelBuilder:
        fs = self.frame_size_for(fabric, vp.lanes, vp.pcv)
        # the seed value only sizes the builder's default; each vector
        # phase reconfigures the real frame geometry (and templates shrink
        # their spans to fit the scratchpad budget)
        fs = min(fs, fabric.cfg.spad_words // fabric.cfg.frame_counters)
        return VectorKernelBuilder(
            fabric, vp.lanes, frame_size=fs, max_groups=vp.max_groups,
            mt_body_instrs=self.mt_body_estimate(params, vp.lanes),
            tiles=vp.tiles)
