"""Hashable job specifications and content-addressed cache keys.

A :class:`JobSpec` names one simulation point — (benchmark, configuration,
scale, machine overrides, active cores, parameter overrides) — in a fully
normalized form, so two call sites asking for the same point always build
the same spec and therefore the same cache key.  Normalization rules:

* ``params_override`` is stored as a sorted tuple of items (dict ordering
  never leaks into the key);
* ``active_cores=None``, ``()`` and ``[]`` all mean "the default core set"
  and normalize to ``None``;
* a :class:`~repro.manycore.config.MachineConfig` is flattened to a sorted
  tuple of its fields, so structurally equal configs key identically.

The key itself is a SHA-256 prefix over the canonical JSON of the spec
plus :data:`CODE_VERSION`, a salt bumped whenever a simulator change makes
old results incomparable — bumping it invalidates every persisted result
at once (the store never has to be cleared by hand).

This module deliberately depends only on the standard library and
``manycore.config`` so it can be imported from anywhere (telemetry,
harness, CLI) without cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

#: Bump when simulator semantics change and cached results must not be
#: reused.  Part of every job key, so stale store entries simply stop
#: matching instead of needing explicit invalidation.
CODE_VERSION = 1

DEFAULT_MAX_CYCLES = 200_000_000


def _canon(obj) -> str:
    """Canonical JSON: sorted keys, no whitespace — stable across runs."""
    return json.dumps(obj, sort_keys=True, separators=(',', ':'))


def code_version_hash() -> str:
    """Stable short hash of the :data:`CODE_VERSION` salt.

    This is the exact serialization of the salt as it enters every
    :meth:`JobSpec.key`, so a bench/provenance record carrying it can be
    cross-checked against ``repro version`` from the shell: if the
    hashes differ, the two sides would address disjoint store keys.
    """
    return hashlib.sha256(_canon(CODE_VERSION).encode()).hexdigest()[:16]


def machine_hash(machine) -> str:
    """Stable short hash of a MachineConfig's fields.

    ``None`` (meaning "the configuration's own default machine") hashes to
    the literal string ``'default'`` so reports stay greppable.
    """
    if machine is None:
        return 'default'
    fields = machine if isinstance(machine, dict) \
        else dataclasses.asdict(machine)
    return hashlib.sha256(_canon(fields).encode()).hexdigest()[:16]


def _norm_machine(machine) -> Optional[Tuple[Tuple[str, object], ...]]:
    if machine is None:
        return None
    if isinstance(machine, tuple):
        return tuple(sorted((str(k), v) for k, v in machine))
    if isinstance(machine, dict):
        return tuple(sorted((str(k), v) for k, v in machine.items()))
    return tuple(sorted(dataclasses.asdict(machine).items()))


@dataclass(frozen=True)
class JobSpec:
    """One fully-normalized simulation point.  Build via :meth:`make`."""

    benchmark: str
    config: str
    scale: str = 'bench'
    verify: bool = True
    params_override: Tuple[Tuple[str, int], ...] = ()
    machine: Optional[Tuple[Tuple[str, object], ...]] = None
    active_cores: Optional[Tuple[int, ...]] = None
    max_cycles: int = DEFAULT_MAX_CYCLES

    @classmethod
    def make(cls, benchmark: str, config: str, scale: str = 'bench',
             verify: bool = True,
             params_override: Optional[Dict[str, int]] = None,
             machine=None,
             active_cores: Optional[Sequence[int]] = None,
             max_cycles: int = DEFAULT_MAX_CYCLES) -> 'JobSpec':
        """Normalizing constructor — the only way specs should be built."""
        params = tuple(sorted((params_override or {}).items()))
        cores = tuple(int(c) for c in active_cores) if active_cores else None
        return cls(benchmark=str(benchmark), config=str(config),
                   scale=str(scale), verify=bool(verify),
                   params_override=params, machine=_norm_machine(machine),
                   active_cores=cores, max_cycles=int(max_cycles))

    # ------------------------------------------------------------- accessors
    def params_dict(self) -> Dict[str, int]:
        return dict(self.params_override)

    def machine_config(self):
        """Reconstruct the MachineConfig override (or None)."""
        if self.machine is None:
            return None
        from ..manycore.config import MachineConfig
        return MachineConfig(**dict(self.machine))

    def label(self) -> str:
        """Short human-readable name for progress lines and summaries."""
        bits = [f'{self.benchmark}/{self.config}']
        if self.active_cores is not None:
            bits.append(f'cores={len(self.active_cores)}')
        if self.machine is not None:
            bits.append(f'machine={machine_hash(dict(self.machine))[:8]}')
        if self.params_override:
            bits.append('params=' + ','.join(
                f'{k}={v}' for k, v in self.params_override))
        return ' '.join(bits)

    # ------------------------------------------------------------------ keys
    def key(self, salt: Optional[int] = None) -> str:
        """Content-addressed cache key for this point.

        ``salt`` defaults to the module-level :data:`CODE_VERSION` read at
        call time, so bumping the global invalidates existing keys.
        """
        doc = [
            salt if salt is not None else CODE_VERSION,
            self.benchmark, self.config, self.scale, self.verify,
            [[k, v] for k, v in self.params_override],
            None if self.machine is None
            else [[k, v] for k, v in self.machine],
            None if self.active_cores is None else list(self.active_cores),
            self.max_cycles,
        ]
        return hashlib.sha256(_canon(doc).encode()).hexdigest()[:24]

    # --------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            'benchmark': self.benchmark,
            'config': self.config,
            'scale': self.scale,
            'verify': self.verify,
            'params_override': dict(self.params_override),
            'machine': None if self.machine is None else dict(self.machine),
            'active_cores': None if self.active_cores is None
            else list(self.active_cores),
            'max_cycles': self.max_cycles,
        }

    @classmethod
    def from_dict(cls, d: dict) -> 'JobSpec':
        return cls.make(
            d['benchmark'], d['config'], scale=d.get('scale', 'bench'),
            verify=d.get('verify', True),
            params_override=d.get('params_override') or None,
            machine=d.get('machine'),
            active_cores=d.get('active_cores'),
            max_cycles=d.get('max_cycles', DEFAULT_MAX_CYCLES))
