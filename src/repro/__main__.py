"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show available benchmarks and configurations.
``run BENCH CONFIG [--scale test|bench] [--report OUT.json]
[--trace OUT.json]``
    Simulate one point, verify against numpy, print cycles/energy.
    ``--report`` enables telemetry and writes the schema-checked run
    report; ``--trace`` writes a Perfetto-loadable Chrome trace.
``figure NAME [--jobs N] [--store DIR]``
    Regenerate one paper figure (fig10a, fig10b, fig10c, fig11, fig14a,
    fig15c, fig16, fig17a, bfs).  ``--jobs`` farms the points across a
    worker pool first; ``--store`` persists results across runs.
``experiment FILE.json [--jobs N] [--store DIR]``
    Run a JSON experiment description (see harness/experiments.py and
    examples/experiments/).
``sweep NAME... [--jobs N] [--resume] [--no-cache]``
    Execute the job sets of several figures as one resumable manifest
    against the persistent result store (see docs/sweeps.md).
``serve [TRACE.json] [--seed N --requests N] [--report OUT.json]``
    Replay a kernel-request trace on one multi-tenant fabric: requests
    are queued, placed by the region allocator, run as concurrent vector
    groups, and verified against numpy.  Omitting the trace file
    generates a deterministic seeded trace; ``--report`` writes the
    schema-checked serving report, ``--perfetto`` an annotated Chrome
    trace, ``--metrics-out`` JSONL metric snapshots, ``--heatmaps``
    ASCII congestion maps, and ``--slo`` evaluates a threshold policy
    (exit 2 on fail).  Exits nonzero if any request failed (see
    docs/serving.md and docs/observability.md).
``top [TRACE.json]``
    Serve a trace with the live terminal dashboard attached: fleet
    summary, in-flight request table, and congestion heatmaps refreshed
    every ``--refresh`` simulated cycles.
``fleet [TRACE.json] [--shards N --autoscale POLICY --slo POLICY]``
    Run a sharded fabric fleet under open-loop traffic: N shards in
    parallel worker processes behind a join-shortest-queue router with
    request affinity, admission control, SLO-driven autoscaling with
    graceful drain, and crash re-routing (``--crash SHARD@EPOCH``
    injects a real worker kill).  ``--report`` writes the cross-shard
    fleet report (schema- and conservation-checked), ``--metrics-out``
    per-epoch JSONL snapshots; ``--slo`` evaluates a threshold policy
    against the fleet summary.  Exit codes follow ``serve``: 1 on
    failed/timed-out requests, 2 on SLO fail or invalid policy (see
    docs/fleet.md).
``report FILE.json``
    Validate a run report against the schema and print its summary
    (CPI stack, histograms, sample count).
``compare A.json B.json [--threshold 0.02]``
    Diff two run reports; exits nonzero when B regresses cycles (or any
    stall cause) beyond the threshold.
``bench run|compare|list``
    The host-performance lab (docs/perf.md): run the curated benchmark
    suite into a schema-checked ``BENCH_<label>.json`` (wall time
    median/IQR, cycles/host-second, peak RSS, provenance), optionally
    with the self-profiler attached; diff two bench files with a
    noise-aware regression gate (``--gate`` exits 2 on regression).
``dse calibrate|explore|predict|report``
    The analytical fast-path (docs/dse.md): fit the closed-form model's
    per-kernel coefficients against discrete-simulator ground truth
    (resumable `repro.jobs` sweep; schema-checked ``CALIB_*.json``;
    ``--max-mape`` gates model drift with exit 2), triage a multi-hundred
    point config space in closed form and re-simulate only the Pareto
    frontier (``DSE_*.json``), predict single points, or validate and
    render either artifact.
``version``
    Print the package version plus the code-version salt (and its
    hash) used for ResultStore keys, so bench/provenance records can
    be cross-checked from the shell.

Exit codes for all commands are documented in one place: docs/cli.md.
"""

from __future__ import annotations

import argparse
import sys


def cmd_list(args):
    from .harness.configs import CONFIGS, META_CONFIGS
    from .kernels import registry
    print('benchmarks:')
    for cls in registry.ALL:
        b = cls()
        print(f'  {b.name:10s} bench={b.bench_params}')
    print('configurations:')
    for name in CONFIGS:
        print(f'  {name}')
    for name in META_CONFIGS:
        print(f'  {name} (meta)')
    return 0


def cmd_run(args):
    from .harness import run_benchmark
    from .kernels import registry
    bench = registry.make(args.benchmark)
    params = bench.params_for(args.scale)
    telemetry = tracer = profiler = None
    if args.report or args.trace:
        from .telemetry import Telemetry
        telemetry = Telemetry(sample_interval=args.sample_interval,
                              per_core_samples=args.per_core_samples)
    if args.trace:
        from .manycore import Tracer
        tracer = Tracer(limit=args.trace_limit)
    if args.self_profile or args.flamegraph or args.deep_profile:
        from .perf import HostProfiler
        profiler = HostProfiler(deep=args.deep_profile)
    r = run_benchmark(bench, args.config, params, telemetry=telemetry,
                      tracer=tracer, profiler=profiler)
    print(f'{bench.name} / {r.config}  params={params}')
    print(f'  cycles        {r.cycles}')
    print(f'  instructions  {r.instrs}')
    print(f'  icache        {r.icache_accesses}')
    if r.energy is not None:
        print(f'  energy        {r.energy.on_chip_total / 1e6:.3f} uJ '
              f'on-chip (+{r.energy.dram / 1e6:.3f} uJ DRAM)')
    print('  verified against the numpy reference')
    if args.report:
        r.to_json(args.report)
        print(f'  report        {args.report} (schema-valid)')
    if args.trace:
        from .telemetry import write_chrome_trace
        doc = write_chrome_trace(args.trace, tracer=tracer,
                                 telemetry=telemetry)
        print(f'  trace         {args.trace} '
              f'({len(doc["traceEvents"])} events; load in '
              f'ui.perfetto.dev)')
    if profiler is not None:
        print(profiler.render())
        if args.deep_profile:
            print(profiler.render_top())
        if args.flamegraph:
            profiler.write_collapsed(args.flamegraph)
            print(f'  flamegraph    {args.flamegraph} (collapsed stacks; '
                  f'feed to flamegraph.pl or speedscope)')
    return 0


def cmd_version(args):
    from . import __version__
    from .jobs.spec import CODE_VERSION, code_version_hash, machine_hash
    from .manycore import DEFAULT_CONFIG
    print(f'repro {__version__}')
    print(f'  code-version salt   {CODE_VERSION} '
          f'(hash {code_version_hash()})')
    print(f'  default machine     {machine_hash(DEFAULT_CONFIG)}')
    return 0


def _bench_progress(doc, done, total):
    w = doc['wall_seconds']
    print(f'  [{done}/{total}] {doc["name"]:<16s} '
          f'{w["median"]:.3f}s median over {doc["repeats"]} repeat(s)',
          flush=True)


def cmd_bench(args):
    from .perf import bench as B
    if args.bench_command == 'list':
        for case in B.BENCH_SUITE:
            fast = ' [fast]' if case.fast else ''
            print(f'  {case.name:<16s} {case.kind:<7s} '
                  f'{case.workload}{fast}')
        return 0
    if args.bench_command == 'run':
        names = args.cases.split(',') if args.cases else None
        try:
            doc = B.run_suite(fast=args.fast, repeats=args.repeats,
                              names=names, label=args.label,
                              profile=args.profile or args.deep_profile,
                              deep=args.deep_profile,
                              isolate=args.isolate,
                              isolate_timeout=args.isolate_timeout,
                              progress=_bench_progress)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(B.render_bench_report(doc))
        out = args.out or B.bench_path(args.label)
        B.save_bench_report(doc, out)
        print(f'bench report: {out} (schema-valid)')
        return 0
    if args.bench_command == 'compare':
        from .perf import compare_bench
        try:
            a = B.load_bench_report(args.a)
            b = B.load_bench_report(args.b)
        except (OSError, ValueError, B.BenchValidationError) as exc:
            print(f'invalid bench report: {exc}', file=sys.stderr)
            return 1
        text, regressed = compare_bench(
            a, b, threshold=args.threshold, noise_mult=args.noise_mult,
            rss_threshold=args.rss_threshold)
        print(text)
        if regressed and args.gate:
            print('bench gate: REGRESSION', file=sys.stderr)
            return 2
        return 0
    raise AssertionError(args.bench_command)


def cmd_serve(args):
    import json
    from .manycore import Fabric
    from .serve import (FAILED, ServeScheduler, build_serve_report,
                        generate_trace, load_trace, render_serve_report,
                        save_trace, store_serve_report)
    if args.trace_file:
        requests = load_trace(args.trace_file)
        seed = None
    else:
        requests = generate_trace(
            seed=args.seed, n_requests=args.requests, scale=args.scale,
            mean_interarrival=args.mean_interarrival, timeout=args.timeout)
        seed = args.seed
    if args.save_trace:
        save_trace(args.save_trace, requests)
        print(f'trace: {args.save_trace} ({len(requests)} requests)')
    policy = None
    if args.slo:
        from .observe import SloPolicy
        try:
            policy = SloPolicy.load(args.slo)
        except (OSError, ValueError) as exc:
            print(f'{args.slo}: invalid SLO policy: {exc}',
                  file=sys.stderr)
            return 2
    plane = None
    if args.metrics_out or args.heatmaps:
        from .observe import ObservePlane
        plane = ObservePlane(snapshot_interval=args.snapshot_interval,
                             metrics_out=args.metrics_out)
    fabric = Fabric()
    if plane is not None:
        plane.attach(fabric)
    result = ServeScheduler(fabric, verify=not args.no_verify).run(requests)
    doc = build_serve_report(result, seed=seed, slo=policy, observe=plane)
    print(render_serve_report(doc))
    if args.metrics_out:
        print(f'metrics: {args.metrics_out} '
              f'({plane.snapshots} JSONL snapshots)')
    if args.heatmaps:
        print(plane.render_heatmaps())
    if args.report:
        with open(args.report, 'w') as f:
            json.dump(doc, f, indent=1)
        print(f'report: {args.report} (schema-valid)')
    if args.store:
        from .jobs import ResultStore
        key = store_serve_report(ResultStore(args.store), doc)
        print(f'stored: {args.store}/{key}.json')
    if args.perfetto:
        from .telemetry import write_chrome_trace
        tdoc = write_chrome_trace(args.perfetto, fabric=fabric)
        print(f'perfetto trace: {args.perfetto} '
              f'({len(tdoc["traceEvents"])} events)')
    failed = [r for r in result.requests if r.state == FAILED]
    if failed:
        for r in failed:
            print(f'request {r.req_id} ({r.kernel}) FAILED: {r.error}',
                  file=sys.stderr)
        return 1
    if doc.get('slo', {}).get('status') == 'fail':
        print('SLO: FAIL', file=sys.stderr)
        return 2
    return 0


def cmd_fleet(args):
    import json
    from .fleet import (AutoscalePolicy, Autoscaler, FleetConfig,
                        FleetRouter, build_fleet_report,
                        render_fleet_report)
    from .serve import load_trace, open_loop_trace
    autoscaler = None
    if args.autoscale:
        try:
            policy = (AutoscalePolicy() if args.autoscale == 'default'
                      else AutoscalePolicy.load(args.autoscale))
        except (OSError, TypeError, ValueError,
                json.JSONDecodeError) as exc:
            print(f'{args.autoscale}: invalid autoscale policy: {exc}',
                  file=sys.stderr)
            return 2
        autoscaler = Autoscaler(policy)
    slo_policy = None
    if args.slo:
        from .observe import SloPolicy
        try:
            slo_policy = SloPolicy.load(args.slo)
        except (OSError, ValueError) as exc:
            print(f'{args.slo}: invalid SLO policy: {exc}',
                  file=sys.stderr)
            return 2
    crashes = []
    for spec in args.crash or ():
        try:
            shard_s, _, epoch_s = spec.partition('@')
            crashes.append((int(shard_s), int(epoch_s)))
        except ValueError:
            print(f'--crash wants SHARD@EPOCH, got {spec!r}',
                  file=sys.stderr)
            return 2
    if args.trace_file:
        trace = load_trace(args.trace_file)
        seed = pattern = None
    else:
        trace = open_loop_trace(
            seed=args.seed, n_requests=args.requests,
            pattern=args.pattern, scale=args.scale,
            mean_interarrival=args.mean_interarrival,
            timeout=args.timeout)
        seed, pattern = args.seed, args.pattern
    flight = None
    if args.flight or args.shard_metrics_dir:
        import os
        from .flight import FleetFlight
        out_dir = args.flight or '.'
        os.makedirs(out_dir, exist_ok=True)
        if args.shard_metrics_dir:
            os.makedirs(args.shard_metrics_dir, exist_ok=True)
        flight = FleetFlight(
            label=args.flight_label, out_dir=out_dir,
            ring_capacity=args.flight_ring,
            shard_metrics_dir=args.shard_metrics_dir,
            snapshot_interval=args.snapshot_interval)
    cfg = FleetConfig(
        shards=args.shards, epoch_cycles=args.epoch_cycles,
        shard_queue_cap=args.shard_queue_cap, max_queue=args.max_queue,
        affinity=not args.no_affinity, verify=not args.no_verify,
        workers=args.workers, timeout=args.worker_timeout,
        crashes=tuple(crashes))
    router = FleetRouter(cfg, autoscaler=autoscaler, flight=flight)
    result = router.run(iter(trace))
    doc = build_fleet_report(result, pattern=pattern, seed=seed,
                             slo=slo_policy)
    print(render_fleet_report(doc))
    if flight is not None:
        slo_doc = doc.get('slo')
        if slo_doc:
            flight.on_slo(slo_doc['status'], result.final_cycle,
                          detail='fleet-summary SLO evaluation')
            if slo_doc['status'] == 'fail':
                broken = ', '.join(
                    r['metric'] for r in slo_doc.get('rules', ())
                    if r.get('status') == 'fail')
                flight.dump_postmortem(
                    'slo_fail', f'SLO failed on: {broken or "?"}',
                    result.final_cycle)
        journal = flight.write_journal()
        print(f'flight journal: {journal} '
              f'({len(flight.spans)} spans, '
              f'{len(flight.detector.anomalies)} anomalies)')
        for pm in flight.postmortems:
            print(f'post-mortem [{pm["trigger"]}]: {pm["path"]}')
    if args.metrics_out:
        with open(args.metrics_out, 'w') as f:
            for row in result.epoch_log:
                f.write(json.dumps(row) + '\n')
        print(f'metrics: {args.metrics_out} '
              f'({len(result.epoch_log)} epoch snapshots)')
    if args.report:
        with open(args.report, 'w') as f:
            json.dump(doc, f, indent=1)
        print(f'report: {args.report} (schema-valid, '
              f'conservation-checked)')
    s = doc['summary']
    if s['failed'] or s['timed_out']:
        for r in doc['requests']:
            if r['state'] in ('failed', 'timed-out'):
                print(f'request {r["req_id"]} ({r["kernel"]}) '
                      f'{r["state"].upper()}: {r.get("error", "")}',
                      file=sys.stderr)
        return 1
    if doc.get('slo', {}).get('status') == 'fail':
        print('SLO: FAIL', file=sys.stderr)
        return 2
    return 0


def cmd_top(args):
    from .observe.top import run_fleet_top, run_top
    from .serve import FAILED, generate_trace, load_trace
    if args.fleet:
        import os
        if not os.path.isdir(args.fleet):
            print(f'{args.fleet}: not a directory', file=sys.stderr)
            return 2
        frames = run_fleet_top(args.fleet, follow=args.follow,
                               interval=args.interval)
        print(f'rendered {frames} fleet frame(s) from {args.fleet}')
        return 0
    if args.trace_file:
        requests = load_trace(args.trace_file)
    else:
        requests = generate_trace(
            seed=args.seed, n_requests=args.requests, scale=args.scale,
            mean_interarrival=args.mean_interarrival, timeout=args.timeout)
    result = run_top(requests, refresh=args.refresh,
                     verify=not args.no_verify,
                     metrics_out=args.metrics_out)
    counts = result.by_state()
    print(f'served {len(result.requests)} request(s) in '
          f'{result.makespan} cycles over {result.dashboard.frames} '
          f'dashboard frame(s): {counts}')
    return 1 if counts.get(FAILED, 0) else 0


def cmd_trace(args):
    from .flight import (JournalError, check_continuity, read_journal,
                         render_tree, write_merged_trace)
    if args.trace_command == 'merge':
        spans, anomalies = [], []
        label = 'fleet'
        for path in args.journals:
            try:
                header, s, a = read_journal(path)
            except (OSError, JournalError) as exc:
                print(f'INVALID journal: {exc}', file=sys.stderr)
                return 1
            label = header.get('label', label)
            spans.extend(s)
            anomalies.extend(a)
        doc = write_merged_trace(args.out, spans, anomalies, label)
        traces = {s['trace_id'] for s in spans}
        print(f'merged trace: {args.out} '
              f'({len(doc["traceEvents"])} events, {len(traces)} '
              f'trace(s) from {len(args.journals)} journal(s))')
        return 0
    try:
        header, spans, anomalies = read_journal(args.journal)
    except (OSError, JournalError) as exc:
        print(f'INVALID journal: {exc}', file=sys.stderr)
        return 1
    if args.trace_command == 'export':
        subset = [s for s in spans if s['trace_id'] == args.trace_id]
        if not subset:
            print(f'{args.journal}: no spans for trace_id '
                  f'{args.trace_id!r}', file=sys.stderr)
            return 1
        doc = write_merged_trace(args.out, subset, [],
                                 header.get('label', 'fleet'))
        print(f'exported trace {args.trace_id}: {args.out} '
              f'({len(doc["traceEvents"])} events)')
        return 0
    # inspect
    if args.trace_id is not None:
        spans = [s for s in spans if s['trace_id'] == args.trace_id]
        if not spans:
            print(f'{args.journal}: no spans for trace_id '
                  f'{args.trace_id!r}', file=sys.stderr)
            return 1
    verdicts = check_continuity(spans)
    for tid in sorted(verdicts):
        print(render_tree(spans, tid))
    broken = [v for v in verdicts.values() if not v['continuous']]
    print(f'{len(verdicts)} trace(s), '
          f'{len(verdicts) - len(broken)} continuous, '
          f'{len(broken)} broken; {len(anomalies)} anomaly event(s)')
    for v in broken:
        print(f'DISCONTINUOUS {v["trace_id"]}: '
              f'gaps {v["gaps"]} {v.get("error", "")}'.rstrip(),
              file=sys.stderr)
    return 2 if broken else 0


def cmd_postmortem(args):
    from .flight import load_postmortem, render_postmortem
    from .telemetry import ReportValidationError
    try:
        doc = load_postmortem(args.file)
    except (OSError, ValueError, ReportValidationError) as exc:
        print(f'{args.file}: INVALID post-mortem: {exc}',
              file=sys.stderr)
        return 1
    if args.postmortem_command == 'dump':
        print(render_postmortem(doc))
    else:
        print(f'{args.file}: valid {doc["kind"]} '
              f'(trigger {doc["reason"]["trigger"]}, '
              f'{len(doc["events"])} event(s) in ring)')
    return 0


def cmd_report(args):
    from .telemetry import ReportValidationError, load_report, render_report
    try:
        doc = load_report(args.file)
    except ReportValidationError as exc:
        print(f'{args.file}: INVALID report: {exc}', file=sys.stderr)
        return 1
    print(render_report(doc))
    return 0


def cmd_compare(args):
    from .telemetry import ReportValidationError, compare_reports, load_report
    try:
        a = load_report(args.a)
        b = load_report(args.b)
    except ReportValidationError as exc:
        print(f'invalid report: {exc}', file=sys.stderr)
        return 1
    text, regressed = compare_reports(a, b, threshold=args.threshold)
    print(text)
    return 2 if regressed else 0


# kept in sync with repro.harness.figures.FIGURES (the canonical registry)
FIGURE_NAMES = ('fig10a', 'fig10b', 'fig10c', 'fig11', 'fig14a', 'fig14b',
                'fig14c', 'fig15c', 'fig16', 'fig17a', 'fig17b', 'fig17c',
                'bfs')


def _open_store(path):
    if not path:
        return None
    from .jobs import ResultStore
    return ResultStore(path)


def _progress(outcome, done, total):
    extra = f' [{outcome.status}]' if outcome.status != 'done' else ''
    print(f'  [{done}/{total}] {outcome.spec.label()}'
          f' ({outcome.elapsed:.1f}s){extra}', flush=True)


def cmd_figure(args):
    from .harness import figures as F
    store = _open_store(args.store)
    cache = F.ResultCache(scale=args.scale, store=store)
    if args.jobs > 1:
        from .jobs import SweepEngine, any_failed, plan_figures, \
            render_summary
        specs = plan_figures([args.name], scale=args.scale)
        engine = SweepEngine(jobs=args.jobs, store=store,
                             progress=_progress)
        outcomes = engine.execute(specs)
        if any_failed(outcomes):
            print(render_summary(outcomes), file=sys.stderr)
            return 1
        for o in outcomes:
            cache.prime(o.spec, o.result)
    fn = getattr(F, F.FIGURES[args.name])
    series = fn(cache)
    print(series.render())
    return 0


def cmd_experiment(args):
    from .harness.experiments import run_experiment
    result = run_experiment(args.file, jobs=args.jobs,
                            store=_open_store(args.store),
                            progress=_progress if args.jobs > 1 else None)
    print(result.render())
    return 0


def cmd_sweep(args):
    import json
    import time
    from .harness import figures as F
    from .jobs import (ResultStore, SweepEngine, SweepManifest, any_failed,
                       build_sweep_report, plan_figures, render_summary)
    store = ResultStore(args.store)
    benches = args.benches.split(',') if args.benches else None
    t0 = time.monotonic()
    if args.resume:
        try:
            manifest = SweepManifest.load(args.manifest)
        except (OSError, ValueError) as exc:
            print(f'cannot resume: {exc}', file=sys.stderr)
            return 2
        specs = manifest.pending()
        print(f'resuming {manifest.name}: {len(specs)} of '
              f'{len(manifest.entries)} job(s) still pending')
    else:
        specs = plan_figures(args.figures, scale=args.scale,
                             benches=benches)
        manifest = SweepManifest(name='+'.join(args.figures), specs=specs,
                                 path=args.manifest)
        manifest.save()
        print(f'planned {len(specs)} job(s) across '
              f'{len(args.figures)} figure(s)')
    engine = SweepEngine(jobs=args.jobs, timeout=args.timeout,
                         retries=args.retries, store=store,
                         use_cache=not args.no_cache, progress=_progress)
    outcomes = engine.execute(specs, manifest=manifest)
    manifest.save()
    print(render_summary(outcomes, store=store))
    print(f'launched {engine.launched} worker(s); '
          f'manifest: {manifest.path}')
    if args.report:
        doc = build_sweep_report(outcomes, name=manifest.name,
                                 launched=engine.launched,
                                 elapsed=time.monotonic() - t0)
        with open(args.report, 'w') as f:
            json.dump(doc, f, indent=1)
        print(f'sweep report: {args.report}')
    if any_failed(outcomes):
        return 1
    if args.render:
        cache = F.ResultCache(scale=args.scale, store=store)
        for name in args.figures:
            fn = getattr(F, F.FIGURES[name])
            kwargs = {'benches': benches} if benches and name != 'bfs' \
                else {}
            print()
            print(fn(cache, **kwargs).render())
    return 0


def _dse_load_model(calib):
    """The analytical model for a dse subcommand: calibrated or priors."""
    from .model import AnalyticModel, load_calib_report
    if calib:
        return AnalyticModel.from_calibration(load_calib_report(calib))
    print('warning: no --calib given; predictions use uncalibrated '
          'priors', file=sys.stderr)
    return AnalyticModel.default()


def cmd_dse(args):
    from .model import calibrate as C
    from .model.analytic import ModelError
    from .model.calibrate import CalibValidationError

    if args.dse_command == 'calibrate':
        from .jobs import ResultStore, SweepEngine, any_failed, \
            render_summary
        kernels = (args.kernels.split(',') if args.kernels
                   else list(C.SMOKE_KERNELS if args.smoke
                             else C.DEFAULT_KERNELS))
        configs = (args.configs.split(',') if args.configs
                   else list(C.DEFAULT_CONFIGS))
        depths = ([int(v) for v in args.depths.split(',')] if args.depths
                  else list(C.DEFAULT_DEPTHS))
        banks = ([int(v) for v in args.banks.split(',')] if args.banks
                 else list(C.DEFAULT_BANKS))
        try:
            specs = C.calibration_specs(kernels, scale=args.scale,
                                        configs=configs, depths=depths,
                                        banks=banks)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(f'calibration suite: {len(kernels)} kernel(s) x '
              f'{len(specs) // max(1, len(kernels))} config point(s) '
              f'= {len(specs)} ground-truth job(s)')
        store = ResultStore(args.store)
        engine = SweepEngine(jobs=args.jobs, timeout=args.timeout,
                             store=store, use_cache=not args.no_cache,
                             progress=_progress)
        outcomes = engine.execute(specs)
        print(render_summary(outcomes, store=store))
        if any_failed(outcomes):
            return 1
        suite = {'kernels': kernels, 'configs': configs,
                 'depths': depths, 'banks': banks, 'scale': args.scale}
        try:
            doc = C.run_calibration(outcomes, label=args.label,
                                    suite=suite)
        except ModelError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(C.render_calib_report(doc))
        out = args.out or C.calib_path(args.label)
        C.save_calib_report(doc, out)
        print(f'calibration report: {out} (schema-valid)')
        if args.max_mape is not None \
                and doc['overall']['median_ape_pct'] > args.max_mape:
            print(f"calibration gate: FAIL — median APE "
                  f"{doc['overall']['median_ape_pct']:.1f}% exceeds "
                  f"{args.max_mape:g}%", file=sys.stderr)
            return 2
        return 0

    if args.dse_command == 'explore':
        from .dse import (AXES_BY_NAME, DseError, dse_path,
                          render_dse_report, run_dse, save_dse_report)
        from .jobs import ResultStore
        try:
            model = _dse_load_model(args.calib)
        except (OSError, ValueError) as exc:
            print(f'invalid calibration report: {exc}', file=sys.stderr)
            return 1
        axes = AXES_BY_NAME[args.space]
        store = ResultStore(args.store) if not args.no_simulate else None
        try:
            doc = run_dse(model, args.benchmark, axes=axes,
                          scale=args.scale,
                          simulate=not args.no_simulate,
                          jobs=args.jobs, store=store,
                          timeout=args.timeout,
                          use_cache=not args.no_cache,
                          label=args.label,
                          progress=_progress, log=print)
        except (DseError, ModelError, KeyError) as exc:
            print(f'dse explore: {exc}', file=sys.stderr)
            return 1
        print(render_dse_report(doc))
        out = args.out or dse_path(args.label)
        save_dse_report(doc, out)
        print(f'dse report: {out} (schema-valid)')
        return 1 if doc['triage'].get('n_sim_failed', 0) else 0

    if args.dse_command == 'predict':
        try:
            model = _dse_load_model(args.calib)
        except (OSError, ValueError) as exc:
            print(f'invalid calibration report: {exc}', file=sys.stderr)
            return 1
        from .manycore import DEFAULT_CONFIG
        overrides = {}
        if args.frame_counters is not None:
            overrides['frame_counters'] = args.frame_counters
        if args.llc_banks is not None:
            overrides['llc_banks'] = args.llc_banks
        if args.noc_width is not None:
            overrides['noc_width_words'] = args.noc_width
        if args.dram_bandwidth is not None:
            overrides['dram_bandwidth_words_per_cycle'] = \
                args.dram_bandwidth
        machine = DEFAULT_CONFIG.scaled(**overrides) if overrides \
            else None
        try:
            p = model.predict(args.benchmark, args.config,
                              scale=args.scale, machine=machine)
        except (ModelError, KeyError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 1
        tag = '' if p.calibrated else ' (uncalibrated priors)'
        print(f'{p.benchmark} / {p.config} @{args.scale}{tag}')
        print(f'  predicted cycles  {p.cycles:.1f}')
        print(f'  predicted energy  {p.energy_pj / 1e6:.3f} uJ on-chip')
        print(f'  tiles used        {p.tiles_used}')
        feats = '  '.join(f'{k}={v:.1f}' for k, v in p.features.items())
        print(f'  features          {feats}')
        return 0

    if args.dse_command == 'report':
        import json
        from .dse import (DSE_KIND, DseValidationError,
                          render_dse_report, validate_dse_report)
        try:
            with open(args.file) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f'{args.file}: {exc}', file=sys.stderr)
            return 1
        try:
            if doc.get('kind') == DSE_KIND:
                validate_dse_report(doc)
                print(render_dse_report(doc))
            elif doc.get('kind') == C.CALIB_KIND:
                C.validate_calib_report(doc)
                print(C.render_calib_report(doc))
            else:
                print(f'{args.file}: unknown kind {doc.get("kind")!r} '
                      f'(expected {DSE_KIND} or {C.CALIB_KIND})',
                      file=sys.stderr)
                return 1
        except (DseValidationError, CalibValidationError) as exc:
            print(f'{args.file}: INVALID: {exc}', file=sys.stderr)
            return 1
        return 0
    raise AssertionError(args.dse_command)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog='repro',
        description='Rockcress (MICRO 2021) reproduction CLI')
    sub = parser.add_subparsers(dest='command', required=True)

    sub.add_parser('list', help='show benchmarks and configurations')

    p = sub.add_parser('run', help='simulate one benchmark/configuration')
    p.add_argument('benchmark')
    p.add_argument('config')
    p.add_argument('--scale', choices=('test', 'bench'), default='bench')
    p.add_argument('--report', metavar='OUT.json',
                   help='enable telemetry; write the run-report artifact')
    p.add_argument('--trace', metavar='OUT.json',
                   help='enable telemetry + tracing; write a Perfetto '
                        '(Chrome trace-event) JSON')
    p.add_argument('--sample-interval', type=int, default=1000,
                   metavar='N', help='cycles between interval samples '
                                     '(default 1000; 0 disables sampling)')
    p.add_argument('--per-core-samples', action='store_true',
                   help='record per-core stall deltas in every sample')
    p.add_argument('--trace-limit', type=int, default=200_000,
                   help='max traced instructions (default 200000)')
    p.add_argument('--self-profile', action='store_true',
                   help='attribute host wall time to simulator '
                        'components (see docs/perf.md)')
    p.add_argument('--deep-profile', action='store_true',
                   help='also wrap the run in cProfile and print the '
                        'top hot functions (slower)')
    p.add_argument('--flamegraph', metavar='OUT.folded',
                   help='write collapsed-stack flamegraph input '
                        '(implies --self-profile)')

    p = sub.add_parser('figure', help='regenerate one paper figure')
    p.add_argument('name', choices=sorted(FIGURE_NAMES))
    p.add_argument('--scale', choices=('test', 'bench'), default='bench')
    p.add_argument('--jobs', type=int, default=1, metavar='N',
                   help='run the figure\'s points across N worker '
                        'processes first (default 1 = serial)')
    p.add_argument('--store', metavar='DIR',
                   help='persistent result store directory')

    p = sub.add_parser('experiment', help='run a JSON experiment file')
    p.add_argument('file')
    p.add_argument('--jobs', type=int, default=1, metavar='N',
                   help='worker processes for the point sweep (default 1)')
    p.add_argument('--store', metavar='DIR',
                   help='persistent result store directory')

    p = sub.add_parser('sweep', help='execute figure sweeps as a '
                                     'resumable parallel job manifest')
    p.add_argument('figures', nargs='+', choices=sorted(FIGURE_NAMES),
                   metavar='FIGURE',
                   help='figures whose points to execute '
                        f'({", ".join(sorted(FIGURE_NAMES))})')
    p.add_argument('--scale', choices=('test', 'bench'), default='bench')
    p.add_argument('--jobs', type=int, default=1, metavar='N',
                   help='max concurrent worker processes (default 1)')
    p.add_argument('--store', default='.repro-store', metavar='DIR',
                   help='result store directory (default .repro-store)')
    p.add_argument('--manifest', default='sweep-manifest.json',
                   metavar='PATH', help='manifest path '
                                        '(default sweep-manifest.json)')
    p.add_argument('--resume', action='store_true',
                   help='reload the manifest and run only pending/failed '
                        'points')
    p.add_argument('--no-cache', action='store_true',
                   help='ignore store hits; recompute (and overwrite) '
                        'every point')
    p.add_argument('--timeout', type=float, default=None, metavar='SEC',
                   help='per-job wall-clock timeout in seconds')
    p.add_argument('--retries', type=int, default=1, metavar='K',
                   help='retries after a crash/timeout (default 1)')
    p.add_argument('--report', metavar='OUT.json',
                   help='write the sweep report artifact')
    p.add_argument('--render', action='store_true',
                   help='render the swept figures afterwards (all cache '
                        'hits)')
    p.add_argument('--benches', metavar='A,B,...',
                   help='restrict the benchmark set (comma-separated)')

    p = sub.add_parser('serve', help='replay a kernel-request trace on '
                                     'one multi-tenant fabric')
    p.add_argument('trace_file', nargs='?', metavar='TRACE.json',
                   help='request trace to replay (omit to generate a '
                        'seeded trace)')
    p.add_argument('--seed', type=int, default=0, metavar='N',
                   help='trace-generator seed (default 0)')
    p.add_argument('--requests', type=int, default=8, metavar='N',
                   help='generated trace length (default 8)')
    p.add_argument('--scale', choices=('test', 'bench'), default='test',
                   help='problem sizes for generated requests '
                        '(default test)')
    p.add_argument('--mean-interarrival', type=int, default=2000,
                   metavar='CYCLES',
                   help='mean request interarrival (default 2000)')
    p.add_argument('--timeout', type=int, default=None, metavar='CYCLES',
                   help='per-request deadline measured from arrival')
    p.add_argument('--save-trace', metavar='OUT.json',
                   help='also write the (generated) trace file')
    p.add_argument('--report', metavar='OUT.json',
                   help='write the schema-checked serving report')
    p.add_argument('--store', metavar='DIR',
                   help='persist the serving report in a result store')
    p.add_argument('--perfetto', metavar='OUT.json',
                   help='write a Chrome trace with per-core request/'
                        'group annotation')
    p.add_argument('--no-verify', action='store_true',
                   help='skip numpy output verification')
    p.add_argument('--metrics-out', metavar='OUT.jsonl',
                   help='attach the observability plane and write '
                        'periodic metric snapshots as JSONL')
    p.add_argument('--heatmaps', action='store_true',
                   help='attach the observability plane and print '
                        'NoC/LLC/inet congestion heatmaps')
    p.add_argument('--snapshot-interval', type=int, default=5000,
                   metavar='CYCLES',
                   help='cycles between metric snapshots (default 5000)')
    p.add_argument('--slo', metavar='POLICY.json',
                   help='evaluate an SLO threshold policy; exit 2 on '
                        'fail (see docs/observability.md)')

    p = sub.add_parser('fleet', help='run a sharded fabric fleet under '
                                     'open-loop traffic')
    p.add_argument('trace_file', nargs='?', metavar='TRACE.json',
                   help='request trace to replay (omit to generate '
                        'seeded open-loop traffic)')
    p.add_argument('--seed', type=int, default=0, metavar='N',
                   help='traffic-generator seed (default 0)')
    p.add_argument('--requests', type=int, default=24, metavar='N',
                   help='generated traffic length (default 24)')
    p.add_argument('--pattern', default='mixed',
                   choices=('steady', 'diurnal', 'bursty', 'mixed'),
                   help='arrival process (default mixed: diurnal wave '
                        '+ bursts, heavy-tailed sizes)')
    p.add_argument('--scale', choices=('test', 'bench'), default='test',
                   help='problem sizes for generated requests '
                        '(default test)')
    p.add_argument('--mean-interarrival', type=int, default=4000,
                   metavar='CYCLES',
                   help='mean request interarrival (default 4000)')
    p.add_argument('--timeout', type=int, default=None, metavar='CYCLES',
                   help='per-request deadline measured from arrival')
    p.add_argument('--shards', type=int, default=3, metavar='N',
                   help='initial fleet size (default 3)')
    p.add_argument('--epoch-cycles', type=int, default=50_000,
                   metavar='CYCLES',
                   help='router hand-off quantum (default 50000)')
    p.add_argument('--shard-queue-cap', type=int, default=8, metavar='N',
                   help='per-shard backlog cap before backpressure '
                        '(default 8)')
    p.add_argument('--max-queue', type=int, default=256, metavar='N',
                   help='router queue cap; admission control rejects '
                        'beyond it (default 256)')
    p.add_argument('--workers', type=int, default=4, metavar='N',
                   help='concurrent shard worker processes (default 4)')
    p.add_argument('--worker-timeout', type=float, default=None,
                   metavar='SEC',
                   help='wall-clock budget per shard batch')
    p.add_argument('--autoscale', metavar='POLICY.json',
                   help="SLO-driven autoscaling policy file, or "
                        "'default' for the built-in thresholds")
    p.add_argument('--slo', metavar='POLICY.json',
                   help='evaluate an SLO threshold policy against the '
                        'fleet summary; exit 2 on fail')
    p.add_argument('--crash', action='append', metavar='SHARD@EPOCH',
                   help='inject a worker SIGKILL into a shard batch '
                        '(repeatable); its requests are re-routed')
    p.add_argument('--no-affinity', action='store_true',
                   help='disable job-key affinity (pure '
                        'join-shortest-queue)')
    p.add_argument('--no-verify', action='store_true',
                   help='skip numpy output verification in shards')
    p.add_argument('--metrics-out', metavar='OUT.jsonl',
                   help='write per-epoch fleet metric snapshots as '
                        'JSONL')
    p.add_argument('--report', metavar='OUT.json',
                   help='write the schema-checked cross-shard fleet '
                        'report')
    p.add_argument('--flight', metavar='DIR',
                   help='attach the flight layer: distributed-trace '
                        'journal, black-box event ring, anomaly '
                        'detection, and POSTMORTEM_* dumps on crash/'
                        'deadlock/SLO-fail, all written under DIR')
    p.add_argument('--flight-label', default='fleet', metavar='LABEL',
                   help='label embedded in flight artifacts '
                        '(default fleet)')
    p.add_argument('--flight-ring', type=int, default=256, metavar='N',
                   help='black-box event ring capacity (default 256)')
    p.add_argument('--shard-metrics-dir', metavar='DIR',
                   help='with --flight: each shard worker appends '
                        'observe-plane snapshots to DIR/shard<N>.jsonl '
                        '(feeds `repro top --fleet DIR`)')
    p.add_argument('--snapshot-interval', type=int, default=5000,
                   metavar='CYCLES',
                   help='cycles between shard metric snapshots '
                        '(default 5000)')

    p = sub.add_parser('top', help='serve a trace with a live '
                                   'terminal dashboard attached')
    p.add_argument('trace_file', nargs='?', metavar='TRACE.json',
                   help='request trace to replay (omit to generate a '
                        'seeded trace)')
    p.add_argument('--seed', type=int, default=0, metavar='N')
    p.add_argument('--requests', type=int, default=8, metavar='N')
    p.add_argument('--scale', choices=('test', 'bench'), default='test')
    p.add_argument('--mean-interarrival', type=int, default=2000,
                   metavar='CYCLES')
    p.add_argument('--timeout', type=int, default=None, metavar='CYCLES')
    p.add_argument('--refresh', type=int, default=5000, metavar='CYCLES',
                   help='simulated cycles between dashboard frames '
                        '(default 5000)')
    p.add_argument('--metrics-out', metavar='OUT.jsonl',
                   help='also write JSONL metric snapshots')
    p.add_argument('--no-verify', action='store_true',
                   help='skip numpy output verification')
    p.add_argument('--fleet', metavar='DIR',
                   help='fleet mode: tail the per-shard JSONL snapshot '
                        'streams under DIR (from `repro fleet '
                        '--shard-metrics-dir`) and render an aggregated '
                        'per-shard dashboard instead of serving a trace')
    p.add_argument('--follow', action='store_true',
                   help='with --fleet: keep re-reading the streams '
                        'until interrupted')
    p.add_argument('--interval', type=float, default=1.0, metavar='SEC',
                   help='with --fleet --follow: seconds between frames '
                        '(default 1.0)')

    p = sub.add_parser('trace', help='merge/export/inspect fleet '
                                     'flight journals')
    tsub = p.add_subparsers(dest='trace_command', required=True)
    pt = tsub.add_parser('merge', help='merge journal(s) into one '
                                       'Perfetto trace')
    pt.add_argument('journals', nargs='+', metavar='FLIGHT.jsonl')
    pt.add_argument('--out', required=True, metavar='OUT.json',
                    help='merged Chrome trace-event JSON path')
    pt = tsub.add_parser('export', help='export one trace_id as a '
                                        'Perfetto trace')
    pt.add_argument('journal', metavar='FLIGHT.jsonl')
    pt.add_argument('--trace-id', required=True, metavar='TID')
    pt.add_argument('--out', required=True, metavar='OUT.json')
    pt = tsub.add_parser('inspect', help='print span trees + '
                                         'continuity verdicts')
    pt.add_argument('journal', metavar='FLIGHT.jsonl')
    pt.add_argument('--trace-id', metavar='TID',
                    help='restrict to one trace (default: all)')

    p = sub.add_parser('postmortem', help='validate/dump POSTMORTEM_* '
                                          'artifacts')
    psub = p.add_subparsers(dest='postmortem_command', required=True)
    pp = psub.add_parser('validate', help='schema-check a post-mortem')
    pp.add_argument('file', metavar='POSTMORTEM.json')
    pp = psub.add_parser('dump', help='schema-check + render a '
                                      'post-mortem')
    pp.add_argument('file', metavar='POSTMORTEM.json')

    p = sub.add_parser('bench', help='host-performance lab: run the '
                                     'curated suite / gate two runs')
    bsub = p.add_subparsers(dest='bench_command', required=True)
    pb = bsub.add_parser('run', help='run the suite; write '
                                     'BENCH_<label>.json')
    pb.add_argument('--fast', action='store_true',
                    help='smoke subset, single repeat (CI mode)')
    pb.add_argument('--repeats', type=int, default=None, metavar='N',
                    help='timing repeats per case (default 3, '
                         '--fast default 1)')
    pb.add_argument('--cases', metavar='A,B,...',
                    help='restrict to named cases (see `bench list`)')
    pb.add_argument('--label', default='local',
                    help='label embedded in the artifact and its '
                         'default filename (default local)')
    pb.add_argument('--out', metavar='OUT.json',
                    help='artifact path (default BENCH_<label>.json)')
    pb.add_argument('--profile', action='store_true',
                    help='run one extra profiled repeat per case and '
                         'embed the host-time attribution')
    pb.add_argument('--deep-profile', action='store_true',
                    help='profiled repeat also records cProfile top '
                         'functions (implies --profile)')
    pb.add_argument('--isolate', action='store_true',
                    help='run each timing repeat in its own worker '
                         'process (repro.jobs farm, sequential), '
                         'removing in-process cross-talk between '
                         'repeats')
    pb.add_argument('--isolate-timeout', type=float, default=None,
                    metavar='SECONDS',
                    help='per-repeat wall-clock budget with --isolate')
    pb = bsub.add_parser('compare', help='diff two bench artifacts; '
                                         '--gate exits 2 on regression')
    pb.add_argument('a')
    pb.add_argument('b')
    pb.add_argument('--gate', action='store_true',
                    help='exit 2 when B regresses beyond the noise-aware '
                         'thresholds')
    pb.add_argument('--threshold', type=float, default=0.25,
                    help='relative wall-time regression threshold '
                         '(default 0.25)')
    pb.add_argument('--noise-mult', type=float, default=3.0,
                    help='IQR multiple treated as noise (default 3.0)')
    pb.add_argument('--rss-threshold', type=float, default=0.50,
                    help='relative peak-RSS regression threshold '
                         '(default 0.50)')
    bsub.add_parser('list', help='show the curated suite cases')

    p = sub.add_parser('dse', help='analytical fast-path: calibrate the '
                                   'model, explore config spaces, '
                                   'simulate only the Pareto frontier')
    dsub = p.add_subparsers(dest='dse_command', required=True)

    pd = dsub.add_parser('calibrate', help='fit model coefficients '
                                           'against simulator ground '
                                           'truth; write CALIB_*.json')
    pd.add_argument('--kernels', metavar='A,B,...',
                    help='kernels to calibrate (default: the full '
                         'modeled suite)')
    pd.add_argument('--smoke', action='store_true',
                    help='small 3-kernel suite (CI mode)')
    pd.add_argument('--scale', choices=('test', 'bench'), default='test')
    pd.add_argument('--configs', metavar='V4,V16,...',
                    help='vector configs in the grid (default V4,V16)')
    pd.add_argument('--depths', metavar='4,5,8',
                    help='frame-counter depths in the grid '
                         '(default 4,5,8; must be >= 4)')
    pd.add_argument('--banks', metavar='4,16',
                    help='LLC bank counts in the grid (default 4,16)')
    pd.add_argument('--label', default='local',
                    help='label embedded in the artifact and its '
                         'default filename (default local)')
    pd.add_argument('--out', metavar='OUT.json',
                    help='artifact path (default CALIB_<label>.json)')
    pd.add_argument('--store', default='.repro-store', metavar='DIR',
                    help='result store for ground truth '
                         '(default .repro-store)')
    pd.add_argument('--jobs', type=int, default=1, metavar='N',
                    help='max concurrent worker processes (default 1)')
    pd.add_argument('--timeout', type=float, default=None, metavar='SEC',
                    help='per-job wall-clock timeout')
    pd.add_argument('--no-cache', action='store_true',
                    help='ignore store hits; resimulate every point')
    pd.add_argument('--max-mape', type=float, default=None, metavar='PCT',
                    help='error gate: exit 2 when overall median APE '
                         'exceeds this percentage')

    pd = dsub.add_parser('explore', help='triage a config space '
                                         'analytically; simulate only '
                                         'the Pareto frontier; write '
                                         'DSE_*.json')
    pd.add_argument('benchmark', help='kernel to explore')
    pd.add_argument('--calib', metavar='CALIB.json',
                    help='calibration artifact (omit for rough '
                         'uncalibrated priors)')
    pd.add_argument('--space', choices=('default', 'small'),
                    default='default',
                    help='axes grid: default (576 points) or small '
                         '(8-point CI smoke)')
    pd.add_argument('--scale', choices=('test', 'bench'), default='test')
    pd.add_argument('--no-simulate', action='store_true',
                    help='skip frontier re-simulation (pure triage)')
    pd.add_argument('--label', default='local',
                    help='label embedded in the artifact and its '
                         'default filename (default local)')
    pd.add_argument('--out', metavar='OUT.json',
                    help='artifact path (default DSE_<label>.json)')
    pd.add_argument('--store', default='.repro-store', metavar='DIR',
                    help='result store for frontier simulations '
                         '(default .repro-store)')
    pd.add_argument('--jobs', type=int, default=1, metavar='N',
                    help='max concurrent worker processes (default 1)')
    pd.add_argument('--timeout', type=float, default=None, metavar='SEC',
                    help='per-job wall-clock timeout')
    pd.add_argument('--no-cache', action='store_true',
                    help='ignore store hits; resimulate the frontier')

    pd = dsub.add_parser('predict', help='predict one point in closed '
                                         'form (no simulation)')
    pd.add_argument('benchmark')
    pd.add_argument('config')
    pd.add_argument('--scale', choices=('test', 'bench'), default='test')
    pd.add_argument('--calib', metavar='CALIB.json',
                    help='calibration artifact (omit for rough '
                         'uncalibrated priors)')
    pd.add_argument('--frame-counters', type=int, default=None,
                    metavar='N')
    pd.add_argument('--llc-banks', type=int, default=None, metavar='N')
    pd.add_argument('--noc-width', type=int, default=None, metavar='W',
                    help='NoC link width in words')
    pd.add_argument('--dram-bandwidth', type=float, default=None,
                    metavar='WPC', help='DRAM words per cycle')

    pd = dsub.add_parser('report', help='validate + render a CALIB_*/'
                                        'DSE_* artifact')
    pd.add_argument('file')

    sub.add_parser('version', help='print package version + provenance '
                                   'salts')

    p = sub.add_parser('report', help='validate + summarize a run report')
    p.add_argument('file')

    p = sub.add_parser('compare', help='diff two run reports; nonzero '
                                       'exit on regression')
    p.add_argument('a')
    p.add_argument('b')
    p.add_argument('--threshold', type=float, default=0.02,
                   help='relative regression threshold (default 0.02)')

    args = parser.parse_args(argv)
    return {'list': cmd_list, 'run': cmd_run, 'figure': cmd_figure,
            'experiment': cmd_experiment, 'sweep': cmd_sweep,
            'serve': cmd_serve, 'fleet': cmd_fleet, 'top': cmd_top,
            'trace': cmd_trace, 'postmortem': cmd_postmortem,
            'report': cmd_report,
            'compare': cmd_compare, 'bench': cmd_bench, 'dse': cmd_dse,
            'version': cmd_version}[args.command](args)


if __name__ == '__main__':
    sys.exit(main())
