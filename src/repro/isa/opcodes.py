"""Opcode definitions for the Rockcress mini-ISA.

The ISA is an RV-G-like subset plus the software-defined vector (SDV)
extension from the paper (Section 2) and a small fixed-width per-core SIMD
(PCV) extension standing in for the RISC-V vector extension used in the
paper's PCV configurations.

Opcodes are plain integers (not Enum members) because the simulator
dispatches on them in its hottest loop.
"""

from __future__ import annotations

# --- integer ALU -----------------------------------------------------------
ADD = 1
SUB = 2
MUL = 3
DIV = 4
REM = 5
AND = 6
OR = 7
XOR = 8
SLL = 9
SRL = 10
SLT = 11
ADDI = 12
ANDI = 13
ORI = 14
XORI = 15
SLLI = 16
SRLI = 17
SLTI = 18
LI = 19
MV = 20

# --- floating point --------------------------------------------------------
FADD = 30
FSUB = 31
FMUL = 32
FDIV = 33
FSQRT = 34
FMIN = 35
FMAX = 36
FMA = 37  # rd = rs1 * rs2 + rd
FABS = 38
FNEG = 39
FLT = 40  # int rd = (rs1 < rs2)
FLE = 41
FEQ = 42
FCVT_WS = 43  # float -> int
FCVT_SW = 44  # int -> float

# --- memory ----------------------------------------------------------------
LW = 50  # global load: rd <- mem[rs1 + imm]
SW = 51  # global store (non-blocking): mem[rs1 + imm] <- rs2
LWSP = 52  # scratchpad load: rd <- spad[rs1 + imm]
SWSP = 53  # scratchpad store: spad[rs1 + imm] <- rs2
SWREM = 54  # remote scratchpad store: core[rs2].spad[rd + imm] <- rs1

# --- control flow ----------------------------------------------------------
BEQ = 60
BNE = 61
BLT = 62
BGE = 63
J = 64
JAL = 65
JR = 66

# --- system ----------------------------------------------------------------
NOP = 70
HALT = 71
BARRIER = 72  # global barrier across all active tiles
CSRW = 73
CSRR = 74
PRINT = 75  # debug aid; no architectural effect

# --- software-defined vector extension -------------------------------------
VCONFIG = 80  # enter/update vector mode from a group descriptor (rs1 = handle)
DEVEC = 81  # scalar core: disband the group (broadcast PC over inet)
VISSUE = 82  # scalar core: launch a microthread at absolute PC `imm`
VEND = 83  # terminates a microthread (executed by expander/vector cores)
VLOAD = 84  # scalar core wide load; see Instr.ex layout in instruction.py
FRAME_START = 85  # rd <- scratchpad offset of the (now ready) head frame
REMEM = 86  # free the head frame
PRED_EQ = 87  # per-core predication: flag <- (rs1 == rs2)
PRED_NEQ = 88  # flag <- (rs1 != rs2)

# --- per-core SIMD (PCV) extension -----------------------------------------
VL4 = 90  # vrd <- spad[rs1 + imm : +4]
VS4 = 91  # spad[rs1 + imm : +4] <- vrs (held in rd slot)
VADD4 = 92
VSUB4 = 93
VMUL4 = 94
VFMA4 = 95  # vrd += vrs1 * vrs2
VBCAST = 96  # vrd <- broadcast(rs1)
VREDSUM4 = 97  # rd <- sum(vrs1)

# --- GPU-only (SIMT) ---------------------------------------------------------
VOTE_ANY = 98  # rd <- broadcast(any active lane has rs1 != 0); warp vote

# CSR numbers ---------------------------------------------------------------
CSR_VCONFIG = 0
CSR_FRAME_CFG = 1  # packed (frame_size, num_frames) via assembler helper
CSR_TID = 2  # thread id within the vector group (0 for scalar)
CSR_GROUP_SIZE = 3  # number of execution lanes in the group
CSR_COREID = 4  # flat core id in the fabric
CSR_NCORES = 5  # number of active cores in this run
CSR_GROUP_ID = 6  # id of the vector group this core belongs to
CSR_NGROUPS = 7  # number of vector groups configured in the fabric

_INT_ALU = frozenset([ADD, SUB, AND, OR, XOR, SLL, SRL, SLT, ADDI, ANDI, ORI,
                      XORI, SLLI, SRLI, SLTI, LI, MV])
_FP_ALU = frozenset([FADD, FSUB, FMIN, FMAX, FABS, FNEG, FLT, FLE, FEQ,
                     FCVT_WS, FCVT_SW])
_FP_MUL = frozenset([FMUL, FMA])
_BRANCHES = frozenset([BEQ, BNE, BLT, BGE])
_JUMPS = frozenset([J, JAL, JR])
_SIMD = frozenset([VL4, VS4, VADD4, VSUB4, VMUL4, VFMA4, VBCAST, VREDSUM4])
_STORES = frozenset([SW, SWSP, SWREM, VS4])
_CONTROL = _BRANCHES | _JUMPS

#: Execution latency (cycles from issue to writeback) per opcode, mirroring
#: Table 1a.  Opcodes not listed complete in 1 cycle or are handled specially
#: (memory ops, frame_start).
LATENCY = {
    MUL: 2,
    DIV: 20,
    REM: 20,
    FADD: 3,
    FSUB: 3,
    FMIN: 3,
    FMAX: 3,
    FABS: 1,
    FNEG: 1,
    FLT: 3,
    FLE: 3,
    FEQ: 3,
    FCVT_WS: 3,
    FCVT_SW: 3,
    FMUL: 3,
    FMA: 3,
    FDIV: 20,
    FSQRT: 20,
    VADD4: 3,
    VSUB4: 3,
    VMUL4: 3,
    VFMA4: 3,
    VREDSUM4: 3,
    VBCAST: 1,
}

NAMES = {v: k for k, v in list(globals().items())
         if isinstance(v, int) and k.isupper() and not k.startswith('CSR_')
         and not k.startswith('_')}


def is_branch(op: int) -> bool:
    return op in _BRANCHES


def is_jump(op: int) -> bool:
    return op in _JUMPS


def is_control(op: int) -> bool:
    return op in _CONTROL


def is_store(op: int) -> bool:
    return op in _STORES


def is_simd(op: int) -> bool:
    return op in _SIMD


def name(op: int) -> str:
    """Human-readable mnemonic for an opcode int."""
    return NAMES.get(op, f'op{op}').lower()
