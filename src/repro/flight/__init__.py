"""repro.flight — fleet-wide tracing, black box, and anomaly detection.

Production fleets are debugged with distributed traces and
post-mortems, not per-shard log files.  This package closes that gap
for the simulated fleet:

* :mod:`~repro.flight.spans` — the span model (one tree per
  ``trace_id``) and the JSONL flight journal;
* :mod:`~repro.flight.recorder` — the bounded black-box event ring;
* :mod:`~repro.flight.postmortem` — schema-checked
  ``POSTMORTEM_*.json`` artifacts on crash / deadlock / SLO-fail;
* :mod:`~repro.flight.anomaly` — EWMA rolling-z-score detection over
  observe-plane snapshot streams;
* :mod:`~repro.flight.merge` — merging journals into one
  Perfetto-loadable trace (router track + one track group per shard);
* :mod:`~repro.flight.collect` — :class:`FleetFlight`, the router-side
  collector that ties it all to a :class:`~repro.fleet.FleetRouter`.

CLI: ``repro fleet --flight``, ``repro trace``, ``repro postmortem``.
"""

from .anomaly import AnomalyDetector, feed_fleet_epoch
from .collect import FleetFlight
from .merge import merged_chrome_trace, write_merged_trace
from .postmortem import (POSTMORTEM_KIND, POSTMORTEM_SCHEMA,
                         build_postmortem, load_postmortem,
                         postmortem_path, render_postmortem,
                         save_postmortem, validate_postmortem)
from .recorder import EVENT_KINDS, FlightRecorder
from .spans import (JOURNAL_KIND, JournalError, check_continuity,
                    make_span, read_journal, render_tree, shard_track,
                    write_journal)

__all__ = [
    'AnomalyDetector', 'feed_fleet_epoch',
    'FleetFlight',
    'merged_chrome_trace', 'write_merged_trace',
    'POSTMORTEM_KIND', 'POSTMORTEM_SCHEMA', 'build_postmortem',
    'load_postmortem', 'postmortem_path', 'render_postmortem',
    'save_postmortem', 'validate_postmortem',
    'EVENT_KINDS', 'FlightRecorder',
    'JOURNAL_KIND', 'JournalError', 'check_continuity', 'make_span',
    'read_journal', 'render_tree', 'shard_track', 'write_journal',
]
