"""Figures 12 and 13: CPI stacks.

Figure 12: as NV_PF core counts grow, frame (memory) stalls come to
dominate the issue stage.  Figure 13: V4 relieves memory stalls better
than doubling DRAM bandwidth for several benchmarks.
"""

from repro.harness.figures import (fig12_cpi_by_cores, fig13_cpi_bandwidth,
                                   render_cpi)

from conftest import emit


def test_fig12_cpi_vs_cores(benchmark, cache):
    table = benchmark.pedantic(lambda: fig12_cpi_by_cores(cache),
                               rounds=1, iterations=1)
    emit(render_cpi(table, 'Figure 12: CPI stacks vs core count (NV_PF)'))
    # memory stalls grow with core count for the bandwidth-bound majority
    grew = 0
    for b, cfgs in table.items():
        if cfgs['NV_PF_64']['frame'] > cfgs['NV_PF_1']['frame'] * 1.5:
            grew += 1
    assert grew >= 8, f'only {grew} benchmarks saw memory stalls grow'


def test_fig13_bandwidth_vs_vectors(benchmark, cache):
    table = benchmark.pedantic(lambda: fig13_cpi_bandwidth(cache),
                               rounds=1, iterations=1)
    emit(render_cpi(table,
                    'Figure 13: CPI stacks, NV_PF vs 2x DRAM BW vs V4'))
    # 2x bandwidth reduces frame stalls for bandwidth-bound benchmarks
    helped = sum(1 for cfgs in table.values()
                 if cfgs['2X']['frame'] < cfgs['B']['frame'] * 0.95)
    assert helped >= 6
    # V4 cuts expander-side frame stalls below the baseline's on average
    avg_b = sum(c['B']['frame'] for c in table.values()) / len(table)
    avg_v = sum(c['V4']['frame'] for c in table.values()) / len(table)
    assert avg_v < avg_b
