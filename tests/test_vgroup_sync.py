"""Tests for group layout planning, inet queues, and the sync bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (GroupDescriptor, InetQueue, plan_groups,
                        serpentine_order, utilization)
from repro.core.sync import (ahead_offset, instruction_delay_bound,
                             num_active_frames, safe_runahead)
from repro.core.vgroup import (ROLE_EXPANDER, ROLE_SCALAR, ROLE_VECTOR)
from repro.manycore.noc import hops_core_to_core


class TestSerpentine:
    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_consecutive_tiles_are_adjacent(self, w, h):
        order = serpentine_order(w, h)
        assert sorted(order) == list(range(w * h))
        for a, b in zip(order, order[1:]):
            assert hops_core_to_core(a, b, w) == 1

    def test_8x8_starts_at_origin(self):
        order = serpentine_order(8, 8)
        assert order[0] == 0
        assert order[8] == 15  # second row starts at the right edge


class TestGroupPlanning:
    def test_v4_on_64_cores_matches_paper(self):
        """Paper Section 6.2: V4 uses 94% of tiles, V16 uses 80%."""
        groups, idle = plan_groups(8, 8, 4)
        assert len(groups) == 12
        assert len(idle) == 4
        assert abs(utilization(8, 8, 4) - 0.94) < 0.01

    def test_v16_on_64_cores_matches_paper(self):
        groups, idle = plan_groups(8, 8, 16)
        assert len(groups) == 3
        assert len(idle) == 13
        assert abs(utilization(8, 8, 16) - 0.80) < 0.01

    def test_groups_are_disjoint(self):
        groups, idle = plan_groups(8, 8, 4)
        seen = set()
        for g in groups:
            for t in g.tiles:
                assert t not in seen
                seen.add(t)
        assert seen.isdisjoint(idle)

    def test_max_groups_respected(self):
        groups, idle = plan_groups(8, 8, 4, max_groups=3)
        assert len(groups) == 3
        assert len(idle) == 64 - 15

    def test_roles(self):
        g = GroupDescriptor(0, [10, 11, 12, 13])
        assert g.role_of(10) == ROLE_SCALAR
        assert g.role_of(11) == ROLE_EXPANDER
        assert g.role_of(13) == ROLE_VECTOR
        assert g.scalar == 10
        assert g.expander == 11
        assert g.lanes == [11, 12, 13]
        assert g.num_lanes == 3

    def test_path_successors(self):
        g = GroupDescriptor(0, [5, 6, 7])
        assert g.successor(5) == 6
        assert g.successor(6) == 7
        assert g.successor(7) == -1

    def test_lane_index_and_hops(self):
        g = GroupDescriptor(0, [5, 6, 7, 8])
        assert g.lane_index(6) == 0
        assert g.lane_index(8) == 2
        assert g.hop_of(5) == 0
        assert g.hop_of(8) == 3


class TestInetQueue:
    def test_hop_latency_hides_message_one_cycle(self):
        q = InetQueue(capacity=2, hop_latency=1)
        q.push(10, 'inst', 'payload')
        assert q.peek(10) is None
        assert q.peek(11) == ('inst', 'payload')

    def test_capacity_enforced(self):
        q = InetQueue(capacity=2)
        q.push(0, 'inst', 1)
        q.push(0, 'inst', 2)
        assert not q.can_accept()
        with pytest.raises(RuntimeError):
            q.push(0, 'inst', 3)

    def test_fifo_order(self):
        q = InetQueue(capacity=4)
        q.push(0, 'inst', 'a')
        q.push(0, 'inst', 'b')
        assert q.pop(5) == ('inst', 'a')
        assert q.pop(5) == ('inst', 'b')

    def test_pop_in_flight_raises(self):
        q = InetQueue(capacity=2, hop_latency=1)
        q.push(10, 'inst', 'x')
        with pytest.raises(RuntimeError):
            q.pop(10)

    def test_next_ready_cycle(self):
        q = InetQueue()
        assert q.next_ready_cycle() is None
        q.push(7, 'inst', 'x')
        assert q.next_ready_cycle() == 8


class TestSyncBounds:
    def test_delay_bound_formula(self):
        # 5-tile path, 2-entry queues, 8 buffers, 8 ROB entries
        assert instruction_delay_bound(5, 2, 8, 8) == 4 * 2 + 8 + 8

    def test_num_active_frames_ceil(self):
        assert num_active_frames(24, 10) == 3
        assert num_active_frames(20, 10) == 2

    def test_bad_frame_length_rejected(self):
        with pytest.raises(ValueError):
            num_active_frames(10, 0)

    def test_ahead_offset(self):
        assert ahead_offset(5, 1, 2) == 2

    def test_safe_runahead_clamps_low(self):
        # tiny microthreads make the paper's formula go negative; we clamp
        assert safe_runahead(17, 4, max_frames=5, inet_queue=2) >= 1

    def test_safe_runahead_clamps_high(self):
        # huge microthreads would allow large runahead; the structural cap
        # (max_frames - inet_queue - 1) still applies
        r = safe_runahead(3, 1000, max_frames=5, inet_queue=2)
        assert r == 2

    @given(st.integers(2, 20), st.integers(1, 200))
    @settings(max_examples=50, deadline=None)
    def test_safe_runahead_always_fits_window(self, tiles, ipf):
        r = safe_runahead(tiles, ipf, max_frames=5, inet_queue=2)
        assert 1 <= r <= 5 - 2
