"""DeadlockError must carry a per-tile wait-state dump naming the culprit."""

import pytest

from repro.core import GroupDescriptor
from repro.isa import Assembler, opcodes as op
from repro.manycore import DeadlockError, Fabric, small_config

from .conftest import pack_frame_cfg


def _wedge_vconfig(fabric):
    """Core 0 waits at vconfig for a group whose other members halt."""
    a = Assembler()
    a.csrr('x1', op.CSR_COREID)
    a.bne('x1', 'x0', 'other')
    a.li('x3', pack_frame_cfg(16, 5))
    a.csrw(op.CSR_FRAME_CFG, 'x3')
    a.li('x5', 0)
    a.vconfig('x5')
    a.halt()
    a.bind('other')
    a.halt()
    fabric.register_group(GroupDescriptor(0, [0, 1, 2]))
    fabric.load_program(a.finish(), active_cores=[0, 1])


class TestDeadlockDump:
    def test_dump_names_the_wedged_tile(self):
        fabric = Fabric(small_config())
        _wedge_vconfig(fabric)
        with pytest.raises(DeadlockError) as exc_info:
            fabric.run()
        msg = str(exc_info.value)
        # the wedged tile, by id, with its blocking instruction
        assert 'core 0' in msg
        assert 'vconfig' in msg
        # and the structural state the issue asks for
        assert 'frames:' in msg
        assert 'inet-depth=' in msg
        # halted tiles are not in the dump — only the stuck ones
        assert 'core 1' not in msg

    def test_dump_reports_frame_and_queue_state(self):
        fabric = Fabric(small_config())
        _wedge_vconfig(fabric)
        with pytest.raises(DeadlockError) as exc_info:
            fabric.run()
        line = [ln for ln in str(exc_info.value).splitlines()
                if ln.strip().startswith('core 0')][0]
        assert 'head=' in line and 'open=' in line
        assert 'lq=' in line
        assert 'blocked-on:' in line

    def test_wait_state_dump_without_raising(self):
        """The dump is also available as a plain inspection API."""
        fabric = Fabric(small_config())
        dump = fabric.wait_state_dump()
        assert 'deadlock' in dump
