"""Static decode annotations: register read/write sets per instruction.

The simulator's scoreboard needs, for every instruction, which scalar and
SIMD registers it reads and writes.  We compute these once per program (at
``Program`` construction via :func:`annotate_program`) so the per-cycle hot
path only walks precomputed tuples.
"""

from __future__ import annotations

from . import opcodes as op
from .instruction import Instr, X0

_EMPTY = ()


def annotate(inst: Instr) -> None:
    """Attach ``reads``/``writes``/``vreads``/``vwrites`` tuples to ``inst``."""
    o = inst.op
    rd, rs1, rs2 = inst.rd, inst.rs1, inst.rs2
    reads = _EMPTY
    writes = _EMPTY
    vreads = _EMPTY
    vwrites = _EMPTY

    if o in (op.ADD, op.SUB, op.MUL, op.DIV, op.REM, op.AND, op.OR, op.XOR,
             op.SLL, op.SRL, op.SLT, op.FADD, op.FSUB, op.FMUL, op.FDIV,
             op.FMIN, op.FMAX, op.FLT, op.FLE, op.FEQ):
        reads, writes = (rs1, rs2), (rd,)
    elif o in (op.ADDI, op.ANDI, op.ORI, op.XORI, op.SLLI, op.SRLI, op.SLTI):
        reads, writes = (rs1,), (rd,)
    elif o == op.LI:
        writes = (rd,)
    elif o in (op.MV, op.FABS, op.FNEG, op.FSQRT, op.FCVT_WS, op.FCVT_SW):
        reads, writes = (rs1,), (rd,)
    elif o == op.FMA:
        reads, writes = (rs1, rs2, rd), (rd,)
    elif o in (op.LW, op.LWSP):
        reads, writes = (rs1,), (rd,)
    elif o in (op.SW, op.SWSP):
        reads = (rs1, rs2)
    elif o == op.SWREM:
        reads = (rd, rs1, rs2)
    elif o in (op.BEQ, op.BNE, op.BLT, op.BGE, op.PRED_EQ, op.PRED_NEQ):
        reads = (rs1, rs2)
    elif o == op.JAL:
        writes = (rd,)
    elif o == op.JR:
        reads = (rs1,)
    elif o in (op.CSRW, op.VCONFIG):
        reads = (rs1,)
    elif o == op.CSRR:
        writes = (rd,)
    elif o == op.VLOAD:
        reads = (rs1, rs2)
    elif o == op.FRAME_START:
        writes = (rd,)
    elif o == op.PRINT:
        reads = (rs1,)
    elif o == op.VL4:
        reads, vwrites = (rs1,), (rd,)
    elif o == op.VS4:
        reads, vreads = (rs1,), (rd,)
    elif o in (op.VADD4, op.VSUB4, op.VMUL4):
        vreads, vwrites = (rs1, rs2), (rd,)
    elif o == op.VFMA4:
        vreads, vwrites = (rs1, rs2, rd), (rd,)
    elif o == op.VBCAST:
        reads, vwrites = (rs1,), (rd,)
    elif o == op.VREDSUM4:
        vreads, writes = (rs1,), (rd,)
    elif o == op.VOTE_ANY:
        reads, writes = (rs1,), (rd,)
    # J, NOP, HALT, BARRIER, DEVEC, VISSUE, VEND, REMEM: no registers

    inst.reads = tuple(r for r in reads if r != X0)
    inst.writes = tuple(w for w in writes if w != X0)
    inst.vreads = vreads
    inst.vwrites = vwrites


def annotate_program(instrs) -> None:
    for inst in instrs:
        annotate(inst)
