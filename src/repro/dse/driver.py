"""Design-space exploration: analytical triage, then simulate the frontier.

The driver evaluates every point of a config space with the calibrated
:class:`~repro.model.analytic.AnalyticModel` (microseconds per point),
extracts the Pareto frontier over (predicted cycles, predicted energy,
area proxy), and re-simulates *only* the frontier with the discrete
simulator through :mod:`repro.jobs` — content-addressed and resumable,
so a re-run after an interrupt costs nothing.  The result is a
schema-checked ``DSE_*.json``: the validated frontier with simulated
cycles next to the predictions, triage statistics (how many simulations
the model saved), and full provenance.

The area proxy charges one unit per occupied tile and folds in the
sized-up uncore (LLC banks, NoC link width, DRAM pin bandwidth) so that
"smaller fabric, nearly as fast" points survive on the frontier instead
of being dominated by the maxed-out machine.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..jobs.engine import SweepEngine
from ..jobs.spec import JobSpec
from ..manycore.config import DEFAULT_CONFIG, MachineConfig
from ..model.analytic import (AnalyticModel, ModelError, Prediction)
from .pareto import pareto_frontier
from .space import DEFAULT_AXES, DesignPoint, enumerate_space, space_size

DSE_SCHEMA_VERSION = 1
DSE_KIND = 'repro-dse-report'

#: Objective names, in vector order (all minimized).
OBJECTIVES: Tuple[str, ...] = ('cycles', 'energy', 'area')


class DseError(ValueError):
    """A design-space run could not produce a valid report."""


def area_proxy(point: DesignPoint, tiles_used: int) -> float:
    """Relative silicon cost: tiles plus the sized-up uncore."""
    return float(tiles_used + point.llc_banks
                 + 2 * point.noc_width_words + 2 * point.dram_bandwidth)


@dataclass
class TriagedPoint:
    """One feasible design point with its analytical evaluation."""

    point: DesignPoint
    prediction: Prediction

    @property
    def objectives(self) -> Tuple[float, float, float]:
        return (self.prediction.cycles, self.prediction.energy_pj,
                area_proxy(self.point, self.prediction.tiles_used))


def triage_space(model: AnalyticModel, benchmark: str,
                 axes: Dict[str, Sequence] = DEFAULT_AXES,
                 scale: str = 'test',
                 base: MachineConfig = DEFAULT_CONFIG,
                 ) -> Tuple[List[TriagedPoint], List[Tuple[DesignPoint, str]]]:
    """Predict every point analytically; no simulation.

    Returns ``(feasible, infeasible)`` where infeasible points carry the
    reason the code generator would reject them.
    """
    feasible: List[TriagedPoint] = []
    infeasible: List[Tuple[DesignPoint, str]] = []
    for pt in enumerate_space(axes):
        try:
            pred = model.predict(benchmark, pt.config, scale=scale,
                                 machine=pt.machine(base))
        except ModelError as e:
            infeasible.append((pt, str(e)))
            continue
        feasible.append(TriagedPoint(pt, pred))
    return feasible, infeasible


def run_dse(model: AnalyticModel, benchmark: str,
            axes: Dict[str, Sequence] = DEFAULT_AXES,
            scale: str = 'test',
            base: MachineConfig = DEFAULT_CONFIG,
            simulate: bool = True,
            jobs: int = 1, store=None, timeout: Optional[float] = None,
            use_cache: bool = True,
            label: str = 'local',
            progress: Optional[Callable] = None,
            log: Callable[[str], None] = lambda s: None) -> dict:
    """Triage the space, simulate the frontier, emit the DSE document."""
    n_space = space_size(axes)
    feasible, infeasible = triage_space(model, benchmark, axes=axes,
                                        scale=scale, base=base)
    if not feasible:
        first = f'; first: {infeasible[0][1]}' if infeasible else ''
        raise DseError(f'no feasible point in the {n_space}-point space '
                       f'for {benchmark}{first}')
    log(f'triage: {len(feasible)} feasible / {n_space} point(s) '
        f'({len(infeasible)} infeasible) evaluated analytically')

    idx = pareto_frontier([tp.objectives for tp in feasible])
    frontier = [feasible[i] for i in idx]
    frontier.sort(key=lambda tp: tp.objectives)
    log(f'pareto frontier: {len(frontier)} point(s) over '
        f'(cycles, energy, area)')

    sim_by_key: Dict[str, object] = {}
    launched = 0
    n_sim_failed = 0
    if simulate:
        specs = [tp.point.spec(benchmark, scale=scale, base=base)
                 for tp in frontier]
        engine = SweepEngine(jobs=jobs, timeout=timeout, store=store,
                             use_cache=use_cache, progress=progress)
        outcomes = engine.execute(specs)
        launched = engine.launched
        for o in outcomes:
            if o.ok:
                sim_by_key[o.key] = o.result
            else:
                n_sim_failed += 1
                reason = (o.error.strip().splitlines()[-1]
                          if o.error else o.status)
                log(f'frontier simulation {o.status}: {o.spec.label()}: '
                    f'{reason}')

    entries: List[dict] = []
    apes: List[float] = []
    for tp in frontier:
        cyc, energy, area = tp.objectives
        entry = {
            'point': tp.point.as_dict(),
            'predicted_cycles': round(cyc, 3),
            'predicted_energy_pj': round(energy, 3),
            'area': round(area, 3),
            'tiles_used': tp.prediction.tiles_used,
        }
        if simulate:
            key = tp.point.spec(benchmark, scale=scale, base=base).key()
            result = sim_by_key.get(key)
            if result is not None:
                actual = int(result.cycles)
                ape = (abs(cyc - actual) / actual * 100.0 if actual
                       else 0.0)
                entry['simulated_cycles'] = actual
                entry['sim_ape_pct'] = round(ape, 3)
                apes.append(ape)
        entries.append(entry)

    n_simulated = len(apes) + n_sim_failed if simulate else 0
    doc = build_dse_report(
        benchmark=benchmark, scale=scale, label=label,
        axes={k: list(v) for k, v in axes.items()},
        space={'n_space': n_space, 'n_feasible': len(feasible),
               'n_infeasible': len(infeasible)},
        triage={'n_space': n_space, 'n_frontier': len(frontier),
                'n_simulated': n_simulated,
                'n_sim_failed': n_sim_failed,
                'workers_launched': launched,
                'sim_reduction': round(n_space / n_simulated, 2)
                if n_simulated else 0.0},
        validation={'n_points': len(apes),
                    'median_ape_pct': round(_median(apes), 3),
                    'worst_ape_pct': round(max(apes), 3) if apes else 0.0},
        frontier=entries,
        calibration={'label': model.label,
                     'calibrated': bool(model.calibrated)})
    validate_dse_report(doc)
    return doc


def _median(values: Sequence[float]) -> float:
    vs = sorted(values)
    n = len(vs)
    if not n:
        return 0.0
    mid = n // 2
    return vs[mid] if n % 2 else (vs[mid - 1] + vs[mid]) / 2.0


# ------------------------------------------------------------------- artifact
DSE_SCHEMA = {
    'type': 'object',
    'required': ['schema_version', 'kind', 'label', 'generated',
                 'provenance', 'benchmark', 'scale', 'calibration',
                 'axes', 'space', 'triage', 'validation', 'frontier'],
    'properties': {
        'schema_version': {'type': 'integer',
                           'enum': [DSE_SCHEMA_VERSION]},
        'kind': {'type': 'string', 'enum': [DSE_KIND]},
        'label': {'type': 'string'},
        'generated': {'type': 'object'},
        'provenance': {
            'type': 'object',
            'required': ['code_version', 'code_version_hash',
                         'machine_hash'],
            'properties': {
                'code_version': {'type': 'integer'},
                'code_version_hash': {'type': 'string'},
                'machine_hash': {'type': 'string'},
            },
        },
        'benchmark': {'type': 'string'},
        'scale': {'type': 'string'},
        'calibration': {
            'type': 'object',
            'required': ['label', 'calibrated'],
            'properties': {
                'label': {'type': 'string'},
                'calibrated': {'type': 'boolean'},
            },
        },
        'axes': {'type': 'object'},
        'space': {
            'type': 'object',
            'required': ['n_space', 'n_feasible', 'n_infeasible'],
            'properties': {
                'n_space': {'type': 'integer', 'minimum': 0},
                'n_feasible': {'type': 'integer', 'minimum': 0},
                'n_infeasible': {'type': 'integer', 'minimum': 0},
            },
        },
        'triage': {
            'type': 'object',
            'required': ['n_space', 'n_frontier', 'n_simulated',
                         'sim_reduction'],
            'properties': {
                'n_space': {'type': 'integer', 'minimum': 0},
                'n_frontier': {'type': 'integer', 'minimum': 0},
                'n_simulated': {'type': 'integer', 'minimum': 0},
                'n_sim_failed': {'type': 'integer', 'minimum': 0},
                'workers_launched': {'type': 'integer', 'minimum': 0},
                'sim_reduction': {'type': 'number', 'minimum': 0},
            },
        },
        'validation': {
            'type': 'object',
            'required': ['n_points', 'median_ape_pct', 'worst_ape_pct'],
            'properties': {
                'n_points': {'type': 'integer', 'minimum': 0},
                'median_ape_pct': {'type': 'number', 'minimum': 0},
                'worst_ape_pct': {'type': 'number', 'minimum': 0},
            },
        },
        'frontier': {
            'type': 'array',
            'items': {
                'type': 'object',
                'required': ['point', 'predicted_cycles',
                             'predicted_energy_pj', 'area', 'tiles_used'],
                'properties': {
                    'point': {
                        'type': 'object',
                        'required': ['config', 'frame_counters',
                                     'llc_banks', 'noc_width_words',
                                     'dram_bandwidth'],
                        'properties': {
                            'config': {'type': 'string'},
                            'frame_counters': {'type': 'integer',
                                               'minimum': 1},
                            'llc_banks': {'type': 'integer', 'minimum': 1},
                            'noc_width_words': {'type': 'integer',
                                                'minimum': 1},
                            'dram_bandwidth': {'type': 'number',
                                               'minimum': 0},
                        },
                    },
                    'predicted_cycles': {'type': 'number', 'minimum': 0},
                    'predicted_energy_pj': {'type': 'number',
                                            'minimum': 0},
                    'area': {'type': 'number', 'minimum': 0},
                    'tiles_used': {'type': 'integer', 'minimum': 0},
                    'simulated_cycles': {'type': 'integer', 'minimum': 0},
                    'sim_ape_pct': {'type': 'number', 'minimum': 0},
                },
            },
        },
    },
}


class DseValidationError(ValueError):
    pass


def validate_dse_report(doc: dict) -> None:
    from ..telemetry.report import check_schema
    errors = check_schema(doc, DSE_SCHEMA)
    if errors:
        raise DseValidationError('; '.join(errors[:20]))


def build_dse_report(benchmark: str, scale: str, label: str, axes: dict,
                     space: dict, triage: dict, validation: dict,
                     frontier: List[dict], calibration: dict) -> dict:
    from ..jobs.spec import CODE_VERSION, code_version_hash, machine_hash
    from ..telemetry.report import _generated
    return {
        'schema_version': DSE_SCHEMA_VERSION,
        'kind': DSE_KIND,
        'label': label,
        'generated': _generated(),
        'provenance': {
            'code_version': CODE_VERSION,
            'code_version_hash': code_version_hash(),
            'machine_hash': machine_hash(DEFAULT_CONFIG),
        },
        'benchmark': benchmark,
        'scale': scale,
        'calibration': calibration,
        'axes': axes,
        'space': space,
        'triage': triage,
        'validation': validation,
        'frontier': frontier,
    }


def dse_path(label: str, directory: str = '.') -> str:
    """Canonical artifact name: ``DSE_<label>.json``."""
    safe = ''.join(c if c.isalnum() or c in '-_.' else '-' for c in label)
    return os.path.join(directory, f'DSE_{safe}.json')


def save_dse_report(doc: dict, path: str) -> str:
    validate_dse_report(doc)
    tmp = f'{path}.tmp'
    with open(tmp, 'w') as f:
        json.dump(doc, f, indent=1, sort_keys=True)
        f.write('\n')
    os.replace(tmp, path)
    return path


def load_dse_report(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    validate_dse_report(doc)
    return doc


def frontier_specs(doc: dict, base: MachineConfig = DEFAULT_CONFIG,
                   ) -> List[JobSpec]:
    """Figure-planner hook: the frontier as ready-to-run job specs.

    Feed these to a :class:`~repro.jobs.engine.SweepEngine` (or
    ``repro sweep``-style tooling) to regenerate or extend the frontier
    measurements — e.g. to plot simulated cycles-vs-area from the store.
    """
    return [DesignPoint.from_dict(e['point']).spec(
        doc['benchmark'], scale=doc['scale'], base=base)
        for e in doc['frontier']]


def render_dse_report(doc: dict) -> str:
    t, s, v = doc['triage'], doc['space'], doc['validation']
    prov = doc['provenance']
    cal = doc['calibration']
    lines = [
        f"dse {doc['label']}: {doc['benchmark']} @{doc['scale']} "
        f"(model: {cal['label']}"
        f"{'' if cal['calibrated'] else ', UNCALIBRATED'}; "
        f"code v{prov['code_version']} "
        f"[{prov['code_version_hash'][:8]}])",
        f"  space   {s['n_space']} point(s): {s['n_feasible']} feasible, "
        f"{s['n_infeasible']} infeasible",
        f"  triage  frontier {t['n_frontier']} | simulated "
        f"{t['n_simulated']} | reduction {t['sim_reduction']:g}x",
    ]
    if v['n_points']:
        lines.append(f"  check   frontier model error: median "
                     f"{v['median_ape_pct']:.1f}%, worst "
                     f"{v['worst_ape_pct']:.1f}% over {v['n_points']} "
                     f"simulated point(s)")
    lines.append(f"  {'config':10s} {'fc':>3s} {'banks':>5s} {'noc':>4s} "
                 f"{'dram':>5s} {'area':>7s} {'pred-cyc':>10s} "
                 f"{'sim-cyc':>9s} {'ape':>6s}")
    for e in doc['frontier']:
        p = e['point']
        sim = (f"{e['simulated_cycles']:>9d}"
               if 'simulated_cycles' in e else f"{'-':>9s}")
        ape = (f"{e['sim_ape_pct']:5.1f}%"
               if 'sim_ape_pct' in e else f"{'-':>6s}")
        lines.append(
            f"  {p['config']:10s} {p['frame_counters']:>3d} "
            f"{p['llc_banks']:>5d} {p['noc_width_words']:>4d} "
            f"{p['dram_bandwidth']:>5g} {e['area']:>7.1f} "
            f"{e['predicted_cycles']:>10.1f} {sim} {ape}")
    return '\n'.join(lines)
