"""End-to-end GPU ports: every benchmark verifies on the SIMT model."""

import pytest

from repro.harness import run_benchmark
from repro.kernels import registry


@pytest.mark.parametrize('bench_cls', registry.ALL, ids=lambda c: c.name)
def test_gpu_port_matches_reference(bench_cls):
    bench = bench_cls()
    r = run_benchmark(bench, 'GPU', bench.test_params)
    assert r.cycles > 0
    assert r.config == 'GPU'


class TestGpuShape:
    def test_gpu_likes_compute_bound_kernels(self):
        """gemm-family fares better on the GPU than bandwidth-bound
        matvecs (paper Section 6.6)."""
        def ratio(name):
            bench = registry.make(name)
            gpu = run_benchmark(bench, 'GPU', bench.test_params)
            nv = run_benchmark(bench, 'NV_PF', bench.test_params)
            return nv.cycles / gpu.cycles

        assert ratio('gemm') > ratio('gramschm')

    def test_kernel_launches_hurt_sequential_algorithms(self):
        """gramschm pays 3 launches per k on the GPU."""
        from repro.gpu.config import DEFAULT_GPU
        bench = registry.make('gramschm')
        r = run_benchmark(bench, 'GPU', bench.test_params)
        n = bench.test_params['n']
        assert r.cycles >= 3 * n * DEFAULT_GPU.kernel_launch_overhead
