"""GPU (APU) model parameters, paper Table 1b."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuConfig:
    """The paper's under-provisioned APU configuration.

    The CU count follows the paper's area argument: roughly 4x more vector
    ALU lanes than the manycore has scalar ALUs per unit area, but few
    wavefronts per CU, so there is little latency-hiding headroom.
    """

    compute_units: int = 4
    wavefronts_per_cu: int = 4
    wavefront_size: int = 64
    valu_lanes: int = 16
    valu_latency: int = 4       # a 64-thread wavefront retires in 4 cycles

    cache_line_bytes: int = 64

    tcp_capacity_bytes: int = 16 * 1024    # per-CU L1
    tcp_hit_latency: int = 1
    tcp_ways: int = 16
    tcc_capacity_bytes: int = 256 * 1024   # shared L2
    tcc_hit_latency: int = 2
    tcc_ways: int = 16
    llc_capacity_bytes: int = 4 * 1024 * 1024  # shared L3
    llc_hit_latency: int = 2
    llc_ways: int = 16

    dram_latency: int = 60
    dram_bandwidth_words_per_cycle: float = 4.0

    kernel_launch_overhead: int = 300  # host dispatch + pipeline drain

    @property
    def line_words(self) -> int:
        return self.cache_line_bytes // 4

    @property
    def total_threads(self) -> int:
        return (self.compute_units * self.wavefronts_per_cu *
                self.wavefront_size)


DEFAULT_GPU = GpuConfig()
