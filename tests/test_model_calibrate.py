"""Calibration: deterministic fitting, artifact schema, real ground truth."""

import json

import pytest

from repro.jobs.engine import DONE, JobOutcome, run_job
from repro.model import AnalyticModel, FEATURES
from repro.model.analytic import ModelError
from repro.model.calibrate import (CalibValidationError, calib_path,
                                   calibration_specs, fit_coefficients,
                                   load_calib_report, run_calibration,
                                   save_calib_report, validate_calib_report)


class TestFit:
    def test_recovers_known_coefficients(self):
        X = [[1, 0, 2], [0, 1, 1], [2, 1, 0], [1, 1, 1], [3, 0, 1]]
        true = [5.0, 2.0, 7.0]
        y = [sum(c * v for c, v in zip(true, row)) for row in X]
        fit = fit_coefficients(X, y)
        assert fit == pytest.approx(true)

    def test_never_returns_negative_coefficients(self):
        # plain least squares would go negative on feature 1 here
        X = [[1, 1], [2, 2.1], [3, 3.2], [4, 4.1]]
        y = [1.0, 2.0, 3.0, 4.0]
        fit = fit_coefficients(X, y)
        assert all(c >= 0 for c in fit)

    def test_deterministic(self):
        X = [[1, 2, 3], [4, 5, 6], [7, 8, 10], [2, 1, 5]]
        y = [10.0, 20.0, 31.0, 14.0]
        assert fit_coefficients(X, y) == fit_coefficients(X, y)


class _StubResult:
    """Ground truth without a simulator: a bare cycle count."""

    def __init__(self, cycles):
        self.cycles = cycles


def _stub_outcomes():
    specs = calibration_specs(kernels=('gemm',), scale='test')
    outs = []
    for i, s in enumerate(specs):
        outs.append(JobOutcome(s, s.key(), DONE,
                               _StubResult(1000 + 17 * i)))
    return outs


class TestCalibrationDeterminism:
    def test_same_sweep_is_bit_identical_modulo_provenance(self):
        doc_a = run_calibration(_stub_outcomes(), label='det')
        doc_b = run_calibration(_stub_outcomes(), label='det')
        for d in (doc_a, doc_b):
            d.pop('generated')  # timestamped; everything else is pinned
        assert json.dumps(doc_a, sort_keys=True) == \
            json.dumps(doc_b, sort_keys=True)

    def test_failed_outcome_refuses_to_fit(self):
        outs = _stub_outcomes()
        outs[0] = JobOutcome(outs[0].spec, outs[0].key, 'failed', None,
                             error='boom')
        with pytest.raises(ModelError):
            run_calibration(outs)


class TestCalibrationArtifact:
    @pytest.fixture(scope='class')
    def doc(self):
        return run_calibration(_stub_outcomes(), label='artifact')

    def test_schema_valid_and_complete(self, doc):
        validate_calib_report(doc)
        assert set(doc['coefficients']['gemm']) == set(FEATURES)
        assert doc['overall']['n_points'] == len(doc['points'])

    def test_save_load_roundtrip(self, doc, tmp_path):
        path = calib_path('artifact', str(tmp_path))
        assert path.endswith('CALIB_artifact.json')
        save_calib_report(doc, path)
        assert load_calib_report(path) == doc

    def test_tampered_doc_is_rejected(self, doc):
        bad = json.loads(json.dumps(doc))
        del bad['coefficients']['gemm']['fill']
        with pytest.raises(CalibValidationError):
            validate_calib_report(bad)
        bad = json.loads(json.dumps(doc))
        bad['kind'] = 'not-a-calibration'
        with pytest.raises(CalibValidationError):
            validate_calib_report(bad)

    def test_model_builds_only_from_valid_doc(self, doc):
        model = AnalyticModel.from_calibration(doc)
        assert model.calibrated
        p = model.predict('gemm', 'V4', scale='test')
        assert p.calibrated and p.cycles > 0
        # a kernel outside the calibration falls back to priors
        q = model.predict('mvt', 'V4', scale='test')
        assert not q.calibrated

    def test_rejects_non_vector_config_in_suite(self):
        with pytest.raises(ValueError):
            calibration_specs(configs=('NV',))


class TestRealCalibration:
    def test_small_real_suite_meets_error_budget(self):
        # 6 real simulations: 2 depths x 2 banks + noc + dram excursions
        specs = calibration_specs(kernels=('gemm',), scale='test',
                                  configs=('V4',), depths=(4, 5),
                                  banks=(4, 16), nocs=(2,), drams=(2.0,))
        assert len(specs) == 6
        outcomes = [JobOutcome(s, s.key(), DONE, run_job(s))
                    for s in specs]
        doc = run_calibration(outcomes, label='real')
        validate_calib_report(doc)
        # the acceptance bar is 20% median APE; a single-kernel fit
        # should be far inside it
        assert doc['overall']['median_ape_pct'] <= 20.0
        assert doc['energy_scale']['gemm'] > 0
