"""Tables 1, 2 and 3: machine parameters, applications, configurations."""

from repro.gpu.config import DEFAULT_GPU
from repro.harness.configs import CONFIGS, META_CONFIGS
from repro.kernels import registry
from repro.manycore import DEFAULT_CONFIG

from conftest import emit


def test_table1_machine_parameters(benchmark):
    def render():
        lines = ['Table 1a: manycore parameters']
        for k, v in DEFAULT_CONFIG.__dict__.items():
            lines.append(f'  {k:32s} {v}')
        lines.append('Table 1b: GPU (APU) parameters')
        for k, v in DEFAULT_GPU.__dict__.items():
            lines.append(f'  {k:32s} {v}')
        return '\n'.join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    emit(text)
    assert DEFAULT_CONFIG.num_cores == 64
    assert DEFAULT_CONFIG.llc_banks == 16
    assert DEFAULT_GPU.compute_units == 4
    assert DEFAULT_GPU.wavefront_size == 64


def test_table2_benchmark_suite(benchmark):
    def render():
        lines = ['Table 2: PolyBench/GPU applications (scaled inputs)']
        for cls in registry.POLYBENCH:
            b = cls()
            lines.append(f'  {b.name:10s} test={b.test_params} '
                         f'bench={b.bench_params}')
        return '\n'.join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    emit(text)
    assert len(registry.POLYBENCH) == 15


def test_table3_configurations(benchmark):
    def render():
        lines = ['Table 3: benchmark configurations']
        for name, c in CONFIGS.items():
            lines.append(f'  {name:12s} kind={c.kind:7s} lanes={c.lanes:2d} '
                         f'prefetch={c.prefetch} pcv={c.pcv} '
                         f'long_lines={c.long_lines}')
        for name, m in META_CONFIGS.items():
            lines.append(f'  {name:12s} best of {m.members}')
        return '\n'.join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    emit(text)
    for required in ('NV', 'NV_PF', 'PCV_PF', 'V4', 'V16', 'GPU'):
        assert required in CONFIGS
    assert 'BEST_V' in META_CONFIGS
