"""corr and covar: column statistics + a D^T.D product.

Both compute per-column statistics in MIMD pre-kernels (the reductions are
column-strided and small compared to the O(n^2 m) product), materialize the
transpose (the paper's "Transpose" memory opt), and run the product with
the matmul-like template.  corr additionally normalizes columns and pins
the diagonal to 1 (PolyBench semantics); both use the paper's "kernel
fusion" idea by folding centering/scaling into one pass.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Assembler, Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import _strided_tiles, mimd_matmul_like, mimd_transpose
from .vector_templates import MatTerm, emit_fconst, emit_fp_zero, \
    emit_matmul_like


def _emit_column_stats(a: Assembler, *, data: int, m: int, n: int,
                       scale: bool) -> None:
    """Center (and for corr: scale) every column of an m x n matrix.

    covar: D[k][j] -= mean_j.
    corr:  D[k][j] = (D[k][j] - mean_j) / (sqrt(m) * std_j), with the
    PolyBench epsilon guard (std <= 0.1 -> 1.0).
    """
    emit_fconst(a, 'f12', float(m))
    if scale:
        emit_fconst(a, 'f13', 0.1)
        emit_fconst(a, 'f14', 1.0)
        emit_fconst(a, 'f15', float(np.sqrt(float(m))))
    with _strided_tiles(a, n):
        # x3 = column j; walk addresses with stride n
        a.li('x5', data)
        a.add('x5', 'x5', 'x3')
        emit_fp_zero(a, 'f8')   # sum
        emit_fp_zero(a, 'f9')   # sum of squares
        a.mv('x6', 'x5')
        with a.for_count('x7', m):
            a.lw('f1', 'x6', 0)
            a.fadd('f8', 'f8', 'f1')
            if scale:
                a.fma('f9', 'f1', 'f1')
            a.addi('x6', 'x6', n)
        a.fdiv('f10', 'f8', 'f12')          # mean
        if scale:
            a.fdiv('f9', 'f9', 'f12')       # E[x^2]
            a.fmul('f2', 'f10', 'f10')
            a.fsub('f9', 'f9', 'f2')        # variance
            a.fsqrt('f11', 'f9')            # std
            skip = a.label()
            a.flt('x8', 'f13', 'f11')       # std > 0.1 ?
            a.bne('x8', 'x0', skip.name)
            a.mv('f11', 'f14')              # epsilon guard
            a.bind(skip)
            a.fmul('f11', 'f11', 'f15')     # sqrt(m) * std
        a.mv('x6', 'x5')
        with a.for_count('x7', m):
            a.lw('f1', 'x6', 0)
            a.fsub('f1', 'f1', 'f10')
            if scale:
                a.fdiv('f1', 'f1', 'f11')
            a.sw('f1', 'x6', 0)
            a.addi('x6', 'x6', n)


def _emit_fix_diagonal(a: Assembler, *, out: int, n: int) -> None:
    """corr[i][i] = 1.0 (PolyBench sets the diagonal explicitly)."""
    emit_fconst(a, 'f14', 1.0)
    with _strided_tiles(a, n):
        a.li('x5', n + 1)
        a.mul('x5', 'x5', 'x3')
        a.li('x6', out)
        a.add('x6', 'x6', 'x5')
        a.sw('f14', 'x6', 0)


class _CorrBase(Benchmark):
    scale = True  # corr scales, covar only centers

    def setup(self, fabric: Fabric, params) -> Workspace:
        m, n = params['m'], params['n']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'data', g.random((m, n)) * 3.0)
        self.alloc_zeros(fabric, ws, 'DT', n * m)
        self.alloc_zeros(fabric, ws, 'out', n * n)
        return ws

    def _main(self, ws, params):
        m, n = params['m'], params['n']
        return dict(ni=n, nj=n, nk=m,
                    terms=[MatTerm(ws.base('DT'), m, ws.base('data'), n)],
                    out_base=ws.base('out'), out_stride=n)

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        m, n = params['m'], params['n']
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: _emit_column_stats(
            a, data=ws.base('data'), m=m, n=n, scale=self.scale))
        mb.add_kernel(lambda a: mimd_transpose(
            a, src=ws.base('data'), dst=ws.base('DT'), n=m, m=n))
        st = self._main(ws, params)
        mb.add_kernel(lambda a: mimd_matmul_like(
            a, **st, cfg=fabric.cfg, prefetch=prefetch, pcv=pcv,
            kb=min(4, st['nk'])))
        if self.scale:
            mb.add_kernel(lambda a: _emit_fix_diagonal(
                a, out=ws.base('out'), n=n))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        m, n = params['m'], params['n']
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        p.mimd_phase(lambda a: _emit_column_stats(
            a, data=ws.base('data'), m=m, n=n, scale=self.scale))
        p.mimd_phase(lambda a: mimd_transpose(
            a, src=ws.base('data'), dst=ws.base('DT'), n=m, m=n))
        st = self._main(ws, params)
        flen, pcv = self.fitted_flen(fabric, vp.lanes, vp.pcv, st['nj'],
                                     ni=st['ni'])
        emit_matmul_like(p, name=self.name, **st, kb=min(4, st['nk']),
                         flen=flen, pcv=pcv)
        if self.scale:
            p.mimd_phase(lambda a: _emit_fix_diagonal(
                a, out=ws.base('out'), n=n))
        return p.finish()


class Corr(_CorrBase):
    name = 'corr'
    scale = True
    test_params = {'m': 12, 'n': 16}
    bench_params = {'m': 24, 'n': 32}

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        return {'out': refs.correlation(ws.inputs['data'])}


class Covar(_CorrBase):
    name = 'covar'
    scale = False
    test_params = {'m': 12, 'n': 16}
    bench_params = {'m': 24, 'n': 32}

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        return {'out': refs.covariance(ws.inputs['data'])}
