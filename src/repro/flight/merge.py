"""Merge flight journals into one Perfetto-loadable Chrome trace.

Follows the layout conventions of ``repro.telemetry.trace_export`` (1
simulated cycle == 1 us, documented Trace Event JSON object form), but
at the *fleet* level: one Perfetto **process** (track group) per shard
plus a dedicated router process, so the UI's process grouping gives the
"one track group per shard plus a router track" view the fleet needs.
Within the router process, requests are laid out one per thread row
(``tid`` = req_id) so concurrent requests never stack; a shard process
carries its exec windows and their nested phase spans the same way.

Spans render as async ``b``/``e`` pairs keyed by ``trace_id`` — the
exact idiom the in-fabric exporter uses for request occupancy — which
is what makes a crash-rerouted request read as **one continuous trace**
across the router track and both shard track groups: every fragment
shares the trace_id, and Perfetto's flow/async grouping stitches them.
Anomaly events and crash/reroute markers land as instant (``i``)
events on the track they concern.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .spans import KIND_PHASE, KIND_REQUEST, TRACK_ROUTER

#: pid layout: router first, shard N at PID_SHARD_BASE + N
PID_ROUTER = 0
PID_SHARD_BASE = 1


def _track_pid(track: str) -> int:
    if track == TRACK_ROUTER:
        return PID_ROUTER
    if track.startswith('shard:'):
        return PID_SHARD_BASE + int(track.split(':', 1)[1])
    raise ValueError(f'unknown track {track!r}')


def _track_name(pid: int) -> str:
    if pid == PID_ROUTER:
        return 'fleet router'
    return f'shard {pid - PID_SHARD_BASE}'


def merged_chrome_trace(spans: List[dict],
                        anomalies: Optional[List[dict]] = None,
                        label: str = 'fleet') -> dict:
    """Build the merged fleet trace document from journal spans."""
    events: List[dict] = []
    pids = sorted({_track_pid(s['track']) for s in spans} | {PID_ROUTER})
    for pid in pids:
        events.append({'ph': 'M', 'pid': pid, 'tid': 0,
                       'name': 'process_name',
                       'args': {'name': _track_name(pid)}})
        events.append({'ph': 'M', 'pid': pid, 'tid': 0,
                       'name': 'process_sort_index',
                       'args': {'sort_index': pid}})

    # one thread row per request within each process, named by trace_id,
    # so concurrent requests render side by side instead of stacking
    named: Dict[tuple, None] = {}
    req_of_trace: Dict[str, int] = {}
    for s in spans:
        if s['kind'] == KIND_REQUEST:
            req_of_trace[s['trace_id']] = int(
                (s.get('attrs') or {}).get('req_id', len(req_of_trace)))
    for s in spans:
        tid = req_of_trace.get(s['trace_id'], 0)
        pid = _track_pid(s['track'])
        if (pid, tid) not in named:
            named[(pid, tid)] = None
            events.append({'ph': 'M', 'pid': pid, 'tid': tid,
                           'name': 'thread_name',
                           'args': {'name': s['trace_id']}})
            events.append({'ph': 'M', 'pid': pid, 'tid': tid,
                           'name': 'thread_sort_index',
                           'args': {'sort_index': tid}})

    for s in sorted(spans, key=lambda s: (s['start'], s['span_id'])):
        pid = _track_pid(s['track'])
        tid = req_of_trace.get(s['trace_id'], 0)
        end = s['end'] if s['end'] is not None else s['start'] + 1
        args = dict(s.get('attrs') or {})
        args['trace_id'] = s['trace_id']
        args['span_kind'] = s['kind']
        if s['kind'] == KIND_PHASE:
            # leaf phases are dense and strictly nested: complete events
            events.append({'ph': 'X', 'pid': pid, 'tid': tid,
                           'ts': s['start'],
                           'dur': max(1, end - s['start']),
                           'name': s['name'], 'cat': 'phase',
                           'args': args})
            continue
        common = {'pid': pid, 'tid': tid, 'cat': 'request',
                  'name': s['name'], 'id': s['trace_id']}
        events.append({'ph': 'b', 'ts': s['start'], 'args': args,
                       **common})
        events.append({'ph': 'e', 'ts': max(end, s['start'] + 1),
                       **common})

    for ev in anomalies or ():
        events.append({'ph': 'i', 'pid': PID_ROUTER, 'tid': 0,
                       'ts': ev.get('t', 0), 's': 'p',
                       'name': f'anomaly:{ev.get("signal", "?")}',
                       'cat': 'anomaly',
                       'args': {k: v for k, v in ev.items()
                                if k != 't'}})

    return {'traceEvents': events, 'displayTimeUnit': 'ms',
            'otherData': {'producer': 'repro.flight',
                          'label': label,
                          'time_unit': '1us == 1 cycle'}}


def write_merged_trace(path: str, spans: List[dict],
                       anomalies: Optional[List[dict]] = None,
                       label: str = 'fleet') -> dict:
    doc = merged_chrome_trace(spans, anomalies, label)
    with open(path, 'w') as f:
        json.dump(doc, f)
    return doc
