"""Run-report artifact: schema validation, build, render, compare, CLI."""

import copy
import json

import pytest

from repro.__main__ import main
from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import small_config
from repro.telemetry import (REPORT_SCHEMA, SCHEMA_VERSION,
                             ReportValidationError, Telemetry, build_report,
                             compare_reports, load_report, render_report,
                             validate_report)


@pytest.fixture(scope='module')
def result():
    bench = registry.make('gemm')
    params = bench.params_for('test')
    return run_benchmark(bench, 'V4', params, base_machine=small_config(),
                         telemetry=Telemetry(sample_interval=100))


@pytest.fixture(scope='module')
def report(result):
    return build_report(result)


class TestBuildAndValidate:
    def test_report_is_schema_valid(self, report):
        validate_report(report)  # must not raise

    def test_required_toplevel_fields(self, report):
        for key in REPORT_SCHEMA['required']:
            assert key in report
        assert report['schema_version'] == SCHEMA_VERSION
        assert report['benchmark'] == 'gemm'
        assert report['config'] == 'V4'

    def test_counters_carry_full_stall_taxonomy(self, report, result):
        stalls = report['counters']['stalls']
        for cause, total in result.stats.stall_breakdown().items():
            assert stalls[cause] == total
        assert report['counters']['noc_word_hops'] == \
            result.stats.noc_word_hops

    def test_telemetry_payload(self, report):
        tel = report['telemetry']
        assert tel['sample_interval'] == 100
        assert len(tel['samples']) >= 2
        hists = tel['histograms']
        for name in ('vload_issue_to_last_word', 'frame_fill_to_start',
                     'llc_bank_queue', 'noc_traversal'):
            assert hists[name]['count'] > 0, name

    def test_json_roundtrip(self, report, tmp_path):
        path = tmp_path / 'r.json'
        path.write_text(json.dumps(report))
        back = load_report(str(path))
        assert back['cycles'] == report['cycles']

    def test_to_json_method(self, result, tmp_path):
        path = tmp_path / 'out.json'
        doc = result.to_json(str(path))
        assert load_report(str(path))['cycles'] == doc['cycles']

    def test_report_without_telemetry(self):
        bench = registry.make('gemm')
        params = bench.params_for('test')
        r = run_benchmark(bench, 'NV', params, base_machine=small_config())
        doc = build_report(r)
        assert doc['telemetry']['samples'] == []
        validate_report(doc)


class TestValidatorCatchesCorruption:
    @pytest.mark.parametrize('mutate, fragment', [
        (lambda d: d.pop('cycles'), 'missing required key'),
        (lambda d: d.update(cycles='fast'), 'expected integer'),
        (lambda d: d.update(cycles=-1), 'minimum'),
        (lambda d: d.update(schema_version=99), 'not in'),
        (lambda d: d.update(kind='something-else'), 'not in'),
        (lambda d: d['counters'].pop('stalls'), 'missing required key'),
        (lambda d: d['telemetry'].pop('histograms'), 'missing required key'),
        (lambda d: d['telemetry']['samples'].__setitem__(
            0, {'cycle': 1}), 'missing required key'),
        (lambda d: d['generated'].pop('git_sha'), 'missing required key'),
        (lambda d: d.update(cycles=True), 'expected integer'),
    ])
    def test_corruption_detected(self, report, mutate, fragment):
        doc = copy.deepcopy(report)
        mutate(doc)
        with pytest.raises(ReportValidationError, match=fragment):
            validate_report(doc)


class TestRender:
    def test_render_mentions_cpi_stack_and_histograms(self, report):
        text = render_report(report)
        assert 'CPI stack' in text
        assert str(report['cycles']) in text
        assert 'vload_issue_to_last_word' in text
        assert 'samples' in text


class TestCompare:
    def test_identical_reports_no_regression(self, report):
        text, regressed = compare_reports(report, report)
        assert not regressed
        assert 'cycles' in text

    def test_cycle_regression_detected(self, report):
        worse = copy.deepcopy(report)
        worse['cycles'] = int(report['cycles'] * 1.05)
        _, regressed = compare_reports(report, worse, threshold=0.02)
        assert regressed

    def test_within_threshold_passes(self, report):
        near = copy.deepcopy(report)
        near['cycles'] = int(report['cycles'] * 1.01)
        _, regressed = compare_reports(report, near, threshold=0.02)
        assert not regressed

    def test_improvement_not_flagged(self, report):
        better = copy.deepcopy(report)
        better['cycles'] = int(report['cycles'] * 0.8)
        text, regressed = compare_reports(report, better)
        assert not regressed
        assert 'improvement' in text

    def test_stall_cause_regression_detected(self, report):
        worse = copy.deepcopy(report)
        worse['counters']['stalls']['stall_frame'] = (
            report['counters']['stalls'].get('stall_frame', 0)
            + int(report['cycles'] * 0.10))
        _, regressed = compare_reports(report, worse)
        assert regressed


class TestCli:
    def run_report(self, tmp_path, name='a.json'):
        out = tmp_path / name
        rc = main(['run', 'gemm', 'V4', '--scale', 'test',
                   '--report', str(out), '--sample-interval', '100'])
        assert rc == 0
        return out

    def test_run_emits_schema_valid_report(self, tmp_path):
        out = self.run_report(tmp_path)
        doc = load_report(str(out))
        assert doc['telemetry']['samples']

    def test_report_subcommand(self, tmp_path, capsys):
        out = self.run_report(tmp_path)
        assert main(['report', str(out)]) == 0
        assert 'CPI stack' in capsys.readouterr().out

    def test_report_subcommand_rejects_invalid(self, tmp_path):
        bad = tmp_path / 'bad.json'
        bad.write_text('{"schema_version": 1}')
        assert main(['report', str(bad)]) == 1

    def test_compare_subcommand_same_file(self, tmp_path):
        out = self.run_report(tmp_path)
        assert main(['compare', str(out), str(out)]) == 0

    def test_compare_subcommand_detects_regression(self, tmp_path):
        out = self.run_report(tmp_path)
        doc = json.loads(out.read_text())
        doc['cycles'] = int(doc['cycles'] * 1.10)
        worse = tmp_path / 'worse.json'
        worse.write_text(json.dumps(doc))
        assert main(['compare', str(out), str(worse)]) == 2
        # and the reverse direction is an improvement, not a regression
        assert main(['compare', str(worse), str(out)]) == 0

    def test_run_emits_trace(self, tmp_path):
        trace = tmp_path / 'trace.json'
        rc = main(['run', 'gemm', 'V4', '--scale', 'test',
                   '--trace', str(trace)])
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert any(e['ph'] == 'X' for e in doc['traceEvents'])
