"""The telemetry hub: histograms, spans, and the sampler, behind probes.

A :class:`Telemetry` object attaches to a :class:`~repro.manycore.Fabric`
exactly like the debug :class:`~repro.manycore.Tracer` does: the fabric
holds ``fabric.telemetry = None`` by default and every instrumentation
site is guarded by one attribute load and a ``None`` check, so a
non-telemetry run pays nothing and — crucially — telemetry **never
changes simulated timing**: all probes observe state, none post events
or touch the event heap.  Cycle counts are bit-identical with telemetry
attached or not (tested).

Wall-clock overhead is kept low (<5%, tested) by making every probe a
bare C-level list operation inside the run: each probe *is* the bound
``extend`` of a flat per-family queue, and the instrumentation site
passes one small tuple (or, for the stateless latency probes, one int
via ``append``).  The tuple is transient — ``extend`` copies its
items, already-live ints and object refs, into the flat queue and the
tuple is freed immediately — so a probed run performs *no net heap
allocation* and never tips the gen-0 GC threshold.  Queued raw events
are matched into histograms and spans **lazily**, on the first access
to :attr:`hists` or :attr:`spans` after the run.  Pairing across
queues is keyed (per ``(core, frame-slot seq)`` or per expander core),
so no global event order needs to be preserved.

Probe inventory (the ISSUE's four latency histograms plus the GPU
comparator's memory path):

* ``vload_issue_to_last_word`` — a wide access from ``vload`` issue to
  the arrival of its last response word in a scratchpad;
* ``frame_fill_to_start`` — slack between a DAE frame becoming full and
  the ``frame_start`` that consumes it (per core);
* ``llc_bank_queue`` — request-port queueing delay at an LLC bank;
* ``noc_traversal`` — one-way NoC delay of request and response packets;
* ``gpu_mem_service`` — GPU model: coalesced access service time.

Span inventory: microthread lifetimes (expander launch → ``vend``),
frame occupancy (first word arrival → ``remem``), and wide-access
service windows at the LLC bank.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .histogram import Log2Histogram
from .sampler import Sampler
from .spans import CAT_FRAME, CAT_MICROTHREAD, CAT_WIDE, SpanRecorder

HIST_VLOAD = 'vload_issue_to_last_word'
HIST_FRAME = 'frame_fill_to_start'
HIST_LLC_QUEUE = 'llc_bank_queue'
HIST_NOC = 'noc_traversal'
HIST_GPU_MEM = 'gpu_mem_service'

HISTOGRAM_NAMES = (HIST_VLOAD, HIST_FRAME, HIST_LLC_QUEUE, HIST_NOC,
                   HIST_GPU_MEM)


class Telemetry:
    """Low-overhead instrumentation attached to one fabric (or GPU) run."""

    def __init__(self, sample_interval: int = 1000,
                 per_core_samples: bool = False,
                 span_limit: int = 1_000_000):
        self.sampler: Optional[Sampler] = (
            Sampler(sample_interval, per_core=per_core_samples)
            if sample_interval else None)
        self._spans = SpanRecorder(limit=span_limit)
        self._hists: Dict[str, Log2Histogram] = {
            name: Log2Histogram(name) for name in HISTOGRAM_NAMES}
        # stateless probes (one per NoC packet / LLC access / GPU batch)
        # bind straight to a pending list's append; drained lazily
        self._pending: Dict[str, List[int]] = {
            HIST_NOC: [], HIST_LLC_QUEUE: [], HIST_GPU_MEM: []}
        self.on_noc_traversal = self._pending[HIST_NOC].append
        self.on_llc_queue = self._pending[HIST_LLC_QUEUE].append
        self.on_gpu_mem = self._pending[HIST_GPU_MEM].append
        # pairing probes: one flat queue per family, probe == extend.
        # Record shapes (strides) are fixed by the call sites
        # (tile.py / llc.py), which pass one transient tuple each:
        # one chronological queue for frame activity, uniform stride 4
        # (core, a, n, cycle); `n` discriminates the record kind:
        #   n >= 1  delivery of n frame words at scratchpad offset `a`
        #   n == 0  remem freed the frame with absolute sequence `a`
        #   n == -1 (re)configuration marker (next entry of _frame_cfgs)
        self._q_frame: List = []
        self._q_fstart: List = []     # core, seq, cycle
        self._q_mt_launch: List = []  # core, cycle, mt_pc
        self._q_mt_end: List = []     # core, cycle
        self._q_wide: List = []       # req, service_start, last_emit,
        #                                last_arrival, bank_id
        self.on_frame_words = self._q_frame.extend
        self.on_frame_free = self._q_frame.extend
        self.on_frame_start = self._q_fstart.extend
        self.on_mt_launch = self._q_mt_launch.extend
        self.on_mt_end = self._q_mt_end.extend
        self.on_wide_served = self._q_wide.extend
        self.fabric = None
        self._final_cycle: Optional[int] = None
        # pairing state, persistent across drains (used by _drain_events)
        self._mt_open: Dict[int, tuple] = {}      # core -> (start, mt_pc)
        self._frame_cfgs: Dict[int, List[tuple]] = {}  # queued configs
        self._frame_cfg: Dict[int, tuple] = {}    # core -> (base, fsz, slots)
        self._slot_fill: Dict[tuple, list] = {}   # (core, slot) -> [n, first]
        self._slot_uses: Dict[tuple, int] = {}    # (core, slot) -> frees
        self._frame_full: Dict[tuple, int] = {}   # (core, seq) -> cycle

    # ------------------------------------------------------------------ attach
    def attach(self, fabric) -> 'Telemetry':
        """Wire this telemetry into ``fabric``; returns self for chaining."""
        fabric.telemetry = self
        self.fabric = fabric
        if self.sampler is not None:
            self.sampler.bind(fabric)
        return self

    def attach_gpu(self, machine) -> 'Telemetry':
        """Attach to the GPU comparator model (histograms only)."""
        machine.telemetry = self
        return self

    def finalize(self, now: int) -> None:
        """Close the run: final partial sample; spans close on first access."""
        if self.sampler is not None:
            self.sampler.finalize(now)
        self._final_cycle = now

    # ---------------------------------------------------------- probe: frames
    def watch_frames(self, core: int, frame_queue) -> None:
        """Note a freshly configured frame queue (CSR_FRAME_CFG).

        Frame fills and frees are observed at the delivery and remem
        sites (one cheap queue record per response packet / remem), and
        the per-frame 'first word' / 'filled' crossings are replayed
        from the arrival counts at drain time — the frame queue itself
        carries no telemetry hooks.
        """
        self._frame_cfgs.setdefault(core, []).append(
            (frame_queue.base, frame_queue.frame_size,
             frame_queue.num_slots))
        self._q_frame.extend((core, 0, -1, 0))

    # ------------------------------------------------------------- lazy drain
    @property
    def hists(self) -> Dict[str, Log2Histogram]:
        self._drain_events()
        return self._hists

    @property
    def spans(self) -> SpanRecorder:
        self._drain_events()
        return self._spans

    def _drain_events(self) -> None:
        """Match queued raw events into histograms and spans.

        Every queue is emptied with ``clear()`` (never replaced) so the
        bound ``append`` probes stay valid across drains.
        """
        for name, pending in self._pending.items():
            if pending:
                record = self._hists[name].record
                for v in pending:
                    record(v)
                pending.clear()
        span_add = self._spans.add

        # frame occupancy spans + fill state ('full' cycles for fstart):
        # replay delivery/free records against per-slot arrival counts.
        # Slots are reused round-robin from sequence 0, so a slot's
        # current sequence is uses*num_slots + slot; replay is in
        # chronological order, hence `uses` is exact at each delivery.
        if self._q_frame:
            frame_full = self._frame_full
            cfg = self._frame_cfg
            fill = self._slot_fill
            uses = self._slot_uses
            it = iter(self._q_frame)
            for core, a, n, now in zip(it, it, it, it):
                if n == -1:  # (re)configure: reset this core's replay
                    cfg[core] = self._frame_cfgs[core].pop(0)
                    for d in (fill, uses):
                        for key in [k for k in d if k[0] == core]:
                            del d[key]
                    continue
                c = cfg.get(core)
                if c is None:
                    continue
                base, fsize, nslots = c
                if n == 0:  # remem freed frame with sequence `a`
                    key = (core, a % nslots)
                    uses[key] = a // nslots + 1
                    st = fill.pop(key, None)
                    if st is not None:
                        span_add('frame', CAT_FRAME, core, st[1], now,
                                 {'seq': a})
                    continue
                rel = a - base  # delivery of n words, may span slots
                while n > 0 and 0 <= rel < fsize * nslots:
                    slot = rel // fsize
                    take = min(n, (slot + 1) * fsize - rel)
                    key = (core, slot)
                    st = fill.get(key)
                    if st is None:
                        st = fill[key] = [0, now]
                    st[0] += take
                    if st[0] >= fsize:
                        seq = uses.get(key, 0) * nslots + slot
                        frame_full[(core, seq)] = now
                    rel += take
                    n -= take
            self._q_frame.clear()

        # frame_start: fill -> start slack, keyed to the 'full' recorded
        # above (a frame_start always follows its frame's fill)
        if self._q_fstart:
            hist_frame = self._hists[HIST_FRAME].record
            frame_full = self._frame_full
            it = iter(self._q_fstart)
            for core, seq, now in zip(it, it, it):
                # pop: a re-issued frame_start on one frame counts once
                full = frame_full.pop((core, seq), None)
                if full is not None:
                    hist_frame(now - full)
            self._q_fstart.clear()

        # microthreads: launches and vends strictly alternate per core
        if self._q_mt_launch or self._q_mt_end:
            opens: Dict[int, List[tuple]] = {}
            for core, prev in self._mt_open.items():
                opens[core] = [prev]
            it = iter(self._q_mt_launch)
            for core, now, mt_pc in zip(it, it, it):
                opens.setdefault(core, []).append((now, mt_pc))
            ends: Dict[int, List[int]] = {}
            it = iter(self._q_mt_end)
            for core, now in zip(it, it):
                ends.setdefault(core, []).append(now)
            self._mt_open.clear()
            for core, launches in opens.items():
                core_ends = ends.get(core, ())
                for (start, mt_pc), end in zip(launches, core_ends):
                    span_add('microthread', CAT_MICROTHREAD, core,
                             start, end + 1, {'mt_pc': mt_pc})
                if len(launches) > len(core_ends):  # still running
                    self._mt_open[core] = launches[-1]
            self._q_mt_launch.clear()
            self._q_mt_end.clear()

        # wide accesses: vload latency histogram + bank service spans +
        # derived NoC traversal samples (the request packet plus one
        # sample per serialized response packet; delays are a pure
        # function of (core, bank), so nothing was recorded in-run)
        if self._q_wide:
            hist_vload = self._hists[HIST_VLOAD].record
            hist_noc = self._hists[HIST_NOC].record
            noc = self.fabric.noc if self.fabric is not None else None
            noc_w = (self.fabric.cfg.noc_width_words
                     if self.fabric is not None else 1)
            it = iter(self._q_wide)
            for req, service_start, last_emit, last_arrival, bank in \
                    zip(it, it, it, it, it):
                if req.t_issue is not None:
                    hist_vload(last_arrival - req.t_issue)
                if noc is not None:
                    hist_noc(noc.bank_delay(req.core, bank))
                    for addr, count, dest_core, dest_off in req.chunks:
                        delay = noc.delay_for_hops(
                            noc.bank_hops(dest_core, bank))
                        for _ in range(-(-count // noc_w)):
                            hist_noc(delay)
                # per-core word counts are derived from the raw chunk
                # list at export time (trace_export)
                span_add('wide_access', CAT_WIDE, req.core,
                         service_start, last_emit + 1,
                         {'bank': bank, 'words': req.nwords,
                          'chunks': req.chunks})
            self._q_wide.clear()

        if self._final_cycle is not None and self._mt_open:
            for core, (start, mt_pc) in self._mt_open.items():
                span_add('microthread', CAT_MICROTHREAD, core, start,
                         self._final_cycle,
                         {'mt_pc': mt_pc, 'truncated': True})
            self._mt_open.clear()

    # --------------------------------------------------------------- serialize
    def histograms_dict(self) -> dict:
        return {name: h.to_dict() for name, h in self.hists.items()}

    def samples_dict(self) -> list:
        return self.sampler.to_dicts() if self.sampler is not None else []

    def to_dict(self) -> dict:
        return {
            'sample_interval': (self.sampler.interval
                                if self.sampler is not None else 0),
            'samples': self.samples_dict(),
            'histograms': self.histograms_dict(),
            'spans': self.spans.counts(),
            'spans_dropped': self.spans.dropped,
        }
