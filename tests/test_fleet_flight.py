"""End-to-end flight layer: trace continuity across a shard crash,
breakdown conservation in span form, bit-identity, and the crash
post-mortem (ISSUE satellite: crash-reroute observability coverage).

One crashed 2-shard fleet run with a :class:`FleetFlight` attached is
shared module-wide; every invariant below reads from it.
"""

import pytest

from repro.fleet import (FleetConfig, FleetRouter, build_fleet_report,
                         check_conservation, validate_fleet_report)
from repro.flight import (FleetFlight, check_continuity,
                          load_postmortem, merged_chrome_trace,
                          read_journal)
from repro.observe.top import read_fleet_streams, render_fleet_frame
from repro.serve import DONE, KernelRequest

N_REQS = 8


def _trace(n=N_REQS, spacing=3000):
    return [KernelRequest(req_id=i, kernel='mvt', params={'n': 16},
                          lanes=4, groups=1, arrival=i * spacing)
            for i in range(n)]


def _config(**kw):
    return FleetConfig(**{'shards': 2, 'workers': 2,
                          'epoch_cycles': 20_000,
                          'crashes': ((0, 0),), **kw})


@pytest.fixture(scope='module')
def crashed_flight(tmp_path_factory):
    out = tmp_path_factory.mktemp('flight')
    metrics = out / 'metrics'
    metrics.mkdir()
    flight = FleetFlight(label='t', out_dir=str(out),
                         shard_metrics_dir=str(metrics))
    result = FleetRouter(_config(), flight=flight).run(iter(_trace()))
    return result, flight, out, metrics


class TestCrashReroutedContinuity:
    def test_run_completes_with_a_reroute(self, crashed_flight):
        result, flight, _, _ = crashed_flight
        assert result.crashes == 1
        assert result.rerouted > 0
        assert all(e.state == DONE for e in result.entries)

    def test_every_trace_is_continuous(self, crashed_flight):
        result, flight, _, _ = crashed_flight
        verdicts = check_continuity(flight.spans)
        assert len(verdicts) == N_REQS
        broken = [v for v in verdicts.values() if not v['continuous']]
        assert broken == []

    def test_rerouted_request_spans_router_and_both_shards(
            self, crashed_flight):
        result, flight, _, _ = crashed_flight
        rerouted = [e for e in result.entries if e.rerouted]
        assert rerouted
        verdicts = check_continuity(flight.spans)
        for entry in rerouted:
            v = verdicts[f'req-{entry.req.req_id}']
            assert v['continuous']
            shard_tracks = [t for t in v['tracks']
                            if t.startswith('shard:')]
            # one continuous trace across the router, the crashed
            # shard, and the shard that re-ran it
            assert 'router' in v['tracks']
            assert len(shard_tracks) >= 2

    def test_phase_leaves_tile_each_completed_exec_window(
            self, crashed_flight):
        _, flight, _, _ = crashed_flight
        execs = {s['span_id']: s for s in flight.spans
                 if s['kind'] == 'shard_exec'}
        phases_of = {}
        for s in flight.spans:
            if s['kind'] == 'phase':
                phases_of.setdefault(s['parent_id'], []).append(s)
        assert phases_of  # completed requests carry breakdowns
        for parent, phases in phases_of.items():
            x = execs[parent]
            phases.sort(key=lambda s: s['start'])
            assert phases[0]['start'] == x['start']
            at = x['start']
            for p in phases:
                assert p['start'] == at  # gapless, in causal order
                at = p['end']
            # breakdown conservation, span form: phase widths sum to
            # the execution window exactly
            assert at == x['end']

    def test_fleet_report_still_conserves(self, crashed_flight):
        result, _, _, _ = crashed_flight
        doc = build_fleet_report(result)
        validate_fleet_report(doc)
        check_conservation(doc)


class TestBitIdentity:
    def test_flight_does_not_change_digests(self, crashed_flight):
        result, _, _, _ = crashed_flight
        plain = FleetRouter(_config()).run(iter(_trace()))
        ref = {e.req.req_id: e.digest for e in plain.entries}
        got = {e.req.req_id: e.digest for e in result.entries}
        assert got == ref
        assert plain.final_cycle == result.final_cycle


class TestCrashPostmortem:
    def test_dumped_validated_and_ordered(self, crashed_flight):
        _, flight, out, _ = crashed_flight
        dumps = [p for p in flight.postmortems
                 if p['trigger'] == 'crash']
        assert len(dumps) == 1
        doc = load_postmortem(dumps[0]['path'])  # schema-validates
        assert doc['label'] == 't'
        assert 'shard 0' in doc['reason']['detail']
        kinds = [e['kind'] for e in doc['events']]
        # the black box tells the story in order:
        # crash -> reroute(s) -> replacement spawn
        i_crash = kinds.index('crash')
        i_reroute = kinds.index('reroute', i_crash)
        assert 'replace' in kinds[i_reroute:]
        # quantitative context and the spans open at the trigger
        assert doc['ring']['recorded'] >= len(doc['events'])
        assert all('t' in s and 'metrics' in s
                   for s in doc['metric_snapshots'])
        assert all(s['end'] is None for s in doc['inflight'])


class TestJournalAndMerge:
    def test_journal_roundtrips(self, crashed_flight):
        _, flight, out, _ = crashed_flight
        path = flight.write_journal()
        assert path.endswith('FLIGHT_t.jsonl')
        header, spans, anomalies = read_journal(path)
        assert header['label'] == 't'
        assert spans == flight.spans
        assert anomalies == flight.detector.anomalies

    def test_merged_trace_has_router_and_shard_track_groups(
            self, crashed_flight):
        _, flight, _, _ = crashed_flight
        doc = merged_chrome_trace(flight.spans,
                                  flight.detector.anomalies)
        procs = {e['args']['name'] for e in doc['traceEvents']
                 if e['ph'] == 'M' and e['name'] == 'process_name'}
        assert 'fleet router' in procs
        assert sum(1 for p in procs if p.startswith('shard ')) >= 2


class TestShardMetricStreams:
    def test_streams_written_and_aggregate(self, crashed_flight):
        _, _, _, metrics = crashed_flight
        shards = read_fleet_streams(str(metrics))
        assert shards  # at least the surviving/replacement shards wrote
        total_done = sum(s['serve_requests_done']
                         for s in shards.values())
        assert total_done == N_REQS
        frame = render_fleet_frame(shards)
        assert 'shard' in frame and 'p99' in frame
        assert frame.splitlines()[-1].lstrip().startswith('all')
