"""Statistics containers for simulation runs.

The stall taxonomy mirrors the paper's CPI-stack figures (12 and 13):
``issued``, ``frame`` (waiting for a DAE frame / outstanding load),
``inet`` (instruction forwarding input empty), ``backpressure`` (inet
output full), and ``other`` (scoreboard, load-queue, branch bubbles, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable

#: stall-cause fields, in CPI-stack presentation order
STALL_CAUSES = ('stall_frame', 'stall_inet_input', 'stall_backpressure',
                'stall_scoreboard', 'stall_loadq', 'stall_branch',
                'stall_other')


@dataclass
class CoreStats:
    """Per-core event counts."""

    cycles: int = 0
    instrs: int = 0
    icache_accesses: int = 0
    spad_reads: int = 0
    spad_writes: int = 0
    inet_forwards: int = 0

    # stall cycles by cause
    stall_frame: int = 0
    stall_inet_input: int = 0
    stall_backpressure: int = 0
    stall_scoreboard: int = 0
    stall_loadq: int = 0
    stall_branch: int = 0
    stall_other: int = 0

    # instruction mix (for the energy model)
    n_int_alu: int = 0
    n_mul: int = 0
    n_div: int = 0
    n_fp: int = 0
    n_mem: int = 0
    n_simd: int = 0
    n_control: int = 0

    # SDV-specific
    vloads_issued: int = 0
    microthreads: int = 0
    frames_consumed: int = 0

    def stall_total(self) -> int:
        return (self.stall_frame + self.stall_inet_input +
                self.stall_backpressure + self.stall_scoreboard +
                self.stall_loadq + self.stall_branch + self.stall_other)

    def idle(self) -> int:
        """Cycles neither issuing nor attributed to a stall cause.

        For a halted or never-activated core this is most of the run;
        for an active core it is the pre-formation / post-halt slack.
        The taxonomy invariant ``cycles == instrs + stall_total() +
        idle()`` with ``idle() >= 0`` is what guards the CPI-stack
        figures against attribution drift (tested).
        """
        return self.cycles - self.instrs - self.stall_total()


@dataclass
class MemStats:
    """LLC + DRAM event counts (aggregated over banks)."""

    llc_accesses: int = 0
    llc_misses: int = 0
    llc_word_reads: int = 0
    llc_word_writes: int = 0
    dram_lines_read: int = 0
    dram_lines_written: int = 0
    wide_requests: int = 0
    response_packets: int = 0

    @property
    def miss_rate(self) -> float:
        if self.llc_accesses == 0:
            return 0.0
        return self.llc_misses / self.llc_accesses


@dataclass
class RunStats:
    """Everything a single simulation produces, for figures and energy."""

    cycles: int = 0
    cores: Dict[int, CoreStats] = field(default_factory=dict)
    mem: MemStats = field(default_factory=MemStats)
    noc_word_hops: int = 0

    def total(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self.cores.values())

    @property
    def total_instrs(self) -> int:
        return self.total('instrs')

    @property
    def total_icache_accesses(self) -> int:
        return self.total('icache_accesses')

    def stall_breakdown(self) -> Dict[str, int]:
        """Aggregate stall cycles by cause across every core."""
        return {cause: self.total(cause) for cause in STALL_CAUSES}

    def unattributed(self) -> int:
        """Cycles no stall cause covers, summed across cores.

        This is the residual the CPI-stack taxonomy cannot explain
        (formation waits, post-halt slack, never-activated cores).
        Surfacing it — rather than silently dropping it when several
        runs or requests are merged — is what lets per-request phase
        breakdowns sum exactly to latency (see repro.observe.rtrace).
        """
        return sum(c.idle() for c in self.cores.values())

    def summary(self) -> str:
        lines = [f'cycles: {self.cycles}',
                 f'instructions: {self.total_instrs}',
                 f'icache accesses: {self.total_icache_accesses}',
                 f'LLC accesses: {self.mem.llc_accesses} '
                 f'(miss rate {self.mem.miss_rate:.3f})',
                 f'DRAM lines read: {self.mem.dram_lines_read}',
                 f'NoC word-hops: {self.noc_word_hops}']
        breakdown = self.stall_breakdown()
        total_stall = sum(breakdown.values())
        lines.append(f'stall cycles: {total_stall}')
        for cause, v in breakdown.items():
            lines.append(f'  {cause[len("stall_"):]:<13s} {v}')
        lines.append(f'unattributed cycles: {self.unattributed()}')
        return '\n'.join(lines)

    @classmethod
    def merge(cls, runs: Iterable['RunStats']) -> 'RunStats':
        """Aggregate several runs (a sweep) into one summed RunStats.

        Every counter — including per-core entries, matched by core id —
        is summed; ``cycles`` accumulates total simulated cycles across
        the runs.
        """
        out = cls()
        core_fields = [f.name for f in fields(CoreStats)]
        mem_fields = [f.name for f in fields(MemStats)]
        for r in runs:
            out.cycles += r.cycles
            out.noc_word_hops += r.noc_word_hops
            for name in mem_fields:
                setattr(out.mem, name,
                        getattr(out.mem, name) + getattr(r.mem, name))
            for cid, cs in r.cores.items():
                acc = out.cores.setdefault(cid, CoreStats())
                for name in core_fields:
                    setattr(acc, name,
                            getattr(acc, name) + getattr(cs, name))
        return out
