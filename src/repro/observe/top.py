"""``repro top`` — a live terminal dashboard over a serving fabric.

The dashboard rides the plane's snapshot callback: every time the
:class:`~repro.observe.ObservePlane` takes a periodic snapshot (driven
by the fabric clock inside a running ``serve_trace`` loop) the dashboard
repaints one frame — fleet summary, serving gauges, the in-flight
request table, and the three congestion heatmaps.  On a TTY frames
repaint in place with ANSI cursor control; on a plain stream (CI logs,
tests) frames are appended, which doubles as a cheap flight recorder.

**Fleet mode** (``repro top --fleet DIR``) works the other way around:
instead of driving a fabric it *tails* the per-shard JSONL snapshot
streams a fleet run writes (``repro fleet --flight --shard-metrics-dir
DIR`` → ``DIR/shard<N>.jsonl``, one append-mode stream per shard across
all of that shard's batches) and renders an aggregated dashboard with
one column per shard — latest cycle, active tiles, NoC words, LLC
accesses, completed requests and latency percentiles — plus a fleet
totals row.  The parsing/summarizing/rendering helpers are pure
functions over line lists so tests can drive them without a terminal.

This module imports from :mod:`repro.serve`, so it is *not* re-exported
from ``repro.observe`` (the serve package imports the observe core; the
dashboard sits above both).
"""

from __future__ import annotations

import glob
import json
import os
import re
import sys
import time
from typing import Dict, List, Optional

from ..manycore import Fabric
from ..serve.request import KernelRequest
from ..serve.scheduler import ServeResult, ServeScheduler
from .plane import ObservePlane

_CLEAR = '\x1b[2J\x1b[H'


class TopDashboard:
    """Renders plane snapshots as top(1)-style frames."""

    def __init__(self, plane: ObservePlane, scheduler=None,
                 stream=None, max_rows: int = 12,
                 use_ansi: Optional[bool] = None):
        self.plane = plane
        self.scheduler = scheduler
        self.stream = stream if stream is not None else sys.stdout
        self.max_rows = max_rows
        if use_ansi is None:
            use_ansi = bool(getattr(self.stream, 'isatty', lambda: False)())
        self.use_ansi = use_ansi
        self.frames = 0

    def install(self) -> 'TopDashboard':
        """Become the plane's snapshot callback."""
        self.plane.on_snapshot = self._on_snapshot
        return self

    # ------------------------------------------------------------------ frames
    def _on_snapshot(self, plane: ObservePlane, now: int) -> None:
        frame = self.render_frame(now)
        if self.use_ansi:
            self.stream.write(_CLEAR + frame + '\n')
        else:
            self.stream.write(frame + '\n\n')
        self.stream.flush()
        self.frames += 1

    def render_frame(self, now: int) -> str:
        plane = self.plane
        snap = plane.registry.snapshot()
        lines = [f'repro top — cycle {now}  (snapshot {plane.snapshots})']
        sched = self.scheduler
        if sched is not None:
            done = sum(1 for r in sched.finished if r.state == 'done')
            bad = len(sched.finished) - done
            lines.append(
                f'requests: {len(sched.running)} running, '
                f'{len(sched.queue)} queued, {done} done, {bad} failed'
                f'/other; peak {sched.peak_concurrent_jobs} concurrent')
        lat = snap.get('serve_latency_cycles')
        if isinstance(lat, dict) and lat.get('count'):
            lines.append(
                f'latency: p50 {lat["p50"]:.0f}  p99 {lat["p99"]:.0f}  '
                f'mean {lat["mean"]:.0f}  over {lat["count"]} completed')
        lines.append(
            f'fabric: {snap.get("tiles_active", 0)} tiles active, '
            f'{snap.get("inet_queue_depth_total", 0)} inet msgs, '
            f'{snap.get("noc_words_total", 0)} NoC words moved')

        rows = sorted(plane.inflight.values(),
                      key=lambda r: (r['state'], r['req_id']))
        if rows:
            lines.append(f'{"id":>4} {"kernel":10} {"state":8} '
                         f'{"tiles":>5} {"prio":>4} {"since":>9}')
            for row in rows[:self.max_rows]:
                lines.append(
                    f'{row["req_id"]:>4} {row["kernel"]:10} '
                    f'{row["state"]:8} {row["tiles"]:>5} '
                    f'{row["priority"]:>4} {row["since"]:>9}')
            if len(rows) > self.max_rows:
                lines.append(f'  ... {len(rows) - self.max_rows} more')
        lines.append('')
        lines.append(plane.render_heatmaps())
        return '\n'.join(lines)


def run_top(requests: List[KernelRequest],
            fabric: Optional[Fabric] = None,
            refresh: int = 5000,
            stream=None,
            verify: bool = True,
            metrics_out: Optional[str] = None,
            max_cycles: int = 200_000_000) -> ServeResult:
    """Serve ``requests`` with a live dashboard attached.

    Returns the :class:`~repro.serve.scheduler.ServeResult`; the
    dashboard object is reachable as ``result.dashboard`` for callers
    that want the frame count (tests, the CLI footer).
    """
    if fabric is None:
        fabric = Fabric()
    plane = ObservePlane(snapshot_interval=refresh,
                         metrics_out=metrics_out)
    plane.attach(fabric)
    scheduler = ServeScheduler(fabric, verify=verify)
    dash = TopDashboard(plane, scheduler=scheduler, stream=stream)
    dash.install()
    result = scheduler.run(requests, max_cycles)
    result.dashboard = dash
    result.plane = plane
    return result


# ------------------------------------------------------------------ fleet mode
_SHARD_FILE = re.compile(r'shard(\d+)\.jsonl$')


def parse_shard_stream(lines: List[str]) -> dict:
    """Summarize one shard's JSONL snapshot stream.

    The stream is append-mode across the shard's batches: each batch
    contributes periodic ``{'cycle', 'metrics'}`` rows and one trailing
    ``final`` row.  Counters reset per batch (each batch is a fresh
    fabric), so cumulative totals are the sum of the ``final`` rows
    plus the latest in-progress row when the stream ends mid-batch.
    """
    snapshots = 0
    batches = 0
    latest: Optional[dict] = None
    totals = {'noc_words_total': 0, 'llc_bank_accesses_total': 0,
              'serve_requests_done': 0}
    latency: Optional[dict] = None

    def accumulate(row):
        m = row.get('metrics', {})
        totals['noc_words_total'] += m.get('noc_words_total', 0) or 0
        acc = m.get('llc_bank_accesses_total', 0)
        if isinstance(acc, dict):  # labeled per bank
            acc = sum(v for k, v in acc.items() if k)
        totals['llc_bank_accesses_total'] += acc or 0
        states = m.get('serve_requests_total')
        if isinstance(states, dict):
            totals['serve_requests_done'] += states.get(
                'state="done"', 0) or 0

    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line of a live stream
        if 'metrics' not in row:
            continue
        snapshots += 1
        latest = row
        if row.get('final'):
            batches += 1
            accumulate(row)
            lat = row['metrics'].get('serve_latency_cycles')
            if isinstance(lat, dict) and lat.get('count'):
                latency = lat
    m = (latest or {}).get('metrics', {})
    if latest is not None and not latest.get('final'):
        accumulate(latest)  # mid-batch tail: count what's visible
        lat = m.get('serve_latency_cycles')
        if isinstance(lat, dict) and lat.get('count'):
            latency = lat
    return {'snapshots': snapshots, 'batches': batches,
            'cycle': (latest or {}).get('cycle', 0),
            'tiles_active': m.get('tiles_active', 0),
            'latency': latency, **totals}


def read_fleet_streams(metrics_dir: str) -> Dict[int, dict]:
    """Parse every ``shard<N>.jsonl`` under ``metrics_dir``."""
    shards: Dict[int, dict] = {}
    for path in sorted(glob.glob(os.path.join(metrics_dir,
                                              'shard*.jsonl'))):
        m = _SHARD_FILE.search(os.path.basename(path))
        if not m:
            continue
        with open(path) as f:
            shards[int(m.group(1))] = parse_shard_stream(f.readlines())
    return shards


def render_fleet_frame(shards: Dict[int, dict],
                       title: str = 'repro top --fleet') -> str:
    """One aggregated frame: a column block per shard + totals row."""
    lines = [f'{title} — {len(shards)} shard stream(s)']
    header = (f'{"shard":>5} {"batches":>7} {"snaps":>5} {"cycle":>10} '
              f'{"tiles":>5} {"noc words":>10} {"llc acc":>8} '
              f'{"done":>5} {"p50":>7} {"p99":>7}')
    lines.append(header)
    tot = {'batches': 0, 'snapshots': 0, 'noc_words_total': 0,
           'llc_bank_accesses_total': 0, 'serve_requests_done': 0}
    for shard_id in sorted(shards):
        s = shards[shard_id]
        lat = s.get('latency') or {}
        lines.append(
            f'{shard_id:>5} {s["batches"]:>7} {s["snapshots"]:>5} '
            f'{s["cycle"]:>10} {s["tiles_active"]:>5} '
            f'{s["noc_words_total"]:>10} '
            f'{s["llc_bank_accesses_total"]:>8} '
            f'{s["serve_requests_done"]:>5} '
            f'{lat.get("p50", 0):>7.0f} {lat.get("p99", 0):>7.0f}')
        for k in tot:
            tot[k] += s.get(k, 0)
    lines.append(
        f'{"all":>5} {tot["batches"]:>7} {tot["snapshots"]:>5} '
        f'{"-":>10} {"-":>5} {tot["noc_words_total"]:>10} '
        f'{tot["llc_bank_accesses_total"]:>8} '
        f'{tot["serve_requests_done"]:>5} {"-":>7} {"-":>7}')
    return '\n'.join(lines)


def run_fleet_top(metrics_dir: str, stream=None, follow: bool = False,
                  interval: float = 1.0,
                  max_frames: Optional[int] = None) -> int:
    """Render the fleet dashboard from per-shard streams.

    One frame by default; with ``follow`` the streams are re-read every
    ``interval`` seconds until interrupted (or ``max_frames`` rendered),
    repainting in place on a TTY.  Returns the frame count.
    """
    out = stream if stream is not None else sys.stdout
    use_ansi = bool(getattr(out, 'isatty', lambda: False)())
    frames = 0
    while True:
        shards = read_fleet_streams(metrics_dir)
        frame = render_fleet_frame(shards)
        if use_ansi:
            out.write(_CLEAR + frame + '\n')
        else:
            out.write(frame + '\n\n')
        out.flush()
        frames += 1
        if not follow or (max_frames is not None
                          and frames >= max_frames):
            return frames
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return frames
