"""The design space: enumerable fabric configuration points.

A :class:`DesignPoint` is one candidate fabric: a named vector config
(group size / pack-and-coalesce choice) plus the machine knobs the
paper's design discussion varies — frame-counter depth, LLC bank count,
NoC link width, and DRAM pin bandwidth.  The default axes enumerate 576
points; the analytical model triages them in well under a second, so the
discrete simulator only ever sees the predicted Pareto frontier.

Frame-counter depths below 4 are excluded by construction: the code
generator cannot statically pace the default 2-entry inet queue with
fewer than ``inet_queue + 2`` counters, so those points are not merely
slow — they are uncompilable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

from ..jobs.spec import JobSpec
from ..manycore.config import DEFAULT_CONFIG, MachineConfig

#: The default exploration axes: 4 x 4 x 4 x 3 x 3 = 576 points.
DEFAULT_AXES: Dict[str, Tuple] = {
    'configs': ('V4', 'V16', 'V4_PCV', 'V16_PCV'),
    'frame_counters': (4, 5, 6, 8),
    'llc_banks': (4, 8, 16, 32),
    'noc_width_words': (2, 4, 8),
    'dram_bandwidth': (2.0, 4.0, 8.0),
}

#: A tiny grid for CI smoke runs: 2 x 2 x 2 x 1 x 1 = 8 points.
SMALL_AXES: Dict[str, Tuple] = {
    'configs': ('V4', 'V16'),
    'frame_counters': (4, 8),
    'llc_banks': (4, 16),
    'noc_width_words': (4,),
    'dram_bandwidth': (4.0,),
}

AXES_BY_NAME: Dict[str, Dict[str, Tuple]] = {
    'default': DEFAULT_AXES,
    'small': SMALL_AXES,
}


@dataclass(frozen=True)
class DesignPoint:
    """One candidate fabric configuration."""

    config: str                 # named vector config (group size, PCV)
    frame_counters: int
    llc_banks: int
    noc_width_words: int
    dram_bandwidth: float       # words per cycle at the pins

    def machine(self, base: MachineConfig = DEFAULT_CONFIG) -> MachineConfig:
        """The machine this point describes, relative to ``base``."""
        return base.scaled(
            frame_counters=self.frame_counters,
            llc_banks=self.llc_banks,
            noc_width_words=self.noc_width_words,
            dram_bandwidth_words_per_cycle=self.dram_bandwidth)

    def spec(self, benchmark: str, scale: str = 'test',
             base: MachineConfig = DEFAULT_CONFIG) -> JobSpec:
        """The ground-truth job that simulates this point."""
        return JobSpec.make(benchmark, self.config, scale=scale,
                            machine=self.machine(base))

    def label(self) -> str:
        return (f'{self.config} fc={self.frame_counters} '
                f'banks={self.llc_banks} noc={self.noc_width_words} '
                f'dram={self.dram_bandwidth:g}')

    def as_dict(self) -> Dict:
        return {'config': self.config,
                'frame_counters': self.frame_counters,
                'llc_banks': self.llc_banks,
                'noc_width_words': self.noc_width_words,
                'dram_bandwidth': self.dram_bandwidth}

    @classmethod
    def from_dict(cls, d: Dict) -> 'DesignPoint':
        return cls(config=d['config'],
                   frame_counters=int(d['frame_counters']),
                   llc_banks=int(d['llc_banks']),
                   noc_width_words=int(d['noc_width_words']),
                   dram_bandwidth=float(d['dram_bandwidth']))


def enumerate_space(axes: Dict[str, Sequence] = DEFAULT_AXES,
                    ) -> Iterator[DesignPoint]:
    """Every point of the cartesian space, in deterministic order."""
    for cfg, fc, banks, noc, dram in itertools.product(
            axes['configs'], axes['frame_counters'], axes['llc_banks'],
            axes['noc_width_words'], axes['dram_bandwidth']):
        yield DesignPoint(config=cfg, frame_counters=int(fc),
                          llc_banks=int(banks), noc_width_words=int(noc),
                          dram_bandwidth=float(dram))


def space_size(axes: Dict[str, Sequence] = DEFAULT_AXES) -> int:
    n = 1
    for vs in axes.values():
        n *= len(vs)
    return n
