"""Telemetry subsystem: histograms, sampler, spans, zero-perturbation."""

import dataclasses

import pytest

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import small_config
from repro.manycore.stats import STALL_CAUSES
from repro.telemetry import (HIST_FRAME, HIST_GPU_MEM, HIST_LLC_QUEUE,
                             HIST_NOC, HIST_VLOAD, Log2Histogram, Telemetry,
                             merge_histograms)

SMALL = small_config()


def run_gemm(config='V4', telemetry=None):
    bench = registry.make('gemm')
    params = bench.params_for('test')
    return run_benchmark(bench, config, params, base_machine=SMALL,
                         telemetry=telemetry)


class TestLog2Histogram:
    def test_bucketing(self):
        h = Log2Histogram('lat')
        for v in (0, 1, 2, 3, 4, 7, 8, 1000):
            h.record(v)
        bk = h.buckets()  # keyed by bucket lower bound
        assert bk[0] == 1          # the zero
        assert bk[1] == 1          # [1, 2)
        assert bk[2] == 2          # [2, 4): 2, 3
        assert bk[4] == 2          # [4, 8): 4, 7
        assert bk[8] == 1          # [8, 16): 8
        assert bk[512] == 1        # [512, 1024): 1000
        assert h.count == 8
        assert h.max == 1000
        assert h.min == 0

    def test_mean_and_percentiles(self):
        h = Log2Histogram('lat')
        for _ in range(99):
            h.record(4)
        h.record(1 << 20)
        assert h.mean == pytest.approx((99 * 4 + (1 << 20)) / 100)
        assert h.percentile(50) <= 7          # inside the [4, 8) bucket
        assert h.percentile(100) == 1 << 20   # capped at the true max

    def test_merge_and_roundtrip(self):
        a, b = Log2Histogram('x'), Log2Histogram('x')
        for v in (1, 5, 9):
            a.record(v)
        for v in (2, 100):
            b.record(v)
        m = merge_histograms([a, b])
        assert m.count == 5
        assert m.max == 100
        doc = m.to_dict()
        back = Log2Histogram.from_dict(doc)
        assert back.count == 5
        assert back.buckets() == m.buckets()

    def test_empty(self):
        h = Log2Histogram('x')
        assert h.mean == 0.0
        assert h.percentile(99) == 0.0
        assert h.to_dict()['count'] == 0


class TestZeroPerturbation:
    """Telemetry observes; it must never change simulated timing."""

    def test_cycles_bit_identical_with_telemetry(self):
        base = run_gemm()
        tel = Telemetry(sample_interval=50, per_core_samples=True)
        instrumented = run_gemm(telemetry=tel)
        assert instrumented.cycles == base.cycles
        # the full stall taxonomy must match, not just the headline
        for cid, cs in base.stats.cores.items():
            ics = instrumented.stats.cores[cid]
            for f in dataclasses.fields(cs):
                assert getattr(ics, f.name) == getattr(cs, f.name), f.name

    def test_cycles_bit_identical_mimd(self):
        base = run_gemm('NV_PF')
        instrumented = run_gemm('NV_PF', telemetry=Telemetry(
            sample_interval=100))
        assert instrumented.cycles == base.cycles


class TestSampler:
    def test_samples_recorded_and_deltas_sum_to_totals(self):
        tel = Telemetry(sample_interval=100)
        r = run_gemm(telemetry=tel)
        samples = tel.sampler.samples
        assert len(samples) >= 2
        # delta-encoding invariant: per-field sums equal final counters
        assert sum(s.issued for s in samples) == r.stats.total_instrs
        agg = {}
        for s in samples:
            for cause, v in s.stalls.items():
                agg[cause] = agg.get(cause, 0) + v
        breakdown = r.stats.stall_breakdown()
        for cause in STALL_CAUSES:
            assert agg.get(cause[len('stall_'):], 0) == breakdown[cause]
        assert sum(s.llc_accesses for s in samples) == \
            r.stats.mem.llc_accesses
        assert sum(s.dram_lines_read for s in samples) == \
            r.stats.mem.dram_lines_read
        # the closing sample lands on the final cycle
        assert samples[-1].cycle == r.cycles
        # cycles covered add up with no overlap
        assert sum(s.dcycles for s in samples) == samples[-1].cycle

    def test_fast_forward_aware(self):
        # interval far larger than the run: exactly one (closing) sample
        tel = Telemetry(sample_interval=10_000_000)
        r = run_gemm(telemetry=tel)
        assert len(tel.sampler.samples) == 1
        assert tel.sampler.samples[0].issued == r.stats.total_instrs

    def test_per_core_samples(self):
        tel = Telemetry(sample_interval=100, per_core_samples=True)
        r = run_gemm(telemetry=tel)
        per_core_issued = {}
        for s in tel.sampler.samples:
            for cid, deltas in (s.per_core or {}).items():
                per_core_issued[cid] = per_core_issued.get(cid, 0) + deltas[0]
        for cid, cs in r.stats.cores.items():
            assert per_core_issued.get(cid, 0) == cs.instrs

    def test_sample_serialization(self):
        tel = Telemetry(sample_interval=100)
        run_gemm(telemetry=tel)
        docs = tel.sampler.to_dicts()
        for doc in docs:
            assert doc['dcycles'] >= 0
            assert doc['llc_lines'] >= 0
            assert doc['dram_backlog'] >= 0.0

    def test_zero_interval_disables_sampling(self):
        tel = Telemetry(sample_interval=0)
        run_gemm(telemetry=tel)
        assert tel.sampler is None
        assert tel.samples_dict() == []


class TestHistogramProbes:
    def test_all_four_fabric_histograms_populated_on_v4(self):
        tel = Telemetry(sample_interval=1000)
        run_gemm('V4', telemetry=tel)
        for name in (HIST_VLOAD, HIST_FRAME, HIST_LLC_QUEUE, HIST_NOC):
            assert tel.hists[name].count > 0, name

    def test_vload_latency_at_least_noc_delay(self):
        tel = Telemetry()
        run_gemm('V4', telemetry=tel)
        # a vload covers request + service + response: several cycles min
        assert tel.hists[HIST_VLOAD].min >= 2

    def test_mimd_run_has_no_vector_histograms(self):
        tel = Telemetry()
        run_gemm('NV', telemetry=tel)
        assert tel.hists[HIST_VLOAD].count == 0
        assert tel.hists[HIST_FRAME].count == 0
        assert tel.hists[HIST_NOC].count > 0  # plain loads still traverse

    def test_gpu_histogram(self):
        bench = registry.make('gemm')
        params = bench.params_for('test')
        tel = Telemetry()
        r = run_benchmark(bench, 'GPU', params, telemetry=tel)
        assert r.cycles > 0
        assert tel.hists[HIST_GPU_MEM].count > 0


class TestSpans:
    def test_microthread_and_frame_spans(self):
        tel = Telemetry()
        r = run_gemm('V4', telemetry=tel)
        counts = tel.spans.counts()
        assert counts.get('microthread', 0) > 0
        assert counts.get('frame', 0) > 0
        assert counts.get('wide_access', 0) > 0
        for s in tel.spans.spans:
            assert 0 <= s.start < s.end <= r.cycles + 1

    def test_microthread_spans_match_launch_count(self):
        tel = Telemetry()
        r = run_gemm('V4', telemetry=tel)
        launched = r.stats.total('microthreads')
        assert len(tel.spans.by_category('microthread')) == launched


class TestMetaConfigGuard:
    def test_meta_config_rejects_telemetry(self):
        bench = registry.make('gemm')
        params = bench.params_for('test')
        with pytest.raises(ValueError, match='concrete configuration'):
            run_benchmark(bench, 'BEST_V', params, base_machine=SMALL,
                          telemetry=Telemetry())
