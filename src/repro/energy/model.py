"""First-order dynamic energy model (paper Section 5.2).

The paper assigns energy costs to simulation statistics: CACTI access
energies for the SRAMs and a published per-component breakdown of the
Ariane RISC-V core for the pipeline.  We use constants of the same relative
magnitude (pJ, 32 nm-ish); the absolute scale is arbitrary but the *ratios*
carry the paper's conclusions:

* an inet forward (32-bit register read + write) costs far less than an
  I-cache hit plus frontend activity — this is the vector groups' saving;
* scratchpad staging costs real energy — this is why NV_PF burns more than
  NV (Figure 10c);
* a w-wide vector load costs the LLC as much as w scalar loads;
* SIMD instructions pay functional-unit and writeback energy per lane but
  amortize the rest of the pipeline.

Accounting rules from the paper:

* cores in vector mode omit fetch + I-cache energy (instructions executed
  minus instructions fetched = instructions received over the inet);
* MUL/DIV energy scales with their cycle counts;
* DRAM is off-chip and excluded from the "total on-chip energy" figure but
  reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..manycore.config import MachineConfig
from ..manycore.stats import RunStats


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies in picojoules."""

    frontend: float = 6.0       # fetch/decode pipeline, per fetched instr
    icache: float = 16.0        # I-cache hit, per fetch
    inet_forward: float = 1.5   # one inet hop: 32-bit reg read + write
    pipeline_base: float = 4.0  # issue/commit/regfile, per executed instr
    int_alu: float = 2.0
    mul: float = 5.0            # per cycle of multiplier activity
    div: float = 2.5            # per cycle of divider activity
    fp: float = 6.0
    mem_unit: float = 3.0       # AGU + LSQ per memory instruction
    spad_word: float = 6.0      # scratchpad access per word
    llc_word: float = 20.0      # LLC access per word
    noc_word_hop: float = 1.0   # moving one word one router hop
    dram_word: float = 120.0    # off-chip, reported separately
    mul_cycles: int = 2
    div_cycles: int = 20
    simd_lane_alu: float = 2.0  # per-lane FU+writeback adder for SIMD ops


@dataclass
class EnergyBreakdown:
    """Joules (well, picojoules) by component."""

    frontend: float = 0.0
    icache: float = 0.0
    inet: float = 0.0
    pipeline: float = 0.0
    alu: float = 0.0
    spad: float = 0.0
    llc: float = 0.0
    noc: float = 0.0
    dram: float = 0.0

    @property
    def on_chip_total(self) -> float:
        """The paper's "total on-chip energy" (Figure 10c) excludes DRAM."""
        return (self.frontend + self.icache + self.inet + self.pipeline +
                self.alu + self.spad + self.llc + self.noc)

    @property
    def total(self) -> float:
        return self.on_chip_total + self.dram

    def as_dict(self) -> Dict[str, float]:
        return {k: getattr(self, k) for k in
                ('frontend', 'icache', 'inet', 'pipeline', 'alu', 'spad',
                 'llc', 'noc', 'dram')}


class EnergyModel:
    """Turn run statistics into an energy breakdown."""

    def __init__(self, params: EnergyParams = EnergyParams()):
        self.p = params

    def compute(self, stats: RunStats,
                cfg: MachineConfig) -> EnergyBreakdown:
        p = self.p
        e = EnergyBreakdown()
        for cs in stats.cores.values():
            fetched = cs.icache_accesses
            executed = cs.instrs
            received = max(0, executed - fetched)  # arrived over the inet
            e.frontend += p.frontend * fetched
            e.icache += p.icache * fetched
            e.inet += p.inet_forward * (received + cs.inet_forwards)
            e.pipeline += p.pipeline_base * executed
            e.alu += (p.int_alu * cs.n_int_alu +
                      p.mul * p.mul_cycles * cs.n_mul +
                      p.div * p.div_cycles * cs.n_div +
                      p.fp * cs.n_fp +
                      p.int_alu * cs.n_control)
            # SIMD: per-lane FU + writeback, shared front/issue energy
            e.alu += ((p.simd_lane_alu * cfg.simd_width + p.fp) *
                      cs.n_simd)
            e.pipeline += p.mem_unit * cs.n_mem
            e.spad += p.spad_word * (cs.spad_reads + cs.spad_writes)
        m = stats.mem
        e.llc += p.llc_word * (m.llc_word_reads + m.llc_word_writes)
        e.llc += p.llc_word * 0.25 * m.llc_accesses  # tag/control overhead
        e.noc += p.noc_word_hop * stats.noc_word_hops
        e.dram += (p.dram_word * cfg.line_words *
                   (m.dram_lines_read + m.dram_lines_written))
        return e


def compute_energy(stats: RunStats, cfg: MachineConfig,
                   params: EnergyParams = EnergyParams()) -> EnergyBreakdown:
    """Convenience wrapper used by the harness."""
    return EnergyModel(params).compute(stats, cfg)
