"""repro.perf — host-side performance observability for the simulator.

Three pieces (see docs/perf.md):

* :mod:`~repro.perf.profiler` — :class:`HostProfiler`, the self-profiler
  that swaps an instrumented copy of the fabric's event loop in and
  attributes host wall time to named components (tile step, LLC, DRAM,
  frames, inet, telemetry/observe overhead, ...), with collapsed-stack
  flamegraph export and an optional cProfile deep mode;
* :mod:`~repro.perf.bench` — the curated benchmark suite behind
  ``repro bench run``: deterministic MIMD/vector/serve workloads,
  median/IQR wall-time statistics, peak RSS, and the schema-checked
  ``BENCH_<label>.json`` artifact carrying code-version + machine-hash
  provenance from :mod:`repro.jobs`;
* :mod:`~repro.perf.gate` — ``repro bench compare [--gate]``, the
  noise-aware regression gate CI runs so every perf PR has a mechanical
  before/after verdict.
"""

from .bench import (BENCH_KIND, BENCH_SCHEMA, BENCH_SCHEMA_VERSION,
                    BENCH_SUITE, BenchCase, BenchValidationError,
                    bench_path, build_bench_report, load_bench_report,
                    peak_rss_kb, render_bench_report, run_case, run_suite,
                    save_bench_report, suite_cases, validate_bench_report)
from .gate import (DEFAULT_NOISE_MULT, DEFAULT_RSS_THRESHOLD,
                   DEFAULT_THRESHOLD, compare_bench)
from .profiler import LOOP_COMPONENTS, HostProfiler, ProfileScope

__all__ = [
    'HostProfiler', 'ProfileScope', 'LOOP_COMPONENTS',
    'BenchCase', 'BENCH_SUITE', 'BENCH_KIND', 'BENCH_SCHEMA',
    'BENCH_SCHEMA_VERSION', 'BenchValidationError', 'bench_path',
    'build_bench_report', 'load_bench_report', 'peak_rss_kb',
    'render_bench_report', 'run_case', 'run_suite', 'save_bench_report',
    'suite_cases', 'validate_bench_report',
    'compare_bench', 'DEFAULT_THRESHOLD', 'DEFAULT_NOISE_MULT',
    'DEFAULT_RSS_THRESHOLD',
]
