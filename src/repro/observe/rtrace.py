"""Per-request causal tracing: from request id to a cycle breakdown.

The serving scheduler hangs a :class:`RequestTrace` off each launched
:class:`~repro.manycore.fabric.FabricJob` (``job.rtrace``).  The request
id then travels with the job wherever the job already travels — into
wide-access issue (:meth:`Tile._issue_vload`), LLC queue entries
(:meth:`LLCBank.access` reads ``req.job``), frame fills
(:meth:`Fabric.spad_deliver`), and group formation
(:meth:`Fabric.vconfig_arrive`) — and each site bumps a plain integer on
the trace.  Every update is observation-only: no events are posted and
no simulated state is read back, so cycle counts are bit-identical with
tracing on or off (tested).

At completion the trace plus the request's per-tile counter deltas
become a **phase breakdown** that sums *exactly* to the request's
end-to-end latency:

* ``queue``  — arrival to launch (wall-clock, exact);
* ``launch`` — cycles the request's lead (rank-0) tile spent waiting in
  ``vconfig`` for its group to form (wall-clock, exact; these cycles
  are attributed nowhere else — they land in per-tile *idle* time);
* the remaining service cycles are apportioned across ``execute``,
  ``frame_stall``, ``llc``, ``inet``, and ``unattributed`` in
  proportion to the per-tile attributed cycle categories (instruction
  issue, frame stalls, load-queue stalls + per-request LLC bank-port
  queueing, inet input/backpressure stalls, and everything else),
  rounded with the largest-remainder method so the integer phases sum
  exactly to the service window.

Conservation — ``queue + launch + execute + frame_stall + llc + inet +
unattributed == latency`` — is enforced by test for every completed
request, and the serving report surfaces the ``unattributed`` residual
instead of silently dropping cycles no category covers.
"""

from __future__ import annotations

from typing import Dict, Optional

#: breakdown phase names, in presentation order
BREAKDOWN_PHASES = ('queue', 'launch', 'execute', 'frame_stall', 'llc',
                    'inet', 'unattributed')


class RequestTrace:
    """Causal counters for one in-flight request (hangs off its job)."""

    __slots__ = ('req_id', 'launch_cycles', 'lead_wait_from', 'llc_wait',
                 'llc_accesses', 'llc_misses', 'frame_words',
                 'wide_issued', 'formations')

    def __init__(self, req_id: int):
        self.req_id = req_id
        #: cycles the rank-0 tile spent waiting for group formation
        self.launch_cycles = 0
        #: cycle the rank-0 tile entered WAIT_VCONFIG (open episode)
        self.lead_wait_from: Optional[int] = None
        #: summed LLC bank-port queueing delay of this request's accesses
        self.llc_wait = 0.0
        self.llc_accesses = 0
        self.llc_misses = 0
        #: DAE frame words delivered into this request's scratchpads
        self.frame_words = 0
        #: wide accesses (vloads) issued by this request's tiles
        self.wide_issued = 0
        #: vector-group formations completed for this request
        self.formations = 0

    # ---------------------------------------------------- formation episodes
    def lead_wait_begin(self, now: int) -> None:
        self.lead_wait_from = now

    def lead_wait_end(self, now: int) -> None:
        if self.lead_wait_from is not None:
            self.launch_cycles += now - self.lead_wait_from
            self.lead_wait_from = None
        self.formations += 1

    def to_dict(self) -> dict:
        return {'req_id': self.req_id,
                'launch_cycles': self.launch_cycles,
                'llc_wait_cycles': int(self.llc_wait),
                'llc_accesses': self.llc_accesses,
                'llc_misses': self.llc_misses,
                'frame_words': self.frame_words,
                'wide_issued': self.wide_issued,
                'formations': self.formations}


def apportion(total: int, weights: Dict[str, float]) -> Dict[str, int]:
    """Split ``total`` across ``weights`` proportionally and *exactly*.

    Largest-remainder rounding: every share is the floored proportional
    amount, and the leftover units go to the largest fractional
    remainders (ties broken by key order, so the split is
    deterministic).  The returned integers always sum to ``total``.
    """
    keys = list(weights)
    if total <= 0:
        return {k: 0 for k in keys}
    wsum = float(sum(weights.values()))
    if wsum <= 0:
        out = {k: 0 for k in keys}
        out[keys[-1]] = total
        return out
    shares = {}
    remainders = []
    floor_sum = 0
    for k in keys:
        exact = total * weights[k] / wsum
        fl = int(exact)
        shares[k] = fl
        floor_sum += fl
        remainders.append((-(exact - fl), keys.index(k), k))
    leftover = total - floor_sum
    for _, _, k in sorted(remainders)[:leftover]:
        shares[k] += 1
    return shares


def build_breakdown(req, stall_fields=None) -> Optional[dict]:
    """The phase breakdown for a finished request; None if never launched.

    ``req`` is a :class:`~repro.serve.request.KernelRequest` whose
    ``stats`` (per-tile counter deltas) and ``_rtrace`` have been filled
    by the scheduler.  See the module docstring for phase semantics.
    """
    if req.launched_at is None or req.finished_at is None \
            or req.stats is None:
        return None
    queue = req.launched_at - req.arrival
    service = req.finished_at - req.launched_at
    rt = req._rtrace
    launch = min(rt.launch_cycles, service) if rt is not None else 0
    body = service - launch

    execute = frame = inet = loadq = sched = 0
    for cs in req.stats.cores.values():
        execute += cs.instrs
        frame += cs.stall_frame
        inet += cs.stall_inet_input + cs.stall_backpressure
        loadq += cs.stall_loadq
        sched += cs.stall_scoreboard + cs.stall_branch + cs.stall_other
    ntiles = len(req.stats.cores)
    idle = ntiles * service - (execute + frame + inet + loadq + sched)
    idle = max(0, idle - launch)  # formation waits already carved out
    llc_wait = int(rt.llc_wait) if rt is not None else 0

    shares = apportion(body, {
        'execute': execute,
        'frame_stall': frame,
        'llc': loadq + llc_wait,
        'inet': inet,
        'unattributed': sched + idle,
    })
    out = {'queue': queue, 'launch': launch}
    out.update(shares)
    return out


def breakdown_total(breakdown: dict) -> int:
    """Sum of every phase — equals the request's latency by construction."""
    return sum(breakdown[p] for p in BREAKDOWN_PHASES)


def merge_breakdowns(breakdowns) -> Dict[str, int]:
    """Aggregate several per-request breakdowns phase-by-phase."""
    out = {p: 0 for p in BREAKDOWN_PHASES}
    for b in breakdowns:
        for p in BREAKDOWN_PHASES:
            out[p] += b.get(p, 0)
    return out
