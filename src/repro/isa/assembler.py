"""A tiny structured assembler for the Rockcress mini-ISA.

The assembler plays the role of the paper's GCC + custom assembly pass
(Section 4.1): kernels are written against it directly, and the codegen layer
in :mod:`repro.kernels.codegen` layers strip-mining / DAE scheduling /
microthread extraction on top.

Example
-------
>>> a = Assembler()
>>> a.li('x5', 3)
>>> a.li('x6', 4)
>>> a.add('x7', 'x5', 'x6')
>>> a.halt()
>>> prog = a.finish()
>>> len(prog)
4
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Union

from . import opcodes as op
from .instruction import (Instr, VL_ALIGNED, VL_GROUP, VL_PREFIX, VL_SELF,
                          VL_SINGLE, VL_SUFFIX, parse_reg)

Reg = Union[str, int]


class Label:
    """A (possibly forward) reference to a program location."""

    __slots__ = ('name', 'pc')

    def __init__(self, name: str):
        self.name = name
        self.pc: Optional[int] = None

    def __repr__(self):
        return f'Label({self.name}@{self.pc})'


class Program:
    """A finished program: instruction list plus label map."""

    def __init__(self, instrs: List[Instr], labels: Dict[str, int]):
        from .decode import annotate_program
        self.instrs = instrs
        self.labels = labels
        annotate_program(instrs)

    def __len__(self):
        return len(self.instrs)

    def __getitem__(self, pc):
        return self.instrs[pc]

    def entry(self, label: str) -> int:
        return self.labels[label]

    def listing(self) -> str:
        from .instruction import disasm
        by_pc = {}
        for name, pc in self.labels.items():
            by_pc.setdefault(pc, []).append(name)
        lines = []
        for pc, inst in enumerate(self.instrs):
            for name in by_pc.get(pc, []):
                lines.append(f'{name}:')
            lines.append(f'  {pc:4d}  {disasm(inst)}')
        return '\n'.join(lines)


class Assembler:
    """Emit instructions one at a time; labels may be used before binding."""

    def __init__(self):
        self._instrs: List[Instr] = []
        self._labels: Dict[str, Label] = {}
        self._fixups: List[tuple] = []  # (instr_index, label)
        self._unique = 0

    # -- labels --------------------------------------------------------------
    def label(self, name: Optional[str] = None) -> Label:
        """Create (or fetch) a label object without binding it."""
        if name is None:
            self._unique += 1
            name = f'.L{self._unique}'
        lab = self._labels.get(name)
        if lab is None:
            lab = Label(name)
            self._labels[name] = lab
        return lab

    def bind(self, label: Union[Label, str]) -> Label:
        """Bind a label to the current position."""
        if isinstance(label, str):
            label = self.label(label)
        if label.pc is not None:
            raise ValueError(f'label {label.name} bound twice')
        label.pc = len(self._instrs)
        return label

    def here(self) -> int:
        return len(self._instrs)

    def _imm(self, target) -> Union[int, Label]:
        if isinstance(target, str):
            return self.label(target)
        return target

    def _emit(self, opcode, rd=0, rs1=0, rs2=0, imm=0, ex=None) -> Instr:
        if isinstance(imm, Label):
            inst = Instr(opcode, rd, rs1, rs2, 0, ex)
            self._fixups.append((len(self._instrs), imm))
        else:
            inst = Instr(opcode, rd, rs1, rs2, imm, ex)
        self._instrs.append(inst)
        return inst

    def finish(self) -> Program:
        """Resolve all label fixups and return the finished Program."""
        for idx, lab in self._fixups:
            if lab.pc is None:
                raise ValueError(f'unbound label {lab.name}')
            self._instrs[idx].imm = lab.pc
        labels = {name: lab.pc for name, lab in self._labels.items()
                  if lab.pc is not None}
        return Program(self._instrs, labels)

    # -- integer ALU -----------------------------------------------------------
    def _rrr(self, opcode, rd: Reg, rs1: Reg, rs2: Reg):
        self._emit(opcode, parse_reg(rd), parse_reg(rs1), parse_reg(rs2))

    def _rri(self, opcode, rd: Reg, rs1: Reg, imm: int):
        self._emit(opcode, parse_reg(rd), parse_reg(rs1), 0, imm)

    def add(self, rd, rs1, rs2):
        self._rrr(op.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        self._rrr(op.SUB, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        self._rrr(op.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        self._rrr(op.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        self._rrr(op.REM, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        self._rrr(op.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        self._rrr(op.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        self._rrr(op.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        self._rrr(op.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        self._rrr(op.SRL, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        self._rrr(op.SLT, rd, rs1, rs2)

    def addi(self, rd, rs1, imm):
        self._rri(op.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        self._rri(op.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        self._rri(op.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        self._rri(op.XORI, rd, rs1, imm)

    def slli(self, rd, rs1, imm):
        self._rri(op.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm):
        self._rri(op.SRLI, rd, rs1, imm)

    def slti(self, rd, rs1, imm):
        self._rri(op.SLTI, rd, rs1, imm)

    def li(self, rd, imm):
        self._emit(op.LI, parse_reg(rd), 0, 0, imm)

    def mv(self, rd, rs1):
        self._emit(op.MV, parse_reg(rd), parse_reg(rs1))

    # -- floating point ---------------------------------------------------------
    def fadd(self, rd, rs1, rs2):
        self._rrr(op.FADD, rd, rs1, rs2)

    def fsub(self, rd, rs1, rs2):
        self._rrr(op.FSUB, rd, rs1, rs2)

    def fmul(self, rd, rs1, rs2):
        self._rrr(op.FMUL, rd, rs1, rs2)

    def fdiv(self, rd, rs1, rs2):
        self._rrr(op.FDIV, rd, rs1, rs2)

    def fsqrt(self, rd, rs1):
        self._emit(op.FSQRT, parse_reg(rd), parse_reg(rs1))

    def fmin(self, rd, rs1, rs2):
        self._rrr(op.FMIN, rd, rs1, rs2)

    def fmax(self, rd, rs1, rs2):
        self._rrr(op.FMAX, rd, rs1, rs2)

    def fma(self, rd, rs1, rs2):
        """rd += rs1 * rs2 (fused multiply-add, rd is both source and dest)."""
        self._rrr(op.FMA, rd, rs1, rs2)

    def fabs(self, rd, rs1):
        self._emit(op.FABS, parse_reg(rd), parse_reg(rs1))

    def fneg(self, rd, rs1):
        self._emit(op.FNEG, parse_reg(rd), parse_reg(rs1))

    def flt(self, rd, rs1, rs2):
        self._rrr(op.FLT, rd, rs1, rs2)

    def fle(self, rd, rs1, rs2):
        self._rrr(op.FLE, rd, rs1, rs2)

    def feq(self, rd, rs1, rs2):
        self._rrr(op.FEQ, rd, rs1, rs2)

    def fcvt_ws(self, rd, rs1):
        self._emit(op.FCVT_WS, parse_reg(rd), parse_reg(rs1))

    def fcvt_sw(self, rd, rs1):
        self._emit(op.FCVT_SW, parse_reg(rd), parse_reg(rs1))

    # -- memory -------------------------------------------------------------
    def lw(self, rd, rs1, imm=0):
        self._emit(op.LW, parse_reg(rd), parse_reg(rs1), 0, imm)

    def sw(self, rs2, rs1, imm=0):
        self._emit(op.SW, 0, parse_reg(rs1), parse_reg(rs2), imm)

    def lwsp(self, rd, rs1, imm=0):
        self._emit(op.LWSP, parse_reg(rd), parse_reg(rs1), 0, imm)

    def swsp(self, rs2, rs1, imm=0):
        self._emit(op.SWSP, 0, parse_reg(rs1), parse_reg(rs2), imm)

    def swrem(self, value, core, offset, imm=0):
        """Remote store: core[core].spad[offset + imm] <- value."""
        self._emit(op.SWREM, parse_reg(offset), parse_reg(value),
                   parse_reg(core), imm)

    # -- control ---------------------------------------------------------------
    def beq(self, rs1, rs2, target):
        self._emit(op.BEQ, 0, parse_reg(rs1), parse_reg(rs2),
                   self._imm(target))

    def bne(self, rs1, rs2, target):
        self._emit(op.BNE, 0, parse_reg(rs1), parse_reg(rs2),
                   self._imm(target))

    def blt(self, rs1, rs2, target):
        self._emit(op.BLT, 0, parse_reg(rs1), parse_reg(rs2),
                   self._imm(target))

    def bge(self, rs1, rs2, target):
        self._emit(op.BGE, 0, parse_reg(rs1), parse_reg(rs2),
                   self._imm(target))

    def j(self, target):
        self._emit(op.J, 0, 0, 0, self._imm(target))

    def jal(self, rd, target):
        self._emit(op.JAL, parse_reg(rd), 0, 0, self._imm(target))

    def jr(self, rs1):
        self._emit(op.JR, 0, parse_reg(rs1))

    # -- system ---------------------------------------------------------------
    def nop(self):
        self._emit(op.NOP)

    def halt(self):
        self._emit(op.HALT)

    def barrier(self):
        self._emit(op.BARRIER)

    def csrw(self, csr, rs1):
        self._emit(op.CSRW, 0, parse_reg(rs1), 0, csr)

    def csrr(self, rd, csr):
        self._emit(op.CSRR, parse_reg(rd), 0, 0, csr)

    # -- SDV extension --------------------------------------------------------
    def vconfig(self, rs1):
        """Enter vector mode; rs1 holds a group-descriptor handle."""
        self._emit(op.VCONFIG, 0, parse_reg(rs1))

    def devec(self, target):
        self._emit(op.DEVEC, 0, 0, 0, self._imm(target))

    def vissue(self, target):
        self._emit(op.VISSUE, 0, 0, 0, self._imm(target))

    def vend(self):
        self._emit(op.VEND)

    def vload(self, spad_off, addr, core_off=0, width=1, variant=VL_GROUP,
              part=VL_ALIGNED):
        """Wide vector load (paper Section 2.3.2).

        ``spad_off``/``addr`` are registers; ``core_off``/``width``/
        ``variant``/``part`` are immediates packed into ``Instr.ex``.
        """
        self._emit(op.VLOAD, 0, parse_reg(addr), parse_reg(spad_off),
                   ex=(core_off, width, variant, part, True))

    def frame_start(self, rd):
        self._emit(op.FRAME_START, parse_reg(rd))

    def remem(self):
        self._emit(op.REMEM)

    def pred_eq(self, rs1, rs2):
        self._emit(op.PRED_EQ, 0, parse_reg(rs1), parse_reg(rs2))

    def pred_neq(self, rs1, rs2):
        self._emit(op.PRED_NEQ, 0, parse_reg(rs1), parse_reg(rs2))

    # -- per-core SIMD (PCV) ----------------------------------------------------
    def vl4(self, vrd, rs1, imm=0):
        self._emit(op.VL4, parse_reg(vrd), parse_reg(rs1), 0, imm)

    def vs4(self, vrs, rs1, imm=0):
        self._emit(op.VS4, parse_reg(vrs), parse_reg(rs1), 0, imm)

    def vadd4(self, vrd, vrs1, vrs2):
        self._emit(op.VADD4, parse_reg(vrd), parse_reg(vrs1), parse_reg(vrs2))

    def vsub4(self, vrd, vrs1, vrs2):
        self._emit(op.VSUB4, parse_reg(vrd), parse_reg(vrs1), parse_reg(vrs2))

    def vmul4(self, vrd, vrs1, vrs2):
        self._emit(op.VMUL4, parse_reg(vrd), parse_reg(vrs1), parse_reg(vrs2))

    def vfma4(self, vrd, vrs1, vrs2):
        self._emit(op.VFMA4, parse_reg(vrd), parse_reg(vrs1), parse_reg(vrs2))

    def vbcast(self, vrd, rs1):
        self._emit(op.VBCAST, parse_reg(vrd), parse_reg(rs1))

    def vredsum4(self, rd, vrs1):
        self._emit(op.VREDSUM4, parse_reg(rd), parse_reg(vrs1))

    def vote_any(self, rd, rs1):
        """GPU-only warp vote: rd <- 1 if any active lane's rs1 != 0."""
        self._emit(op.VOTE_ANY, parse_reg(rd), parse_reg(rs1))

    # -- structured helpers -------------------------------------------------------
    @contextmanager
    def for_count(self, counter: Reg, n: int):
        """Execute the body exactly ``n`` times (``n`` >= 1, compile-time).

        Do-while style with a down-counter compared against x0 — two
        overhead instructions per iteration and no scratch register, for
        bodies that never read the counter.
        """
        if n < 1:
            raise ValueError('for_count requires a positive trip count')
        self.li(counter, n)
        top = self.label()
        self.bind(top)
        yield
        self.addi(counter, counter, -1)
        self.bne(counter, 'x0', top.name)

    @contextmanager
    def for_range(self, counter: Reg, start, stop, step: int = 1):
        """Emit a counted loop: ``for counter in range(start, stop, step)``.

        ``start`` may be an int (materialized with ``li``) or a register name
        prefixed with ``'@'`` meaning "already holds the start value".
        ``stop`` may be an int (materialized into a scratch register held in
        ``x31``) or a register name.
        """
        creg = parse_reg(counter)
        if isinstance(start, str) and start.startswith('@'):
            pass  # counter already initialized by caller
        elif isinstance(start, str):
            self.mv(counter, start)
        else:
            self.li(counter, start)
        top = self.label()
        end = self.label()
        self.bind(top)
        if isinstance(stop, int):
            # reloaded every iteration: loop bodies may clobber x31
            self.li('x31', stop)
            stop_reg = 'x31'
        else:
            stop_reg = stop
        self.bge(counter, stop_reg, end.name)
        yield
        self.addi(counter, counter, step)
        self.j(top.name)
        self.bind(end)


__all__ = ['Assembler', 'Program', 'Label', 'VL_SINGLE', 'VL_GROUP',
           'VL_SELF', 'VL_ALIGNED', 'VL_PREFIX', 'VL_SUFFIX']
