"""SLO-driven fleet sizing with hysteresis.

The autoscaler watches the two signals the serving SLOs gate on —
**p99 global latency** over a sliding window of completed requests, and
**tile utilization** of recent shard busy periods — and turns them into
scale decisions at epoch boundaries:

* p99 above ``latency_p99_up`` for ``up_consecutive`` boundaries in a
  row grows the fleet by one shard (up to ``max_shards``);
* p99 below ``latency_p99_down`` *and* utilization below ``util_down``
  for ``down_consecutive`` boundaries shrinks it by one (down to
  ``min_shards``) — the router then *drains* the chosen shard: it
  finishes its in-flight batch and backlog, takes no new work, and
  retires without dropping anything.

Both signals are **time-windowed** (the last ``window_epochs`` epoch
boundaries), not count-windowed: a quiet tail after a burst must let
the burst-era latencies age out, or the fleet would keep scaling up on
stale pain.  An empty window reads as p99 0 / utilization 0 — an idle,
over-provisioned fleet legitimately shrinks — except before the very
first completion, so a cold fleet is never drained while its first
batches are still in flight.

Hysteresis is three-fold — separate up/down thresholds, consecutive-
breach streaks, and a post-action cooldown — so a bursty arrival
process cannot make the fleet flap.  Every decision is recorded as an
event dict (epoch, action, reason, both signal values) that lands in
the fleet report for auditability.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

UP = 'up'
DOWN = 'down'
REPLACE = 'replace'  # crash replacement, not a policy decision


def _p99(values: List[int]) -> float:
    if not values:
        return 0.0
    xs = sorted(values)
    return float(xs[min(len(xs) - 1, int(round(0.99 * (len(xs) - 1))))])


@dataclass
class AutoscalePolicy:
    """Thresholds and hysteresis for fleet sizing."""

    min_shards: int = 1
    max_shards: int = 8
    latency_p99_up: float = 60_000.0    # scale up above this p99
    latency_p99_down: float = 20_000.0  # may scale down below this p99
    util_down: float = 0.25             # ... and below this utilization
    window_epochs: int = 6              # signal look-back, in epochs
    up_consecutive: int = 1
    down_consecutive: int = 3
    cooldown_epochs: int = 2

    def __post_init__(self):
        if self.min_shards < 1:
            raise ValueError('min_shards must be >= 1')
        if self.max_shards < self.min_shards:
            raise ValueError('max_shards must be >= min_shards')
        if self.latency_p99_down > self.latency_p99_up:
            raise ValueError('latency_p99_down must not exceed '
                             'latency_p99_up (hysteresis band)')

    @classmethod
    def from_dict(cls, doc: dict) -> 'AutoscalePolicy':
        known = {f for f in cls.__dataclass_fields__}
        bad = set(doc) - known
        if bad:
            raise ValueError(f'unknown autoscale key(s): '
                             f'{", ".join(sorted(bad))}; choose from '
                             f'{", ".join(sorted(known))}')
        return cls(**doc)

    @classmethod
    def load(cls, path: str) -> 'AutoscalePolicy':
        with open(path) as f:
            return cls.from_dict(json.load(f))


class Autoscaler:
    """Streak/cooldown state machine over the policy's two signals."""

    def __init__(self, policy: AutoscalePolicy):
        self.policy = policy
        self.latencies: Deque[tuple] = deque()  # (epoch, latency)
        self.utils: Deque[tuple] = deque()      # (epoch, utilization)
        self.events: List[dict] = []
        self._up_streak = 0
        self._down_streak = 0
        self._cooldown = 0
        self._now = 0
        self._seen_completion = False

    # ------------------------------------------------------------- signals
    def observe_completion(self, epoch: int, latency: int) -> None:
        self.latencies.append((epoch, latency))
        self._seen_completion = True

    def observe_utilization(self, epoch: int, util: float) -> None:
        self.utils.append((epoch, util))

    def _prune(self, epoch: int) -> None:
        horizon = epoch - self.policy.window_epochs
        while self.latencies and self.latencies[0][0] < horizon:
            self.latencies.popleft()
        while self.utils and self.utils[0][0] < horizon:
            self.utils.popleft()

    @property
    def latency_p99(self) -> float:
        return _p99([v for _, v in self.latencies])

    @property
    def tile_utilization(self) -> float:
        if not self.utils:
            return 0.0
        return sum(v for _, v in self.utils) / len(self.utils)

    # ------------------------------------------------------------ decision
    def decide(self, epoch: int, fleet_size: int) -> Optional[str]:
        """One boundary's verdict: ``'up'``, ``'down'`` or ``None``.

        ``fleet_size`` counts routable (active) shards.  A returned
        action is already bounds-checked, recorded in :attr:`events`,
        and starts the cooldown; the router only has to execute it.
        """
        pol = self.policy
        self._now = epoch
        self._prune(epoch)
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        p99 = self.latency_p99
        util = self.tile_utilization
        if self.latencies and p99 > pol.latency_p99_up:
            self._up_streak += 1
        else:
            self._up_streak = 0
        if (self._seen_completion and p99 < pol.latency_p99_down
                and util < pol.util_down):
            self._down_streak += 1
        else:
            self._down_streak = 0
        if (self._up_streak >= pol.up_consecutive
                and fleet_size < pol.max_shards):
            self._record(epoch, UP, fleet_size, fleet_size + 1, p99, util,
                         f'latency_p99 {p99:.0f} > {pol.latency_p99_up:g} '
                         f'for {self._up_streak} epoch(s)')
            return UP
        if (self._down_streak >= pol.down_consecutive
                and fleet_size > pol.min_shards):
            self._record(epoch, DOWN, fleet_size, fleet_size - 1, p99, util,
                         f'latency_p99 {p99:.0f} < '
                         f'{pol.latency_p99_down:g} and utilization '
                         f'{util:.2f} < {pol.util_down:g} '
                         f'for {self._down_streak} epoch(s)')
            return DOWN
        return None

    def record_replace(self, epoch: int, fleet_size: int,
                       reason: str) -> None:
        """Log a crash replacement (bypasses streaks and cooldown)."""
        self._record(epoch, REPLACE, fleet_size, fleet_size + 1,
                     self.latency_p99, self.tile_utilization, reason)

    def _record(self, epoch, action, before, after, p99, util,
                reason) -> None:
        self.events.append({
            'epoch': epoch, 'action': action, 'reason': reason,
            'shards_before': before, 'shards_after': after,
            'latency_p99': p99, 'tile_utilization': util})
        self._up_streak = 0
        self._down_streak = 0
        self._cooldown = self.policy.cooldown_epochs
