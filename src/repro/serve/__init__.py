"""repro.serve — dynamic vector-group allocation and multi-tenant serving.

The paper's vector groups are configured by software at run time; this
package exercises that property as a *serving* system: a stream of kernel
requests (kernel, problem size, preferred group shape, priority,
deadline) is admitted, placed by a first-fit region allocator over the
serpentine tile path, launched as independent jobs on one live fabric,
and reclaimed on completion — so queued requests start while unrelated
groups keep running, and every co-scheduled kernel produces results
bit-identical to an isolated run.
"""

from .allocator import AllocStats, Region, RegionAllocator
from .reference import IsolatedRun, isolated_reference, request_outputs
from .report import (BREAKDOWN_SCHEMA, SERVE_REPORT_KIND,
                     SERVE_REPORT_SCHEMA, build_serve_report,
                     load_serve_report, render_serve_report,
                     store_serve_report, trace_key, validate_serve_report)
from .request import (DONE, FAILED, KernelRequest, QUEUED, REJECTED,
                      RUNNING, TERMINAL, TIMED_OUT)
from .scheduler import ServeResult, ServeScheduler, serve_trace
from .tracegen import (DEFAULT_KERNELS, DEFAULT_SHAPES, PATTERNS,
                       SIZE_LADDERS, generate_trace, load_trace,
                       mint_trace_id, open_loop_trace, save_trace)

__all__ = [
    'AllocStats', 'Region', 'RegionAllocator',
    'IsolatedRun', 'isolated_reference', 'request_outputs',
    'BREAKDOWN_SCHEMA', 'SERVE_REPORT_KIND', 'SERVE_REPORT_SCHEMA',
    'build_serve_report',
    'load_serve_report', 'render_serve_report', 'store_serve_report',
    'trace_key', 'validate_serve_report',
    'DONE', 'FAILED', 'KernelRequest', 'QUEUED', 'REJECTED', 'RUNNING',
    'TERMINAL', 'TIMED_OUT',
    'ServeResult', 'ServeScheduler', 'serve_trace',
    'DEFAULT_KERNELS', 'DEFAULT_SHAPES', 'PATTERNS', 'SIZE_LADDERS',
    'generate_trace', 'load_trace', 'mint_trace_id', 'open_loop_trace',
    'save_trace',
]
