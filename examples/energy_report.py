#!/usr/bin/env python3
"""Where the energy goes: per-component breakdown across configurations.

Reproduces the reasoning behind the paper's Figure 10c: vector groups
disable most frontends, trading I-cache hits (expensive) for inet forwards
(a 32-bit register write), while the DAE scratchpad staging costs both
NV_PF and the vector groups some of that saving back.

Run:  python examples/energy_report.py [benchmark]
"""

import sys

from repro.harness import run_benchmark
from repro.kernels import registry

COMPONENTS = ('frontend', 'icache', 'inet', 'pipeline', 'alu', 'spad',
              'llc', 'noc')


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else '2dconv'
    bench = registry.make(name)
    params = bench.bench_params
    print(f'benchmark: {name}  params: {params}\n')

    header = f'{"config":8s} {"total":>9s}' + ''.join(
        f'{c:>10s}' for c in COMPONENTS) + f'{"dram(off)":>11s}'
    print(header)
    print('-' * len(header))
    for cfg in ('NV', 'NV_PF', 'V4', 'V16'):
        r = run_benchmark(bench, cfg, params)
        e = r.energy
        d = e.as_dict()
        row = f'{cfg:8s} {e.on_chip_total / 1e6:8.2f}u' + ''.join(
            f'{d[c] / 1e6:9.2f}u' for c in COMPONENTS)
        row += f'{d["dram"] / 1e6:10.2f}u'
        print(row)

    print('\nreading the table:')
    print(' * icache+frontend shrink as lanes stop fetching '
          '(instructions arrive over the inet instead)')
    print(' * inet appears only for vector groups and costs far less '
          'than the fetches it replaces')
    print(' * spad appears for every DAE configuration '
          '(frames are staged through the scratchpads)')


if __name__ == '__main__':
    main()
