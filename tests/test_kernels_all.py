"""Correctness matrix: every benchmark x every runnable configuration.

Each test simulates one (benchmark, config) pair on a small 4x4 fabric with
scaled-down inputs and verifies the final memory against the numpy
reference — the paper's serial-version check (Section 6.1).
"""

import pytest

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import small_config

SMALL = small_config()

#: gramschm is the paper's no-SIMD outlier; PCV configs fall back to its
#: scalar path, so exercising NV/NV_PF/V4 is the meaningful set.
CONFIGS_BY_BENCH = {
    'default': ['NV', 'NV_PF', 'PCV_PF', 'V4', 'V4_PCV'],
    'gramschm': ['NV', 'NV_PF', 'V4'],
    'bfs': ['NV', 'NV_PF', 'V4'],
    '3dconv': ['NV', 'NV_PF', 'V4'],
}


def cases():
    for cls in registry.ALL:
        for cfg in CONFIGS_BY_BENCH.get(cls.name,
                                        CONFIGS_BY_BENCH['default']):
            yield pytest.param(cls, cfg, id=f'{cls.name}-{cfg}')


@pytest.mark.parametrize('bench_cls,config', list(cases()))
def test_kernel_matches_reference(bench_cls, config):
    bench = bench_cls()
    r = run_benchmark(bench, config, bench.test_params, base_machine=SMALL,
                      max_cycles=5_000_000)
    assert r.cycles > 0
    assert r.stats.total_instrs > 0


class TestSuiteShape:
    def test_registry_has_fifteen_polybench(self):
        assert len(registry.POLYBENCH) == 15
        assert len({c.name for c in registry.POLYBENCH}) == 15

    def test_long_line_set_matches_paper(self):
        assert set(registry.LONG_LINE_SET) == {
            '2dconv', 'fdtd-2d', 'gesummv', 'syr2k', 'syrk'}

    def test_make_by_name(self):
        b = registry.make('gemm')
        assert b.name == 'gemm'

    def test_bfs_prefers_mimd(self):
        """Section 6.6: the manycore beats vector groups on irregular bfs."""
        bench = registry.make('bfs')
        nv = run_benchmark(bench, 'NV', bench.test_params,
                           base_machine=SMALL)
        v4 = run_benchmark(bench, 'V4', bench.test_params,
                           base_machine=SMALL)
        assert nv.cycles < v4.cycles

    def test_matvec_prefers_vector(self):
        """bicg-style kernels benefit from group loads (paper Fig 10a)."""
        bench = registry.make('bicg')
        pf = run_benchmark(bench, 'NV_PF', bench.test_params,
                           base_machine=SMALL)
        v4 = run_benchmark(bench, 'V4', bench.test_params,
                           base_machine=SMALL)
        assert v4.cycles < pf.cycles
