"""Unit tests for the kernel code-generation layer (the "compiler")."""

import pytest

from repro.core import GroupDescriptor
from repro.isa import Assembler, opcodes as op
from repro.kernels.codegen import (MimdKernelBuilder, SelfDaeStream,
                                   VectorKernelBuilder, pack_frame_cfg)
from repro.manycore import Fabric, small_config


class TestPackFrameCfg:
    def test_roundtrip_fields(self):
        v = pack_frame_cfg(20, 7)
        assert v & 0xFFF == 20
        assert (v >> 12) & 0xFFF == 7

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_frame_cfg(0, 5)
        with pytest.raises(ValueError):
            pack_frame_cfg(5000, 5)
        with pytest.raises(ValueError):
            pack_frame_cfg(4, 0)


class TestVectorKernelBuilder:
    def _builder(self, lanes=4, frame_size=16, **kw):
        fabric = Fabric(small_config())
        return fabric, VectorKernelBuilder(fabric, lanes, frame_size, **kw)

    def test_groups_registered_with_fabric(self):
        fabric, b = self._builder()
        assert len(fabric.group_descs) == len(b.groups)
        assert all(g.frame_size == 16 for g in b.groups)

    def test_too_large_frame_region_rejected(self):
        fabric = Fabric(small_config())
        with pytest.raises(ValueError, match='scratchpad'):
            VectorKernelBuilder(fabric, 4, frame_size=512, num_slots=8)

    def test_set_frame_size_recomputes_slots(self):
        fabric, b = self._builder(frame_size=8)
        b.set_frame_size(64)
        assert b.frame_size == 64
        assert b.num_slots >= fabric.cfg.frame_counters
        assert b.frame_size * b.num_slots <= fabric.cfg.spad_words

    def test_runahead_within_counter_window(self):
        fabric, b = self._builder()
        assert 1 <= b.ahead <= fabric.cfg.frame_counters - \
            fabric.cfg.inet_queue_entries

    def test_no_group_fits_raises(self):
        fabric = Fabric(small_config())
        with pytest.raises(ValueError, match='fits'):
            VectorKernelBuilder(fabric, 63, frame_size=8)

    def test_dispatch_table_patched_after_finish(self):
        fabric, b = self._builder()
        p = b.program()
        p.vector_phase(lambda a, g: a.vissue('.mt'))

        def mts(a):
            a.bind('.mt')
            a.vend()

        prog = p.finish(mts)
        table_base, entries, resume = p._dispatch_tables[0]
        for cid in range(fabric.cfg.num_cores):
            pc = fabric.memory[table_base + cid]
            assert 0 <= pc < len(prog.instrs)
        # idle tiles land on the resume label
        idle = b.idle[0] if b.idle else None
        if idle is not None:
            assert fabric.memory[table_base + idle] == resume.pc

    def test_phase_loop_does_not_nest(self):
        fabric, b = self._builder()
        p = b.program()
        with pytest.raises(ValueError, match='nest'):
            with p.loop(2):
                with p.loop(2):
                    pass


class TestMimdKernelBuilder:
    def test_kernels_separated_by_barriers(self):
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: a.nop())
        mb.add_kernel(lambda a: a.nop())
        prog = mb.build()
        ops = [i.op for i in prog.instrs]
        assert ops.count(op.BARRIER) == 2
        assert ops[-1] == op.HALT

    def test_loop_emits_backedge(self):
        mb = MimdKernelBuilder()
        with mb.loop(3):
            mb.add_kernel(lambda a: a.nop())
        prog = mb.build()
        ops = [i.op for i in prog.instrs]
        assert op.BLT in ops

    def test_loop_does_not_nest(self):
        mb = MimdKernelBuilder()
        with pytest.raises(ValueError, match='nest'):
            with mb.loop(2):
                with mb.loop(2):
                    pass


class TestSelfDaeStream:
    def test_config_reserves_region(self):
        a = Assembler()
        stream = SelfDaeStream(frame_size=16, num_slots=6, ahead=2)
        stream.emit_config(a)
        prog = a.finish()
        csr_writes = [i for i in prog.instrs if i.op == op.CSRW]
        assert len(csr_writes) == 1

    def test_slot_advance_wraps(self):
        """Run the advance sequence on a real core and watch x22 wrap."""
        fabric = Fabric(small_config())
        fabric.alloc(16)
        stream = SelfDaeStream(frame_size=16, num_slots=5, ahead=1)
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.beq('x1', 'x0', 'main')
        a.halt()
        a.bind('main')
        stream.emit_config(a)
        for _ in range(7):  # 7 advances over 5 slots -> back to slot 2
            stream.emit_advance_slot(a)
        a.li('x5', 0)
        a.sw('x22', 'x5', 0)
        a.halt()
        fabric.load_program(a.finish())
        fabric.run()
        assert fabric.memory[0] == (7 % 5) * 16


class TestForCount:
    def test_executes_exactly_n_times(self):
        from tests.conftest import run_single_core

        def body(a):
            a.li('x6', 0)
            with a.for_count('x5', 7):
                a.addi('x6', 'x6', 1)
            a.li('x8', 0)
            a.sw('x6', 'x8', 0)

        fabric, _ = run_single_core(body)
        assert fabric.memory[0] == 7

    def test_zero_trip_rejected(self):
        a = Assembler()
        with pytest.raises(ValueError):
            with a.for_count('x5', 0):
                pass
