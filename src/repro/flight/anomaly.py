"""Streaming anomaly detection over observe-plane signal streams.

The detector keeps, per signal, an exponentially weighted moving
average and variance (West's incremental EWM update), and scores each
new sample by its z-score against the pre-update statistics — the
EWMA rolling-z-score detector of the issue.  A sample flags as
anomalous when at least ``min_samples`` have been seen *and* the
absolute z-score clears ``z_threshold``; the returned event carries
the signal, value, mean, std, and z so the flight recorder's ring
(and the merged Perfetto trace's annotation track) can show *why* it
fired, not just *that* it fired.

:func:`feed_fleet_epoch` adapts the fleet router's per-epoch metrics
snapshot (the same dict the JSONL sink writes) into the detector's
signal vocabulary: ``latency_p99`` from the fleet latency histogram,
``tile_utilization`` from the batch-busy ledger, and ``queue_depth``
(the shard backlog pressure seen at the router).  Everything is pure
arithmetic over already-collected numbers: the detector never touches
the fabric, so it cannot move a sim cycle.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional


class _SignalState:
    __slots__ = ('mean', 'var', 'count')

    def __init__(self) -> None:
        self.mean = 0.0
        self.var = 0.0
        self.count = 0


class AnomalyDetector:
    """EWMA mean/variance + rolling z-score, one state per signal."""

    def __init__(self, alpha: float = 0.3, z_threshold: float = 3.0,
                 min_samples: int = 5):
        if not 0.0 < alpha <= 1.0:
            raise ValueError('alpha must be in (0, 1]')
        self.alpha = alpha
        self.z_threshold = z_threshold
        self.min_samples = min_samples
        self._signals: Dict[str, _SignalState] = {}
        self.anomalies: List[dict] = []

    def observe(self, signal: str, value: float,
                t: int) -> Optional[dict]:
        """Score ``value`` against the signal's history, then fold it in.

        Returns the anomaly event when the sample is an excursion,
        ``None`` otherwise.  Scoring happens *before* the update so a
        spike cannot hide inside the statistics it just inflated.
        """
        st = self._signals.setdefault(signal, _SignalState())
        event: Optional[dict] = None
        if st.count >= self.min_samples:
            std = math.sqrt(st.var)
            if std > 0.0:
                z = (value - st.mean) / std
            else:
                # a flat-line history makes any change infinite-z; cap
                # it so the event stays JSON-representable
                z = 0.0 if value == st.mean else math.copysign(
                    self.z_threshold * 10.0, value - st.mean)
            if abs(z) > self.z_threshold:
                event = {'t': int(t), 'signal': signal,
                         'value': round(float(value), 6),
                         'mean': round(st.mean, 6),
                         'std': round(std, 6), 'z': round(z, 3)}
                self.anomalies.append(event)
        # EWM update (West): delta against the pre-update mean
        delta = value - st.mean
        incr = self.alpha * delta
        st.mean += incr
        st.var = (1.0 - self.alpha) * (st.var + delta * incr)
        st.count += 1
        return event

    def state(self, signal: str) -> Optional[dict]:
        st = self._signals.get(signal)
        if st is None:
            return None
        return {'mean': st.mean, 'std': math.sqrt(st.var),
                'count': st.count}


def feed_fleet_epoch(detector: AnomalyDetector, epoch_row: dict,
                     utilization: Optional[float] = None) -> List[dict]:
    """Feed one fleet epoch-log row into the detector.

    ``epoch_row`` is a row of ``FleetResult.epoch_log`` (cycle, queue
    depth, and the metrics snapshot with the fleet latency histogram);
    ``utilization`` is the most recent batch tile utilization when one
    completed this epoch.  Returns the anomaly events emitted.
    """
    t = epoch_row['cycle']
    events: List[dict] = []
    metrics = epoch_row.get('metrics', {})
    hist = metrics.get('fleet_latency')
    if isinstance(hist, dict) and hist.get('count'):
        p99 = hist.get('p99')
        if p99 is not None:
            ev = detector.observe('latency_p99', float(p99), t)
            if ev:
                events.append(ev)
    ev = detector.observe('queue_depth',
                          float(epoch_row.get('queue_depth', 0)), t)
    if ev:
        events.append(ev)
    if utilization is not None:
        ev = detector.observe('tile_utilization', float(utilization), t)
        if ev:
            events.append(ev)
    return events
