"""Schema-checked post-mortem artifacts (``POSTMORTEM_<label>.json``).

When a fleet run hits one of the three triggers — a shard **crash**, a
**deadlock** dump inside a shard, or an **SLO-fail** exit — the flight
layer freezes the black box: the recorder's event ring, its recent
metric snapshots, and every span still open at the trigger instant
(the in-flight requests) are correlated into one JSON document and
written next to the run's other artifacts.  Like ``BENCH_*``/``CALIB_*``
artifacts, a post-mortem is self-describing: typed ``kind``, versioned
schema, ``generated`` stamp, and the ``code_version_hash`` +
``machine_hash`` provenance pair, all enforced by
:func:`validate_postmortem` (the same ``check_schema`` machinery the
telemetry reports use), so CI can gate on artifact shape.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

from ..telemetry.report import check_schema
from .recorder import FlightRecorder

POSTMORTEM_KIND = 'repro-postmortem'
POSTMORTEM_SCHEMA_VERSION = 1

#: triggers that produce a post-mortem
TRIGGERS = ('crash', 'deadlock', 'slo_fail')

POSTMORTEM_SCHEMA = {
    'type': 'object',
    'required': ['schema_version', 'kind', 'generated', 'provenance',
                 'label', 'reason', 'ring', 'events',
                 'metric_snapshots', 'inflight', 'anomalies'],
    'properties': {
        'schema_version': {'type': 'integer', 'minimum': 1},
        'kind': {'type': 'string', 'enum': [POSTMORTEM_KIND]},
        'generated': {
            'type': 'object',
            'required': ['git_sha', 'timestamp', 'python'],
            'properties': {'git_sha': {'type': 'string'},
                           'timestamp': {'type': 'string'},
                           'python': {'type': 'string'}},
        },
        'provenance': {
            'type': 'object',
            'required': ['code_version', 'code_version_hash',
                         'machine_hash'],
            'properties': {
                'code_version': {'type': 'integer'},
                'code_version_hash': {'type': 'string'},
                'machine_hash': {'type': 'string'}},
        },
        'label': {'type': 'string'},
        'reason': {
            'type': 'object',
            'required': ['trigger', 'detail', 't'],
            'properties': {
                'trigger': {'type': 'string', 'enum': list(TRIGGERS)},
                'detail': {'type': 'string'},
                't': {'type': 'integer', 'minimum': 0}},
        },
        'ring': {
            'type': 'object',
            'required': ['capacity', 'recorded', 'dropped'],
            'properties': {
                'capacity': {'type': 'integer', 'minimum': 1},
                'recorded': {'type': 'integer', 'minimum': 0},
                'dropped': {'type': 'integer', 'minimum': 0}},
        },
        'events': {
            'type': 'array',
            'items': {
                'type': 'object',
                'required': ['seq', 'kind', 't'],
                'properties': {
                    'seq': {'type': 'integer', 'minimum': 0},
                    'kind': {'type': 'string'},
                    't': {'type': 'integer'}}},
        },
        'metric_snapshots': {
            'type': 'array',
            'items': {'type': 'object', 'required': ['t', 'metrics']},
        },
        'inflight': {
            'type': 'array',
            'items': {
                'type': 'object',
                'required': ['trace_id', 'span_id', 'name', 'kind',
                             'track', 'start']},
        },
        'anomalies': {'type': 'array', 'items': {'type': 'object'}},
    },
}


def postmortem_path(label: str, trigger: str,
                    out_dir: str = '.') -> str:
    """``POSTMORTEM_<label>-<trigger>.json`` — one file per trigger kind
    so a crash post-mortem is never clobbered by a later SLO-fail one."""
    safe = ''.join(c if c.isalnum() or c in '-_' else '_'
                   for c in label)
    return os.path.join(out_dir, f'POSTMORTEM_{safe}-{trigger}.json')


def build_postmortem(recorder: FlightRecorder, label: str, trigger: str,
                     detail: str, t: int,
                     inflight: Optional[List[dict]] = None,
                     anomalies: Optional[List[dict]] = None) -> dict:
    """Correlate ring + snapshots + open spans into one document."""
    if trigger not in TRIGGERS:
        raise ValueError(f'unknown post-mortem trigger {trigger!r}; '
                         f'choose from {", ".join(TRIGGERS)}')
    from ..telemetry.report import _generated
    from .spans import _provenance
    doc = {
        'schema_version': POSTMORTEM_SCHEMA_VERSION,
        'kind': POSTMORTEM_KIND,
        'generated': _generated(),
        'provenance': _provenance(),
        'label': label,
        'reason': {'trigger': trigger, 'detail': detail, 't': int(t)},
        'ring': {'capacity': recorder.capacity,
                 'recorded': recorder.seq,
                 'dropped': recorder.dropped},
        'events': recorder.events(),
        'metric_snapshots': recorder.snapshots(),
        'inflight': list(inflight or ()),
        'anomalies': list(anomalies or ()),
    }
    validate_postmortem(doc)
    return doc


def save_postmortem(doc: dict, path: str) -> str:
    with open(path, 'w') as f:
        json.dump(doc, f, indent=1)
    return path


def load_postmortem(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    validate_postmortem(doc)
    return doc


def validate_postmortem(doc: dict) -> None:
    """Raise ``ReportValidationError`` unless ``doc`` is a well-formed
    post-mortem of the supported schema version."""
    from ..telemetry.report import ReportValidationError
    if doc.get('kind') != POSTMORTEM_KIND:
        raise ReportValidationError(
            f'not a {POSTMORTEM_KIND} document '
            f'(kind={doc.get("kind")!r})')
    if doc.get('schema_version') != POSTMORTEM_SCHEMA_VERSION:
        raise ReportValidationError(
            f'unsupported post-mortem schema_version '
            f'{doc.get("schema_version")!r}')
    errors = check_schema(doc, POSTMORTEM_SCHEMA)
    if errors:
        raise ReportValidationError('; '.join(errors[:20]))


def render_postmortem(doc: dict) -> str:
    """Human-readable dump (``repro postmortem dump``)."""
    reason = doc['reason']
    lines = [
        f'post-mortem: {doc["label"]}',
        f'  trigger:   {reason["trigger"]} @ cycle {reason["t"]}',
        f'  detail:    {reason["detail"]}',
        f'  generated: {doc["generated"]["timestamp"]} '
        f'(git {doc["generated"]["git_sha"]})',
        f'  provenance: code {doc["provenance"]["code_version_hash"]} '
        f'machine {doc["provenance"]["machine_hash"]}',
        f'  ring:      {len(doc["events"])} event(s) retained, '
        f'{doc["ring"]["recorded"]} recorded, '
        f'{doc["ring"]["dropped"]} dropped',
    ]
    if doc['inflight']:
        lines.append(f'  in-flight: {len(doc["inflight"])} open span(s)')
        for span in doc['inflight']:
            lines.append(f'    {span["trace_id"]} {span["name"]} '
                         f'[{span["kind"]}] {span["track"]} '
                         f'since {span["start"]}')
    if doc['anomalies']:
        lines.append(f'  anomalies: {len(doc["anomalies"])}')
        for ev in doc['anomalies']:
            lines.append(f'    t={ev.get("t")} {ev.get("signal")} '
                         f'value={ev.get("value")} z={ev.get("z")}')
    lines.append('  events (oldest first):')
    for ev in doc['events']:
        extra = ' '.join(
            f'{k}={v}' for k, v in sorted(ev.items())
            if k not in ('seq', 'kind', 't', 'source'))
        lines.append(f'    #{ev["seq"]:>4} t={ev["t"]:>10} '
                     f'{ev["kind"]:<17} {extra}'.rstrip())
    return '\n'.join(lines)
