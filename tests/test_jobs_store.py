"""Lossless RunResult serialization and the on-disk result store."""

import dataclasses
import json

import pytest

from repro.jobs import (JobSpec, ResultStore, RESULT_SCHEMA_VERSION,
                        result_from_dict, result_to_dict, run_job)


@pytest.fixture(scope='module')
def tiny_result():
    return run_job(JobSpec.make('bicg', 'NV_PF', scale='test'))


@pytest.fixture(scope='module')
def tiny_key():
    return JobSpec.make('bicg', 'NV_PF', scale='test').key()


class TestSerialization:
    def test_round_trip_is_lossless(self, tiny_result):
        r2 = result_from_dict(result_to_dict(tiny_result))
        assert r2.benchmark == tiny_result.benchmark
        assert r2.config == tiny_result.config
        assert r2.cycles == tiny_result.cycles
        assert r2.stats.cycles == tiny_result.stats.cycles
        assert r2.stats.noc_word_hops == tiny_result.stats.noc_word_hops
        assert r2.stats.mem == tiny_result.stats.mem
        assert r2.stats.cores == tiny_result.stats.cores
        assert r2.energy == tiny_result.energy
        assert r2.params == tiny_result.params
        assert r2.machine == tiny_result.machine
        assert r2.telemetry is None

    def test_round_trip_survives_json(self, tiny_result):
        doc = json.loads(json.dumps(result_to_dict(tiny_result)))
        r2 = result_from_dict(doc)
        assert r2.cycles == tiny_result.cycles
        assert r2.stats.cores == tiny_result.stats.cores

    def test_none_fields_round_trip(self, tiny_result):
        bare = dataclasses.replace(tiny_result, energy=None, params=None,
                                   machine=None)
        r2 = result_from_dict(result_to_dict(bare))
        assert r2.energy is None and r2.params is None \
            and r2.machine is None

    def test_source_marks_provenance(self, tiny_result):
        assert tiny_result.source == 'simulated'
        doc = result_to_dict(tiny_result)
        assert result_from_dict(doc).source == 'store'
        assert result_from_dict(doc, source='simulated').source == \
            'simulated'

    def test_schema_version_mismatch_rejected(self, tiny_result):
        doc = result_to_dict(tiny_result)
        doc['schema_version'] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match='schema'):
            result_from_dict(doc)


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path, tiny_result, tiny_key):
        store = ResultStore(tmp_path / 'store')
        assert tiny_key not in store
        store.put(tiny_key, tiny_result)
        assert tiny_key in store and len(store) == 1
        got = store.get(tiny_key)
        assert got.cycles == tiny_result.cycles
        assert got.stats.cores == tiny_result.stats.cores
        assert got.source == 'store'

    def test_missing_key_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get('0' * 24) is None
        assert store.misses == 1

    def test_corrupt_file_is_a_miss(self, tmp_path, tiny_result, tiny_key):
        store = ResultStore(tmp_path)
        store.put(tiny_key, tiny_result)
        store.path(tiny_key).write_text('{"truncated": ')
        assert store.get(tiny_key) is None

    def test_schema_bump_invalidates(self, tmp_path, tiny_result, tiny_key):
        store = ResultStore(tmp_path)
        store.put(tiny_key, tiny_result)
        doc = json.loads(store.path(tiny_key).read_text())
        doc['store_schema_version'] = RESULT_SCHEMA_VERSION + 1
        store.path(tiny_key).write_text(json.dumps(doc))
        assert store.get(tiny_key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path, tiny_result, tiny_key):
        # a renamed/moved file must not be served for the wrong point
        store = ResultStore(tmp_path)
        store.put(tiny_key, tiny_result)
        other = 'f' * 24
        store.path(tiny_key).rename(store.path(other))
        assert store.get(other) is None

    def test_clear(self, tmp_path, tiny_result, tiny_key):
        store = ResultStore(tmp_path)
        store.put(tiny_key, tiny_result)
        assert store.clear() == 1
        assert len(store) == 0


class TestReportProvenance:
    """to_json embeds the machine hash + store schema version."""

    def test_fresh_report_fields(self, tiny_result):
        from repro.jobs import machine_hash
        doc = tiny_result.to_json()
        assert doc['machine_hash'] == machine_hash(tiny_result.machine)
        assert doc['result_store'] == {
            'schema_version': RESULT_SCHEMA_VERSION, 'source': 'simulated'}

    def test_cached_report_distinguishable(self, tmp_path, tiny_result,
                                           tiny_key):
        store = ResultStore(tmp_path)
        store.put(tiny_key, tiny_result)
        cached = store.get(tiny_key)
        doc = cached.to_json()
        assert doc['result_store']['source'] == 'store'
        assert doc['machine_hash'] == tiny_result.to_json()['machine_hash']
        assert doc['cycles'] == tiny_result.cycles
