"""Ablations of Rockcress design choices (beyond the paper's figures).

These exercise the knobs DESIGN.md calls out: inet queue depth, the number
of DAE frame counters, response-port serialization at the LLC, and the
expander's pause-on-branch behaviour.
"""

import pytest

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import DEFAULT_CONFIG

from conftest import SCALE, emit

BENCHES = ('bicg', 'gemm', '2dconv')


def _run(name, config, machine):
    bench = registry.make(name)
    params = bench.params_for('test' if SCALE == 'test' else 'bench')
    return run_benchmark(bench, config, params, base_machine=machine)


def test_ablation_inet_queue_depth(benchmark, cache):
    """Deeper inet queues soak up backpressure; depth 1 serializes.

    Depths beyond ``frame_counters - 2`` cannot be statically paced
    (Section 4.2), so the sweep stops at 3 — and the builder must reject
    deeper queues explicitly.
    """

    def run():
        out = {}
        for depth in (1, 2, 3):
            machine = DEFAULT_CONFIG.scaled(inet_queue_entries=depth)
            out[depth] = {b: _run(b, 'V4', machine).cycles
                          for b in BENCHES}
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit('\n'.join(f'inet depth {d}: ' +
                   ' '.join(f'{b}={c}' for b, c in row.items())
                   for d, row in data.items()))
    for b in BENCHES:
        # going from depth 1 to the paper's 2 should not hurt
        assert data[2][b] <= data[1][b] * 1.05
        # returns diminish: depth 3 buys little over depth 2
        assert data[3][b] >= data[2][b] * 0.7
    # a queue deeper than the frame window is rejected outright
    import pytest
    with pytest.raises(ValueError, match='statically paced'):
        _run(BENCHES[0], 'V4',
             DEFAULT_CONFIG.scaled(inet_queue_entries=8))


def test_ablation_frame_counters(benchmark, cache):
    """More counters let DAE run further ahead (paper Section 3.3)."""

    def run():
        out = {}
        for n in (4, 5, 16):
            machine = DEFAULT_CONFIG.scaled(frame_counters=n)
            out[n] = {b: _run(b, 'V4', machine).cycles for b in BENCHES}
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit('\n'.join(f'frame counters {n}: ' +
                   ' '.join(f'{b}={c}' for b, c in row.items())
                   for n, row in data.items()))
    for b in BENCHES:
        # shrinking the window below the paper's 5 never helps
        assert data[4][b] >= data[5][b] * 0.98
        # growing it beyond 5 helps at most modestly
        assert data[16][b] >= data[5][b] * 0.6


def test_ablation_ideal_llc_ports(benchmark, cache):
    """Removing response-port serialization bounds its contribution."""

    def run():
        ideal = DEFAULT_CONFIG.scaled(ideal_llc_ports=True)
        return {b: (_run(b, 'V4', DEFAULT_CONFIG).cycles,
                    _run(b, 'V4', ideal).cycles) for b in BENCHES}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit('\n'.join(f'{b}: real={r} ideal={i}'
                   for b, (r, i) in data.items()))
    for b, (real, ideal) in data.items():
        assert ideal <= real * 1.02  # idealizing never hurts


def test_ablation_expander_branch_pause(benchmark, cache):
    """The expander's pause-on-branch is a correctness/energy tradeoff the
    paper bakes in; turning it off bounds its performance cost."""

    def run():
        nopause = DEFAULT_CONFIG.scaled(expander_pause_on_branch=False)
        return {b: (_run(b, 'V4', DEFAULT_CONFIG).cycles,
                    _run(b, 'V4', nopause).cycles) for b in BENCHES}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit('\n'.join(f'{b}: pause={p} nopause={n}'
                   for b, (p, n) in data.items()))
    for b, (pause, nopause) in data.items():
        assert nopause <= pause * 1.02


def test_ablation_gpu_wavefront_scaling(benchmark, cache):
    """Paper Section 6.6 speculates "a larger GPU design would perform
    better on memory-bound benchmarks".  Measured: for our streaming
    matvecs the bottleneck is DRAM *bandwidth* (the run time sits at the
    line-transfer floor), so quadrupling the wavefronts per CU changes
    nothing — latency hiding only pays when latency, not throughput, is
    the limit.  The ablation pins that floor down.
    """
    import numpy as np
    from repro.gpu import GpuConfig, GpuMachine
    from repro.gpu.kernels import k_matmul
    from repro.kernels.vector_templates import MatTerm

    nj, nk = 4096, 128

    def run():
        out = {}
        for wf in (4, 16):
            cfg = GpuConfig(wavefronts_per_cu=wf)
            gm = GpuMachine(cfg)
            rng = np.random.default_rng(3)
            a_base = gm.alloc(rng.random(nk * nj).tolist())
            v_base = gm.alloc(rng.random(nk).tolist())
            y_base = gm.alloc(nj)
            prog, entry = k_matmul(
                cfg, ni=1, nj=nj, nk=nk,
                terms=[MatTerm(v_base, 0, a_base, nj)],
                out_base=y_base, out_stride=nj)
            gm.launch(prog, entry)
            out[wf] = (gm.cycle, gm.mem.dram_lines)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit('\n'.join(
        f'GPU wavefronts/CU {wf}: cycles={c} dram_lines={d}'
        for wf, (c, d) in data.items()))
    cfg = GpuConfig()
    for wf, (cycles, lines) in data.items():
        floor = lines * cfg.line_words / cfg.dram_bandwidth_words_per_cycle
        # runtime sits within 15% of the DRAM transfer floor ...
        assert cycles < floor * 1.15, (wf, cycles, floor)
    # ... so extra wavefronts neither help nor hurt materially
    assert abs(data[16][0] - data[4][0]) < 0.1 * data[4][0]
