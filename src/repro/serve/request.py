"""The serving request model.

A :class:`KernelRequest` is one unit of admitted work: which kernel to
run, at what problem size, and the *preferred group shape* — ``lanes``
vector lanes per group times ``groups`` groups, i.e. a contiguous region
of ``groups * (lanes + 1)`` tiles.  Requests carry a priority (higher
dispatches first), an arrival cycle, and an optional timeout measured
from arrival; the scheduler fills in the outcome fields as the request
moves through its lifecycle::

    queued -> running -> done
                      \\-> failed / timed-out      (killed mid-run)
    queued ------------> timed-out                 (expired while waiting)
    (rejected at admission when the shape can never fit the mesh)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# lifecycle states
QUEUED = 'queued'
RUNNING = 'running'
DONE = 'done'
FAILED = 'failed'
TIMED_OUT = 'timed-out'
REJECTED = 'rejected'

#: states a finished request can be in
TERMINAL = (DONE, FAILED, TIMED_OUT, REJECTED)


@dataclass
class KernelRequest:
    """One kernel invocation submitted to the serving scheduler."""

    req_id: int
    kernel: str
    params: Dict[str, int]
    lanes: int = 4
    groups: int = 1
    priority: int = 0
    arrival: int = 0
    timeout: Optional[int] = None  # cycles from arrival; None = unbounded
    #: distributed-tracing correlation id (repro.flight); minted by
    #: tracegen, propagated verbatim over the fleet wire protocol
    trace_id: Optional[str] = None

    # outcome (filled by the scheduler)
    state: str = QUEUED
    launched_at: Optional[int] = None
    finished_at: Optional[int] = None
    error: Optional[str] = None
    stats: Optional[object] = None  # per-request RunStats delta
    instrs: int = 0
    #: phase breakdown summing exactly to ``latency``
    #: (see repro.observe.rtrace.build_breakdown)
    breakdown: Optional[Dict[str, int]] = None

    # scheduler-internal bookkeeping
    _ws: object = field(default=None, repr=False)
    _bench: object = field(default=None, repr=False)
    _stats0: object = field(default=None, repr=False)
    _timeout_token: Optional[int] = field(default=None, repr=False)
    _kill_reason: Optional[str] = field(default=None, repr=False)
    _rtrace: object = field(default=None, repr=False)

    @property
    def tiles_needed(self) -> int:
        return self.groups * (self.lanes + 1)

    @property
    def queue_wait(self) -> Optional[int]:
        if self.launched_at is None:
            return None
        return self.launched_at - self.arrival

    @property
    def latency(self) -> Optional[int]:
        """Arrival-to-finish cycles (queue wait + service)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival

    @property
    def service_cycles(self) -> Optional[int]:
        if self.finished_at is None or self.launched_at is None:
            return None
        return self.finished_at - self.launched_at

    def to_dict(self) -> dict:
        """Trace-file form (inputs only, no outcome)."""
        doc = {'req_id': self.req_id, 'kernel': self.kernel,
               'params': dict(self.params), 'lanes': self.lanes,
               'groups': self.groups, 'priority': self.priority,
               'arrival': self.arrival, 'timeout': self.timeout}
        if self.trace_id is not None:
            doc['trace_id'] = self.trace_id
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> 'KernelRequest':
        return cls(req_id=int(doc['req_id']), kernel=doc['kernel'],
                   params={k: int(v) for k, v in doc['params'].items()},
                   lanes=int(doc.get('lanes', 4)),
                   groups=int(doc.get('groups', 1)),
                   priority=int(doc.get('priority', 0)),
                   arrival=int(doc.get('arrival', 0)),
                   timeout=(int(doc['timeout'])
                            if doc.get('timeout') is not None else None),
                   trace_id=doc.get('trace_id'))
