"""Machine-readable run reports: build, validate, render, compare.

A report is a versioned JSON artifact capturing everything one
simulation produced — final counters, the telemetry histograms and
interval samples, the machine configuration, and provenance (git SHA,
python version, timestamp) — so sweeps can be archived, diffed, and
regression-gated in CI without re-running the simulator.

The schema below is expressed in (a practical subset of) JSON Schema
and enforced by a built-in validator, so the artifact stays checkable
on machines without the ``jsonschema`` package installed.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import List, Optional

SCHEMA_VERSION = 1
REPORT_KIND = 'repro-run-report'


# --------------------------------------------------------------------- schema
_COUNTER = {'type': 'integer', 'minimum': 0}
_NUMBER = {'type': 'number'}

SAMPLE_SCHEMA = {
    'type': 'object',
    'required': ['cycle', 'dcycles', 'issued', 'stalls', 'llc_lines',
                 'dram_backlog'],
    'properties': {
        'cycle': _COUNTER,
        'dcycles': _COUNTER,
        'issued': _COUNTER,
        'stalls': {'type': 'object'},
        'llc_lines': _COUNTER,
        'llc_accesses': _COUNTER,
        'llc_misses': _COUNTER,
        'dram_lines_read': _COUNTER,
        'dram_lines_written': _COUNTER,
        'dram_backlog': _NUMBER,
        'inet_depth_total': _COUNTER,
        'inet_depth_max': _COUNTER,
        'per_core': {'type': 'object'},
    },
}

HISTOGRAM_SCHEMA = {
    'type': 'object',
    'required': ['name', 'unit', 'count', 'mean', 'buckets'],
    'properties': {
        'name': {'type': 'string'},
        'unit': {'type': 'string'},
        'count': _COUNTER,
        'min': _NUMBER,
        'max': _NUMBER,
        'mean': _NUMBER,
        'p50': _NUMBER,
        'p99': _NUMBER,
        'buckets': {'type': 'object'},
    },
}

REPORT_SCHEMA = {
    'type': 'object',
    'required': ['schema_version', 'kind', 'generated', 'benchmark',
                 'config', 'cycles', 'instrs', 'counters', 'telemetry'],
    'properties': {
        'schema_version': {'type': 'integer', 'enum': [SCHEMA_VERSION]},
        'kind': {'type': 'string', 'enum': [REPORT_KIND]},
        'generated': {
            'type': 'object',
            'required': ['git_sha', 'timestamp', 'python'],
            'properties': {
                'git_sha': {'type': 'string'},
                'timestamp': {'type': 'string'},
                'python': {'type': 'string'},
            },
        },
        'benchmark': {'type': 'string'},
        'config': {'type': 'string'},
        'params': {'type': 'object'},
        'machine': {'type': 'object'},
        'machine_hash': {'type': 'string'},
        'result_store': {
            'type': 'object',
            'required': ['schema_version', 'source'],
            'properties': {
                'schema_version': {'type': 'integer'},
                'source': {'type': 'string'},
            },
        },
        'cycles': _COUNTER,
        'instrs': _COUNTER,
        'counters': {
            'type': 'object',
            'required': ['mem', 'noc_word_hops', 'stalls'],
            'properties': {
                'mem': {'type': 'object'},
                'noc_word_hops': _COUNTER,
                'stalls': {'type': 'object'},
                'cores': {'type': 'object'},
            },
        },
        'energy': {'type': 'object'},
        'telemetry': {
            'type': 'object',
            'required': ['sample_interval', 'samples', 'histograms',
                         'spans'],
            'properties': {
                'sample_interval': _COUNTER,
                'samples': {'type': 'array', 'items': SAMPLE_SCHEMA},
                'histograms': {'type': 'object'},
                'spans': {'type': 'object'},
                'spans_dropped': _COUNTER,
            },
        },
    },
}

_TYPES = {
    'object': dict,
    'array': list,
    'string': str,
    'integer': int,
    'number': (int, float),
    'boolean': bool,
    'null': type(None),
}


class ReportValidationError(Exception):
    """The document does not conform to the report schema."""


def _check(doc, schema: dict, path: str, errors: List[str]) -> None:
    typ = schema.get('type')
    if typ is not None:
        py = _TYPES[typ]
        ok = isinstance(doc, py) and not (
            typ in ('integer', 'number') and isinstance(doc, bool))
        if not ok:
            errors.append(f'{path}: expected {typ}, got '
                          f'{type(doc).__name__}')
            return
    if 'enum' in schema and doc not in schema['enum']:
        errors.append(f'{path}: {doc!r} not in {schema["enum"]}')
    if 'minimum' in schema and isinstance(doc, (int, float)) \
            and not isinstance(doc, bool) and doc < schema['minimum']:
        errors.append(f'{path}: {doc} < minimum {schema["minimum"]}')
    if isinstance(doc, dict):
        for key in schema.get('required', ()):
            if key not in doc:
                errors.append(f'{path}: missing required key {key!r}')
        props = schema.get('properties', {})
        for key, sub in props.items():
            if key in doc:
                _check(doc[key], sub, f'{path}.{key}', errors)
    if isinstance(doc, list) and 'items' in schema:
        for i, item in enumerate(doc):
            _check(item, schema['items'], f'{path}[{i}]', errors)


def check_schema(doc, schema: dict, root: str = '$') -> List[str]:
    """Validate ``doc`` against a schema; returns the error list.

    Public entry point for other report kinds (the serving report reuses
    the same practical-subset validator).
    """
    errors: List[str] = []
    _check(doc, schema, root, errors)
    return errors


def validate_report(doc: dict) -> None:
    """Raise :class:`ReportValidationError` unless ``doc`` is schema-valid."""
    errors = check_schema(doc, REPORT_SCHEMA)
    if errors:
        raise ReportValidationError('; '.join(errors[:20]))


# ------------------------------------------------------------------ provenance
def git_sha(cwd: Optional[str] = None) -> str:
    try:
        out = subprocess.run(['git', 'rev-parse', 'HEAD'], cwd=cwd,
                             capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return 'unknown'


def _generated() -> dict:
    return {
        'git_sha': git_sha(),
        'timestamp': datetime.now(timezone.utc).isoformat(),
        'python': platform.python_version(),
    }


# ----------------------------------------------------------------------- build
def _stats_counters(stats) -> dict:
    from ..manycore.stats import STALL_CAUSES, CoreStats
    mem = {f.name: getattr(stats.mem, f.name)
           for f in dataclasses.fields(stats.mem)}
    stalls = {}
    cores = {}
    for cid, cs in stats.cores.items():
        doc = {f.name: getattr(cs, f.name)
               for f in dataclasses.fields(CoreStats)}
        doc['stall_total'] = cs.stall_total()
        cores[str(cid)] = doc
        for f in STALL_CAUSES:
            stalls[f] = stalls.get(f, 0) + getattr(cs, f)
    return {'mem': mem, 'noc_word_hops': stats.noc_word_hops,
            'stalls': stalls, 'cores': cores}


def build_report(result) -> dict:
    """Assemble the (validated) report document for one RunResult.

    ``machine_hash`` and ``result_store`` tie the report to the sweep
    cache: the hash is the same one :mod:`repro.jobs` keys on, and
    ``result_store.source`` says whether the numbers were simulated in
    this process ('simulated') or rehydrated from the on-disk store
    ('store'), so cached and fresh reports are distinguishable.
    """
    from ..jobs.serialize import RESULT_SCHEMA_VERSION
    from ..jobs.spec import machine_hash
    doc = {
        'schema_version': SCHEMA_VERSION,
        'kind': REPORT_KIND,
        'generated': _generated(),
        'benchmark': result.benchmark,
        'config': result.config,
        'cycles': result.cycles,
        'instrs': result.stats.total_instrs,
        'counters': _stats_counters(result.stats),
        'machine_hash': machine_hash(result.machine),
        'result_store': {
            'schema_version': RESULT_SCHEMA_VERSION,
            'source': getattr(result, 'source', 'simulated'),
        },
    }
    if result.params is not None:
        doc['params'] = {k: v for k, v in result.params.items()}
    if result.machine is not None:
        doc['machine'] = dataclasses.asdict(result.machine)
    if result.energy is not None:
        doc['energy'] = dict(result.energy.as_dict())
        doc['energy']['on_chip_total'] = result.energy.on_chip_total
    tel = result.telemetry
    doc['telemetry'] = (tel.to_dict() if tel is not None else
                        {'sample_interval': 0, 'samples': [],
                         'histograms': {}, 'spans': {}})
    validate_report(doc)
    return doc


def load_report(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    validate_report(doc)
    return doc


# ---------------------------------------------------------------------- render
def render_report(doc: dict) -> str:
    """Human-readable summary of one report."""
    from .histogram import Log2Histogram
    lines = [f"{doc['benchmark']} / {doc['config']}  "
             f"(schema v{doc['schema_version']}, "
             f"git {doc['generated']['git_sha'][:12]})",
             f"  cycles        {doc['cycles']}",
             f"  instructions  {doc['instrs']}"]
    stalls = doc['counters']['stalls']
    total_stall = sum(stalls.values())
    core_cycles = sum(c['cycles'] for c in
                      doc['counters'].get('cores', {}).values()) or 1
    lines.append(f'  CPI stack (fabric aggregate, {total_stall} stall '
                 f'cycles):')
    for cause, v in sorted(stalls.items(), key=lambda kv: -kv[1]):
        if v:
            lines.append(f'    {cause[len("stall_"):]:<14s} {v:>12d}  '
                         f'({100.0 * v / core_cycles:5.1f}% of core cycles)')
    lines.append(f"  NoC word-hops {doc['counters']['noc_word_hops']}")
    mem = doc['counters']['mem']
    lines.append(f"  LLC accesses  {mem.get('llc_accesses', 0)} "
                 f"(misses {mem.get('llc_misses', 0)}), DRAM lines "
                 f"{mem.get('dram_lines_read', 0)}r/"
                 f"{mem.get('dram_lines_written', 0)}w")
    tel = doc['telemetry']
    lines.append(f"  samples       {len(tel['samples'])} "
                 f"@ {tel['sample_interval']}-cycle interval")
    for name, h in tel['histograms'].items():
        if h['count']:
            lines.append('  ' + Log2Histogram.from_dict(h).render()
                         .split('\n')[0])
    spans = tel.get('spans', {})
    if spans:
        lines.append('  spans         ' + ', '.join(
            f'{k}={v}' for k, v in sorted(spans.items())))
    return '\n'.join(lines)


# --------------------------------------------------------------------- compare
def compare_reports(a: dict, b: dict, threshold: float = 0.02):
    """Diff two reports; returns ``(text, regressed)``.

    ``regressed`` is True when B's cycle count exceeds A's by more than
    ``threshold`` (relative), or when any stall cause grows by more than
    ``threshold`` of A's total cycles — the knobs the CPI-stack figures
    are sensitive to.
    """
    lines = [f"compare {a['benchmark']}/{a['config']} "
             f"(git {a['generated']['git_sha'][:9]}) -> "
             f"{b['benchmark']}/{b['config']} "
             f"(git {b['generated']['git_sha'][:9]})"]
    regressed = False
    if (a['benchmark'], a.get('params')) != (b['benchmark'], b.get('params')):
        lines.append('  WARNING: comparing different benchmarks/params')

    ca, cb = a['cycles'], b['cycles']
    rel = (cb - ca) / ca if ca else 0.0
    flag = ''
    if rel > threshold:
        regressed = True
        flag = f'  << REGRESSION (> {threshold:.1%})'
    elif rel < -threshold:
        flag = '  (improvement)'
    lines.append(f'  cycles        {ca:>12d} -> {cb:>12d}  '
                 f'({rel:+.2%}){flag}')

    ia, ib = a['instrs'], b['instrs']
    irel = (ib - ia) / ia if ia else 0.0
    lines.append(f'  instructions  {ia:>12d} -> {ib:>12d}  ({irel:+.2%})')

    sa, sb = a['counters']['stalls'], b['counters']['stalls']
    for cause in sorted(set(sa) | set(sb)):
        va, vb = sa.get(cause, 0), sb.get(cause, 0)
        if va == vb == 0:
            continue
        drel = (vb - va) / ca if ca else 0.0
        flag = ''
        if drel > threshold:
            regressed = True
            flag = f'  << REGRESSION (+{drel:.1%} of cycles)'
        lines.append(f'  {cause[len("stall_"):]:<13s} {va:>12d} -> '
                     f'{vb:>12d}{flag}')

    ma, mb = a['counters']['mem'], b['counters']['mem']
    for key in ('llc_misses', 'dram_lines_read'):
        va, vb = ma.get(key, 0), mb.get(key, 0)
        if va or vb:
            lines.append(f'  {key:<13s} {va:>12d} -> {vb:>12d}')
    return '\n'.join(lines), regressed
