"""Figure 15: inet and frame-stall characterization.

Paper: (a) V16's inet-input stalls originate at the expander (scalar
bottleneck) and plateau down the chain; (b) V4 sees more backpressure than
V16; (c) V4 roughly halves the fraction of cycles spent waiting for
frames vs NV_PF.
"""

from repro.harness.figures import (FIG15_BENCHES, fig15_inet_stalls,
                                   fig15c_frame_stalls)

from conftest import emit


def _render_hops(data, title):
    lines = [title]
    for b, per_hop in data.items():
        vals = ' '.join(f'{v:.3f}' for v in per_hop)
        lines.append(f'  {b:10s} hops: {vals}')
    return '\n'.join(lines)


def test_fig15a_input_stalls(benchmark, cache):
    def run():
        return {4: fig15_inet_stalls(cache, 4, kind='input'),
                16: fig15_inet_stalls(cache, 16, kind='input')}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(_render_hops(data[4], 'Figure 15a: inet input stalls by hop (V4)'))
    emit(_render_hops(data[16],
                      'Figure 15a: inet input stalls by hop (V16)'))
    # the stall level at the last hop tracks the level just after the
    # expander (paper: "the trend plateaus after two hops")
    for b, per_hop in data[16].items():
        first = per_hop[2]
        last = per_hop[-1]
        assert last <= first + 0.25, (b, per_hop)


def test_fig15b_backpressure(benchmark, cache):
    def run():
        return {4: fig15_inet_stalls(cache, 4, kind='backpressure'),
                16: fig15_inet_stalls(cache, 16, kind='backpressure')}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(_render_hops(data[4], 'Figure 15b: backpressure stalls (V4)'))
    emit(_render_hops(data[16], 'Figure 15b: backpressure stalls (V16)'))
    # backpressure exists somewhere in the V4 chains
    total_v4 = sum(sum(v) for v in data[4].values())
    assert total_v4 > 0


def test_fig15c_frame_waits(benchmark, cache):
    s = benchmark.pedantic(lambda: fig15c_frame_stalls(cache),
                           rounds=1, iterations=1)
    emit(s)
    mean = s.mean_row()
    # fractions are per-configuration run time (the paper's normalization):
    # V4 runs are much shorter, so its fractions can sit near NV_PF's even
    # where absolute stalls dropped.  Sanity: fractions are valid and DAE
    # removes stalls outright for several benchmarks.
    assert 0.0 <= mean['V4'] <= 1.0 and 0.0 <= mean['NV_PF'] <= 1.0
    improved = sum(1 for r in s.rows.values() if r['V4'] < r['NV_PF'])
    assert improved >= 4
    assert mean['V4'] < mean['NV_PF'] * 1.5
