"""End-to-end correctness of the gemm kernel in every configuration."""

import pytest

from repro.harness import run_benchmark
from repro.kernels.gemm import Gemm
from repro.manycore import small_config

SMALL = small_config()  # 4x4 mesh keeps tests fast


class TestGemmConfigs:
    @pytest.fixture(scope='class')
    def bench(self):
        return Gemm()

    def _run(self, bench, config, **params):
        p = dict(bench.test_params)
        p.update(params)
        return run_benchmark(bench, config, p, base_machine=SMALL)

    def test_nv(self, bench):
        r = self._run(bench, 'NV')
        assert r.cycles > 0

    def test_nv_pf(self, bench):
        r = self._run(bench, 'NV_PF')
        assert r.cycles > 0

    def test_pcv_pf(self, bench):
        r = self._run(bench, 'PCV_PF')
        assert r.cycles > 0

    def test_v4(self, bench):
        r = self._run(bench, 'V4')
        assert r.cycles > 0

    def test_v4_bigger(self, bench):
        r = self._run(bench, 'V4', ni=8, nj=32, nk=12)
        assert r.cycles > 0

    def test_nv_pf_faster_than_nv(self, bench):
        p = {'ni': 8, 'nj': 32, 'nk': 16}
        nv = self._run(bench, 'NV', **p)
        pf = self._run(bench, 'NV_PF', **p)
        assert pf.cycles < nv.cycles

    def test_vector_reduces_icache_accesses(self, bench):
        p = {'ni': 8, 'nj': 32, 'nk': 16}
        pf = self._run(bench, 'NV_PF', **p)
        v4 = self._run(bench, 'V4', **p)
        # per the paper (Fig 10b) vector groups amortize frontend fetches
        assert v4.icache_accesses < pf.icache_accesses
