"""Run benchmarks under configurations and collect results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..kernels.base import Benchmark, VectorParams
from ..manycore import Fabric, MachineConfig, RunStats
from .configs import Config, MetaConfig, get


@dataclass
class RunResult:
    """Everything one simulation produced."""

    benchmark: str
    config: str
    cycles: int
    stats: RunStats
    energy: Optional[object] = None  # EnergyBreakdown, filled by harness
    params: Optional[Dict[str, int]] = None
    machine: Optional[MachineConfig] = None
    telemetry: Optional[object] = None  # repro.telemetry.Telemetry
    source: str = 'simulated'  # 'store' when rehydrated from a ResultStore

    @property
    def icache_accesses(self) -> int:
        return self.stats.total_icache_accesses

    @property
    def instrs(self) -> int:
        return self.stats.total_instrs

    def to_json(self, path: Optional[str] = None) -> dict:
        """Build the schema-checked run-report artifact.

        Includes final counters always, and interval samples / latency
        histograms when the run was executed with a
        :class:`~repro.telemetry.Telemetry` attached.  When ``path`` is
        given the document is also written there as JSON.
        """
        from ..telemetry.report import build_report
        doc = build_report(self)
        if path is not None:
            with open(path, 'w') as f:
                json.dump(doc, f, indent=1)
        return doc


class _NullScope:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()


def run_benchmark(bench: Benchmark, config, params: Dict[str, int],
                  base_machine: Optional[MachineConfig] = None,
                  verify: bool = True,
                  active_cores: Optional[Sequence[int]] = None,
                  max_cycles: int = 200_000_000,
                  telemetry=None, tracer=None, profiler=None) -> RunResult:
    """Simulate one (benchmark, configuration) pair and verify the output.

    ``config`` may be a name, a :class:`Config`, or a :class:`MetaConfig`
    (in which case members run and the fastest result is returned, renamed).
    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) and ``tracer`` (a
    :class:`repro.manycore.Tracer`) attach to the fabric before the run;
    neither changes simulated timing.  ``profiler`` (a
    :class:`repro.perf.HostProfiler`) additionally attributes *host* wall
    time to components (setup/codegen/run-loop/verify/energy) — it swaps
    in the instrumented run loop but never changes simulation results.
    """
    if isinstance(config, str):
        config = get(config)
    if isinstance(config, MetaConfig):
        if telemetry is not None or tracer is not None:
            raise ValueError(
                f'telemetry/tracing need one concrete configuration, not '
                f'the meta-config {config.name} (pick one of '
                f'{", ".join(config.members)})')
        best = None
        errors = []
        for member in config.members:
            try:
                r = run_benchmark(bench, member, params, base_machine,
                                  verify, active_cores, max_cycles)
            except ValueError as exc:  # member infeasible on this machine
                errors.append(f'{member}: {exc}')
                continue
            if best is None or r.cycles < best.cycles:
                best = r
        if best is None:
            raise ValueError(f'no member of {config.name} is runnable: '
                             + '; '.join(errors))
        return RunResult(best.benchmark, config.name, best.cycles,
                         best.stats, best.energy, best.params, best.machine)

    machine = config.machine(base_machine)
    if config.kind == 'gpu':
        from ..gpu import run_gpu_benchmark
        r = run_gpu_benchmark(bench, params, verify=verify,
                              telemetry=telemetry)
        r.params = dict(params)
        return r

    fabric = Fabric(machine)
    if telemetry is not None:
        telemetry.attach(fabric)
    if tracer is not None:
        tracer.attach(fabric)
    if profiler is not None:
        profiler.attach(fabric)
    scope = profiler.scope if profiler is not None \
        else (lambda name: _NULL_SCOPE)
    with scope('setup'):
        ws = bench.setup(fabric, params)
    if config.kind == 'mimd':
        with scope('codegen'):
            prog = bench.build_mimd(fabric, ws, params,
                                    prefetch=config.prefetch,
                                    pcv=config.pcv)
            fabric.load_program(prog, active_cores=active_cores)
        stats = fabric.run(max_cycles=max_cycles)
    elif config.kind == 'vector':
        with scope('codegen'):
            vp = VectorParams(lanes=config.lanes, pcv=config.pcv)
            prog = bench.build_vector(fabric, ws, params, vp)
            fabric.load_program(prog, active_cores=active_cores)
        stats = fabric.run(max_cycles=max_cycles)
    else:
        raise ValueError(f'unknown config kind {config.kind!r}')
    if verify:
        with scope('verify'):
            bench.verify(fabric, ws, params)
    from ..energy import compute_energy
    with scope('energy'):
        energy = compute_energy(stats, machine)
    return RunResult(bench.name, config.name, stats.cycles, stats, energy,
                     params=dict(params), machine=machine,
                     telemetry=telemetry)
