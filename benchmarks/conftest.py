"""Shared fixtures for the figure-regeneration benchmarks.

One :class:`ResultCache` is shared across the whole session so each
(benchmark, configuration) point simulates once even though several
figures consume it.  Set ``REPRO_SCALE=test`` for a fast smoke pass with
tiny inputs (shapes will be noisier).  Set ``REPRO_STORE=DIR`` to back
the cache with a persistent result store: points already executed by a
``repro sweep`` (or a previous benchmark session) are served from disk
instead of re-simulated, and fresh points are written back
(docs/sweeps.md).
"""

import os

import pytest

from repro.harness.figures import ResultCache

SCALE = os.environ.get('REPRO_SCALE', 'bench')
STORE_DIR = os.environ.get('REPRO_STORE')


@pytest.fixture(scope='session')
def cache():
    store = None
    if STORE_DIR:
        from repro.jobs import ResultStore
        store = ResultStore(STORE_DIR)
    return ResultCache(scale=SCALE, store=store)


FIGURES_FILE = os.path.join(os.path.dirname(__file__), os.pardir,
                            'figures_output.txt')
_emitted_this_session = False


def emit(series_or_text):
    """Print a rendered series and append it to figures_output.txt.

    pytest captures stdout of passing tests, so the file is the durable
    record of every regenerated table/figure.
    """
    global _emitted_this_session
    text = (series_or_text.render()
            if hasattr(series_or_text, 'render') else str(series_or_text))
    print()
    print(text)
    print()
    mode = 'a' if _emitted_this_session else 'w'
    with open(FIGURES_FILE, mode) as f:
        f.write(text)
        f.write('\n\n')
    _emitted_this_session = True
