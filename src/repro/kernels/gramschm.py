"""gramschm: classic Gram-Schmidt QR decomposition.

The k-loop is sequential; within one k, the orthogonalization of trailing
columns is parallelized column-wise.  The column-major access pattern
cannot use wide vector loads (paper Section 6.3: "gramschm is not able to
take advantage of vector loads due to its access pattern and must resort to
scalar loads"), so the vector version's microthreads gather with ordinary
word loads — which is exactly why it shows no DAE benefit.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Assembler, Program, opcodes as op
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import _strided_tiles
from .vector_templates import emit_fp_zero


class Gramschm(Benchmark):
    name = 'gramschm'
    test_params = {'m': 8, 'n': 8}
    bench_params = {'m': 20, 'n': 20}

    def setup(self, fabric: Fabric, params) -> Workspace:
        m, n = params['m'], params['n']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((m, n)) + 0.5)
        self.alloc_zeros(fabric, ws, 'Q', m * n)
        self.alloc_zeros(fabric, ws, 'R', n * n)
        self.alloc_zeros(fabric, ws, 'pd', 64)      # per-core dot partials
        self.alloc_zeros(fabric, ws, 'nrm', 1)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        q, r, a2 = refs.gramschmidt(ws.inputs['A'])
        return {'Q': q, 'R': r, 'A': a2}

    # -- per-k MIMD sub-kernels (shared by both builds) ------------------------
    def _dot_col_k(self, ws, params):
        m, n = params['m'], params['n']
        A, pd = ws.base('A'), ws.base('pd')

        def body(a: Assembler):
            # pd[tid] = sum over strided i of A[i][k]^2   (k in x19)
            emit_fp_zero(a, 'f8')
            with _strided_tiles(a, m):
                a.li('x5', n)
                a.mul('x5', 'x5', 'x3')
                a.add('x5', 'x5', 'x19')
                a.li('x6', A)
                a.add('x5', 'x5', 'x6')
                a.lw('f1', 'x5', 0)
                a.fma('f8', 'f1', 'f1')
            a.li('x7', pd)
            a.add('x7', 'x7', 'x1')
            a.sw('f8', 'x7', 0)

        return body

    def _reduce_norm(self, ws, params):
        n = params['n']
        pd, R, nrm = ws.base('pd'), ws.base('R'), ws.base('nrm')

        def body(a: Assembler):
            skip = a.label()
            a.bne('x1', 'x0', skip.name)  # core 0 only
            emit_fp_zero(a, 'f8')
            a.li('x5', pd)
            a.li('x6', 0)
            top = a.label()
            done = a.label()
            a.bind(top)
            a.bge('x6', 'x2', done.name)
            a.lw('f1', 'x5', 0)
            a.fadd('f8', 'f8', 'f1')
            a.addi('x5', 'x5', 1)
            a.addi('x6', 'x6', 1)
            a.j(top.name)
            a.bind(done)
            a.fsqrt('f9', 'f8')
            # R[k][k] = nrm ; nrm_slot = nrm
            a.li('x7', n + 1)
            a.mul('x7', 'x7', 'x19')
            a.li('x8', R)
            a.add('x7', 'x7', 'x8')
            a.sw('f9', 'x7', 0)
            a.li('x9', nrm)
            a.sw('f9', 'x9', 0)
            a.bind(skip)

        return body

    def _normalize(self, ws, params):
        m, n = params['m'], params['n']
        A, Q, nrm = ws.base('A'), ws.base('Q'), ws.base('nrm')

        def body(a: Assembler):
            a.li('x9', nrm)
            a.lw('f9', 'x9', 0)
            with _strided_tiles(a, m):
                a.li('x5', n)
                a.mul('x5', 'x5', 'x3')
                a.add('x5', 'x5', 'x19')
                a.li('x6', A)
                a.add('x6', 'x6', 'x5')
                a.li('x7', Q)
                a.add('x7', 'x7', 'x5')
                a.lw('f1', 'x6', 0)
                a.fdiv('f1', 'f1', 'f9')
                a.sw('f1', 'x7', 0)

        return body

    def _emit_update_column(self, a: Assembler, ws, params, j_reg: str,
                            pred_reg: str = None):
        """R[k][j] = Q[:,k].A[:,j]; A[:,j] -= R[k][j]*Q[:,k] (j in j_reg).

        When ``pred_reg`` is given (vector mode), only the stores are
        predicated: loop bookkeeping must keep running on masked lanes,
        since predication cannot skip control flow (paper Section 2.4).
        """
        m, n = params['m'], params['n']
        A, Q, R = ws.base('A'), ws.base('Q'), ws.base('R')

        def guarded_sw(val, addr, imm=0):
            if pred_reg is not None:
                a.pred_neq(pred_reg, 'x0')
            a.sw(val, addr, imm)
            if pred_reg is not None:
                a.pred_eq('x0', 'x0')
        # x8 = &Q[0][k], x9 = &A[0][j]
        a.li('x8', Q)
        a.add('x8', 'x8', 'x19')
        a.li('x9', A)
        a.add('x9', 'x9', j_reg)
        emit_fp_zero(a, 'f8')
        a.mv('x10', 'x8')
        a.mv('x11', 'x9')
        with a.for_range('x12', 0, m):
            a.lw('f1', 'x10', 0)
            a.lw('f2', 'x11', 0)
            a.fma('f8', 'f1', 'f2')
            a.addi('x10', 'x10', n)
            a.addi('x11', 'x11', n)
        # R[k][j] = dot
        a.li('x13', n)
        a.mul('x13', 'x13', 'x19')
        a.add('x13', 'x13', j_reg)
        a.li('x14', R)
        a.add('x13', 'x13', 'x14')
        guarded_sw('f8', 'x13', 0)
        # A[:,j] -= dot * Q[:,k]
        a.mv('x10', 'x8')
        a.mv('x11', 'x9')
        with a.for_range('x12', 0, m):
            a.lw('f1', 'x10', 0)
            a.lw('f2', 'x11', 0)
            a.fmul('f1', 'f1', 'f8')
            a.fsub('f2', 'f2', 'f1')
            guarded_sw('f2', 'x11', 0)
            a.addi('x10', 'x10', n)
            a.addi('x11', 'x11', n)

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        n = params['n']
        mb = MimdKernelBuilder()
        with mb.loop(n):
            mb.add_kernel(self._dot_col_k(ws, params))
            mb.add_kernel(self._reduce_norm(ws, params))
            mb.add_kernel(self._normalize(ws, params))

            def update(a: Assembler):
                # for j = k+1+tid ; j < n ; j += ncores
                a.addi('x3', 'x19', 1)
                a.add('x3', 'x3', 'x1')
                top = a.label()
                done = a.label()
                a.bind(top)
                a.li('x31', n)
                a.bge('x3', 'x31', done.name)
                self._emit_update_column(a, ws, params, 'x3')
                a.add('x3', 'x3', 'x2')
                a.j(top.name)
                a.bind(done)

            mb.add_kernel(update)
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        n = params['n']
        b = self.make_vector_builder(fabric, vp, params)
        total_lanes = len(b.groups) * b.lanes
        trips = (n + total_lanes - 1) // total_lanes
        p = b.program()
        with p.loop(n):
            p.mimd_phase(self._dot_col_k(ws, params))
            p.mimd_phase(self._reduce_norm(ws, params))
            p.mimd_phase(self._normalize(ws, params))

            def scalar_stream(a, g):
                a.vissue('.gs_update')

            p.vector_phase(scalar_stream, frame_size=4)

        def microthreads(a: Assembler):
            a.bind('.gs_update')
            # global lane id -> columns j = k+1+gl, step total_lanes
            a.csrr('x29', op.CSR_TID)
            a.csrr('x5', op.CSR_GROUP_ID)
            a.li('x6', b.lanes)
            a.mul('x5', 'x5', 'x6')
            a.add('x5', 'x5', 'x29')
            a.addi('x3', 'x19', 1)
            a.add('x3', 'x3', 'x5')
            for _ in range(trips):
                # mask lanes whose column ran past n: clamp the address
                # and predicate only the stores (loop bookkeeping must run
                # on masked lanes; predication cannot skip control flow)
                a.li('x31', n)
                a.slt('x4', 'x3', 'x31')
                a.mul('x27', 'x3', 'x4')
                self._emit_update_column(a, ws, params, 'x27',
                                         pred_reg='x4')
                a.li('x7', total_lanes)
                a.add('x3', 'x3', 'x7')
            a.vend()

        return p.finish(microthreads)
