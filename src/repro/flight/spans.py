"""Distributed trace spans and the flight journal (JSONL on disk).

A **span** is one timed episode in a request's life, stamped with the
``trace_id`` the request was minted with by ``tracegen``.  Spans form a
tree: the root ``request`` span covers arrival to finish at *global*
fleet time, and its children tile that window — router queue waits
(one per dispatch attempt), shard execution windows (one per attempt,
including attempts that died in a shard crash), the reroute gap between
a crash and the re-dispatch, and the per-request causal phase
breakdown (``repro.observe.rtrace``) laid out as leaf spans inside each
completed execution window.

Spans are plain dicts so they serialize over the fleet wire protocol
(shard workers return their fragments inside the batch result dict) and
into the **flight journal**: a JSONL file whose first line is a typed,
provenance-stamped header and whose remaining lines are ``span`` and
``anomaly`` records.  ``repro trace merge|export|inspect`` consume
journals; :func:`check_continuity` is the invariant the acceptance
tests gate on — a re-routed request's spans must cover its root window
with no gaps, i.e. it reads as *one continuous trace* across the
router and every shard that touched it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

JOURNAL_KIND = 'repro-flight-journal'
JOURNAL_SCHEMA_VERSION = 1

#: span kinds, from root to leaf
KIND_REQUEST = 'request'          # root: arrival -> finish (global)
KIND_ROUTER_QUEUE = 'router_queue'  # waiting in the router, per attempt
KIND_REROUTE_WAIT = 'reroute_wait'  # crash boundary -> re-dispatch
KIND_SHARD_EXEC = 'shard_exec'    # dispatch -> batch completion/crash
KIND_PHASE = 'phase'              # causal-breakdown leaf inside an exec

SPAN_KINDS = (KIND_REQUEST, KIND_ROUTER_QUEUE, KIND_REROUTE_WAIT,
              KIND_SHARD_EXEC, KIND_PHASE)

#: the router's track name; shards use ``shard:<id>``
TRACK_ROUTER = 'router'


def shard_track(shard_id: int) -> str:
    return f'shard:{shard_id}'


def make_span(trace_id: str, span_id: str, name: str, kind: str,
              track: str, start: int, end: Optional[int] = None,
              parent_id: Optional[str] = None,
              attrs: Optional[dict] = None) -> dict:
    """One span record (plain dict: wire- and JSONL-safe)."""
    if kind not in SPAN_KINDS:
        raise ValueError(f'unknown span kind {kind!r}')
    span = {'trace_id': trace_id, 'span_id': span_id, 'name': name,
            'kind': kind, 'track': track, 'start': int(start),
            'end': None if end is None else int(end)}
    if parent_id is not None:
        span['parent_id'] = parent_id
    if attrs:
        span['attrs'] = dict(attrs)
    return span


class JournalError(ValueError):
    """A flight journal failed structural validation."""


def _provenance() -> dict:
    from ..jobs.spec import CODE_VERSION, code_version_hash, machine_hash
    from ..manycore import DEFAULT_CONFIG
    return {'code_version': CODE_VERSION,
            'code_version_hash': code_version_hash(),
            'machine_hash': machine_hash(DEFAULT_CONFIG)}


def journal_header(label: str) -> dict:
    from ..telemetry.report import _generated
    return {'type': 'header', 'kind': JOURNAL_KIND,
            'schema_version': JOURNAL_SCHEMA_VERSION, 'label': label,
            'generated': _generated(), 'provenance': _provenance()}


def write_journal(path: str, spans: List[dict],
                  anomalies: Optional[List[dict]] = None,
                  label: str = 'fleet') -> dict:
    """Write header + spans + anomalies as JSONL; returns the header."""
    header = journal_header(label)
    with open(path, 'w') as f:
        f.write(json.dumps(header) + '\n')
        for span in spans:
            f.write(json.dumps({'type': 'span', **span}) + '\n')
        for ev in anomalies or ():
            f.write(json.dumps({'type': 'anomaly', **ev}) + '\n')
    return header


_SPAN_REQUIRED = ('trace_id', 'span_id', 'name', 'kind', 'track',
                  'start')


def read_journal(path: str) -> Tuple[dict, List[dict], List[dict]]:
    """Load and validate a journal; returns (header, spans, anomalies)."""
    spans: List[dict] = []
    anomalies: List[dict] = []
    header: Optional[dict] = None
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalError(f'{path}:{lineno}: not JSON: {exc}')
            kind = row.pop('type', None)
            if lineno == 1:
                if kind != 'header' or row.get('kind') != JOURNAL_KIND:
                    raise JournalError(
                        f'{path}: first line is not a {JOURNAL_KIND} '
                        f'header')
                if row.get('schema_version') != JOURNAL_SCHEMA_VERSION:
                    raise JournalError(
                        f'{path}: unsupported journal schema_version '
                        f'{row.get("schema_version")!r}')
                header = row
                continue
            if kind == 'span':
                missing = [k for k in _SPAN_REQUIRED if k not in row]
                if missing:
                    raise JournalError(
                        f'{path}:{lineno}: span missing '
                        f'{", ".join(missing)}')
                if row['kind'] not in SPAN_KINDS:
                    raise JournalError(
                        f'{path}:{lineno}: unknown span kind '
                        f'{row["kind"]!r}')
                spans.append(row)
            elif kind == 'anomaly':
                anomalies.append(row)
            else:
                raise JournalError(
                    f'{path}:{lineno}: unknown record type {kind!r}')
    if header is None:
        raise JournalError(f'{path}: empty journal')
    return header, spans, anomalies


# --------------------------------------------------------------- invariants
def by_trace(spans: List[dict]) -> Dict[str, List[dict]]:
    out: Dict[str, List[dict]] = {}
    for s in spans:
        out.setdefault(s['trace_id'], []).append(s)
    return out


def check_continuity(spans: List[dict]) -> Dict[str, dict]:
    """Per-trace continuity verdicts.

    A trace is **continuous** when its non-root, non-phase spans,
    ordered by start, cover the root ``request`` span's window with no
    gap: the first starts at the root's start, each next span starts at
    or before the furthest end seen so far, and the furthest end
    reaches the root's end.  Phase spans are leaves *inside* an exec
    span and are excluded from the top-level tiling.
    """
    verdicts: Dict[str, dict] = {}
    for tid, group in sorted(by_trace(spans).items()):
        roots = [s for s in group if s['kind'] == KIND_REQUEST]
        verdict = {'trace_id': tid, 'spans': len(group),
                   'continuous': False, 'gaps': [], 'tracks': sorted(
                       {s['track'] for s in group})}
        if len(roots) != 1:
            verdict['error'] = f'{len(roots)} root span(s)'
            verdicts[tid] = verdict
            continue
        root = roots[0]
        if root['end'] is None:
            verdict['error'] = 'open root span'
            verdicts[tid] = verdict
            continue
        body = sorted((s for s in group
                       if s['kind'] not in (KIND_REQUEST, KIND_PHASE)),
                      key=lambda s: (s['start'],
                                     s['end'] if s['end'] is not None
                                     else s['start']))
        covered = root['start']
        gaps: List[Tuple[int, int]] = []
        for s in body:
            if s['start'] > covered:
                gaps.append((covered, s['start']))
            end = s['end'] if s['end'] is not None else s['start']
            covered = max(covered, end)
        if covered < root['end']:
            gaps.append((covered, root['end']))
        verdict['gaps'] = gaps
        verdict['continuous'] = not gaps and bool(body)
        if not body:
            verdict['error'] = 'no body spans'
        verdicts[tid] = verdict
    return verdicts


def render_tree(spans: List[dict], trace_id: str) -> str:
    """ASCII tree of one trace's spans (depth from parent links)."""
    group = [s for s in spans if s['trace_id'] == trace_id]
    if not group:
        return f'trace {trace_id}: no spans'
    by_id = {s['span_id']: s for s in group}
    children: Dict[Optional[str], List[dict]] = {}
    for s in group:
        parent = s.get('parent_id')
        if parent is not None and parent not in by_id:
            parent = None  # orphan: show at top level, never drop
        children.setdefault(parent, []).append(s)
    lines = [f'trace {trace_id}:']

    def walk(parent: Optional[str], depth: int) -> None:
        for s in sorted(children.get(parent, ()),
                        key=lambda s: (s['start'], s['span_id'])):
            end = '...' if s['end'] is None else str(s['end'])
            attrs = s.get('attrs') or {}
            extra = (' ' + ' '.join(f'{k}={v}' for k, v in
                                    sorted(attrs.items()))
                     if attrs else '')
            lines.append(f'{"  " * (depth + 1)}{s["name"]} '
                         f'[{s["kind"]}] {s["track"]} '
                         f'{s["start"]}..{end}{extra}')
            walk(s['span_id'], depth + 1)

    walk(None, 0)
    return '\n'.join(lines)
