"""Noise-aware regression gating between two bench reports.

``repro bench compare A B --gate`` is the mechanical answer to "did the
simulator get slower": it diffs two ``BENCH_*.json`` artifacts case by
case and exits nonzero when B regresses beyond what measurement noise
can explain.

The wall-time test is deliberately two-sided against noise: case B is a
regression only when the median slowdown exceeds **both**

* ``threshold`` (relative, default 25% — host timing on shared runners
  is far noisier than simulated cycles, so this is looser than the
  2% cycle gate in ``repro compare``), and
* ``noise_mult`` x the larger of the two runs' IQRs (an absolute
  noise floor derived from the repeats themselves).

Simulated cycles are deterministic, so any drift there is reported as a
**workload change** warning rather than a host regression — it means
the two files measured different simulators (the provenance block says
whether that was intentional) and their wall times are not comparable
for that case.  Peak RSS gates with its own (looser) threshold since
allocator behavior differs across Python builds.
"""

from __future__ import annotations

from typing import List, Tuple

DEFAULT_THRESHOLD = 0.25
DEFAULT_NOISE_MULT = 3.0
DEFAULT_RSS_THRESHOLD = 0.50

#: floor under the IQR noise band, so single-repeat (--fast) files
#: still gate sanely on very short cases
MIN_NOISE_SECONDS = 0.005


def _provenance_mismatch(a: dict, b: dict) -> List[str]:
    warnings = []
    pa, pb = a['provenance'], b['provenance']
    if pa['code_version_hash'] != pb['code_version_hash']:
        warnings.append(
            f'  WARNING: code-version salt differs '
            f'({pa["code_version_hash"][:8]} -> '
            f'{pb["code_version_hash"][:8]}): simulated figures are '
            f'expected to move')
    if a['host']['platform'] != b['host']['platform']:
        warnings.append(
            f'  WARNING: different hosts ({a["host"]["platform"]} -> '
            f'{b["host"]["platform"]}): wall times are only roughly '
            f'comparable')
    return warnings


def compare_bench(a: dict, b: dict,
                  threshold: float = DEFAULT_THRESHOLD,
                  noise_mult: float = DEFAULT_NOISE_MULT,
                  rss_threshold: float = DEFAULT_RSS_THRESHOLD
                  ) -> Tuple[str, bool]:
    """Diff two bench reports; returns ``(text, regressed)``."""
    lines = [f"bench compare {a['label']} "
             f"(git {a['generated']['git_sha'][:9]}) -> {b['label']} "
             f"(git {b['generated']['git_sha'][:9]})  "
             f"[threshold {threshold:.0%}, noise x{noise_mult:g}]"]
    lines += _provenance_mismatch(a, b)
    regressed = False

    cases_a = {c['name']: c for c in a['cases']}
    cases_b = {c['name']: c for c in b['cases']}
    for name in sorted(set(cases_a) - set(cases_b)):
        lines.append(f'  WARNING: case {name} only in {a["label"]}')
    for name in sorted(set(cases_b) - set(cases_a)):
        lines.append(f'  WARNING: case {name} only in {b["label"]}')

    for name in [c['name'] for c in a['cases'] if c['name'] in cases_b]:
        ca, cb = cases_a[name], cases_b[name]
        wa, wb = ca['wall_seconds'], cb['wall_seconds']
        ma, mb = wa['median'], wb['median']
        delta = mb - ma
        rel = delta / ma if ma else 0.0
        noise = max(noise_mult * max(wa['iqr'], wb['iqr']),
                    MIN_NOISE_SECONDS)
        flag = ''
        if delta > max(threshold * ma, noise):
            regressed = True
            flag = f'  << REGRESSION (> {threshold:.0%} and outside ' \
                   f'the {noise:.3f}s noise band)'
        elif -delta > max(threshold * ma, noise):
            flag = '  (improvement)'
        lines.append(f'  {name:<16s} wall {ma:>8.3f}s -> {mb:>8.3f}s '
                     f'({rel:+.1%}){flag}')

        sa, sb = ca['sim'], cb['sim']
        if sa['cycles'] != sb['cycles'] or sa['instrs'] != sb['instrs']:
            lines.append(
                f'    WARNING: workload changed '
                f'(cycles {sa["cycles"]} -> {sb["cycles"]}, instrs '
                f'{sa["instrs"]} -> {sb["instrs"]}); wall times not '
                f'comparable for this case')
        else:
            ra = sa['cycles_per_host_second']
            rb = sb['cycles_per_host_second']
            rrel = (rb - ra) / ra if ra else 0.0
            lines.append(f'    sim rate {ra:>12.0f} -> {rb:>12.0f} '
                         f'cycles/s ({rrel:+.1%})')

        rss_a, rss_b = ca['peak_rss_kb'], cb['peak_rss_kb']
        if rss_a and rss_b:
            rrel = (rss_b - rss_a) / rss_a
            flag = ''
            if rrel > rss_threshold:
                regressed = True
                flag = f'  << REGRESSION (> {rss_threshold:.0%})'
            lines.append(f'    peak RSS {rss_a / 1024:>8.1f} -> '
                         f'{rss_b / 1024:>8.1f} MiB ({rrel:+.1%}){flag}')
    return '\n'.join(lines), regressed
