"""3mm: three matrix multiplies (E = A.B ; F = C.D ; G = E.F)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_matmul_like
from .vector_templates import MatTerm, emit_matmul_like


class Mm3(Benchmark):
    name = '3mm'
    test_params = {'n': 16}
    bench_params = {'n': 32}

    def setup(self, fabric: Fabric, params) -> Workspace:
        n = params['n']
        g = refs.rng(self.name)
        ws = Workspace()
        for name in 'ABCD':
            self.alloc_np(fabric, ws, name, g.random((n, n)))
        for name in 'EFG':
            self.alloc_zeros(fabric, ws, name, n * n)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        e, f, g = refs.mm3(ws.inputs['A'], ws.inputs['B'], ws.inputs['C'],
                           ws.inputs['D'])
        return {'E': e, 'F': f, 'G': g}

    def _stages(self, ws, params):
        n = params['n']
        pairs = [('A', 'B', 'E'), ('C', 'D', 'F'), ('E', 'F', 'G')]
        return [dict(ni=n, nj=n, nk=n,
                     terms=[MatTerm(ws.base(x), n, ws.base(y), n)],
                     out_base=ws.base(o), out_stride=n)
                for x, y, o in pairs]

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        mb = MimdKernelBuilder()
        for st in self._stages(ws, params):
            mb.add_kernel(lambda a, st=st: mimd_matmul_like(
                a, **st, cfg=fabric.cfg, prefetch=prefetch, pcv=pcv,
                kb=min(4, st['nk'])))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        for i, st in enumerate(self._stages(ws, params)):
            flen, pcv = self.fitted_flen(fabric, vp.lanes, vp.pcv,
                                         st['nj'], ni=st['ni'])
            emit_matmul_like(p, name=f'mm3_{i}', **st, kb=min(4, st['nk']),
                             flen=flen, pcv=pcv)
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        return 4 * self.flen_for(fabric, lanes, pcv) + 4
