"""Content-addressed on-disk result store.

One JSON file per result, named by the job key (see
:meth:`repro.jobs.JobSpec.key`); because the key covers the benchmark,
parameters, configuration, machine fields, active cores and the
code-version salt, a stored result can never be served for a point it
does not exactly describe — stale results after a simulator change simply
stop being addressed.

Writes are atomic (temp file + ``os.replace``) and performed only by the
sweep parent process — workers hand results back over a pipe — so there
are no cross-process write races.  Reads are fully defensive: a corrupt,
truncated, or schema-incompatible file is a cache miss, never an error.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from .serialize import RESULT_SCHEMA_VERSION, result_from_dict, \
    result_to_dict


class ResultStore:
    """Persistent ``key -> RunResult`` map rooted at a directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / f'{key}.json'

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        return sorted(p.stem for p in self.root.glob('*.json'))

    def get(self, key: str):
        """Return the stored RunResult for ``key``, or None on any miss."""
        try:
            with open(self.path(key)) as f:
                doc = json.load(f)
            if doc.get('store_schema_version') != RESULT_SCHEMA_VERSION:
                raise ValueError('store schema mismatch')
            if doc.get('key') != key:
                raise ValueError('key mismatch')
            result = result_from_dict(doc['result'], source='store')
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result) -> Path:
        """Atomically persist one result under ``key``."""
        doc = {
            'store_schema_version': RESULT_SCHEMA_VERSION,
            'key': key,
            'result': result_to_dict(result),
        }
        target = self.path(key)
        tmp = target.with_name(f'.{key}.{os.getpid()}.tmp')
        with open(tmp, 'w') as f:
            json.dump(doc, f)
        os.replace(tmp, target)
        return target

    def put_doc(self, key: str, doc: dict) -> Path:
        """Atomically persist an arbitrary JSON document (e.g. a serving
        report) under ``key``.  Keys for documents must carry a kind
        prefix (``serve-...``) so they can never shadow a sweep result."""
        wrapper = {
            'store_schema_version': RESULT_SCHEMA_VERSION,
            'key': key,
            'doc': doc,
        }
        target = self.path(key)
        tmp = target.with_name(f'.{key}.{os.getpid()}.tmp')
        with open(tmp, 'w') as f:
            json.dump(wrapper, f)
        os.replace(tmp, target)
        return target

    def get_doc(self, key: str) -> Optional[dict]:
        """Return a stored document for ``key``, or None on any miss."""
        try:
            with open(self.path(key)) as f:
                wrapper = json.load(f)
            if wrapper.get('store_schema_version') != RESULT_SCHEMA_VERSION:
                raise ValueError('store schema mismatch')
            if wrapper.get('key') != key:
                raise ValueError('key mismatch')
            doc = wrapper['doc']
            if not isinstance(doc, dict):
                raise TypeError('document is not an object')
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return doc

    def total_bytes(self) -> int:
        """On-disk footprint of every stored result, in bytes."""
        n = 0
        for p in self.root.glob('*.json'):
            try:
                n += p.stat().st_size
            except OSError:
                pass
        return n

    def clear(self) -> int:
        """Delete every stored result; returns how many were removed."""
        n = 0
        for p in self.root.glob('*.json'):
            p.unlink()
            n += 1
        return n
