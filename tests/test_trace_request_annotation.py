"""Perfetto export regression: serving spans annotate per-core tracks."""

import json

from repro.kernels import registry
from repro.manycore import Fabric, MachineConfig
from repro.serve import DONE, KernelRequest, ServeScheduler
from repro.telemetry import write_chrome_trace
from repro.telemetry.trace_export import to_chrome_trace


def _served_fabric():
    params_mvt = registry.make('mvt').params_for('test')
    params_atax = registry.make('atax').params_for('test')
    requests = [KernelRequest(req_id=0, kernel='mvt', params=params_mvt,
                              lanes=4, groups=1, arrival=0),
                KernelRequest(req_id=1, kernel='atax', params=params_atax,
                              lanes=4, groups=2, arrival=0)]
    fabric = Fabric(MachineConfig(mesh_width=4, mesh_height=4))
    result = ServeScheduler(fabric).run(requests)
    assert all(r.state == DONE for r in result.requests)
    return fabric


class TestRequestAnnotation:
    def test_request_spans_cover_every_owned_core(self):
        fabric = _served_fabric()
        doc = to_chrome_trace(fabric=fabric)
        reqs = [e for e in doc['traceEvents'] if e.get('cat') == 'request']
        begins = [e for e in reqs if e['ph'] == 'b']
        ends = [e for e in reqs if e['ph'] == 'e']
        want = sum(len(s['cores']) for s in fabric.serve_spans)
        assert len(begins) == want == len(ends)
        # begin/end pair up by id on the same track
        by_id = {}
        for e in begins:
            by_id[e['id']] = e
        for e in ends:
            b = by_id[e['id']]
            assert b['tid'] == e['tid']
            assert e['ts'] > b['ts']

    def test_span_args_carry_request_group_and_kernel(self):
        fabric = _served_fabric()
        doc = to_chrome_trace(fabric=fabric)
        begins = [e for e in doc['traceEvents']
                  if e.get('cat') == 'request' and e['ph'] == 'b']
        for e in begins:
            assert set(e['args']) >= {'request', 'job', 'kernel', 'group'}
            assert e['name'] == (f'req{e["args"]["request"]}:'
                                 f'{e["args"]["kernel"]} '
                                 f'g{e["args"]["group"]}')
        # the two-group request shows both group ids on its tracks
        atax = [e for e in begins if e['args']['kernel'] == 'atax']
        assert {e['args']['group'] for e in atax} == {0, 1}
        # every annotated core is a real tile of the request's span
        spans = {s['request']: s for s in fabric.serve_spans}
        for e in begins:
            span = spans[e['args']['request']]
            assert e['tid'] in span['cores']
            assert span['cores'][e['tid']] == e['args']['group']
            assert e['ts'] == span['start']

    def test_span_cores_get_thread_metadata(self):
        fabric = _served_fabric()
        doc = to_chrome_trace(fabric=fabric)
        named = {e['tid'] for e in doc['traceEvents']
                 if e['ph'] == 'M' and e['name'] == 'thread_name'}
        for s in fabric.serve_spans:
            assert set(s['cores']) <= named

    def test_written_trace_is_valid_json(self, tmp_path):
        fabric = _served_fabric()
        path = tmp_path / 'serve-trace.json'
        write_chrome_trace(str(path), fabric=fabric)
        doc = json.loads(path.read_text())
        assert doc['traceEvents']
        assert any(e.get('cat') == 'request' for e in doc['traceEvents'])

    def test_no_spans_no_request_events(self):
        """Classic single-program flow is unchanged by the feature."""
        fabric = Fabric(MachineConfig(mesh_width=4, mesh_height=4))
        doc = to_chrome_trace(fabric=fabric)
        assert not [e for e in doc['traceEvents']
                    if e.get('cat') == 'request']
