"""Closed-form model: workload geometry and feature math, by hand.

The workload numbers are derived from the vector-template geometry
(`repro.kernels.vector_templates`) on paper and pinned here; if the
templates change shape, the model must be re-derived with them.
"""

import math

import pytest

from repro.harness.configs import CONFIGS
from repro.kernels import registry
from repro.manycore import DEFAULT_CONFIG
from repro.model import AnalyticModel, MODELED_KERNELS, build_workload, \
    compute_features
from repro.model.analytic import (FEATURES, InfeasiblePointError,
                                  UnsupportedConfigError,
                                  estimate_energy_pj)
from repro.model.workload import MimdPhase, VectorPhase, Workload


def _wl(bench, cfg_name, machine=DEFAULT_CONFIG):
    cfg = CONFIGS[cfg_name]
    eff = cfg.machine(machine)
    params = registry.make(bench).params_for('test')
    return build_workload(bench, params, eff, cfg.lanes, cfg.pcv), eff


class TestWorkloadGeometry:
    def test_gemm_v4_matches_template_math(self):
        # gemm test scale: ni=8, nj=16, nk=8; V4 lanes=4, kb=min(4,nk)=4
        wl, eff = _wl('gemm', 'V4')
        assert wl.lanes == 4
        (p,) = wl.phases
        assert isinstance(p, VectorPhase)
        flen, lanes, kb, nterms = p.flen, 4, 4, 1
        # tiles = ni * (nj // (flen * lanes)); frames per tile = nk // kb
        assert p.tiles == 8 * (16 // (flen * lanes))
        assert p.frames_per_tile == 8 // kb
        # frame holds kb B-subrows of flen words + kb A words, per term
        assert p.frame_words == nterms * kb * flen + nterms * kb
        # one response packet per ceil(words/noc_width) per lane stream
        noc = eff.noc_width_words
        assert p.packets_per_frame == \
            nterms * kb * lanes * math.ceil(flen / noc) \
            + nterms * lanes * math.ceil(kb / noc)
        # C write-back w words, plus w read for the beta scaling
        w = flen * lanes
        assert p.store_words_per_tile == 2 * w
        # footprint: A (ni*nk) + B (nk*nj) + C (ni*nj) = 64+128+128
        assert wl.footprint_words >= 8 * 8 + 8 * 16 + 8 * 16

    def test_mvt_is_rowdot_reduce_matmul(self):
        wl, _ = _wl('mvt', 'V4')
        kinds = [type(p).__name__ for p in wl.phases]
        assert kinds == ['VectorPhase', 'MimdPhase', 'VectorPhase']
        assert wl.n_phases == 3

    def test_fdtd_repeats_per_timestep(self):
        wl, _ = _wl('fdtd-2d', 'V4')
        tmax = registry.make('fdtd-2d').params_for('test')['tmax']
        assert wl.repeat == tmax
        assert wl.n_phases == len(wl.phases) * tmax

    def test_every_modeled_kernel_builds_everywhere(self):
        for bench in MODELED_KERNELS:
            for cfg_name in ('V4', 'V16', 'V4_PCV', 'V16_PCV'):
                wl, eff = _wl(bench, cfg_name)
                feats = compute_features(wl, eff)
                assert set(feats) == set(FEATURES)
                for k, v in feats.items():
                    assert v >= 0 and math.isfinite(v), (bench, cfg_name, k)
                assert estimate_energy_pj(wl, eff) > 0


class TestFeatureMath:
    def test_hand_computed_features(self):
        # default machine: 8x8 mesh, 12 four-lane groups, depth 5,
        # 16 banks, hop latency 1, llc hit 1, 2-entry load queue
        wl = Workload(benchmark='x', lanes=4, pcv=False, phases=(
            VectorPhase(name='v', tiles=24, frames_per_tile=2,
                        frame_words=10, flen=2, pcv=False,
                        scalar_per_frame=3, scalar_per_tile=1,
                        mt_per_frame=5, mt_per_tile=2,
                        flops_per_frame=4, packets_per_frame=6,
                        store_words_per_tile=8),
            MimdPhase(name='m', items=64, instrs_per_item=10,
                      loads_per_item=2, stores_per_item=1),
        ), repeat=2, footprint_words=100)
        feats = compute_features(wl, DEFAULT_CONFIG)
        round_trip = 2 * ((8 + 8) / 2) * 1 + 1          # = 17
        assert feats['phase'] == 4                       # 2 phases x 2
        # 2 tiles/group -> 4 frames/group; mt stream (24) > scalar (14)
        assert feats['comp'] == pytest.approx(2 * 24)
        assert feats['fill'] == pytest.approx(2 * 4 * (6 + round_trip) / 5)
        assert feats['llcser'] == pytest.approx(
            2 * (48 * 6 + 24 * 8) / 16)
        assert feats['mimd'] == pytest.approx(
            2 * 1 * (10 + 3 * round_trip / 2))
        assert feats['dram'] == pytest.approx(100 / 4.0)

    def test_unit_coefficients_sum_features(self):
        model = AnalyticModel(
            coefficients={'gemm': {f: 1.0 for f in FEATURES}},
            calibrated=True, label='unit')
        p = model.predict('gemm', 'V4', scale='test')
        assert p.calibrated
        assert p.cycles == pytest.approx(sum(p.features.values()))
        assert p.tiles_used == 12 * 5  # 12 groups of 1 scalar + 4 lanes

    def test_energy_scales_with_repeat(self):
        wl, eff = _wl('gemm', 'V4')
        once = estimate_energy_pj(wl, eff)
        wl2 = Workload(benchmark=wl.benchmark, lanes=wl.lanes,
                       pcv=wl.pcv, phases=wl.phases, repeat=3,
                       footprint_words=wl.footprint_words)
        assert estimate_energy_pj(wl2, eff) == pytest.approx(3 * once)


class TestFeasibility:
    def test_shallow_frame_depth_is_infeasible(self):
        # codegen: inet queue of 2 needs frame_counters >= 4
        model = AnalyticModel.default()
        with pytest.raises(InfeasiblePointError):
            model.predict('gemm', 'V4', scale='test',
                          machine=DEFAULT_CONFIG.scaled(frame_counters=3))

    def test_frame_overflowing_spad_is_infeasible(self):
        # gemm V4 frames are 8 words; depth 5 needs 40 > 32 spad words
        model = AnalyticModel.default()
        with pytest.raises(InfeasiblePointError):
            model.predict('gemm', 'V4', scale='test',
                          machine=DEFAULT_CONFIG.scaled(
                              spad_capacity_bytes=128))

    def test_non_vector_configs_are_unsupported(self):
        model = AnalyticModel.default()
        for cfg in ('NV', 'GPU', 'nope'):
            with pytest.raises(UnsupportedConfigError):
                model.predict('gemm', cfg, scale='test')
