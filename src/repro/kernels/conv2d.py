"""2dconv: 3x3 convolution over an image (PolyBench/GPU coefficients).

Row chunks arrive as GROUP loads; the shifted (j±1) taps use the unaligned
vload pair.  Boundary columns/rows are masked with predication (vector) or
branches (MIMD).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_stencil_rows
from .vector_templates import StencilSection, emit_stencil_rows


def conv2d_sections(base: int, stride: int):
    sections: List[StencilSection] = []
    coeffs: List[float] = []
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            sections.append(StencilSection(base, stride, di, dj))
            coeffs.append(float(refs.C2D[di + 1, dj + 1]))
    return sections, coeffs


class Conv2d(Benchmark):
    name = '2dconv'
    test_params = {'n': 8, 'm': 16}
    bench_params = {'n': 16, 'm': 64}

    def setup(self, fabric: Fabric, params) -> Workspace:
        n, m = params['n'], params['m']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((n, m)))
        self.alloc_zeros(fabric, ws, 'B', n * m)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        return {'B': refs.conv2d(ws.inputs['A'])}

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        n, m = params['n'], params['m']
        sections, coeffs = conv2d_sections(ws.base('A'), m)
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: mimd_stencil_rows(
            a, n_out_rows=n - 2, row0=1, ncols=m, sections=sections,
            coeffs=coeffs, out_base=ws.base('B'), out_stride=m,
            jlo=1, jhi=m - 1, cfg=fabric.cfg, prefetch=prefetch, pcv=pcv))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        n, m = params['n'], params['m']
        sections, coeffs = conv2d_sections(ws.base('A'), m)
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        flen, _ = self.fitted_flen(fabric, vp.lanes, vp.pcv, m, ni=n - 2,
                                   cap=4)
        emit_stencil_rows(
            p, name='conv2d', n_out_rows=n - 2, row0=1, ncols=m,
            sections=sections, coeffs=coeffs, out_base=ws.base('B'),
            out_stride=m, jlo=1, jhi=m - 1, flen=flen)
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        return 9 * self.flen_for(fabric, lanes, pcv)
