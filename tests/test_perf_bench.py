"""The curated bench suite + the noise-aware regression gate.

Acceptance (ISSUE 5): ``repro bench run --fast`` produces a
schema-checked ``BENCH_*.json`` with wall time, cycles/sec, peak RSS
and provenance; ``repro bench compare --gate`` exits nonzero on an
injected synthetic regression and zero on self-compare.
"""

import copy
import json

import pytest

from repro.__main__ import main
from repro.jobs.spec import CODE_VERSION, code_version_hash
from repro.perf import (BENCH_SUITE, BenchValidationError, bench_path,
                        compare_bench, load_bench_report,
                        render_bench_report, run_suite, save_bench_report,
                        suite_cases, validate_bench_report)

# one tiny case keeps the suite tests quick; the full suite runs in CI
CASE = 'vector-gemm'


@pytest.fixture(scope='module')
def bench_doc():
    return run_suite(names=[CASE], repeats=2, label='test')


def test_suite_covers_all_modes():
    kinds = {c.kind for c in BENCH_SUITE}
    assert kinds == {'mimd', 'vector', 'serve'}
    assert [c for c in BENCH_SUITE if c.fast], 'no fast subset'
    assert len(suite_cases(fast=True)) < len(suite_cases())


def test_unknown_case_rejected():
    with pytest.raises(ValueError, match='unknown bench case'):
        suite_cases(names=['no-such-case'])


def test_report_schema_and_contents(bench_doc):
    validate_bench_report(bench_doc)  # raises on violation
    assert bench_doc['kind'] == 'repro-bench-report'
    prov = bench_doc['provenance']
    assert prov['code_version'] == CODE_VERSION
    assert prov['code_version_hash'] == code_version_hash()
    assert len(prov['machine_hash']) == 16
    (case,) = bench_doc['cases']
    assert case['name'] == CASE and case['repeats'] == 2
    w = case['wall_seconds']
    assert 0 < w['min'] <= w['median'] <= w['max']
    assert len(w['runs']) == 2 and w['iqr'] >= 0.0
    s = case['sim']
    assert s['cycles'] > 0 and s['instrs'] > 0
    assert s['cycles_per_host_second'] > 0.0
    assert case['peak_rss_kb'] > 0  # linux CI + dev boxes
    assert case['deterministic'] is True


def test_save_load_round_trip(bench_doc, tmp_path):
    path = bench_path('round trip!', str(tmp_path))
    assert path.endswith('BENCH_round-trip-.json')
    save_bench_report(bench_doc, path)
    loaded = load_bench_report(path)
    assert loaded == bench_doc


def test_validation_rejects_corruption(bench_doc):
    bad = copy.deepcopy(bench_doc)
    del bad['provenance']
    with pytest.raises(BenchValidationError, match='provenance'):
        validate_bench_report(bad)
    bad = copy.deepcopy(bench_doc)
    bad['cases'][0]['wall_seconds']['median'] = 'fast'
    with pytest.raises(BenchValidationError, match='median'):
        validate_bench_report(bad)


def test_self_compare_not_regressed(bench_doc):
    text, regressed = compare_bench(bench_doc, bench_doc)
    assert not regressed
    assert 'REGRESSION' not in text
    assert CASE in text


def _slow_down(doc, factor):
    slow = copy.deepcopy(doc)
    w = slow['cases'][0]['wall_seconds']
    for k in ('median', 'min', 'max'):
        w[k] *= factor
    w['runs'] = [r * factor for r in w['runs']]
    s = slow['cases'][0]['sim']
    s['cycles_per_host_second'] /= factor
    s['instrs_per_host_second'] /= factor
    return slow


def test_injected_regression_detected(bench_doc):
    text, regressed = compare_bench(bench_doc, _slow_down(bench_doc, 10.0))
    assert regressed
    assert 'REGRESSION' in text
    # the other direction is an improvement, not a regression
    text, regressed = compare_bench(_slow_down(bench_doc, 10.0), bench_doc)
    assert not regressed
    assert 'improvement' in text


def test_noise_band_suppresses_jitter(bench_doc):
    # a wall-time bump inside noise_mult * IQR must not gate
    noisy = copy.deepcopy(bench_doc)
    w = noisy['cases'][0]['wall_seconds']
    w['iqr'] = w['median']  # huge measured spread
    bumped = _slow_down(noisy, 1.5)
    bumped['cases'][0]['wall_seconds']['iqr'] = w['iqr'] * 1.5
    _, regressed = compare_bench(noisy, bumped)
    assert not regressed


def test_rss_regression_detected(bench_doc):
    fat = copy.deepcopy(bench_doc)
    fat['cases'][0]['peak_rss_kb'] *= 3
    text, regressed = compare_bench(bench_doc, fat)
    assert regressed and 'RSS' in text


def test_workload_change_warns_not_gates(bench_doc):
    changed = copy.deepcopy(bench_doc)
    changed['cases'][0]['sim']['cycles'] += 1
    text, regressed = compare_bench(bench_doc, changed)
    assert not regressed
    assert 'workload changed' in text


def test_missing_case_warns(bench_doc):
    empty = copy.deepcopy(bench_doc)
    empty['cases'] = []
    text, regressed = compare_bench(bench_doc, empty)
    assert not regressed
    assert 'only in' in text


def test_render_mentions_provenance(bench_doc):
    text = render_bench_report(bench_doc)
    assert 'code-version' in text and CASE in text


def test_cli_bench_run_and_gate(tmp_path, capsys):
    out = tmp_path / 'BENCH_cli.json'
    rc = main(['bench', 'run', '--cases', CASE, '--repeats', '1',
               '--label', 'cli', '--out', str(out)])
    assert rc == 0
    doc = load_bench_report(str(out))  # schema-checked on load
    assert doc['label'] == 'cli'

    assert main(['bench', 'compare', str(out), str(out), '--gate']) == 0

    slow = tmp_path / 'BENCH_slow.json'
    slow.write_text(json.dumps(_slow_down(doc, 10.0)))
    assert main(['bench', 'compare', str(out), str(slow), '--gate']) == 2
    # without --gate the diff is informational
    assert main(['bench', 'compare', str(out), str(slow)]) == 0

    bad = tmp_path / 'bad.json'
    bad.write_text('{"kind": "nope"}')
    assert main(['bench', 'compare', str(out), str(bad), '--gate']) == 1

    assert main(['bench', 'list']) == 0
    assert main(['bench', 'run', '--cases', 'nope']) == 1
    capsys.readouterr()


def test_cli_bench_profile_embedded(tmp_path, capsys):
    out = tmp_path / 'BENCH_prof.json'
    rc = main(['bench', 'run', '--cases', CASE, '--repeats', '1',
               '--profile', '--label', 'prof', '--out', str(out)])
    assert rc == 0
    doc = load_bench_report(str(out))
    prof = doc['cases'][0]['profile']
    assert prof['coverage'] >= 0.9
    assert prof['residual_seconds'] >= 0.0
    assert 'tile_step' in prof['components']
    capsys.readouterr()


def test_isolated_repeats_match_in_process_results(bench_doc):
    # --isolate runs every repeat in a fresh worker; simulated figures
    # must be bit-identical to the in-process path (determinism across
    # the process boundary), and the per-case RSS becomes the child's
    from repro.perf import build_bench_report, run_case
    case = suite_cases(names=[CASE])[0]
    doc = run_case(case, repeats=2, isolate=True)
    assert doc['isolated'] and doc['deterministic']
    ref = bench_doc['cases'][0]['sim']
    assert doc['sim']['cycles'] == ref['cycles']
    assert doc['sim']['instrs'] == ref['instrs']
    assert doc['peak_rss_kb'] > 0
    validate_bench_report(build_bench_report([doc], label='iso'))


def test_cli_bench_isolate_flag(tmp_path, capsys):
    out = tmp_path / 'BENCH_iso.json'
    rc = main(['bench', 'run', '--cases', CASE, '--repeats', '1',
               '--isolate', '--label', 'iso', '--out', str(out)])
    assert rc == 0
    doc = load_bench_report(str(out))
    assert doc['cases'][0]['isolated'] is True
    capsys.readouterr()
