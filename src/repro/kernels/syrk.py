"""syrk: symmetric rank-K update, C = beta*C + alpha*A.A^T.

Memory opt (paper Table 2): transpose — a MIMD pre-kernel materializes A^T
so the main kernel streams the group operand row-contiguously.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_matmul_like, mimd_transpose
from .vector_templates import MatTerm, emit_matmul_like

ALPHA = 1.5
BETA = 1.2


class Syrk(Benchmark):
    name = 'syrk'
    test_params = {'n': 16, 'm': 8}
    bench_params = {'n': 64, 'm': 16}  # n % 64 == 0 for long lines

    def setup(self, fabric: Fabric, params) -> Workspace:
        n, m = params['n'], params['m']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((n, m)))
        self.alloc_np(fabric, ws, 'C', g.random((n, n)))
        self.alloc_zeros(fabric, ws, 'AT', m * n)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        return {'C': refs.syrk(ws.inputs['A'], ws.inputs['C'], ALPHA, BETA)}

    def _main(self, ws, params):
        n, m = params['n'], params['m']
        return dict(ni=n, nj=n, nk=m,
                    terms=[MatTerm(ws.base('A'), m, ws.base('AT'), n)],
                    out_base=ws.base('C'), out_stride=n,
                    alpha=ALPHA, beta=BETA)

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        n, m = params['n'], params['m']
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: mimd_transpose(
            a, src=ws.base('A'), dst=ws.base('AT'), n=n, m=m))
        st = self._main(ws, params)
        mb.add_kernel(lambda a: mimd_matmul_like(
            a, **st, cfg=fabric.cfg, prefetch=prefetch, pcv=pcv,
            kb=min(4, st['nk'])))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        n, m = params['n'], params['m']
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        p.mimd_phase(lambda a: mimd_transpose(
            a, src=ws.base('A'), dst=ws.base('AT'), n=n, m=m))
        st = self._main(ws, params)
        flen, pcv = self.fitted_flen(fabric, vp.lanes, vp.pcv, st['nj'],
                                     ni=st['ni'])
        emit_matmul_like(p, name='syrk', **st, kb=min(4, st['nk']),
                         flen=flen, pcv=pcv)
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        return 4 * self.flen_for(fabric, lanes, pcv) + 4
