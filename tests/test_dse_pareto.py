"""DSE: Pareto correctness, space enumeration, and the driver artifact."""

import json
import random

import pytest

from repro.dse import (DEFAULT_AXES, SMALL_AXES, DesignPoint, dominates,
                       dse_path, enumerate_space, frontier_specs,
                       load_dse_report, pareto_frontier, run_dse,
                       save_dse_report, space_size, triage_space,
                       validate_dse_report)
from repro.dse.driver import DseValidationError
from repro.jobs import ResultStore
from repro.model import AnalyticModel, FEATURES


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (2, 2))
        assert not dominates((2, 2), (1, 2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((3, 3), (3, 3))

    def test_tradeoffs_do_not_dominate(self):
        assert not dominates((1, 5), (5, 1))
        assert not dominates((5, 1), (1, 5))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            dominates((1,), (1, 2))


class TestFrontier:
    def test_hand_picked_frontier(self):
        pts = [(1, 9), (2, 8), (3, 9), (9, 1), (2, 9), (1, 9)]
        keep = pareto_frontier(pts)
        # (3,9) is dominated by (2,8); (2,9) by (2,8); the duplicate
        # (1,9)s are both kept (neither dominates the other)
        assert keep == [0, 1, 3, 5]

    def test_frontier_is_non_dominated_and_complete(self):
        rng = random.Random(7)
        pts = [(rng.randint(0, 50), rng.randint(0, 50),
                rng.randint(0, 50)) for _ in range(200)]
        keep = set(pareto_frontier(pts))
        for i in keep:   # no kept point dominated by any other point
            assert not any(dominates(pts[j], pts[i])
                           for j in range(len(pts)) if j != i)
        for i in range(len(pts)):   # every dropped point has a witness
            if i not in keep:
                assert any(dominates(pts[j], pts[i]) for j in keep)


class TestSpace:
    def test_default_space_is_at_least_500_points(self):
        pts = list(enumerate_space(DEFAULT_AXES))
        assert len(pts) == space_size(DEFAULT_AXES) >= 500
        assert len(set(pts)) == len(pts)

    def test_point_roundtrip_and_machine(self):
        pt = DesignPoint('V4', 6, 8, 2, 2.0)
        assert DesignPoint.from_dict(pt.as_dict()) == pt
        m = pt.machine()
        assert (m.frame_counters, m.llc_banks, m.noc_width_words,
                m.dram_bandwidth_words_per_cycle) == (6, 8, 2, 2.0)
        spec = pt.spec('gemm', scale='test')
        assert spec.benchmark == 'gemm' and spec.config == 'V4'
        assert spec.machine_config().llc_banks == 8


def _unit_model():
    return AnalyticModel(
        coefficients={'gemm': {f: 1.0 for f in FEATURES}},
        calibrated=True, label='unit')


class TestDriver:
    def test_triage_covers_the_whole_space(self):
        feasible, infeasible = triage_space(_unit_model(), 'gemm',
                                            axes=SMALL_AXES)
        assert len(feasible) + len(infeasible) == space_size(SMALL_AXES)
        assert feasible

    def test_pure_triage_report(self, tmp_path):
        doc = run_dse(_unit_model(), 'gemm', axes=SMALL_AXES,
                      simulate=False, label='triage')
        validate_dse_report(doc)
        assert doc['triage']['n_simulated'] == 0
        assert doc['space']['n_space'] == space_size(SMALL_AXES)
        # frontier entries must be mutually non-dominated
        objs = [(e['predicted_cycles'], e['predicted_energy_pj'],
                 e['area']) for e in doc['frontier']]
        for i, a in enumerate(objs):
            assert not any(dominates(b, a)
                           for j, b in enumerate(objs) if j != i)
        path = dse_path('triage', str(tmp_path))
        assert path.endswith('DSE_triage.json')
        save_dse_report(doc, path)
        assert load_dse_report(path) == doc

    def test_simulated_frontier_report(self, tmp_path):
        store = ResultStore(tmp_path / 'store')
        doc = run_dse(_unit_model(), 'gemm', axes=SMALL_AXES,
                      simulate=True, store=store, label='sim')
        validate_dse_report(doc)
        t = doc['triage']
        assert t['n_simulated'] == t['n_frontier'] > 0
        assert t['n_sim_failed'] == 0
        # only the frontier was simulated: that is the whole point
        assert t['n_simulated'] < doc['space']['n_feasible']
        assert t['sim_reduction'] == pytest.approx(
            doc['space']['n_space'] / t['n_simulated'], rel=0.01)
        for e in doc['frontier']:
            assert e['simulated_cycles'] > 0
            assert e['sim_ape_pct'] >= 0
        # the figure hook round-trips frontier points into job specs
        specs = frontier_specs(doc)
        assert len(specs) == t['n_frontier']
        assert all(s.benchmark == 'gemm' for s in specs)
        # every frontier simulation is now cached: a re-run is free
        doc2 = run_dse(_unit_model(), 'gemm', axes=SMALL_AXES,
                       simulate=True, store=store, label='sim')
        assert doc2['triage']['workers_launched'] == 0

    def test_tampered_doc_is_rejected(self):
        doc = run_dse(_unit_model(), 'gemm', axes=SMALL_AXES,
                      simulate=False, label='bad')
        bad = json.loads(json.dumps(doc))
        bad['frontier'][0]['point'].pop('llc_banks')
        with pytest.raises(DseValidationError):
            validate_dse_report(bad)
