"""The cross-shard fleet report: schema, build, validate, render.

One JSON artifact tells the whole fleet's story: global per-request
records (with shard placement, re-route attempts, router wait, and the
causal phase breakdown re-based to *global* latency), per-shard
lifecycle rows, every autoscale/crash event, and a fleet summary whose
instruction totals come from :meth:`~repro.manycore.RunStats.merge`
over every shard batch's merged stats — the same lossless aggregation
path the sweep engine uses.

Two invariants are *enforced at build time* (not merely schema-typed),
because CI gates on them:

* **request conservation** — every submitted request is accounted for:
  ``submitted == completed + failed + timed_out + rejected``;
* **breakdown conservation** — each completed request's phase breakdown
  (queue + launch + execute + frame_stall + llc + inet + unattributed,
  with router wait folded into ``queue``) sums exactly to its global
  latency.

The summary reuses the serving report's metric names, so any existing
:class:`~repro.observe.SloPolicy` file evaluates against a fleet run
unchanged.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..jobs.serialize import stats_from_dict
from ..manycore import RunStats
from ..observe import BREAKDOWN_PHASES, merge_breakdowns
from ..serve.report import (BREAKDOWN_SCHEMA, _percentile)
from ..telemetry.report import (ReportValidationError, _generated,
                                check_schema)
from .router import FleetResult

FLEET_SCHEMA_VERSION = 1
FLEET_REPORT_KIND = 'repro-fleet-report'

_COUNTER = {'type': 'integer', 'minimum': 0}
_NUMBER = {'type': 'number'}

FLEET_REQUEST_SCHEMA = {
    'type': 'object',
    'required': ['req_id', 'kernel', 'lanes', 'groups', 'priority',
                 'arrival', 'state', 'attempts', 'router_wait'],
    'properties': {
        'req_id': _COUNTER,
        'kernel': {'type': 'string'},
        'params': {'type': 'object'},
        'lanes': {'type': 'integer', 'minimum': 1},
        'groups': {'type': 'integer', 'minimum': 1},
        'tiles': {'type': 'integer', 'minimum': 2},
        'priority': {'type': 'integer'},
        'arrival': _COUNTER,
        'state': {'type': 'string',
                  'enum': ['done', 'failed', 'timed-out', 'rejected']},
        'shard': _COUNTER,
        'epoch': _COUNTER,
        'attempts': _COUNTER,
        'router_wait': _COUNTER,
        'launched_at': _COUNTER,
        'finished_at': _COUNTER,
        'queue_wait': _COUNTER,
        'service_cycles': _COUNTER,
        'latency': _COUNTER,
        'instrs': _COUNTER,
        'digest': {'type': 'string'},
        'error': {'type': 'string'},
        'breakdown': BREAKDOWN_SCHEMA,
    },
}

SHARD_ROW_SCHEMA = {
    'type': 'object',
    'required': ['shard_id', 'state', 'born_epoch', 'batches', 'served'],
    'properties': {
        'shard_id': _COUNTER,
        'state': {'type': 'string',
                  'enum': ['active', 'draining', 'dead', 'retired']},
        'born_epoch': _COUNTER,
        'batches': _COUNTER,
        'served': _COUNTER,
        'crashed_epoch': _COUNTER,
        'retired_epoch': _COUNTER,
    },
}

EVENT_SCHEMA = {
    'type': 'object',
    'required': ['epoch', 'action', 'reason', 'shards_before',
                 'shards_after'],
    'properties': {
        'epoch': _COUNTER,
        'action': {'type': 'string', 'enum': ['up', 'down', 'replace']},
        'reason': {'type': 'string'},
        'shards_before': _COUNTER,
        'shards_after': _COUNTER,
        'latency_p99': _NUMBER,
        'tile_utilization': _NUMBER,
    },
}

FLEET_REPORT_SCHEMA = {
    'type': 'object',
    'required': ['schema_version', 'kind', 'generated', 'traffic',
                 'fleet', 'summary', 'requests'],
    'properties': {
        'schema_version': {'type': 'integer',
                           'enum': [FLEET_SCHEMA_VERSION]},
        'kind': {'type': 'string', 'enum': [FLEET_REPORT_KIND]},
        'generated': {
            'type': 'object',
            'required': ['git_sha', 'timestamp', 'python'],
            'properties': {
                'git_sha': {'type': 'string'},
                'timestamp': {'type': 'string'},
                'python': {'type': 'string'},
            },
        },
        'traffic': {
            'type': 'object',
            'required': ['n_requests'],
            'properties': {
                'n_requests': _COUNTER,
                'pattern': {'type': 'string'},
                'seed': {'type': 'integer'},
            },
        },
        'fleet': {
            'type': 'object',
            'required': ['initial_shards', 'final_shards', 'peak_shards',
                         'epochs', 'epoch_cycles', 'batches', 'crashes',
                         'rerouted', 'shards', 'events'],
            'properties': {
                'initial_shards': _COUNTER,
                'final_shards': _COUNTER,
                'peak_shards': _COUNTER,
                'epochs': _COUNTER,
                'epoch_cycles': _COUNTER,
                'batches': _COUNTER,
                'crashes': _COUNTER,
                'rerouted': _COUNTER,
                'affinity_hits': _COUNTER,
                'shards': {'type': 'array', 'items': SHARD_ROW_SCHEMA},
                'events': {'type': 'array', 'items': EVENT_SCHEMA},
            },
        },
        'summary': {
            'type': 'object',
            'required': ['makespan_cycles', 'submitted', 'completed',
                         'failed', 'timed_out', 'rejected',
                         'throughput_per_mcycle', 'peak_queue_depth'],
            'properties': {
                'makespan_cycles': _COUNTER,
                'submitted': _COUNTER,
                'completed': _COUNTER,
                'failed': _COUNTER,
                'timed_out': _COUNTER,
                'rejected': _COUNTER,
                'throughput_per_mcycle': _NUMBER,
                'peak_queue_depth': _COUNTER,
                'latency_mean': _NUMBER,
                'latency_p50': _NUMBER,
                'latency_p95': _NUMBER,
                'latency_p99': _NUMBER,
                'queue_wait_mean': _NUMBER,
                'router_wait_mean': _NUMBER,
                'total_instrs': _COUNTER,
                'tile_utilization': _NUMBER,
                'breakdown_totals': BREAKDOWN_SCHEMA,
            },
        },
        'requests': {'type': 'array', 'items': FLEET_REQUEST_SCHEMA},
        'slo': {'type': 'object'},
        'epoch_log': {'type': 'array'},
    },
}


class FleetInvariantError(AssertionError):
    """A fleet-level conservation invariant failed."""


def check_conservation(doc: dict) -> None:
    """Enforce the request- and breakdown-conservation invariants."""
    s = doc['summary']
    accounted = (s['completed'] + s['failed'] + s['timed_out']
                 + s['rejected'])
    if s['submitted'] != accounted:
        raise FleetInvariantError(
            f'request conservation violated: {s["submitted"]} submitted '
            f'!= {accounted} accounted '
            f'({s["completed"]} done + {s["failed"]} failed + '
            f'{s["timed_out"]} timed-out + {s["rejected"]} rejected)')
    for rec in doc['requests']:
        bd = rec.get('breakdown')
        if bd is None or rec.get('latency') is None:
            continue
        total = sum(bd[p] for p in BREAKDOWN_PHASES)
        if total != rec['latency']:
            raise FleetInvariantError(
                f'breakdown conservation violated for request '
                f'{rec["req_id"]}: phases sum to {total}, latency is '
                f'{rec["latency"]}')


def build_fleet_report(result: FleetResult,
                       pattern: Optional[str] = None,
                       seed: Optional[int] = None,
                       slo=None,
                       include_epoch_log: bool = False) -> dict:
    """Assemble, invariant-check, and schema-validate the fleet report."""
    records = sorted((e.record for e in result.entries
                      if e.record is not None),
                     key=lambda r: r['req_id'])
    by_state = {}
    for e in result.entries:
        by_state[e.state] = by_state.get(e.state, 0) + 1
    latencies = [r['latency'] for r in records
                 if r['state'] == 'done' and r.get('latency') is not None]
    waits = [r['queue_wait'] for r in records
             if r.get('queue_wait') is not None]
    rwaits = [r['router_wait'] for r in records]
    makespan = result.final_cycle
    busy = sum(m * u * tiles for (m, tiles, u) in result.batch_busy)
    denom = sum(m * tiles for (m, tiles, _) in result.batch_busy)
    summary = {
        'makespan_cycles': makespan,
        'submitted': len(result.entries),
        'completed': by_state.get('done', 0),
        'failed': by_state.get('failed', 0),
        'timed_out': by_state.get('timed-out', 0),
        'rejected': by_state.get('rejected', 0),
        'throughput_per_mcycle': (by_state.get('done', 0) * 1e6 / makespan
                                  if makespan else 0.0),
        'peak_queue_depth': result.peak_queue_depth,
        'latency_mean': (sum(latencies) / len(latencies)
                         if latencies else 0.0),
        'latency_p50': _percentile(latencies, 0.50),
        'latency_p95': _percentile(latencies, 0.95),
        'latency_p99': _percentile(latencies, 0.99),
        'queue_wait_mean': sum(waits) / len(waits) if waits else 0.0,
        'router_wait_mean': (sum(rwaits) / len(rwaits)
                             if rwaits else 0.0),
        # utilization of shards *while busy* — the autoscaler's signal
        'tile_utilization': (busy / denom) if denom else 0.0,
    }
    if result.stats_docs:
        merged = RunStats.merge(
            [stats_from_dict(d) for d in result.stats_docs])
        summary['total_instrs'] = merged.total_instrs
    breakdowns = [r['breakdown'] for r in records
                  if r.get('breakdown') is not None]
    if breakdowns:
        summary['breakdown_totals'] = merge_breakdowns(breakdowns)
    shards = []
    for sh in result.shards:
        row = {'shard_id': sh.shard_id, 'state': sh.state,
               'born_epoch': sh.born_epoch, 'batches': sh.batches,
               'served': sh.served}
        if sh.crashed_epoch is not None:
            row['crashed_epoch'] = sh.crashed_epoch
        if sh.retired_epoch is not None:
            row['retired_epoch'] = sh.retired_epoch
        shards.append(row)
    doc = {
        'schema_version': FLEET_SCHEMA_VERSION,
        'kind': FLEET_REPORT_KIND,
        'generated': _generated(),
        'traffic': {'n_requests': len(result.entries)},
        'fleet': {
            'initial_shards': result.initial_shards,
            'final_shards': sum(1 for s in result.shards
                                if s.state == 'active'),
            'peak_shards': result.peak_shards,
            'epochs': result.epochs,
            'epoch_cycles': result.epoch_cycles,
            'batches': result.batches,
            'crashes': result.crashes,
            'rerouted': result.rerouted,
            'affinity_hits': result.affinity_hits,
            'shards': shards,
            'events': list(result.events),
        },
        'summary': summary,
        'requests': records,
    }
    if pattern is not None:
        doc['traffic']['pattern'] = pattern
    if seed is not None:
        doc['traffic']['seed'] = seed
    if slo is not None:
        doc['slo'] = slo.evaluate(summary)
    if include_epoch_log:
        doc['epoch_log'] = list(result.epoch_log)
    check_conservation(doc)
    validate_fleet_report(doc)
    return doc


def validate_fleet_report(doc: dict) -> None:
    errors = check_schema(doc, FLEET_REPORT_SCHEMA)
    if errors:
        raise ReportValidationError('; '.join(errors[:20]))


def load_fleet_report(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    validate_fleet_report(doc)
    check_conservation(doc)
    return doc


def render_fleet_report(doc: dict) -> str:
    """Human-readable fleet wrap-up."""
    f = doc['fleet']
    s = doc['summary']
    lines = [
        f'fleet report ({s["submitted"]} requests, '
        f'{f["initial_shards"]} -> {f["final_shards"]} shard(s), '
        f'peak {f["peak_shards"]}, {f["epochs"]} epoch(s) of '
        f'{f["epoch_cycles"]} cycles)',
        f'  {s["completed"]} done / {s["failed"]} failed / '
        f'{s["timed_out"]} timed-out / {s["rejected"]} rejected '
        f'(conserved); {f["batches"]} batch(es), {f["crashes"]} '
        f'crash(es), {f["rerouted"]} re-route(s), '
        f'{f.get("affinity_hits", 0)} affinity hit(s)',
        f'  latency mean {s["latency_mean"]:.0f} '
        f'p50 {s["latency_p50"]:.0f} p95 {s["latency_p95"]:.0f} '
        f'p99 {s["latency_p99"]:.0f}; router wait mean '
        f'{s["router_wait_mean"]:.0f}; throughput '
        f'{s["throughput_per_mcycle"]:.2f} req/Mcycle; busy-shard '
        f'utilization {s["tile_utilization"]:.2f}',
    ]
    for row in f['shards']:
        extra = ''
        if 'crashed_epoch' in row:
            extra = f' (crashed @e{row["crashed_epoch"]})'
        elif 'retired_epoch' in row:
            extra = f' (retired @e{row["retired_epoch"]})'
        lines.append(f'  shard {row["shard_id"]:>3}: {row["state"]:8} '
                     f'{row["batches"]:>4} batch(es) '
                     f'{row["served"]:>5} served{extra}')
    for ev in f['events']:
        lines.append(f'  e{ev["epoch"]:>4} {ev["action"].upper():7} '
                     f'{ev["shards_before"]} -> {ev["shards_after"]}: '
                     f'{ev["reason"]}')
    totals = s.get('breakdown_totals')
    if totals:
        grand = sum(totals.values()) or 1
        lines.append('  cycle attribution: ' + '  '.join(
            f'{phase} {v} ({v * 100 // grand}%)'
            for phase, v in totals.items()))
    if 'slo' in doc:
        from ..observe import render_slo
        lines.append(render_slo(doc['slo']))
    return '\n'.join(lines)
