"""Software-defined vector mechanisms (the paper's primary contribution).

* :mod:`repro.core.vgroup` — vector-group descriptors and fabric layout
* :mod:`repro.core.inet` — the instruction forwarding network
* :mod:`repro.core.frames` — DAE frame-queue bookkeeping
* :mod:`repro.core.wide_access` — wide vector-load expansion
* :mod:`repro.core.sync` — compiler-driven implicit synchronization bounds
"""

from .frames import FrameQueue, FrameWindowOverflow
from .inet import InetQueue, MSG_DEVEC, MSG_INST, MSG_LAUNCH
from .sync import (ahead_offset, instruction_delay_bound, num_active_frames,
                   safe_runahead)
from .vgroup import (GroupDescriptor, ROLE_EXPANDER, ROLE_INDEPENDENT,
                     ROLE_SCALAR, ROLE_VECTOR, plan_groups, serpentine_order,
                     utilization)
from .wide_access import VloadError, expand_vload, recipients

__all__ = ['FrameQueue', 'FrameWindowOverflow', 'InetQueue',
           'GroupDescriptor', 'plan_groups', 'serpentine_order',
           'utilization', 'expand_vload', 'recipients', 'VloadError',
           'safe_runahead', 'instruction_delay_bound', 'num_active_frames',
           'ahead_offset', 'MSG_INST', 'MSG_LAUNCH', 'MSG_DEVEC',
           'ROLE_INDEPENDENT', 'ROLE_SCALAR', 'ROLE_EXPANDER', 'ROLE_VECTOR']
